//! Integration tests of the measurement machinery: the execution report's
//! internal consistency across crates (conservation laws, timeline
//! coverage, traffic accounting, energy model plumbing).

use graphpulse::algorithms::PageRankDelta;
use graphpulse::core::{AcceleratorConfig, GraphPulse, QueueConfig};
use graphpulse::graph::workloads::Workload;
use graphpulse::mem::TrafficClass;

fn run() -> graphpulse::core::Outcome {
    let g = Workload::LiveJournal.synthesize(32768, 8);
    let mut cfg = AcceleratorConfig::small_test();
    cfg.queue = QueueConfig {
        bins: 4,
        rows: 64,
        cols: 8,
    };
    GraphPulse::new(cfg)
        .run(&g, &PageRankDelta::new(0.85, 1e-6))
        .expect("run")
}

#[test]
fn event_conservation() {
    let out = run();
    let r = &out.report;
    // Every generated event is either applied or merged away; none remain.
    assert_eq!(r.events_generated, r.events_processed + r.events_coalesced);
    // Per-round drains sum to the processed total.
    let drained: u64 = r.rounds_log.iter().map(|x| x.drained).sum();
    assert_eq!(drained, r.events_processed);
    // Lookahead histogram covers exactly the drained events.
    assert_eq!(r.total_lookahead().total(), r.events_processed);
    // The final round leaves an empty queue.
    assert_eq!(r.rounds_log.last().expect("rounds").remaining, 0);
}

#[test]
fn timelines_cover_every_unit_cycle() {
    let out = run();
    let r = &out.report;
    assert_eq!(r.proc_timeline.total(), r.cycles * 2); // 2 processors
    assert_eq!(r.gen_timeline.total(), r.cycles * 4); // 2 procs × 2 streams
    let frac_sum: f64 = r.proc_timeline.fractions().iter().map(|(_, _, f)| f).sum();
    assert!((frac_sum - 1.0).abs() < 1e-9);
}

#[test]
fn traffic_accounting_is_complete() {
    let out = run();
    let m = &out.report.memory;
    assert!(m.accesses(TrafficClass::VertexRead) > 0);
    assert!(m.accesses(TrafficClass::VertexWrite) > 0);
    assert!(m.accesses(TrafficClass::EdgeRead) > 0);
    // Utilized bytes can never exceed moved bytes, per class and total.
    for c in TrafficClass::ALL {
        assert!(m.useful_bytes(c) <= m.bytes(c), "{c:?}");
    }
    assert!(m.utilization() > 0.0 && m.utilization() <= 1.0);
    // Vertex write-backs are write-combined: each burst moves between one
    // property (8 B) and a full line (64 B), all of it useful.
    let wr = m.accesses(TrafficClass::VertexWrite);
    let wb = m.bytes(TrafficClass::VertexWrite);
    assert!(wb >= wr * 8 && wb <= wr * 64);
    assert_eq!(wb, m.useful_bytes(TrafficClass::VertexWrite));
}

#[test]
fn energy_report_scales_with_runtime() {
    let out = run();
    let e = &out.report.energy;
    assert!(e.total_mw > 0.0);
    assert!((e.total_mj - e.total_mw * e.seconds).abs() < 1e-9);
    assert_eq!(e.rows.len(), 4);
    // Queue memory dominates, as in Table V.
    assert!(e.rows[0].total_mw() > e.rows[1].total_mw());
    assert!(e.total_area_mm2 > 0.0);
}

#[test]
fn stage_averages_are_populated() {
    let out = run();
    let s = &out.report.stages;
    assert!(s.vtx_mem.count() > 0);
    assert!(s.process.count() > 0);
    assert!(s.gen_buffer.count() > 0);
    // Process stage is at least the pipeline depth (4); retirement can be
    // delayed further when a generation hand-off stalls.
    assert!(s.process.mean() >= 4.0);
    assert!(s.process.min() >= 4.0);
    // Stage means are nonnegative and finite.
    for (label, mean) in s.rows() {
        assert!(mean.is_finite() && mean >= 0.0, "{label}");
    }
}

#[test]
fn seconds_follow_the_configured_clock() {
    let g = Workload::WebGoogle.synthesize(8192, 2);
    let mut cfg = AcceleratorConfig::small_test();
    cfg.queue = QueueConfig {
        bins: 4,
        rows: 64,
        cols: 8,
    };
    cfg.clock_ghz = 2.0;
    let out = GraphPulse::new(cfg)
        .run(&g, &PageRankDelta::new(0.85, 1e-6))
        .expect("run");
    assert!(
        (out.report.seconds - out.report.cycles as f64 / 2e9).abs() < 1e-15,
        "2 GHz clock halves the wall time"
    );
}
