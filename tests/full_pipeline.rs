//! Whole-workspace integration: workload synthesis → accelerator, software
//! framework, and Graphicionado model all agree with the golden references,
//! sliced runs match unsliced runs, and everything is deterministic.

use graphpulse::algorithms::{
    engine, max_abs_diff, normalize_inbound, reference, Adsorption, AdsorptionParams, Bfs,
    ConnectedComponents, PageRankDelta, Sssp,
};
use graphpulse::baselines::graphicionado::{self, GraphicionadoConfig};
use graphpulse::baselines::ligra::{apps, LigraConfig};
use graphpulse::core::{AcceleratorConfig, GraphPulse, QueueConfig};
use graphpulse::graph::workloads::Workload;
use graphpulse::graph::VertexId;

fn accel() -> GraphPulse {
    let mut cfg = AcceleratorConfig::small_test();
    cfg.queue = QueueConfig {
        bins: 4,
        rows: 64,
        cols: 8,
    };
    GraphPulse::new(cfg)
}

#[test]
fn all_backends_agree_on_pagerank() {
    let g = Workload::WebGoogle.synthesize(2048, 5);
    let algo = PageRankDelta::new(0.85, 1e-8);
    let gp = accel().run(&g, &algo).expect("accelerator");
    let sw = apps::pagerank_delta(&g, 0.85, 1e-8, &LigraConfig::sequential());
    let hw = graphicionado::run(&g, &algo, &GraphicionadoConfig::default());
    let golden = reference::pagerank(&g, 0.85, 1e-11);
    assert!(max_abs_diff(&gp.values, &golden) < 1e-3);
    assert!(max_abs_diff(&sw.values, &golden) < 1e-3);
    assert!(max_abs_diff(&hw.values, &golden) < 1e-3);
}

#[test]
fn all_backends_agree_on_sssp_and_bfs() {
    let g = Workload::Wikipedia.synthesize_weighted(
        8192,
        graphpulse::graph::generators::WeightMode::Uniform(1.0, 9.0),
        3,
    );
    let root = g
        .vertices()
        .max_by_key(|v| g.out_degree(*v))
        .expect("nonempty");
    let golden = reference::sssp_dijkstra(&g, root);
    let gp = accel().run(&g, &Sssp::new(root)).expect("accelerator");
    let sw = apps::sssp(&g, root, &LigraConfig::sequential());
    let hw = graphicionado::run(&g, &Sssp::new(root), &GraphicionadoConfig::default());
    assert!(max_abs_diff(&gp.values, &golden) < 1e-6);
    assert!(max_abs_diff(&sw.values, &golden) < 1e-6);
    assert!(max_abs_diff(&hw.values, &golden) < 1e-6);

    let bfs_golden = reference::bfs_levels(&g, root);
    let gp_bfs = accel().run(&g, &Bfs::new(root)).expect("accelerator");
    assert!(max_abs_diff(&gp_bfs.values, &bfs_golden) < 1e-9);
}

#[test]
fn all_backends_agree_on_cc_and_adsorption() {
    let g = Workload::Facebook.synthesize(16384, 9);
    let cc_golden = reference::cc_labels(&g);
    let gp = accel()
        .run(&g, &ConnectedComponents::new())
        .expect("accelerator");
    let sw = apps::cc(&g, &LigraConfig::sequential());
    assert!(max_abs_diff(&gp.values, &cc_golden) < 1e-9);
    assert!(max_abs_diff(&sw.values, &cc_golden) < 1e-9);

    let raw = Workload::Facebook.synthesize_weighted(
        16384,
        graphpulse::graph::generators::WeightMode::Uniform(0.5, 2.0),
        9,
    );
    let ng = normalize_inbound(&raw);
    let params = AdsorptionParams::random(ng.num_vertices(), 1);
    let ads_golden = reference::adsorption_jacobi(&ng, &params, 1e-12);
    let gp_ads = accel()
        .run(&ng, &Adsorption::new(params.clone(), 1e-9))
        .expect("accelerator");
    let hw_ads = graphicionado::run(
        &ng,
        &Adsorption::new(params, 1e-9),
        &GraphicionadoConfig::default(),
    );
    assert!(max_abs_diff(&gp_ads.values, &ads_golden) < 1e-4);
    assert!(max_abs_diff(&hw_ads.values, &ads_golden) < 1e-4);
}

#[test]
fn sliced_and_unsliced_runs_agree() {
    let g = Workload::WebGoogle.synthesize(4096, 2);
    let algo = PageRankDelta::new(0.85, 1e-7);

    let mut one_slice = AcceleratorConfig::small_test();
    one_slice.queue = QueueConfig {
        bins: 4,
        rows: 256,
        cols: 8,
    }; // fits whole graph
    let whole = GraphPulse::new(one_slice)
        .run(&g, &algo)
        .expect("whole run");
    assert_eq!(whole.report.slices, 1);

    let mut tiny_queue = AcceleratorConfig::small_test();
    tiny_queue.queue = QueueConfig {
        bins: 4,
        rows: 4,
        cols: 8,
    }; // 128 slots
    let sliced = GraphPulse::new(tiny_queue)
        .run(&g, &algo)
        .expect("sliced run");
    assert!(sliced.report.slices > 1);
    assert!(sliced.report.events_spilled > 0);
    assert!(
        sliced
            .report
            .memory
            .bytes(graphpulse::mem::TrafficClass::EventSpill)
            > 0,
        "spill traffic must be accounted"
    );

    assert!(max_abs_diff(&whole.values, &sliced.values) < 1e-3);
    // Slicing costs time: the sliced run must not be faster.
    assert!(sliced.report.cycles >= whole.report.cycles);
}

#[test]
fn simulation_is_deterministic() {
    let g = Workload::LiveJournal.synthesize(16384, 4);
    let algo = PageRankDelta::new(0.85, 1e-6);
    let a = accel().run(&g, &algo).expect("first");
    let b = accel().run(&g, &algo).expect("second");
    assert_eq!(a.report.cycles, b.report.cycles);
    assert_eq!(a.report.events_generated, b.report.events_generated);
    assert_eq!(a.values, b.values);
}

#[test]
fn golden_engines_bound_the_accelerator_work() {
    // The asynchronous accelerator must not do more event applications than
    // the synchronous BSP engine does (coalescing + lookahead reduce work).
    let g = Workload::WebGoogle.synthesize(4096, 6);
    let algo = ConnectedComponents::new();
    let gp = accel().run(&g, &algo).expect("accelerator");
    let (bsp, _) = engine::run_bsp(&algo, &g, 100_000);
    assert!(
        gp.report.events_processed <= bsp.events_processed,
        "async {} > sync {}",
        gp.report.events_processed,
        bsp.events_processed
    );
}

#[test]
fn root_choice_does_not_break_backends() {
    // Degenerate roots: isolated vertex and a sink.
    let mut b = graphpulse::graph::GraphBuilder::new(5);
    b.add_edge(VertexId::new(0), VertexId::new(1), 1.0);
    b.add_edge(VertexId::new(1), VertexId::new(2), 1.0);
    let g = b.build();
    // Root 4 is isolated: only it is reached.
    let out = accel().run(&g, &Bfs::new(VertexId::new(4))).expect("run");
    assert_eq!(out.values[4], 0.0);
    assert!(out.values[0].is_infinite());
    // Root 2 is a sink: BFS terminates immediately after one event.
    let out = accel().run(&g, &Bfs::new(VertexId::new(2))).expect("run");
    assert_eq!(out.values[2], 0.0);
}
