//! System-level property tests: on random graphs, the cycle-level
//! accelerator model, the software baseline, and the golden references all
//! compute the same fixpoints — for exact (min/max) algorithms bit-exactly,
//! for accumulative ones within floating-point tolerance.

use proptest::prelude::*;

use graphpulse::algorithms::{
    max_abs_diff, reference, Bfs, ConnectedComponents, PageRankDelta, Sssp,
};
use graphpulse::baselines::ligra::{apps, LigraConfig};
use graphpulse::core::{AcceleratorConfig, GraphPulse, QueueConfig};
use graphpulse::graph::generators::{erdos_renyi, WeightMode};
use graphpulse::graph::{CsrGraph, VertexId};

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..60, 0u64..u64::MAX)
        .prop_map(|(n, seed)| erdos_renyi(n, n * 3, WeightMode::Uniform(1.0, 6.0), seed))
}

fn accel() -> GraphPulse {
    let mut cfg = AcceleratorConfig::small_test();
    cfg.queue = QueueConfig { bins: 2, rows: 8, cols: 8 }; // forces slicing on n > 128
    GraphPulse::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn accelerator_equals_dijkstra(g in arb_graph()) {
        let out = accel().run(&g, &Sssp::new(VertexId::new(0))).expect("run");
        let golden = reference::sssp_dijkstra(&g, VertexId::new(0));
        prop_assert!(max_abs_diff(&out.values, &golden) < 1e-6);
    }

    #[test]
    fn accelerator_equals_bfs(g in arb_graph()) {
        let out = accel().run(&g, &Bfs::new(VertexId::new(1))).expect("run");
        let golden = reference::bfs_levels(&g, VertexId::new(1));
        prop_assert!(max_abs_diff(&out.values, &golden) < 1e-9);
    }

    #[test]
    fn accelerator_equals_label_propagation(g in arb_graph()) {
        let out = accel().run(&g, &ConnectedComponents::new()).expect("run");
        let golden = reference::cc_labels(&g);
        prop_assert!(max_abs_diff(&out.values, &golden) < 1e-9);
    }

    #[test]
    fn accelerator_equals_ligra_on_pagerank(g in arb_graph()) {
        let gp = accel().run(&g, &PageRankDelta::new(0.85, 1e-9)).expect("run");
        let sw = apps::pagerank_delta(&g, 0.85, 1e-9, &LigraConfig::sequential());
        prop_assert!(max_abs_diff(&gp.values, &sw.values) < 1e-4);
    }

    #[test]
    fn report_invariants_hold_on_random_graphs(g in arb_graph()) {
        let out = accel().run(&g, &ConnectedComponents::new()).expect("run");
        let r = &out.report;
        prop_assert_eq!(r.events_generated, r.events_processed + r.events_coalesced);
        prop_assert!(r.memory.total_useful_bytes() <= r.memory.total_bytes());
        prop_assert_eq!(r.total_lookahead().total(), r.events_processed);
    }
}
