//! System-level property tests: on random graphs, the cycle-level
//! accelerator model, the software baseline, and the golden references all
//! compute the same fixpoints — for exact (min/max) algorithms bit-exactly,
//! for accumulative ones within floating-point tolerance.
//!
//! Randomized cases are driven by the workspace's deterministic
//! [`graphpulse::graph::rng::StdRng`], so every run exercises the same
//! inputs.

use graphpulse::algorithms::{
    max_abs_diff, reference, Bfs, ConnectedComponents, PageRankDelta, Sssp,
};
use graphpulse::baselines::ligra::{apps, LigraConfig};
use graphpulse::core::{AcceleratorConfig, GraphPulse, QueueConfig};
use graphpulse::graph::generators::{erdos_renyi, WeightMode};
use graphpulse::graph::rng::{Rng, StdRng};
use graphpulse::graph::{CsrGraph, VertexId};

fn random_graph(rng: &mut StdRng) -> CsrGraph {
    let n = rng.gen_range(2..60usize);
    let seed = rng.next_u64();
    erdos_renyi(n, n * 3, WeightMode::Uniform(1.0, 6.0), seed)
}

fn accel() -> GraphPulse {
    let mut cfg = AcceleratorConfig::small_test();
    cfg.queue = QueueConfig {
        bins: 2,
        rows: 8,
        cols: 8,
    }; // forces slicing on n > 128
    GraphPulse::new(cfg)
}

#[test]
fn accelerator_equals_dijkstra() {
    let mut rng = StdRng::seed_from_u64(0x51);
    for _ in 0..12 {
        let g = random_graph(&mut rng);
        let out = accel().run(&g, &Sssp::new(VertexId::new(0))).expect("run");
        let golden = reference::sssp_dijkstra(&g, VertexId::new(0));
        assert!(max_abs_diff(&out.values, &golden) < 1e-6);
    }
}

#[test]
fn accelerator_equals_bfs() {
    let mut rng = StdRng::seed_from_u64(0x52);
    for _ in 0..12 {
        let g = random_graph(&mut rng);
        let out = accel().run(&g, &Bfs::new(VertexId::new(1))).expect("run");
        let golden = reference::bfs_levels(&g, VertexId::new(1));
        assert!(max_abs_diff(&out.values, &golden) < 1e-9);
    }
}

#[test]
fn accelerator_equals_label_propagation() {
    let mut rng = StdRng::seed_from_u64(0x53);
    for _ in 0..12 {
        let g = random_graph(&mut rng);
        let out = accel().run(&g, &ConnectedComponents::new()).expect("run");
        let golden = reference::cc_labels(&g);
        assert!(max_abs_diff(&out.values, &golden) < 1e-9);
    }
}

#[test]
fn accelerator_equals_ligra_on_pagerank() {
    let mut rng = StdRng::seed_from_u64(0x54);
    for _ in 0..12 {
        let g = random_graph(&mut rng);
        let gp = accel()
            .run(&g, &PageRankDelta::new(0.85, 1e-9))
            .expect("run");
        let sw = apps::pagerank_delta(&g, 0.85, 1e-9, &LigraConfig::sequential());
        assert!(max_abs_diff(&gp.values, &sw.values) < 1e-4);
    }
}

#[test]
fn report_invariants_hold_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(0x55);
    for _ in 0..12 {
        let g = random_graph(&mut rng);
        let out = accel().run(&g, &ConnectedComponents::new()).expect("run");
        let r = &out.report;
        assert_eq!(r.events_generated, r.events_processed + r.events_coalesced);
        assert!(r.memory.total_useful_bytes() <= r.memory.total_bytes());
        assert_eq!(r.total_lookahead().total(), r.events_processed);
    }
}
