#!/usr/bin/env bash
# CI gate: formatting, lints, release build, and the full test suite.
# Everything runs offline against the vendored/std-only workspace.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (warnings denied) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo test =="
cargo test --workspace -q

echo "== streaming smoke (tiny update stream) =="
cargo run --release -q -p gp-bench --bin streaming -- \
  --vertices 256 --batches 2 --batch-size 16

echo "== fuzz smoke (fixed seed, byte-deterministic) =="
cargo run --release -q -p gp-bench --bin fuzz -- --seed 7 --iters 50 \
  > /tmp/gp-fuzz-a.log
cargo run --release -q -p gp-bench --bin fuzz -- --seed 7 --iters 50 \
  > /tmp/gp-fuzz-b.log
diff /tmp/gp-fuzz-a.log /tmp/gp-fuzz-b.log \
  || { echo "fuzz output not deterministic"; exit 1; }

echo "== shrinker self-test (injected fault must be caught and shrunk) =="
if cargo run --release -q -p gp-bench --bin fuzz -- \
    --seed 7 --iters 5 --shrink --inject-fault merge-order \
    > /tmp/gp-fuzz-fault.log 2>&1; then
  echo "injected fault was NOT detected"; exit 1
fi
grep -q "minimal repro (ready-to-paste regression test):" /tmp/gp-fuzz-fault.log \
  || { echo "no shrunk repro in fault output"; cat /tmp/gp-fuzz-fault.log; exit 1; }

echo "== chaos smoke (every fault kind, detect/recover/verify, byte-deterministic) =="
# Fixed-seed fault-injection campaign: every fault kind x algorithm across
# the chaos executor, the shard-parallel engine, and the turbo backend.
# The binary exits non-zero if any scenario goes undetected or recovers to
# the wrong answer; two runs must be byte-identical (log and JSON).
cargo run --release -q -p gp-bench --bin chaos -- \
  --seed 42 --out /tmp/gp-chaos-a.json > /tmp/gp-chaos-a.log
cargo run --release -q -p gp-bench --bin chaos -- \
  --seed 42 --out /tmp/gp-chaos-b.json > /tmp/gp-chaos-b.log
# The final "wrote <path>" line names the per-run output file; everything
# above it (the campaign log proper) must be byte-identical.
diff <(grep -v '^wrote ' /tmp/gp-chaos-a.log) \
     <(grep -v '^wrote ' /tmp/gp-chaos-b.log) \
  || { echo "chaos campaign log not deterministic"; exit 1; }
diff /tmp/gp-chaos-a.json /tmp/gp-chaos-b.json \
  || { echo "chaos campaign JSON not deterministic"; exit 1; }
# Both the fresh campaign output and the committed record must satisfy the
# gp-bench/chaos/v1 schema (every scenario detected + recovered bit-exact).
cargo run --release -q -p gp-bench --bin bench_check -- \
  /tmp/gp-chaos-a.json BENCH_chaos.json

echo "== turbo-vs-golden smoke + BENCH json schema check =="
# Quick trajectory (2^12): every point cross-checks turbo against the
# sequential golden engine, so a semantic regression in gp-turbo fails here.
TURBO_LOG2=12 cargo bench -q -p gp-bench --bench end_to_end -- \
  --turbo-only --json /tmp/gp-bench-e2e.json
# The freshly emitted JSON and the committed trajectory must both satisfy
# the schema (parseable, required keys, events/sec > 0) — if the bench
# binary ever stops emitting complete measurements, CI fails.
cargo run --release -q -p gp-bench --bin bench_check -- \
  /tmp/gp-bench-e2e.json BENCH_end_to_end.json

echo "== sharded-turbo differential smoke (2 shards vs golden, full oracle) =="
# The differential-turbo-sharded oracle leg re-runs every corpus case's
# turbo execution at 2 and 4 vertex shards and demands bit-identical
# values AND counters against the single-shard run; the fuzz smoke above
# already sweeps it, and this pins a second fixed slice at a different
# master seed so a determinism break in the sharded engine cannot hide
# behind one lucky corpus.
cargo run --release -q -p gp-bench --bin fuzz -- --seed 19 --iters 25

echo "== serve smoke (executor pool + sharded engine, every sample vs golden) =="
# Fixed-seed load run on a 2^14 R-MAT: four client threads race mixed
# queries against an updater publishing epochs mid-run, served by a
# two-executor pool with every turbo run at two vertex shards.
# --verify-all makes the bench cross-check every sampled response against
# a sequential golden recompute on the exact epoch the response named —
# bit-exact for the monotone classes, within tolerance for PageRank.
# Exit 1 on any mismatch.
cargo run --release -q -p gp-bench --bin serve_bench -- \
  --seed 11 --vertices 16384 --queries 20000 --batches 8 \
  --executors 2 --turbo-shards 2 \
  --sample-every 64 --verify-all --out /tmp/gp-serve-smoke.json
# The fresh run and the committed full-scale sweep must both satisfy the
# gp-bench/serve/v2 schema (non-empty executor sweep, golden checks ran
# and passed per run, per-class latency quantiles present and ordered).
cargo run --release -q -p gp-bench --bin bench_check -- \
  /tmp/gp-serve-smoke.json BENCH_serve.json

echo "== out-of-core smoke (streamed container, mapped vs resident bit-compare) =="
# Builds a 2^16-vertex weighted R-MAT container in a temp dir with the
# streaming external-memory builder (the graph is never resident during
# the build), memory-maps it, and runs golden + turbo over the mapping
# under a 4 MiB working-state budget the fully-resident graph (~8 MiB
# both-direction CSR) cannot meet. --check-resident additionally
# materializes the graph and requires golden and turbo over the mapping
# to be bit-identical (values and every event counter) to the fully
# resident runs; the binary exits non-zero on any divergence. The emitted
# JSON plus the committed sweep must both satisfy gp-bench/outofcore/v1.
# (The differential-outofcore oracle leg inside the fuzz smokes above
# additionally bit-compares mapped vs resident runs on every corpus case.)
GP_OOC_DIR=$(mktemp -d /tmp/gp-ooc-smoke.XXXXXX)
trap 'rm -rf "$GP_OOC_DIR"' EXIT
cargo run --release -q -p gp-bench --bin container -- \
  --seed 7 --log2 16 --budget-mb 4 --check-resident --dir "$GP_OOC_DIR" \
  --out /tmp/gp-ooc-smoke.json
cargo run --release -q -p gp-bench --bin bench_check -- \
  /tmp/gp-ooc-smoke.json BENCH_outofcore.json

echo "CI gate passed."
