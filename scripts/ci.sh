#!/usr/bin/env bash
# CI gate: formatting, lints, release build, and the full test suite.
# Everything runs offline against the vendored/std-only workspace.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (warnings denied) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo test =="
cargo test --workspace -q

echo "CI gate passed."
