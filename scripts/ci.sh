#!/usr/bin/env bash
# CI gate: formatting, lints, release build, and the full test suite.
# Everything runs offline against the vendored/std-only workspace.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (warnings denied) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo test =="
cargo test --workspace -q

echo "== streaming smoke (tiny update stream) =="
cargo run --release -q -p gp-bench --bin streaming -- \
  --vertices 256 --batches 2 --batch-size 16

echo "CI gate passed."
