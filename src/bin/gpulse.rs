//! `gpulse` — command-line front end for the GraphPulse reproduction.
//!
//! Runs any bundled application on any execution backend over a synthetic
//! workload or an edge-list file, printing the execution report and
//! optionally dumping the final vertex values.
//!
//! ```text
//! gpulse --app pr --backend accel --workload LJ --scale 512
//! gpulse --app sssp --backend ligra --graph path/to/edges.txt --root 5
//! gpulse --app cc --backend graphicionado --workload WG --values out.csv
//! ```

use std::process::ExitCode;

use graphpulse::algorithms::{
    normalize_inbound, Adsorption, AdsorptionParams, Bfs, ConnectedComponents, PageRankDelta, Sssp,
    Sswp,
};
use graphpulse::baselines::graphicionado::{self, GraphicionadoConfig};
use graphpulse::baselines::ligra::{apps, LigraConfig};
use graphpulse::core::{AcceleratorConfig, GraphPulse};
use graphpulse::graph::generators::WeightMode;
use graphpulse::graph::workloads::Workload;
use graphpulse::graph::{io, CsrGraph, VertexId};

const USAGE: &str = "\
gpulse — event-driven graph-processing accelerator (GraphPulse, MICRO 2020)

USAGE: gpulse [OPTIONS]

  --app <pr|ppr|ads|sssp|bfs|cc|sswp>   application to run (default pr)
  --backend <accel|base|ligra|graphicionado>
                                        execution backend (default accel)
  --workload <WG|FB|WK|LJ|TW|RD>        synthetic Table IV profile (default WG)
  --scale <N>                           1/N of the published size (default 512)
  --graph <FILE>                        edge-list file instead of a workload
  --seed <S>                            RNG seed (default 42)
  --root <V>                            root vertex for BFS/SSSP/SSWP/PPR
                                        (default: highest out-degree)
  --threads <T>                         ligra backend threads
  --values <FILE>                       write final vertex values as CSV
  --help                                this message
";

struct Args {
    app: String,
    backend: String,
    workload: Workload,
    scale: usize,
    graph_file: Option<String>,
    seed: u64,
    root: Option<u32>,
    threads: Option<usize>,
    values_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        app: "pr".into(),
        backend: "accel".into(),
        workload: Workload::WebGoogle,
        scale: 512,
        graph_file: None,
        seed: 42,
        root: None,
        threads: None,
        values_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().ok_or(format!("flag {flag} needs a value"));
        match flag.as_str() {
            "--app" => args.app = val()?,
            "--backend" => args.backend = val()?,
            "--workload" => {
                args.workload = match val()?.to_ascii_uppercase().as_str() {
                    "WG" => Workload::WebGoogle,
                    "FB" => Workload::Facebook,
                    "WK" => Workload::Wikipedia,
                    "LJ" => Workload::LiveJournal,
                    "TW" => Workload::Twitter,
                    "RD" => Workload::Road,
                    other => return Err(format!("unknown workload {other}")),
                }
            }
            "--scale" => args.scale = val()?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--graph" => args.graph_file = Some(val()?),
            "--seed" => args.seed = val()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--root" => args.root = Some(val()?.parse().map_err(|e| format!("--root: {e}"))?),
            "--threads" => {
                args.threads = Some(val()?.parse().map_err(|e| format!("--threads: {e}"))?)
            }
            "--values" => args.values_out = Some(val()?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn load_graph(args: &Args, weighted: bool) -> Result<CsrGraph, String> {
    if let Some(path) = &args.graph_file {
        let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        return io::read_edge_list(file, None).map_err(|e| e.to_string());
    }
    let mode = if weighted {
        WeightMode::Uniform(1.0, 10.0)
    } else {
        WeightMode::Unweighted
    };
    Ok(args
        .workload
        .synthesize_weighted(args.scale, mode, args.seed))
}

fn root_of(args: &Args, graph: &CsrGraph) -> VertexId {
    match args.root {
        Some(v) => VertexId::new(v),
        None => graph
            .vertices()
            .max_by_key(|v| graph.out_degree(*v))
            .unwrap_or(VertexId::new(0)),
    }
}

/// `(values, simulated-or-measured seconds, human summary)`.
fn run(args: &Args) -> Result<(Vec<f64>, f64, String), String> {
    let weighted = matches!(args.app.as_str(), "sssp" | "sswp" | "ads");
    let graph = load_graph(args, weighted)?;
    eprintln!("graph: {graph}");
    let root = root_of(args, &graph);

    // Adsorption needs normalized weights + parameters.
    let (graph, params) = if args.app == "ads" {
        let normalized = normalize_inbound(&graph);
        let params = AdsorptionParams::random(normalized.num_vertices(), args.seed ^ 0xAD50);
        (normalized, Some(params))
    } else {
        (graph, None)
    };

    match args.backend.as_str() {
        "accel" | "base" => {
            let config = if args.backend == "accel" {
                AcceleratorConfig::optimized()
            } else {
                AcceleratorConfig::baseline()
            };
            let accel = GraphPulse::new(config);
            let outcome = match args.app.as_str() {
                "pr" => accel.run(&graph, &PageRankDelta::new(0.85, 1e-7)),
                "ppr" => accel.run(
                    &graph,
                    &PageRankDelta::personalized(0.85, 1e-9, graph.num_vertices(), &[root]),
                ),
                "ads" => accel.run(&graph, &Adsorption::new(params.expect("params"), 1e-7)),
                "sssp" => accel.run(&graph, &Sssp::new(root)),
                "bfs" => accel.run(&graph, &Bfs::new(root)),
                "cc" => accel.run(&graph, &ConnectedComponents::new()),
                "sswp" => accel.run(&graph, &Sswp::new(root)),
                other => return Err(format!("unknown app {other}")),
            }
            .map_err(|e| e.to_string())?;
            let r = &outcome.report;
            let summary = format!(
                "{} cycles ({:.3} ms simulated) | {} rounds, {} slices | \
                 events: {} generated, {} processed, {:.1}% coalesced | \
                 off-chip: {} accesses, {:.1} MB, {:.0}% utilized | {:.1} mW avg",
                r.cycles,
                r.seconds * 1e3,
                r.rounds,
                r.slices,
                r.events_generated,
                r.events_processed,
                100.0 * r.coalesce_rate(),
                r.memory.total_accesses(),
                r.memory.total_bytes() as f64 / 1e6,
                100.0 * r.memory.utilization(),
                r.energy.total_mw,
            );
            Ok((outcome.values, r.seconds, summary))
        }
        "ligra" => {
            let mut cfg = LigraConfig::default();
            if let Some(t) = args.threads {
                cfg.threads = t;
            }
            let out = match args.app.as_str() {
                "pr" => apps::pagerank_delta(&graph, 0.85, 1e-7, &cfg),
                "ads" => apps::adsorption(&graph, &params.expect("params"), 1e-7, &cfg),
                "sssp" => apps::sssp(&graph, root, &cfg),
                "bfs" => apps::bfs(&graph, root, &cfg),
                "cc" => apps::cc(&graph, &cfg),
                other => return Err(format!("app {other} not available on the ligra backend")),
            };
            let secs = out.elapsed.as_secs_f64();
            let summary = format!(
                "{:.3} ms measured on {} threads | {} iterations",
                secs * 1e3,
                cfg.threads,
                out.iterations
            );
            Ok((out.values, secs, summary))
        }
        "graphicionado" => {
            let cfg = GraphicionadoConfig::default();
            let out = match args.app.as_str() {
                "pr" => graphicionado::run(&graph, &PageRankDelta::new(0.85, 1e-7), &cfg),
                "ads" => graphicionado::run(
                    &graph,
                    &Adsorption::new(params.expect("params"), 1e-7),
                    &cfg,
                ),
                "sssp" => graphicionado::run(&graph, &Sssp::new(root), &cfg),
                "bfs" => graphicionado::run(&graph, &Bfs::new(root), &cfg),
                "cc" => graphicionado::run(&graph, &ConnectedComponents::new(), &cfg),
                "sswp" => graphicionado::run(&graph, &Sswp::new(root), &cfg),
                other => return Err(format!("unknown app {other}")),
            };
            let summary = format!(
                "{} cycles ({:.3} ms simulated) | {} BSP iterations | {} edges processed",
                out.cycles,
                out.seconds * 1e3,
                out.iterations,
                out.edges_processed
            );
            Ok((out.values, out.seconds, summary))
        }
        other => Err(format!("unknown backend {other}")),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok((values, _secs, summary)) => {
            println!("{summary}");
            if let Some(path) = &args.values_out {
                let mut csv = String::from("vertex,value\n");
                for (v, x) in values.iter().enumerate() {
                    csv.push_str(&format!("{v},{x}\n"));
                }
                if let Err(e) = std::fs::write(path, csv) {
                    eprintln!("error writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {} values to {path}", values.len());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
