//! # GraphPulse — facade crate
//!
//! Re-exports the whole GraphPulse reproduction workspace under one roof so
//! examples, integration tests, and downstream users can depend on a single
//! crate. See `README.md` for the architecture overview and `DESIGN.md` for
//! the per-experiment index.

#![forbid(unsafe_code)]

pub use gp_algorithms as algorithms;
pub use gp_baselines as baselines;
pub use gp_graph as graph;
pub use gp_mem as mem;
pub use gp_serve as serve;
pub use gp_sim as sim;
pub use gp_stream as stream;
pub use gp_turbo as turbo;
pub use graphpulse_core as core;
