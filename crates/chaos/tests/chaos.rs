//! End-to-end tests of the fault-injection plane: clean equivalence,
//! detect-and-recover per fault kind, quarantine, degradation, and the
//! full campaign's determinism.

use gp_algorithms::engine::run_sequential;
use gp_algorithms::{max_abs_diff, Bfs, ConnectedComponents, DeltaAlgorithm, PageRankDelta, Sssp};
use gp_chaos::{
    run_campaign, run_chaos, ChaosConfig, ChaosOutcome, Detector, FaultKind, FaultPlan,
};
use gp_graph::generators::{erdos_renyi, WeightMode};
use gp_graph::{CsrGraph, VertexId};
use gp_mem::integrity::Storable;

fn graph(seed: u64) -> CsrGraph {
    erdos_renyi(72, 300, WeightMode::Uniform(0.5, 4.0), seed)
}

fn small_cfg() -> ChaosConfig {
    ChaosConfig {
        epoch_events: 16,
        ..ChaosConfig::default()
    }
}

/// Clean chaos run must be the golden engine, bit for bit — values and
/// every event counter.
#[test]
fn fault_free_chaos_is_bit_exact_with_golden() {
    let g = graph(7);
    fn check<A: DeltaAlgorithm>(algo: &A, g: &CsrGraph)
    where
        A::Value: Storable,
    {
        let golden = run_sequential(algo, g);
        let chaos = run_chaos(algo, g, None, &small_cfg());
        assert_eq!(chaos.values, golden.values);
        assert_eq!(chaos.events_processed, golden.events_processed);
        assert_eq!(chaos.events_generated, golden.events_generated);
        assert!(chaos.detections.is_empty());
        assert_eq!(chaos.rollbacks, 0);
        assert!(!chaos.degraded);
        assert!(chaos.checkpoints >= 1, "initial checkpoint always taken");
        assert!(chaos.checkpoint_bytes > 0);
    }
    check(&PageRankDelta::new(0.85, 1e-9), &g);
    check(&Sssp::new(VertexId::new(0)), &g);
    check(&Bfs::new(VertexId::new(0)), &g);
    check(&ConnectedComponents::new(), &g);
}

fn expect_detect_and_rollback(kind: FaultKind, seed: u64) -> ChaosOutcome {
    let g = graph(11);
    let algo = Sssp::new(VertexId::new(0));
    let golden = run_sequential(&algo, &g);
    let out = run_chaos(
        &algo,
        &g,
        Some(FaultPlan::transient(kind, seed)),
        &small_cfg(),
    );
    assert!(
        !out.detections.is_empty(),
        "{kind}: fault must be detected in-engine"
    );
    assert_eq!(
        out.detections[0].detector,
        Detector::EventConservation,
        "{kind}: event-layer faults are caught by the conservation watchdog"
    );
    assert!(out.rollbacks >= 1, "{kind}: recovery must roll back");
    assert!(!out.degraded, "{kind}: a transient fault must not degrade");
    assert!(out.unrecovered.is_none());
    assert_eq!(
        out.values, golden.values,
        "{kind}: recovered result must be bit-exact"
    );
    assert!(out.wasted_events > 0 || out.detections[0].epoch == 0);
    out
}

#[test]
fn transient_drop_is_detected_and_rolled_back() {
    expect_detect_and_rollback(FaultKind::DropEvent, 3);
}

#[test]
fn transient_duplicate_is_detected_and_rolled_back() {
    let out = expect_detect_and_rollback(FaultKind::DuplicateEvent, 5);
    assert!(
        out.detections[0].message.contains("absorbed more events"),
        "duplicates surface as a surplus: {}",
        out.detections[0].message
    );
}

#[test]
fn transient_delay_is_detected_and_rolled_back() {
    let out = expect_detect_and_rollback(FaultKind::DelayEvent, 9);
    assert!(
        out.detections[0].message.contains("per-epoch conservation"),
        "{}",
        out.detections[0].message
    );
}

/// A persistent bit-flip keeps re-firing after rollback; the scrub
/// localizes it and the region gets quarantined, after which the run
/// converges bit-exact (the flip bypassed the apply path, so the rolled
/// back state is clean).
#[test]
fn persistent_bit_flip_is_scrubbed_and_quarantined() {
    let g = graph(13);
    let algo = Sssp::new(VertexId::new(0));
    let golden = run_sequential(&algo, &g);
    let cfg = ChaosConfig {
        epoch_events: 16,
        verify_every: 2,
        ..ChaosConfig::default()
    };
    let out = run_chaos(
        &algo,
        &g,
        Some(FaultPlan::persistent(FaultKind::BitFlip, 21)),
        &cfg,
    );
    assert!(!out.detections.is_empty());
    assert_eq!(out.detections[0].detector, Detector::MemoryScrub);
    assert!(
        out.detections[0].message.contains("memory scrub failed"),
        "{}",
        out.detections[0].message
    );
    assert_eq!(
        out.quarantined.len(),
        1,
        "the poisoned region must be quarantined"
    );
    assert!(!out.degraded);
    assert!(out.unrecovered.is_none());
    assert_eq!(out.values, golden.values);
}

/// A transient bit-flip is caught by the scrub and cured by a single
/// rollback — no quarantine needed.
#[test]
fn transient_bit_flip_rolls_back_without_quarantine() {
    let g = graph(17);
    let algo = PageRankDelta::new(0.85, 1e-9);
    let golden = run_sequential(&algo, &g);
    let out = run_chaos(
        &algo,
        &g,
        Some(FaultPlan::transient(FaultKind::BitFlip, 33)),
        &small_cfg(),
    );
    assert!(!out.detections.is_empty());
    assert_eq!(out.detections[0].detector, Detector::MemoryScrub);
    assert!(out.quarantined.is_empty());
    assert_eq!(out.rollbacks, 1);
    assert_eq!(out.values, golden.values);
}

/// A persistent drop exhausts the rollback budget and degrades to the
/// golden engine — still bit-exact, because degradation resumes from the
/// last good checkpoint.
#[test]
fn persistent_drop_degrades_to_golden_engine() {
    let g = graph(19);
    let algo = Sssp::new(VertexId::new(0));
    let golden = run_sequential(&algo, &g);
    let cfg = ChaosConfig {
        epoch_events: 16,
        max_retries: 2,
        ..ChaosConfig::default()
    };
    let out = run_chaos(
        &algo,
        &g,
        Some(FaultPlan::persistent(FaultKind::DropEvent, 19)),
        &cfg,
    );
    assert!(out.detections.len() > cfg.max_retries as usize);
    assert_eq!(out.rollbacks, cfg.max_retries);
    assert!(out.degraded, "retries exhausted, must degrade");
    assert!(out.unrecovered.is_none());
    assert_eq!(out.values, golden.values);
    assert!(out.wasted_events > 0);
}

/// With degradation disabled, an unrecoverable fault is reported — never
/// silently returned as a converged result.
#[test]
fn unrecoverable_fault_is_reported_when_degradation_is_off() {
    let g = graph(19);
    let algo = Sssp::new(VertexId::new(0));
    let cfg = ChaosConfig {
        epoch_events: 16,
        max_retries: 1,
        degrade: false,
        ..ChaosConfig::default()
    };
    let out = run_chaos(
        &algo,
        &g,
        Some(FaultPlan::persistent(FaultKind::DropEvent, 19)),
        &cfg,
    );
    assert!(!out.degraded);
    let msg = out.unrecovered.expect("fault must be reported unrecovered");
    assert!(msg.contains("conservation"), "{msg}");
}

/// The chaos executor and its recovery paths are fully deterministic.
#[test]
fn chaos_runs_are_deterministic() {
    let g = graph(23);
    let algo = PageRankDelta::new(0.85, 1e-9);
    for plan in [
        None,
        Some(FaultPlan::transient(FaultKind::DropEvent, 4)),
        Some(FaultPlan::persistent(FaultKind::BitFlip, 8)),
    ] {
        let a = run_chaos(&algo, &g, plan, &small_cfg());
        let b = run_chaos(&algo, &g, plan, &small_cfg());
        assert_eq!(a, b);
    }
}

/// Detection latency reflects the verification cadence: a sparse scrub
/// schedule catches a flip later than an every-epoch one.
#[test]
fn scrub_cadence_bounds_detection_latency() {
    let g = graph(29);
    let algo = ConnectedComponents::new();
    let plan = Some(FaultPlan::transient(FaultKind::BitFlip, 41));
    let tight = run_chaos(&algo, &g, plan, &small_cfg());
    let sparse_cfg = ChaosConfig {
        epoch_events: 16,
        verify_every: 4,
        ..ChaosConfig::default()
    };
    let sparse = run_chaos(&algo, &g, plan, &sparse_cfg);
    let lat = |o: &ChaosOutcome| o.detections.first().map(|d| d.latency_epochs).unwrap();
    assert!(lat(&tight) < 1 + lat(&sparse) || lat(&sparse) >= lat(&tight));
    assert!(
        lat(&tight) == 0,
        "every-epoch scrub catches the flip at once"
    );
    let golden = run_sequential(&algo, &g);
    assert_eq!(tight.values, golden.values);
    assert_eq!(sparse.values, golden.values);
}

/// The full campaign passes — every fault kind detected and recovered on
/// every backend — and renders byte-identically across runs.
#[test]
fn campaign_passes_and_is_deterministic() {
    let report = run_campaign(42);
    let failures = report.failures();
    assert!(
        failures.is_empty(),
        "campaign failures:\n{}",
        failures.join("\n")
    );
    // Full kind coverage.
    for kind in FaultKind::ALL {
        assert!(
            report
                .records
                .iter()
                .any(|r| r.fault == kind && r.detected > 0),
            "no detected scenario for {kind}"
        );
    }
    // All six algorithms covered, with a fault-free overhead baseline.
    assert_eq!(report.overhead.len(), 6);
    // At least one degradation and one quarantine scenario in the mix.
    assert!(report.records.iter().any(|r| r.recovery == "degrade"));
    assert!(report.records.iter().any(|r| r.recovery == "quarantine"));
    // Determinism: byte-identical render.
    let again = run_campaign(42);
    assert_eq!(report.render_log(), again.render_log());
    assert_eq!(report, again);
}

/// Tolerance discipline: monotone algorithms recover bit-exactly; the
/// campaign records the max divergence so a silent-corruption regression
/// would show up as `result_ok = false`.
#[test]
fn campaign_monotone_records_are_bit_exact() {
    let report = run_campaign(7);
    for r in report
        .records
        .iter()
        .filter(|r| matches!(r.algo, "sssp" | "bfs" | "cc" | "sswp"))
    {
        assert!(
            r.max_diff == 0.0,
            "{}/{}/{} recovered with nonzero divergence {:e}",
            r.fault,
            r.algo,
            r.mode,
            r.max_diff
        );
    }
    let _ = max_abs_diff(&[0.0], &[0.0]);
}
