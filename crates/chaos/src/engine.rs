//! The chaos executor: golden-engine semantics under deterministic fault
//! injection, with in-engine detection and checkpoint/rollback recovery.
//!
//! [`run_chaos`] executes the exact FIFO-worklist discipline of
//! [`run_sequential`](gp_algorithms::engine::run_sequential) — same
//! deposit/coalesce/pop order, hence bit-identical values on a fault-free
//! run — but chops the run into *epochs* of at most
//! [`ChaosConfig::epoch_events`] processed events. Epoch boundaries are
//! where everything interesting happens:
//!
//! * **injection** — the event-layer faults ([`FaultKind::DropEvent`],
//!   [`FaultKind::DuplicateEvent`], [`FaultKind::DelayEvent`]) fire on a
//!   seed-derived global deposit index; [`FaultKind::BitFlip`] corrupts
//!   the vertex-property store at a seed-derived epoch boundary,
//!   bypassing the apply path;
//! * **detection** — every epoch is closed by an event-conservation
//!   check (the carry-in/carry-out mapping below, delegated to
//!   [`ExecutionReport::check_event_conservation`]), a periodic memory
//!   scrub of the [`ShadowChecksum`], and a convergence budget;
//! * **recovery** — clean verified epochs are checkpointed (values +
//!   pending-event queue); a detection rolls back to the last checkpoint
//!   and retries under a bounded backoff (each rollback halves the
//!   verification interval), repeatedly-faulting memory regions are
//!   quarantined, and an exhausted retry budget degrades to the golden
//!   engine from the last good checkpoint.
//!
//! # The per-epoch conservation identity
//!
//! Within one epoch, every deposit increments `generated` and either
//! coalesces into an occupied slot or parks a new worklist entry; every
//! pop increments `processed`. Folding the worklist carry-in/carry-out
//! into the identity gives the exact balance
//!
//! ```text
//! generatedₑ + carry_in == coalescedₑ + processedₑ + carry_out
//! ```
//!
//! which holds with equality on every clean epoch and is violated — as a
//! deficit by drops and in-flight delays, as a surplus by duplicates and
//! late redeliveries — by every event-layer fault.

use std::collections::VecDeque;

use gp_algorithms::engine::{initial_state, run_sequential_seeded};
use gp_algorithms::DeltaAlgorithm;
use gp_graph::{GraphView, VertexId};
use gp_mem::integrity::{checkpoint_bytes, BitUpset, ShadowChecksum, Storable};
use graphpulse_core::ExecutionReport;

use crate::plan::{FaultKind, FaultPlan};

/// Tuning knobs for [`run_chaos`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Events processed per epoch (the detection granularity).
    pub epoch_events: usize,
    /// Scrub-and-checkpoint cadence in epochs. `1` verifies every epoch;
    /// larger values trade detection latency for checkpoint cost. The
    /// conservation check always runs every epoch (counters are free).
    pub verify_every: u64,
    /// Vertices per shadow-checksum region (the quarantine granule).
    pub region_len: usize,
    /// Convergence watchdog: total epoch executions (replays included)
    /// before the run is declared stuck.
    pub max_epochs: u64,
    /// Rollback budget before degradation.
    pub max_retries: u32,
    /// Scrub detections in one region before it is quarantined.
    pub quarantine_threshold: u32,
    /// Fall back to the golden engine when retries are exhausted. When
    /// `false`, an unrecovered detection is reported in
    /// [`ChaosOutcome::unrecovered`] instead.
    pub degrade: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            epoch_events: 64,
            verify_every: 1,
            region_len: 8,
            max_epochs: 100_000,
            max_retries: 4,
            quarantine_threshold: 2,
            degrade: true,
        }
    }
}

/// Which in-engine watchdog fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detector {
    /// The per-epoch event-conservation identity failed.
    EventConservation,
    /// The periodic memory scrub found a region whose recomputed digest
    /// disagrees with the shadow checksum.
    MemoryScrub,
    /// The run crossed its epoch budget without converging.
    ConvergenceBudget,
}

impl Detector {
    /// Stable label for logs and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Detector::EventConservation => "event-conservation",
            Detector::MemoryScrub => "memory-scrub",
            Detector::ConvergenceBudget => "convergence-budget",
        }
    }
}

/// One watchdog firing.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Total epoch index (monotone across replays) at detection time.
    pub epoch: u64,
    /// Attempt number (1 = first execution, +1 per rollback).
    pub attempt: u32,
    /// Which watchdog fired.
    pub detector: Detector,
    /// Epochs between the last injection and this detection (`0` = caught
    /// in the injection epoch).
    pub latency_epochs: u64,
    /// Human-readable diagnosis.
    pub message: String,
}

/// Result of a [`run_chaos`] execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOutcome {
    /// Final vertex values projected to `f64`; bit-identical to
    /// [`run_sequential`](gp_algorithms::engine::run_sequential) on a
    /// fault-free run and on every rollback-recovered run.
    pub values: Vec<f64>,
    /// Every watchdog firing, in order.
    pub detections: Vec<Detection>,
    /// Rollbacks performed.
    pub rollbacks: u32,
    /// Whether the run finished on the golden-engine degradation path.
    pub degraded: bool,
    /// Quarantined memory regions (region indices; see
    /// [`ChaosConfig::region_len`]).
    pub quarantined: Vec<usize>,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Words (values + queued events) copied into checkpoints.
    pub checkpoint_words: u64,
    /// Line-rounded bytes of checkpoint traffic
    /// ([`gp_mem::integrity::checkpoint_bytes`]).
    pub checkpoint_bytes: u64,
    /// Events processed on the accepted execution path (rolled-back work
    /// excluded; degraded-continuation work included).
    pub events_processed: u64,
    /// Events generated on the accepted execution path.
    pub events_generated: u64,
    /// Events coalesced on the accepted execution path.
    pub events_coalesced: u64,
    /// Events whose processing was discarded by rollbacks (the recovery
    /// overhead numerator).
    pub wasted_events: u64,
    /// Total epochs executed, replays included.
    pub epochs: u64,
    /// Set when a detection could not be recovered (retries exhausted and
    /// degradation disabled): the diagnosis of the unrecovered fault.
    /// The values must then be treated as corrupt.
    pub unrecovered: Option<String>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Totals {
    generated: u64,
    processed: u64,
    coalesced: u64,
}

struct Checkpoint<A: DeltaAlgorithm> {
    /// Logical epoch this checkpoint restores to (state as of the start
    /// of that epoch's pops).
    epoch: u64,
    values: Vec<A::Value>,
    queue: Vec<(u32, A::Delta)>,
    totals: Totals,
    shadow: ShadowChecksum,
}

struct ExecState<A: DeltaAlgorithm> {
    values: Vec<A::Value>,
    pending: Vec<Option<A::Delta>>,
    worklist: VecDeque<u32>,
    shadow: ShadowChecksum,
    totals: Totals,
    epoch_gen: u64,
    epoch_coal: u64,
    epoch_proc: u64,
}

impl<A: DeltaAlgorithm> ExecState<A> {
    fn raw_insert(&mut self, algo: &A, v: u32, d: A::Delta) {
        let slot = &mut self.pending[v as usize];
        match slot {
            Some(existing) => {
                *existing = algo.coalesce(*existing, d);
                self.epoch_coal += 1;
                self.totals.coalesced += 1;
            }
            None => {
                *slot = Some(d);
                self.worklist.push_back(v);
            }
        }
    }

    fn queue_snapshot(&self) -> Vec<(u32, A::Delta)> {
        self.worklist
            .iter()
            .map(|&v| {
                (
                    v,
                    self.pending[v as usize].expect("worklist entry without delta"),
                )
            })
            .collect()
    }

    fn restore(&mut self, ckpt: &Checkpoint<A>) {
        self.values.clone_from(&ckpt.values);
        self.shadow = ckpt.shadow.clone();
        self.totals = ckpt.totals;
        self.pending.iter_mut().for_each(|p| *p = None);
        self.worklist.clear();
        for &(v, d) in &ckpt.queue {
            self.pending[v as usize] = Some(d);
            self.worklist.push_back(v);
        }
    }
}

struct Injector<D> {
    plan: Option<FaultPlan>,
    fired: u32,
    /// Delayed events awaiting redelivery: `(release logical epoch,
    /// vertex, delta)`.
    delay: Vec<(u64, u32, D)>,
    /// Total epoch of the most recent firing, for detection latency.
    last_inject: Option<u64>,
}

impl<D> Injector<D> {
    fn armed(&self, kind: FaultKind) -> Option<FaultPlan> {
        self.plan
            .filter(|p| p.kind == kind && self.fired < p.repeats)
    }
}

/// Deposits `delta` for vertex `v` through the injection layer.
fn deposit<A: DeltaAlgorithm>(
    st: &mut ExecState<A>,
    inj: &mut Injector<A::Delta>,
    algo: &A,
    logical: u64,
    total_epochs: u64,
    v: u32,
    d: A::Delta,
) {
    let index = st.totals.generated;
    st.totals.generated += 1;
    st.epoch_gen += 1;
    if let Some(plan) = inj.plan {
        if inj.fired < plan.repeats && index == plan.trigger_index() {
            match plan.kind {
                FaultKind::DropEvent => {
                    inj.fired += 1;
                    inj.last_inject = Some(total_epochs);
                    return; // the event vanishes
                }
                FaultKind::DuplicateEvent => {
                    inj.fired += 1;
                    inj.last_inject = Some(total_epochs);
                    st.raw_insert(algo, v, d); // the phantom copy
                }
                FaultKind::DelayEvent => {
                    inj.fired += 1;
                    inj.last_inject = Some(total_epochs);
                    inj.delay.push((logical + plan.delay_epochs(), v, d));
                    return; // held in flight
                }
                _ => {}
            }
        }
    }
    st.raw_insert(algo, v, d);
}

/// Maps one epoch's counters onto the event-conservation identity and
/// delegates to [`ExecutionReport::check_event_conservation`]: the
/// worklist carry-in is folded into `generated` and the carry-out into
/// `coalesced`, so strict mode demands the exact per-epoch balance.
fn check_epoch_conservation(
    epoch_gen: u64,
    epoch_coal: u64,
    epoch_proc: u64,
    carry_in: u64,
    carry_out: u64,
) -> Result<(), String> {
    let report = ExecutionReport::from_event_counters(
        epoch_gen + carry_in,
        epoch_proc,
        epoch_coal + carry_out,
        0,
    );
    report.check_event_conservation(true).map_err(|e| {
        format!(
            "per-epoch conservation: generated {epoch_gen} + carry-in {carry_in} != \
             coalesced {epoch_coal} + processed {epoch_proc} + carry-out {carry_out} ({e})"
        )
    })
}

/// Runs `algo` on `graph` with golden-engine semantics under the fault
/// `plan` (`None` = clean run), detecting and recovering per `cfg`.
///
/// Only the event- and memory-layer fault kinds inject here
/// ([`FaultKind::DropEvent`], [`FaultKind::DuplicateEvent`],
/// [`FaultKind::DelayEvent`], [`FaultKind::BitFlip`]); backend-specific
/// kinds are handled by the [`guard`](crate::guard) wrappers and the
/// campaign. A plan of another kind runs clean.
///
/// # Panics
///
/// Panics if `cfg.epoch_events == 0` or `cfg.region_len == 0`.
pub fn run_chaos<A, G>(
    algo: &A,
    graph: &G,
    plan: Option<FaultPlan>,
    cfg: &ChaosConfig,
) -> ChaosOutcome
where
    A: DeltaAlgorithm,
    A::Value: Storable,
    G: GraphView,
{
    assert!(cfg.epoch_events > 0, "epoch_events must be positive");
    let n = graph.num_vertices();
    let (init_values, seeds) = initial_state(algo, graph);

    let mut out = ChaosOutcome {
        values: Vec::new(),
        detections: Vec::new(),
        rollbacks: 0,
        degraded: false,
        quarantined: Vec::new(),
        checkpoints: 0,
        checkpoint_words: 0,
        checkpoint_bytes: 0,
        events_processed: 0,
        events_generated: 0,
        events_coalesced: 0,
        wasted_events: 0,
        epochs: 0,
        unrecovered: None,
    };
    if n == 0 {
        return out;
    }

    let shadow = ShadowChecksum::new(&init_values, cfg.region_len);
    let mut st = ExecState::<A> {
        values: init_values.clone(),
        pending: vec![None; n],
        worklist: VecDeque::new(),
        shadow: shadow.clone(),
        totals: Totals::default(),
        epoch_gen: 0,
        epoch_coal: 0,
        epoch_proc: 0,
    };
    let mut inj = Injector::<A::Delta> {
        plan,
        fired: 0,
        delay: Vec::new(),
        last_inject: None,
    };
    let flip = plan
        .filter(|p| p.kind == FaultKind::BitFlip)
        .map(|p| BitUpset::from_seed(p.seed, n));

    // The initial checkpoint pins the clean post-seeding state (epoch 0,
    // full seed queue) so even a fault in the very first epoch has a
    // rollback target.
    let mut ckpt = Checkpoint::<A> {
        epoch: 0,
        values: init_values,
        queue: seeds.iter().map(|&(v, d)| (v.get(), d)).collect(),
        totals: Totals {
            generated: seeds.len() as u64,
            processed: 0,
            coalesced: 0,
        },
        shadow,
    };
    out.checkpoints += 1;
    let ckpt_words = (n + 2 * ckpt.queue.len()) as u64;
    out.checkpoint_words += ckpt_words;
    out.checkpoint_bytes += checkpoint_bytes(ckpt_words as usize);

    let mut verify_every = cfg.verify_every.max(1);
    let mut logical = 0u64; // epoch position on the current attempt
    let mut attempt = 1u32;
    let mut seeds_fresh = true; // deposit seeds through the injector once
    let mut quarantine_hits: std::collections::HashMap<usize, u32> =
        std::collections::HashMap::new();

    'run: loop {
        // ---- epoch open ----
        st.epoch_gen = 0;
        st.epoch_coal = 0;
        st.epoch_proc = 0;
        let carry_in = st.worklist.len() as u64;

        // Redeliver delayed events due this epoch (uncounted inflow: the
        // "network" resurfaces them, which the surplus check catches).
        let mut due = Vec::new();
        inj.delay.retain(|&(release, v, d)| {
            if release <= logical {
                due.push((v, d));
                false
            } else {
                true
            }
        });
        for (v, d) in due {
            st.raw_insert(algo, v, d);
        }

        // Memory-layer injection: a bit upset at this epoch boundary,
        // bypassing the apply path (and the shadow). Quarantined regions
        // are remapped to healthy storage, so upsets there are absorbed.
        if let (Some(plan), Some(upset)) = (inj.armed(FaultKind::BitFlip), flip) {
            if logical == plan.flip_epoch()
                && !out.quarantined.contains(&st.shadow.region_of(upset.index))
            {
                inj.fired += 1;
                inj.last_inject = Some(out.epochs);
                upset.apply(&mut st.values);
            }
        }

        if seeds_fresh {
            // Seeds flow through the same injection layer as propagated
            // events, so a fault can hit the cold-start sweep itself.
            seeds_fresh = false;
            for &(v, d) in &seeds {
                deposit(&mut st, &mut inj, algo, logical, out.epochs, v.get(), d);
            }
        }

        // ---- process up to epoch_events events, FIFO ----
        let mut popped = 0usize;
        while popped < cfg.epoch_events {
            let Some(u) = st.worklist.pop_front() else {
                break;
            };
            popped += 1;
            let delta = st.pending[u as usize]
                .take()
                .expect("worklist entry without delta");
            st.epoch_proc += 1;
            st.totals.processed += 1;
            let uid = VertexId::new(u);
            let old = st.values[u as usize];
            let new = algo.reduce(old, delta);
            st.values[u as usize] = new;
            st.shadow.record_write(u as usize, old, new);
            if let Some(basis) = algo.propagation_basis(old, new) {
                let degree = graph.out_degree(uid);
                for i in 0..degree {
                    let edge = graph.out_edge(uid, i);
                    if let Some(d) = algo.propagate(basis, uid, degree, edge) {
                        deposit(
                            &mut st,
                            &mut inj,
                            algo,
                            logical,
                            out.epochs,
                            edge.other.get(),
                            d,
                        );
                    }
                }
            }
        }
        out.epochs += 1;

        // ---- detectors ----
        let carry_out = st.worklist.len() as u64;
        let converged = st.worklist.is_empty() && inj.delay.is_empty();
        let verify_now = (logical + 1).is_multiple_of(verify_every) || converged;

        let mut detection: Option<(Detector, String, Option<usize>)> = None;
        if let Err(msg) = check_epoch_conservation(
            st.epoch_gen,
            st.epoch_coal,
            st.epoch_proc,
            carry_in,
            carry_out,
        ) {
            detection = Some((Detector::EventConservation, msg, None));
        } else if verify_now {
            if let Err((region, msg)) = st.shadow.scrub(&st.values) {
                detection = Some((Detector::MemoryScrub, msg, Some(region)));
            }
        }
        if detection.is_none() && out.epochs > cfg.max_epochs {
            detection = Some((
                Detector::ConvergenceBudget,
                format!(
                    "convergence watchdog: {} epochs executed without reaching a \
                     fixed point (budget {})",
                    out.epochs, cfg.max_epochs
                ),
                None,
            ));
        }

        match detection {
            None => {
                if verify_now && !converged {
                    // Clean verified epoch: checkpoint it.
                    ckpt = Checkpoint {
                        epoch: logical + 1,
                        values: st.values.clone(),
                        queue: st.queue_snapshot(),
                        totals: st.totals,
                        shadow: st.shadow.clone(),
                    };
                    out.checkpoints += 1;
                    let words = (n + 2 * ckpt.queue.len()) as u64;
                    out.checkpoint_words += words;
                    out.checkpoint_bytes += checkpoint_bytes(words as usize);
                }
                if converged {
                    break 'run;
                }
                logical += 1;
            }
            Some((detector, message, region)) => {
                let latency = inj
                    .last_inject
                    .map_or(0, |t| out.epochs.saturating_sub(1).saturating_sub(t));
                out.detections.push(Detection {
                    epoch: out.epochs - 1,
                    attempt,
                    detector,
                    latency_epochs: latency,
                    message: message.clone(),
                });
                if let Some(r) = region {
                    let hits = quarantine_hits.entry(r).or_insert(0);
                    *hits += 1;
                    if *hits >= cfg.quarantine_threshold && !out.quarantined.contains(&r) {
                        out.quarantined.push(r);
                    }
                }
                let stuck = detector == Detector::ConvergenceBudget;
                if !stuck && out.rollbacks < cfg.max_retries {
                    // Rollback-and-retry under backoff: verify (and
                    // checkpoint) more often on each successive attempt.
                    out.wasted_events += st.totals.processed - ckpt.totals.processed;
                    st.restore(&ckpt);
                    inj.delay.clear();
                    logical = ckpt.epoch;
                    out.rollbacks += 1;
                    attempt += 1;
                    verify_every = (verify_every / 2).max(1);
                } else if cfg.degrade {
                    // Retries exhausted (or retrying is pointless): hand
                    // the last good checkpoint to the golden engine.
                    out.wasted_events += st.totals.processed - ckpt.totals.processed;
                    let mut values = ckpt.values.clone();
                    let seeds: Vec<(VertexId, A::Delta)> = ckpt
                        .queue
                        .iter()
                        .map(|&(v, d)| (VertexId::new(v), d))
                        .collect();
                    let golden = run_sequential_seeded(algo, graph, &mut values, &seeds);
                    out.degraded = true;
                    out.events_generated = ckpt.totals.generated + golden.events_generated;
                    out.events_processed = ckpt.totals.processed + golden.events_processed;
                    out.events_coalesced =
                        ckpt.totals.coalesced + (golden.events_generated - golden.events_processed);
                    out.values = golden.values;
                    return out;
                } else {
                    out.unrecovered = Some(message);
                    break 'run;
                }
            }
        }
    }

    out.events_generated = st.totals.generated;
    out.events_processed = st.totals.processed;
    out.events_coalesced = st.totals.coalesced;
    out.values = st.values.iter().map(|&v| algo.value_to_f64(v)).collect();
    out
}
