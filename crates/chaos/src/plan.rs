//! The fault taxonomy and deterministic fault plans.

use gp_mem::integrity::mix64;

/// Every injectable fault kind, spanning the execution stack.
///
/// The first four are *event-layer* faults injected by the chaos executor
/// ([`run_chaos`](crate::run_chaos)); [`FaultKind::BitFlip`] is a
/// *memory-layer* fault at the vertex-property store; the last three live
/// in specific backends (shard-parallel exchange, turbo scheduling pool,
/// and the legacy merge-order skew checked differentially by `gp-verify`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A generated event vanishes before delivery.
    DropEvent,
    /// A generated event is delivered twice.
    DuplicateEvent,
    /// A generated event is held back and redelivered epochs later
    /// (queue reorder across an epoch window).
    DelayEvent,
    /// A single-bit upset in the vertex-property memory, bypassing the
    /// apply path (see [`gp_mem::integrity`]).
    BitFlip,
    /// One shard's egress stalls for a window of epoch barriers in the
    /// shard-parallel engine.
    ShardStall,
    /// Stale-tag corruption in the turbo scheduling pool
    /// ([`gp_turbo::StaleFault`]).
    WheelStale,
    /// The legacy injected fault: a merge-order skew that perturbs one
    /// vertex value of the parallel engine's output, caught by the
    /// differential oracle.
    MergeSkew,
}

impl FaultKind {
    /// Every fault kind, in campaign sweep order.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::DropEvent,
        FaultKind::DuplicateEvent,
        FaultKind::DelayEvent,
        FaultKind::BitFlip,
        FaultKind::ShardStall,
        FaultKind::WheelStale,
        FaultKind::MergeSkew,
    ];

    /// The canonical command-line spelling.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::DropEvent => "drop-event",
            FaultKind::DuplicateEvent => "duplicate-event",
            FaultKind::DelayEvent => "delay-event",
            FaultKind::BitFlip => "bit-flip",
            FaultKind::ShardStall => "shard-stall",
            FaultKind::WheelStale => "wheel-stale",
            FaultKind::MergeSkew => "merge-order",
        }
    }

    /// Parses a command-line spelling; inverse of [`FaultKind::label`].
    #[must_use]
    pub fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.label() == s)
    }

    /// All canonical spellings, for usage/error text.
    #[must_use]
    pub fn labels() -> Vec<&'static str> {
        FaultKind::ALL.iter().map(|k| k.label()).collect()
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A deterministic fault plan: what to inject, where (seed-derived), and
/// how persistently.
///
/// All trigger parameters — which event index to drop/duplicate/delay,
/// which memory word to flip, which epoch to fire in — are derived from
/// `seed` and the run's dimensions, never from host state, so a plan
/// replays bit-identically. `repeats` gives the fault transient-vs-
/// persistent semantics under recovery: the injector fires at most
/// `repeats` times *across rollback retries*, so a transient fault
/// (`repeats` below the retry budget) is cured by rollback-and-retry
/// while a persistent one forces quarantine or degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The fault to inject.
    pub kind: FaultKind,
    /// Derives every trigger parameter.
    pub seed: u64,
    /// Times the fault fires before going quiet (`u32::MAX` ≈ stuck-at).
    pub repeats: u32,
}

impl FaultPlan {
    /// A transient plan: fires once, then never again.
    #[must_use]
    pub fn transient(kind: FaultKind, seed: u64) -> FaultPlan {
        FaultPlan {
            kind,
            seed,
            repeats: 1,
        }
    }

    /// A persistent plan: re-fires on every retry (stuck-at fault).
    #[must_use]
    pub fn persistent(kind: FaultKind, seed: u64) -> FaultPlan {
        FaultPlan {
            kind,
            seed,
            repeats: u32::MAX,
        }
    }

    /// The global deposit index (seeds included) the event-layer faults
    /// trigger on, kept small so the fault lands inside even modest runs.
    /// Always ≥ 1: index 0 is the first cold-start seed, which replays
    /// from the initial checkpoint after a rollback without re-entering
    /// the injection layer — a persistent fault pinned there could never
    /// re-fire, collapsing the transient/persistent distinction.
    #[must_use]
    pub fn trigger_index(&self) -> u64 {
        1 + mix64(self.seed ^ 0xD10F) % 23
    }

    /// Epochs a delayed event is held back (≥ 1).
    #[must_use]
    pub fn delay_epochs(&self) -> u64 {
        1 + mix64(self.seed ^ 0xDE1A) % 3
    }

    /// The epoch index a bit-flip fires in, kept small for the same
    /// reason as [`FaultPlan::trigger_index`].
    #[must_use]
    pub fn flip_epoch(&self) -> u64 {
        mix64(self.seed ^ 0xF11F) % 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_kind() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(FaultKind::parse("nope"), None);
        assert_eq!(FaultKind::parse(""), None);
        // Legacy spelling survives.
        assert_eq!(FaultKind::parse("merge-order"), Some(FaultKind::MergeSkew));
    }

    #[test]
    fn labels_cover_all_kinds_without_duplicates() {
        let labels = FaultKind::labels();
        assert_eq!(labels.len(), FaultKind::ALL.len());
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());
    }

    #[test]
    fn derived_triggers_are_deterministic() {
        let a = FaultPlan::transient(FaultKind::DropEvent, 99);
        let b = FaultPlan::transient(FaultKind::DropEvent, 99);
        assert_eq!(a.trigger_index(), b.trigger_index());
        assert_eq!(a.delay_epochs(), b.delay_epochs());
        assert_eq!(a.flip_epoch(), b.flip_epoch());
        assert!(a.delay_epochs() >= 1);
        assert!(a.trigger_index() >= 1);
    }
}
