//! The chaos campaign: every fault kind × backend, detect → recover →
//! verify against a fault-free reference.
//!
//! [`run_campaign`] is fully determined by its seed: graphs, fault plans,
//! and every recorded metric are derived from it, and no wall-clock data
//! enters the report — two runs with the same seed render byte-identical
//! logs, which CI exploits with a double-run diff.

use gp_algorithms::engine::run_sequential;
use gp_algorithms::{
    max_abs_diff, Adsorption, AdsorptionParams, Bfs, ConnectedComponents, DeltaAlgorithm,
    PageRankDelta, Sssp, Sswp,
};
use gp_graph::generators::{erdos_renyi, WeightMode};
use gp_graph::{CsrGraph, VertexId};
use gp_mem::integrity::{mix64, Storable};
use gp_turbo::{run_turbo, StaleFault, TurboConfig};
use graphpulse_core::{AcceleratorConfig, GraphPulse, ParallelChaos, ParallelConfig};

use crate::engine::{run_chaos, ChaosConfig};
use crate::guard::{run_parallel_guarded, run_turbo_guarded};
use crate::plan::{FaultKind, FaultPlan};

/// One campaign scenario's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRecord {
    /// Injected fault kind.
    pub fault: FaultKind,
    /// Algorithm label (`pr`, `ads`, `sssp`, `bfs`, `cc`, `sswp`).
    pub algo: &'static str,
    /// `transient` (fires once) or `persistent` (re-fires every retry).
    pub mode: &'static str,
    /// Backend the fault was injected into.
    pub backend: &'static str,
    /// Watchdog firings observed.
    pub detected: u32,
    /// Label of the first detector that fired (empty when none).
    pub detector: String,
    /// Epochs between injection and first detection.
    pub latency_epochs: u64,
    /// How the run recovered: `rollback`, `quarantine`, `retry`,
    /// `degrade`, or `recompute` (differential kinds).
    pub recovery: &'static str,
    /// Rollbacks performed (chaos-executor scenarios).
    pub rollbacks: u32,
    /// Events whose processing was discarded by recovery.
    pub wasted_events: u64,
    /// Checkpoint traffic in line-rounded bytes.
    pub checkpoint_bytes: u64,
    /// Max |recovered − reference| over all vertices.
    pub max_diff: f64,
    /// Whether the recovered result matched the fault-free reference
    /// within the algorithm's comparison tolerance.
    pub result_ok: bool,
}

/// Fault-free checkpointing overhead for one algorithm: the chaos
/// executor with detection + checkpointing enabled versus the plain
/// golden engine.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRecord {
    /// Algorithm label.
    pub algo: &'static str,
    /// Events processed (identical to the golden engine by construction).
    pub events_processed: u64,
    /// Epochs executed.
    pub epochs: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Words copied into checkpoints.
    pub checkpoint_words: u64,
    /// Line-rounded checkpoint traffic in bytes.
    pub checkpoint_bytes: u64,
    /// Whether the fault-free chaos run was bit-exact vs the golden run.
    pub bitexact: bool,
}

/// Everything one campaign run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The seed that determined the whole campaign.
    pub seed: u64,
    /// One record per (fault kind, algorithm, mode) scenario.
    pub records: Vec<CampaignRecord>,
    /// Fault-free overhead per algorithm.
    pub overhead: Vec<OverheadRecord>,
}

impl CampaignReport {
    /// Violated campaign expectations (empty = the campaign passed):
    /// every scenario must detect its fault in-engine and recover to the
    /// fault-free reference, and fault-free runs must be bit-exact.
    #[must_use]
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for r in &self.records {
            if r.detected == 0 {
                out.push(format!(
                    "{}/{}/{}: fault was never detected",
                    r.fault, r.algo, r.mode
                ));
            }
            if !r.result_ok {
                out.push(format!(
                    "{}/{}/{}: recovered result diverged from the fault-free \
                     reference (max diff {:e})",
                    r.fault, r.algo, r.mode, r.max_diff
                ));
            }
        }
        for o in &self.overhead {
            if !o.bitexact {
                out.push(format!(
                    "fault-free chaos run diverged from the golden engine on {}",
                    o.algo
                ));
            }
        }
        out
    }

    /// Deterministic text rendering (byte-identical for equal seeds).
    #[must_use]
    pub fn render_log(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("chaos campaign seed={}\n", self.seed);
        for o in &self.overhead {
            let _ = writeln!(
                s,
                "overhead algo={} events={} epochs={} checkpoints={} words={} bytes={} bitexact={}",
                o.algo,
                o.events_processed,
                o.epochs,
                o.checkpoints,
                o.checkpoint_words,
                o.checkpoint_bytes,
                o.bitexact
            );
        }
        for r in &self.records {
            let _ = writeln!(
                s,
                "fault={} algo={} mode={} backend={} detected={} detector={} \
                 latency={} recovery={} rollbacks={} wasted={} ckpt_bytes={} \
                 max_diff={:e} ok={}",
                r.fault,
                r.algo,
                r.mode,
                r.backend,
                r.detected,
                r.detector,
                r.latency_epochs,
                r.recovery,
                r.rollbacks,
                r.wasted_events,
                r.checkpoint_bytes,
                r.max_diff,
                r.result_ok
            );
        }
        let fails = self.failures();
        for f in &fails {
            let _ = writeln!(s, "FAIL {f}");
        }
        let _ = writeln!(
            s,
            "campaign: {} scenarios, {} failures",
            self.records.len(),
            fails.len()
        );
        s
    }
}

/// The campaign's accelerator configuration: the small test machine with
/// two forced shards so stall injection always has a cross-shard exchange
/// to disturb.
fn campaign_machine() -> GraphPulse {
    GraphPulse::new(AcceleratorConfig {
        parallel: ParallelConfig {
            workers: 2,
            epoch_cycles: 128,
            shards: 2,
        },
        ..AcceleratorConfig::small_test()
    })
}

/// Runs the event/memory-layer scenarios plus the backend-specific ones
/// for a single algorithm, appending records.
fn algo_scenarios<A>(
    algo: &A,
    name: &'static str,
    graph: &CsrGraph,
    seed: u64,
    records: &mut Vec<CampaignRecord>,
    overhead: &mut Vec<OverheadRecord>,
) where
    A: DeltaAlgorithm,
    A::Value: Storable,
{
    let tol = algo.comparison_tolerance();
    let reference = run_sequential(algo, graph);

    // Fault-free overhead: checkpointing + detection enabled, no fault.
    let clean_cfg = ChaosConfig {
        epoch_events: 16,
        ..ChaosConfig::default()
    };
    let clean = run_chaos(algo, graph, None, &clean_cfg);
    overhead.push(OverheadRecord {
        algo: name,
        events_processed: clean.events_processed,
        epochs: clean.epochs,
        checkpoints: clean.checkpoints,
        checkpoint_words: clean.checkpoint_words,
        checkpoint_bytes: clean.checkpoint_bytes,
        bitexact: clean.values == reference.values && clean.detections.is_empty(),
    });

    // Event-layer faults, transient: cured by rollback-and-retry.
    for kind in [
        FaultKind::DropEvent,
        FaultKind::DuplicateEvent,
        FaultKind::DelayEvent,
    ] {
        let plan = FaultPlan::transient(kind, seed ^ mix64(kind.label().len() as u64));
        let out = run_chaos(algo, graph, Some(plan), &clean_cfg);
        let diff = max_abs_diff(&out.values, &reference.values);
        records.push(CampaignRecord {
            fault: kind,
            algo: name,
            mode: "transient",
            backend: "chaos-exec",
            detected: out.detections.len() as u32,
            detector: out
                .detections
                .first()
                .map_or(String::new(), |d| d.detector.label().to_string()),
            latency_epochs: out.detections.first().map_or(0, |d| d.latency_epochs),
            recovery: if out.degraded { "degrade" } else { "rollback" },
            rollbacks: out.rollbacks,
            wasted_events: out.wasted_events,
            checkpoint_bytes: out.checkpoint_bytes,
            max_diff: diff,
            result_ok: out.unrecovered.is_none() && diff <= tol,
        });
    }

    // Memory-layer fault, persistent (stuck-at): detected by the scrub,
    // localized, and cured by poisoned-region quarantine.
    let flip_plan = FaultPlan::persistent(FaultKind::BitFlip, seed ^ 0xB17);
    let flip_cfg = ChaosConfig {
        epoch_events: 16,
        verify_every: 2, // nonzero detection latency is part of the story
        ..ChaosConfig::default()
    };
    let out = run_chaos(algo, graph, Some(flip_plan), &flip_cfg);
    let diff = max_abs_diff(&out.values, &reference.values);
    records.push(CampaignRecord {
        fault: FaultKind::BitFlip,
        algo: name,
        mode: "persistent",
        backend: "chaos-exec",
        detected: out.detections.len() as u32,
        detector: out
            .detections
            .first()
            .map_or(String::new(), |d| d.detector.label().to_string()),
        latency_epochs: out.detections.first().map_or(0, |d| d.latency_epochs),
        recovery: if out.degraded {
            "degrade"
        } else if out.quarantined.is_empty() {
            "rollback"
        } else {
            "quarantine"
        },
        rollbacks: out.rollbacks,
        wasted_events: out.wasted_events,
        checkpoint_bytes: out.checkpoint_bytes,
        max_diff: diff,
        result_ok: out.unrecovered.is_none() && diff <= tol,
    });

    // Shard stall, transient: caught by the epoch-budget watchdog,
    // recovered by retry.
    let gp = campaign_machine();
    let clean_parallel = gp
        .run_parallel(graph, algo)
        .expect("clean parallel run must succeed");
    let budget = clean_parallel.epochs + 8;
    let chaos = ParallelChaos {
        stall: Some((0, budget + 32)),
        epoch_budget: Some(budget),
    };
    match run_parallel_guarded(&gp, algo, graph, chaos, 1, 3) {
        Ok(out) => {
            let diff = max_abs_diff(&out.values, &reference.values);
            records.push(CampaignRecord {
                fault: FaultKind::ShardStall,
                algo: name,
                mode: "transient",
                backend: "parallel",
                detected: out.detections.len() as u32,
                detector: if out.detections.is_empty() {
                    String::new()
                } else {
                    "epoch-budget".to_string()
                },
                latency_epochs: 0,
                recovery: if out.degraded { "degrade" } else { "retry" },
                rollbacks: 0,
                wasted_events: 0,
                checkpoint_bytes: 0,
                max_diff: diff,
                result_ok: diff <= tol,
            });
        }
        Err(e) => panic!("parallel scenario failed to run: {e}"),
    }

    // Wheel stale-tag corruption, transient: caught by the turbo engine's
    // lost-event check, recovered by retry. The victim (round, pick) is
    // searched deterministically so the corruption actually orphans a
    // delta (early-run upsets tend to self-heal — that is part of the
    // model; the search sweeps late-to-early).
    let tcfg = TurboConfig::default();
    let fault = find_orphaning_fault(algo, graph, &tcfg);
    match fault {
        Some(fault) => {
            let out = run_turbo_guarded(algo, graph, &tcfg, Some(fault), 1, 3);
            let diff = max_abs_diff(&out.values, &reference.values);
            records.push(CampaignRecord {
                fault: FaultKind::WheelStale,
                algo: name,
                mode: "transient",
                backend: "turbo",
                detected: out.detections.len() as u32,
                detector: if out.detections.is_empty() {
                    String::new()
                } else {
                    "lost-event".to_string()
                },
                latency_epochs: 0,
                recovery: if out.degraded { "degrade" } else { "retry" },
                rollbacks: 0,
                wasted_events: 0,
                checkpoint_bytes: 0,
                max_diff: diff,
                result_ok: diff <= tol,
            });
        }
        None => records.push(CampaignRecord {
            fault: FaultKind::WheelStale,
            algo: name,
            mode: "transient",
            backend: "turbo",
            detected: 0,
            detector: String::new(),
            latency_epochs: 0,
            recovery: "none",
            rollbacks: 0,
            wasted_events: 0,
            checkpoint_bytes: 0,
            max_diff: 0.0,
            result_ok: false,
        }),
    }

    // Merge-order skew: the legacy fault. It corrupts a backend's output
    // value, which no single-engine watchdog can see — detection is
    // differential (cross-backend comparison) and recovery is a golden
    // recompute. This is the one kind detected outside the engine, kept
    // in the campaign so the taxonomy stays complete. The victim is the
    // first vertex whose value an additive skew can actually change (the
    // root's value may be infinite — SSWP capacity — where `+1.0` is
    // absorbed).
    let mut skewed = clean_parallel.values.clone();
    for v in skewed.iter_mut() {
        let bent = if v.is_finite() { *v + 1.0 } else { 0.0 };
        if bent != *v {
            *v = bent;
            break;
        }
    }
    let skew_diff = max_abs_diff(&skewed, &reference.values);
    let detected = skew_diff > tol;
    let recomputed = run_sequential(algo, graph);
    let diff = max_abs_diff(&recomputed.values, &reference.values);
    records.push(CampaignRecord {
        fault: FaultKind::MergeSkew,
        algo: name,
        mode: "transient",
        backend: "parallel",
        detected: u32::from(detected),
        detector: "differential".to_string(),
        latency_epochs: 0,
        recovery: "recompute",
        rollbacks: 0,
        wasted_events: 0,
        checkpoint_bytes: 0,
        max_diff: diff,
        result_ok: detected && diff <= tol,
    });
}

/// Deterministically searches for a [`StaleFault`] that actually orphans
/// a delta on this (algorithm, graph) pair: sweeps injection rounds from
/// late to early (late upsets rarely get the healing redeposit) and victim
/// picks `0..16` per round, returning the first that trips
/// [`check_lost_events`](gp_turbo::TurboOutcome::check_lost_events).
fn find_orphaning_fault<A, G>(algo: &A, graph: &G, tcfg: &TurboConfig) -> Option<StaleFault>
where
    A: DeltaAlgorithm,
    G: gp_graph::GraphView + Sync,
{
    let clean_rounds = run_turbo(algo, graph, tcfg).rounds;
    let mut rounds: Vec<u64> = (1..=12)
        .map(|back| clean_rounds.saturating_sub(back))
        .chain([clean_rounds / 2, clean_rounds / 4, 2])
        .map(|r| r.max(1))
        .collect();
    rounds.dedup();
    for after_rounds in rounds {
        for pick in 0..16u64 {
            let fault = StaleFault { after_rounds, pick };
            let probe = TurboConfig {
                fault: Some(fault),
                ..*tcfg
            };
            if run_turbo(algo, graph, &probe).check_lost_events().is_err() {
                return Some(fault);
            }
        }
    }
    None
}

/// Persistent-fault degradation scenarios, run once (on SSSP) to pin the
/// exhausted-retries path for every backend family.
fn degradation_scenarios(graph: &CsrGraph, seed: u64, records: &mut Vec<CampaignRecord>) {
    let algo = Sssp::new(VertexId::new(0));
    let reference = run_sequential(&algo, graph);
    let cfg = ChaosConfig {
        epoch_events: 16,
        max_retries: 2,
        ..ChaosConfig::default()
    };

    // Persistent drop: re-fires on every replay, exhausts the rollback
    // budget, degrades to the golden engine from the last checkpoint.
    let plan = FaultPlan::persistent(FaultKind::DropEvent, seed ^ 0xD0D);
    let out = run_chaos(&algo, graph, Some(plan), &cfg);
    let diff = max_abs_diff(&out.values, &reference.values);
    records.push(CampaignRecord {
        fault: FaultKind::DropEvent,
        algo: "sssp",
        mode: "persistent",
        backend: "chaos-exec",
        detected: out.detections.len() as u32,
        detector: out
            .detections
            .first()
            .map_or(String::new(), |d| d.detector.label().to_string()),
        latency_epochs: out.detections.first().map_or(0, |d| d.latency_epochs),
        recovery: if out.degraded { "degrade" } else { "rollback" },
        rollbacks: out.rollbacks,
        wasted_events: out.wasted_events,
        checkpoint_bytes: out.checkpoint_bytes,
        max_diff: diff,
        result_ok: out.unrecovered.is_none() && diff <= 0.0,
    });

    // Persistent shard stall: every retry trips the watchdog, the guard
    // degrades to the golden engine.
    let gp = campaign_machine();
    let clean_parallel = gp
        .run_parallel(graph, &algo)
        .expect("clean parallel run must succeed");
    let budget = clean_parallel.epochs + 8;
    let chaos = ParallelChaos {
        stall: Some((0, budget + 32)),
        epoch_budget: Some(budget),
    };
    let out = run_parallel_guarded(&gp, &algo, graph, chaos, u32::MAX, 2)
        .expect("guarded parallel must not hit config errors");
    let diff = max_abs_diff(&out.values, &reference.values);
    records.push(CampaignRecord {
        fault: FaultKind::ShardStall,
        algo: "sssp",
        mode: "persistent",
        backend: "parallel",
        detected: out.detections.len() as u32,
        detector: "epoch-budget".to_string(),
        latency_epochs: 0,
        recovery: if out.degraded { "degrade" } else { "retry" },
        rollbacks: 0,
        wasted_events: 0,
        checkpoint_bytes: 0,
        max_diff: diff,
        result_ok: out.degraded && diff <= 0.0,
    });

    // Persistent wheel corruption: every turbo attempt loses a delta,
    // the guard degrades to the golden engine.
    let tcfg = TurboConfig::default();
    let fault = find_orphaning_fault(&algo, graph, &tcfg);
    if let Some(fault) = fault {
        let out = run_turbo_guarded(&algo, graph, &tcfg, Some(fault), u32::MAX, 2);
        let diff = max_abs_diff(&out.values, &reference.values);
        records.push(CampaignRecord {
            fault: FaultKind::WheelStale,
            algo: "sssp",
            mode: "persistent",
            backend: "turbo",
            detected: out.detections.len() as u32,
            detector: "lost-event".to_string(),
            latency_epochs: 0,
            recovery: if out.degraded { "degrade" } else { "retry" },
            rollbacks: 0,
            wasted_events: 0,
            checkpoint_bytes: 0,
            max_diff: diff,
            result_ok: out.degraded && diff <= 0.0,
        });
    }
}

/// Runs the full campaign: every fault kind × all six algorithms
/// (transient scenarios) plus persistent degradation/quarantine
/// scenarios, all deterministically derived from `seed`.
#[must_use]
pub fn run_campaign(seed: u64) -> CampaignReport {
    let n = 96;
    let graph = erdos_renyi(n, 420, WeightMode::Uniform(0.5, 4.0), mix64(seed));
    let ads_graph = gp_algorithms::normalize_inbound(&graph);
    let root = VertexId::new(0);

    let mut records = Vec::new();
    let mut overhead = Vec::new();
    algo_scenarios(
        &PageRankDelta::new(0.85, 1e-9),
        "pr",
        &graph,
        seed,
        &mut records,
        &mut overhead,
    );
    algo_scenarios(
        &Adsorption::new(AdsorptionParams::random(n, mix64(seed ^ 0xAD5)), 1e-9),
        "ads",
        &ads_graph,
        seed,
        &mut records,
        &mut overhead,
    );
    algo_scenarios(
        &Sssp::new(root),
        "sssp",
        &graph,
        seed,
        &mut records,
        &mut overhead,
    );
    algo_scenarios(
        &Bfs::new(root),
        "bfs",
        &graph,
        seed,
        &mut records,
        &mut overhead,
    );
    algo_scenarios(
        &ConnectedComponents::new(),
        "cc",
        &graph,
        seed,
        &mut records,
        &mut overhead,
    );
    algo_scenarios(
        &Sswp::new(root),
        "sswp",
        &graph,
        seed,
        &mut records,
        &mut overhead,
    );
    degradation_scenarios(&graph, seed, &mut records);

    CampaignReport {
        seed,
        records,
        overhead,
    }
}
