//! `gp-chaos`: the deterministic fault-injection plane.
//!
//! Real accelerators lose events to dropped flits, absorb duplicates from
//! retried NoC packets, see single-bit upsets in vertex-property SRAM, and
//! stall shards behind congested memory channels. This crate injects those
//! faults *deterministically* (every trigger is seed-derived), detects
//! them with cheap in-engine watchdogs, and recovers through epoch
//! checkpoints — the reliability story the performance-side crates assume.
//!
//! The pieces, bottom-up:
//!
//! * [`FaultKind`] / [`FaultPlan`] ([`plan`]) — the seven-kind fault
//!   taxonomy spanning the event layer, the memory layer, and the
//!   backend-specific machinery, with transient-vs-persistent semantics
//!   via [`FaultPlan::repeats`];
//! * [`run_chaos`] ([`engine`]) — a golden-semantics executor chopped
//!   into epochs, with per-epoch event-conservation checks, periodic
//!   [`gp_mem::integrity::ShadowChecksum`] scrubs, a convergence budget,
//!   checkpoint/rollback/quarantine recovery, and golden-engine
//!   degradation;
//! * [`run_turbo_guarded`] / [`run_parallel_guarded`] ([`guard`]) —
//!   retry-then-degrade wrappers around the fast backends' own watchdogs
//!   ([`gp_turbo::TurboOutcome::check_lost_events`] and the parallel
//!   engine's epoch-budget abort);
//! * [`run_campaign`] ([`campaign`]) — the full sweep: every fault kind ×
//!   all six algorithms, asserting detect → recover → match-the-fault-free
//!   reference, reported with detection latency and recovery overhead.
//!
//! The invariant the whole plane defends: **never silently wrong**. Every
//! injected fault is either healed by the engine's own semantics (and
//! provably lost nothing), detected and rolled back, or detected and
//! degraded to the golden engine — the one outcome that cannot happen is
//! a corrupted result presented as converged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod engine;
pub mod guard;
pub mod plan;

pub use campaign::{run_campaign, CampaignRecord, CampaignReport, OverheadRecord};
pub use engine::{run_chaos, ChaosConfig, ChaosOutcome, Detection, Detector};
pub use guard::{run_parallel_guarded, run_turbo_guarded, GuardedOutcome};
pub use plan::{FaultKind, FaultPlan};
