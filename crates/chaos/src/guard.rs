//! Guarded backend wrappers: run a fast backend under its in-engine
//! watchdog, retry on detection, and degrade to the golden engine when
//! retries are exhausted.
//!
//! These are the graceful-degradation half of the recovery story for the
//! backend-specific fault kinds: [`FaultKind::WheelStale`](crate::FaultKind)
//! is caught by the turbo engine's lost-event check and
//! [`FaultKind::ShardStall`](crate::FaultKind) by the parallel engine's
//! epoch-budget watchdog ([`RunError::EpochBudget`]). Both wrappers share
//! the transient-vs-persistent contract of [`FaultPlan::repeats`](crate::FaultPlan::repeats): the
//! injected fault re-arms on each retry until it has fired `repeats`
//! times, so a transient fault is cured by retrying and a persistent one
//! falls through to the golden engine — never returning a wrong result
//! silently, because a faulted attempt is only accepted if its watchdog
//! comes back clean, and a clean watchdog implies no event was lost.

use gp_algorithms::engine::run_sequential;
use gp_algorithms::DeltaAlgorithm;
use gp_graph::GraphView;
use gp_turbo::{run_turbo, StaleFault, TurboConfig};
use graphpulse_core::{GraphPulse, ParallelChaos, RunError};

/// Result of a guarded backend run.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedOutcome {
    /// Final vertex values (`f64` projection). From the guarded backend
    /// when an attempt passed its watchdog, from the golden engine when
    /// degraded.
    pub values: Vec<f64>,
    /// Watchdog diagnoses, one per failed attempt.
    pub detections: Vec<String>,
    /// Attempts executed on the guarded backend (successful one included;
    /// the golden fallback is not an attempt).
    pub attempts: u32,
    /// Whether the run fell back to the golden engine.
    pub degraded: bool,
}

/// Runs the turbo backend under the lost-event watchdog, injecting
/// `fault` for the first `repeats` attempts. Each faulted attempt is
/// checked with [`gp_turbo::TurboOutcome::check_lost_events`]; a failed
/// check discards the attempt and retries (the fault re-fires while it
/// has firings left). After `max_retries` failed attempts the run
/// degrades to [`run_sequential`].
pub fn run_turbo_guarded<A: DeltaAlgorithm, G: GraphView + Sync>(
    algo: &A,
    graph: &G,
    cfg: &TurboConfig,
    fault: Option<StaleFault>,
    repeats: u32,
    max_retries: u32,
) -> GuardedOutcome {
    let mut detections = Vec::new();
    let mut fired = 0u32;
    for attempt in 1..=max_retries.max(1) {
        let tcfg = TurboConfig {
            fault: fault.filter(|_| fired < repeats),
            ..*cfg
        };
        if tcfg.fault.is_some() {
            fired += 1;
        }
        let out = run_turbo(algo, graph, &tcfg);
        match out.check_lost_events() {
            Ok(()) => {
                return GuardedOutcome {
                    values: out.values,
                    detections,
                    attempts: attempt,
                    degraded: false,
                }
            }
            Err(msg) => detections.push(msg),
        }
    }
    let golden = run_sequential(algo, graph);
    GuardedOutcome {
        values: golden.values,
        detections,
        attempts: max_retries.max(1),
        degraded: true,
    }
}

/// Runs the shard-parallel backend under the epoch-budget convergence
/// watchdog, injecting the stall of `chaos` for the first `repeats`
/// attempts. A watchdog abort ([`RunError::EpochBudget`]) discards the
/// attempt and retries; after `max_retries` failed attempts the run
/// degrades to [`run_sequential`].
///
/// # Errors
///
/// Propagates non-watchdog errors ([`RunError::InvalidConfig`],
/// [`RunError::CycleLimit`]) unchanged — those are configuration
/// problems, not injected faults.
pub fn run_parallel_guarded<A, G>(
    gp: &GraphPulse,
    algo: &A,
    graph: &G,
    chaos: ParallelChaos,
    repeats: u32,
    max_retries: u32,
) -> Result<GuardedOutcome, RunError>
where
    A: DeltaAlgorithm,
    G: GraphView + Sync,
{
    let mut detections = Vec::new();
    let mut fired = 0u32;
    for attempt in 1..=max_retries.max(1) {
        let attempt_chaos = ParallelChaos {
            stall: chaos.stall.filter(|_| fired < repeats),
            epoch_budget: chaos.epoch_budget,
        };
        if attempt_chaos.stall.is_some() {
            fired += 1;
        }
        match gp.run_parallel_chaos(graph, algo, attempt_chaos) {
            Ok(out) => {
                return Ok(GuardedOutcome {
                    values: out.values,
                    detections,
                    attempts: attempt,
                    degraded: false,
                })
            }
            Err(RunError::EpochBudget(budget)) => {
                detections.push(RunError::EpochBudget(budget).to_string());
            }
            Err(other) => return Err(other),
        }
    }
    let golden = run_sequential(algo, graph);
    Ok(GuardedOutcome {
        values: golden.values,
        detections,
        attempts: max_retries.max(1),
        degraded: true,
    })
}
