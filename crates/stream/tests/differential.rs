//! Differential and property tests of the streaming-update subsystem.
//!
//! The invariant under test: after any stream of random insert/delete
//! batches, the incremental engine's state equals what a from-scratch run
//! on the mutated graph produces — for all five Table II algorithms, for
//! every backend, and (for the shard-parallel backend) bit-identically
//! across 1/2/4 workers.

use gp_algorithms::engine::run_sequential;
use gp_algorithms::{
    max_abs_diff, Bfs, ConnectedComponents, IncrementalAlgorithm, PageRankDelta, Sssp, Sswp,
};
use gp_graph::generators::{rmat, RmatConfig, WeightMode};
use gp_graph::{CsrGraph, VertexId};
use gp_stream::{Backend, IncrementalEngine, StreamConfig, UpdateStream};
use graphpulse_core::{AcceleratorConfig, QueueConfig};

const VERTICES: usize = 128;
const ROUNDS: usize = 4;
const BATCH: usize = 24;

/// PageRank re-converges along a different event order than a cold start,
/// so residuals below the local threshold differ; the monotone algorithms
/// reach the exact same fixpoint.
const PR_TOL: f64 = 1e-4;

fn base_graph(weights: WeightMode, seed: u64) -> CsrGraph {
    rmat(
        &RmatConfig::graph500(VERTICES, 8 * VERTICES).with_weights(weights),
        seed,
    )
}

/// A machine small enough that the test graph spans several shards.
fn sharded_config(workers: usize) -> AcceleratorConfig {
    let mut cfg = AcceleratorConfig::small_test();
    cfg.queue = QueueConfig {
        bins: 2,
        rows: 4,
        cols: 8,
    }; // 64 slots per shard
    cfg.input_buffer = 16;
    cfg.parallel.workers = workers;
    cfg.parallel.epoch_cycles = 64;
    cfg
}

/// Drives `engine` through a deterministic update stream, checking after
/// every batch that its values match a from-scratch golden run on the
/// materialized (overlay-free) graph.
fn check_against_scratch<A: IncrementalAlgorithm>(
    mut engine: IncrementalEngine<A>,
    weights: WeightMode,
    tol: f64,
    stream_seed: u64,
) {
    let mut stream = UpdateStream::new(VERTICES, 0.3, weights, stream_seed);
    for round in 0..ROUNDS {
        let batch = stream.next_batch(engine.graph(), BATCH);
        let report = engine.apply_batch(&batch).expect("backend run failed");
        assert!(
            report.inserts + report.deletes > 0,
            "round {round}: stream produced a fully-cancelling batch"
        );
        let scratch = run_sequential(engine.algo(), &engine.graph().to_csr());
        let diff = max_abs_diff(&engine.values(), &scratch.values);
        assert!(
            diff <= tol,
            "round {round}: incremental diverged from scratch by {diff:e}"
        );
    }
}

fn golden(compact: f64) -> StreamConfig {
    StreamConfig::golden(compact)
}

fn accelerator() -> StreamConfig {
    StreamConfig {
        backend: Backend::Accelerator(Box::new(AcceleratorConfig::small_test())),
        compact_fraction: 0.25,
    }
}

fn parallel(workers: usize) -> StreamConfig {
    StreamConfig {
        backend: Backend::Parallel(Box::new(sharded_config(workers))),
        compact_fraction: 0.25,
    }
}

// ---- golden backend: incremental == scratch, all five algorithms ----

#[test]
fn golden_pagerank_tracks_scratch() {
    let g = base_graph(WeightMode::Unweighted, 1);
    let (engine, _) =
        IncrementalEngine::new(PageRankDelta::new(0.85, 1e-9), g, golden(0.25)).unwrap();
    check_against_scratch(engine, WeightMode::Unweighted, PR_TOL, 100);
}

#[test]
fn golden_sssp_tracks_scratch() {
    let w = WeightMode::Uniform(1.0, 9.0);
    let (engine, _) =
        IncrementalEngine::new(Sssp::new(VertexId::new(0)), base_graph(w, 2), golden(0.25))
            .unwrap();
    check_against_scratch(engine, w, 0.0, 101);
}

#[test]
fn golden_bfs_tracks_scratch() {
    let g = base_graph(WeightMode::Unweighted, 3);
    let (engine, _) = IncrementalEngine::new(Bfs::new(VertexId::new(0)), g, golden(0.25)).unwrap();
    check_against_scratch(engine, WeightMode::Unweighted, 0.0, 102);
}

#[test]
fn golden_cc_tracks_scratch() {
    let g = base_graph(WeightMode::Unweighted, 4);
    let (engine, _) = IncrementalEngine::new(ConnectedComponents::new(), g, golden(0.25)).unwrap();
    check_against_scratch(engine, WeightMode::Unweighted, 0.0, 103);
}

#[test]
fn golden_sswp_tracks_scratch() {
    let w = WeightMode::Uniform(1.0, 9.0);
    let (engine, _) =
        IncrementalEngine::new(Sswp::new(VertexId::new(0)), base_graph(w, 5), golden(0.25))
            .unwrap();
    check_against_scratch(engine, w, 0.0, 104);
}

// ---- accelerator backend: same invariant through the timing model ----

#[test]
fn accelerator_backend_pagerank_tracks_scratch() {
    let g = base_graph(WeightMode::Unweighted, 6);
    let (engine, _) =
        IncrementalEngine::new(PageRankDelta::new(0.85, 1e-9), g, accelerator()).unwrap();
    check_against_scratch(engine, WeightMode::Unweighted, PR_TOL, 105);
}

#[test]
fn accelerator_backend_sssp_tracks_scratch() {
    let w = WeightMode::Uniform(1.0, 9.0);
    let (engine, _) =
        IncrementalEngine::new(Sssp::new(VertexId::new(0)), base_graph(w, 7), accelerator())
            .unwrap();
    check_against_scratch(engine, w, 0.0, 106);
}

#[test]
fn accelerator_backend_cc_tracks_scratch() {
    let g = base_graph(WeightMode::Unweighted, 8);
    let (engine, _) = IncrementalEngine::new(ConnectedComponents::new(), g, accelerator()).unwrap();
    check_against_scratch(engine, WeightMode::Unweighted, 0.0, 107);
}

// ---- parallel backend: bit-identical across 1/2/4 workers ----

/// Runs the same update stream through parallel-backend engines with 1, 2,
/// and 4 workers and asserts every batch report and every value bit agree.
fn check_worker_independence<A, F>(make: F, weights: WeightMode, stream_seed: u64)
where
    A: IncrementalAlgorithm,
    F: Fn() -> A,
{
    let mut engines: Vec<IncrementalEngine<A>> = [1usize, 2, 4]
        .iter()
        .map(|&w| {
            let g = base_graph(weights, 9);
            IncrementalEngine::new(make(), g, parallel(w))
                .expect("parallel run")
                .0
        })
        .collect();
    for round in 0..ROUNDS {
        // One shared stream: batches must be identical, so draw against
        // the first engine's graph (all graphs are identical by induction).
        let mut stream = UpdateStream::new(VERTICES, 0.3, weights, stream_seed + round as u64);
        let batch = stream.next_batch(engines[0].graph(), BATCH);
        let reports: Vec<_> = engines
            .iter_mut()
            .map(|e| e.apply_batch(&batch).expect("parallel run"))
            .collect();
        assert_eq!(
            reports[0], reports[1],
            "1 vs 2 workers diverged (round {round})"
        );
        assert_eq!(
            reports[0], reports[2],
            "1 vs 4 workers diverged (round {round})"
        );
        let bits: Vec<Vec<u64>> = engines
            .iter()
            .map(|e| e.values().iter().map(|v| v.to_bits()).collect())
            .collect();
        assert_eq!(
            bits[0], bits[1],
            "values differ 1 vs 2 workers (round {round})"
        );
        assert_eq!(
            bits[0], bits[2],
            "values differ 1 vs 4 workers (round {round})"
        );
    }
}

#[test]
fn parallel_seeded_pagerank_bit_identical_across_workers() {
    check_worker_independence(
        || PageRankDelta::new(0.85, 1e-9),
        WeightMode::Unweighted,
        200,
    );
}

#[test]
fn parallel_seeded_sssp_bit_identical_across_workers() {
    check_worker_independence(
        || Sssp::new(VertexId::new(0)),
        WeightMode::Uniform(1.0, 9.0),
        201,
    );
}

#[test]
fn parallel_seeded_bfs_bit_identical_across_workers() {
    check_worker_independence(|| Bfs::new(VertexId::new(0)), WeightMode::Unweighted, 202);
}

#[test]
fn parallel_seeded_cc_bit_identical_across_workers() {
    check_worker_independence(ConnectedComponents::new, WeightMode::Unweighted, 203);
}

#[test]
fn parallel_seeded_sswp_bit_identical_across_workers() {
    check_worker_independence(
        || Sswp::new(VertexId::new(0)),
        WeightMode::Uniform(1.0, 9.0),
        204,
    );
}

#[test]
fn parallel_backend_sssp_tracks_scratch() {
    let w = WeightMode::Uniform(1.0, 9.0);
    let (engine, _) =
        IncrementalEngine::new(Sssp::new(VertexId::new(0)), base_graph(w, 10), parallel(2))
            .unwrap();
    check_against_scratch(engine, w, 0.0, 205);
}

// ---- compaction invariance ----

#[test]
fn compaction_policy_does_not_change_results() {
    let w = WeightMode::Uniform(1.0, 9.0);
    let mk = |compact: f64| {
        IncrementalEngine::new(
            Sssp::new(VertexId::new(0)),
            base_graph(w, 11),
            golden(compact),
        )
        .unwrap()
        .0
    };
    let mut eager = mk(0.0); // compacts after every mutating batch
    let mut never = mk(f64::INFINITY);
    let mut stream_a = UpdateStream::new(VERTICES, 0.3, w, 300);
    let mut stream_b = UpdateStream::new(VERTICES, 0.3, w, 300);
    for round in 0..ROUNDS {
        let ba = stream_a.next_batch(eager.graph(), BATCH);
        let bb = stream_b.next_batch(never.graph(), BATCH);
        assert_eq!(ba, bb, "streams must agree (round {round})");
        let ra = eager.apply_batch(&ba).expect("golden");
        let rb = never.apply_batch(&bb).expect("golden");
        assert!(ra.compacted, "eager engine must compact (round {round})");
        assert!(!rb.compacted, "lazy engine must never compact");
        assert_eq!(
            eager.values(),
            never.values(),
            "compaction changed results (round {round})"
        );
    }
    use gp_graph::GraphView;
    assert_eq!(eager.graph().num_edges(), never.graph().num_edges());
    assert_eq!(eager.graph().pool_edge_slots(), 0);
}
