//! Mid-stream compaction must be invisible: an incremental engine that
//! compacts after every batch (`compact_fraction = 0.0`) and one that
//! never compacts (`f64::INFINITY`) must produce identical values and an
//! identical materialized graph after every batch — compaction changes the
//! overlay's representation, never its meaning.

use gp_algorithms::{Bfs, ConnectedComponents, IncrementalAlgorithm, Sssp};
use gp_graph::generators::{rmat, RmatConfig, WeightMode};
use gp_graph::VertexId;
use gp_stream::{IncrementalEngine, StreamConfig, UpdateStream};

const VERTICES: usize = 96;
const ROUNDS: usize = 5;
const BATCH: usize = 32;

fn check_compaction_equivalence<A: IncrementalAlgorithm + Clone>(
    algo: &A,
    weights: WeightMode,
    seed: u64,
) {
    let base = rmat(
        &RmatConfig::graph500(VERTICES, 6 * VERTICES).with_weights(weights),
        seed,
    );
    let (mut eager, _) =
        IncrementalEngine::new(algo.clone(), base.clone(), StreamConfig::golden(0.0))
            .expect("eager engine");
    let (mut lazy, _) =
        IncrementalEngine::new(algo.clone(), base, StreamConfig::golden(f64::INFINITY))
            .expect("lazy engine");

    let mut stream = UpdateStream::new(VERTICES, 0.4, weights, seed ^ 0x5EED);
    let mut eager_compacted = 0usize;
    for round in 0..ROUNDS {
        // One shared batch: the engines must see identical updates.
        let batch = stream.next_batch(eager.graph(), BATCH);
        let re = eager.apply_batch(&batch).expect("eager batch");
        let rl = lazy.apply_batch(&batch).expect("lazy batch");
        eager_compacted += usize::from(re.compacted);
        assert!(
            !rl.compacted,
            "round {round}: lazy engine must never compact"
        );
        assert_eq!(
            eager.values(),
            lazy.values(),
            "round {round}: values diverged across compaction policies"
        );
        assert_eq!(
            eager.graph().to_csr(),
            lazy.graph().to_csr(),
            "round {round}: materialized graphs diverged"
        );
    }
    assert!(
        eager_compacted > 0,
        "stream never triggered a compaction — the test exercised nothing"
    );
    // The eager engine folded everything back; the lazy one still carries
    // its patch pool. Same meaning, different representation.
    assert_eq!(eager.graph().pool_edge_slots(), 0);
    assert!(lazy.graph().pool_edge_slots() > 0);
}

#[test]
fn sssp_is_invariant_to_compaction_policy() {
    check_compaction_equivalence(
        &Sssp::new(VertexId::new(0)),
        WeightMode::Uniform(1.0, 6.0),
        0xA1,
    );
}

#[test]
fn bfs_is_invariant_to_compaction_policy() {
    check_compaction_equivalence(&Bfs::new(VertexId::new(0)), WeightMode::Unweighted, 0xA2);
}

#[test]
fn cc_is_invariant_to_compaction_policy() {
    check_compaction_equivalence(&ConnectedComponents::new(), WeightMode::Unweighted, 0xA3);
}
