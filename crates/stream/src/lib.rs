//! # gp-stream — streaming graph updates with incremental recomputation
//!
//! GraphPulse's event-driven model is naturally incremental: converged
//! state plus a perturbation re-converges by processing only the events
//! the perturbation triggers. This crate turns that observation into a
//! streaming-update subsystem:
//!
//! * [`OverlayGraph`] (from `gp-graph`) holds the mutable delta overlay on
//!   the static CSR — edge insertions and deletions land in per-vertex
//!   patched adjacency lists, with threshold-triggered compaction back
//!   into a fresh CSR;
//! * [`gp_algorithms::incremental`] computes the seed plan — the dirty
//!   vertex set and the correction/re-relaxation events — from an applied
//!   update batch and previously converged state;
//! * [`IncrementalEngine`] (this crate) drives the loop: apply a batch,
//!   seed only the dirty vertices, and re-converge through a chosen
//!   [`Backend`] — the golden sequential engine, the cycle-level
//!   accelerator model, or the shard-parallel engine (which keeps its
//!   bit-identical-across-worker-counts guarantee in seeded mode).
//!
//! [`UpdateStream`] generates deterministic R-MAT-skewed insert/delete
//! streams for benchmarking; the `streaming` binary in `gp-bench` reports
//! events-per-update and incremental-vs-full-recompute speedups.
//!
//! # Examples
//!
//! ```
//! use gp_algorithms::PageRankDelta;
//! use gp_graph::generators::{erdos_renyi, WeightMode};
//! use gp_graph::{EdgeUpdate, VertexId};
//! use gp_stream::{IncrementalEngine, StreamConfig};
//!
//! let g = erdos_renyi(64, 256, WeightMode::Unweighted, 7);
//! let algo = PageRankDelta::new(0.85, 1e-7);
//! let (mut engine, _) =
//!     IncrementalEngine::new(algo, g, StreamConfig::default()).unwrap();
//! let report = engine
//!     .apply_batch(&[EdgeUpdate::Insert {
//!         src: VertexId::new(0),
//!         dst: VertexId::new(9),
//!         weight: 1.0,
//!     }])
//!     .unwrap();
//! assert!(report.dirty_vertices >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gp_algorithms::engine::{initial_state, run_sequential_seeded};
use gp_algorithms::{incremental_seeds, IncrementalAlgorithm};
use gp_graph::generators::WeightMode;
use gp_graph::rng::{Rng, StdRng};
use gp_graph::{CsrGraph, EdgeUpdate, GraphView, OverlayGraph, VertexId};
use graphpulse_core::{AcceleratorConfig, GraphPulse, RunError};

/// Which execution engine re-converges the dirty frontier after a batch.
#[derive(Debug, Clone)]
pub enum Backend {
    /// The sequential golden engine
    /// ([`run_sequential_seeded`]) — un-timed, used as the
    /// semantic yardstick.
    Golden,
    /// The cycle-level accelerator model in seeded mode
    /// ([`GraphPulse::run_seeded`]). Boxed: the config is large relative
    /// to the other variants.
    Accelerator(Box<AcceleratorConfig>),
    /// The shard-parallel engine in seeded mode
    /// ([`GraphPulse::run_parallel_seeded`]); results stay bit-identical
    /// across worker counts.
    Parallel(Box<AcceleratorConfig>),
    /// The speed-first turbo backend in seeded mode
    /// ([`gp_turbo::run_turbo_seeded`]) — the only engine fast enough to
    /// sit behind interactive traffic, which is what `gp-serve` does.
    /// Bit-exact vs [`Backend::Golden`] for the monotone algorithms,
    /// within `comparison_tolerance` for PageRank-delta.
    Turbo(gp_turbo::TurboConfig),
}

/// Configuration of an [`IncrementalEngine`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Execution backend for (re-)convergence runs.
    pub backend: Backend,
    /// Compact the overlay back into a fresh CSR whenever the patch pool
    /// exceeds this fraction of the base edge count (see
    /// [`OverlayGraph::maybe_compact`]). `0.0` compacts after every
    /// mutating batch; `f64::INFINITY` never compacts.
    pub compact_fraction: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            backend: Backend::Golden,
            compact_fraction: 0.25,
        }
    }
}

impl StreamConfig {
    /// Golden backend with the given compaction threshold.
    pub fn golden(compact_fraction: f64) -> Self {
        StreamConfig {
            backend: Backend::Golden,
            compact_fraction,
        }
    }
}

/// What one [`IncrementalEngine::apply_batch`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Net edge insertions the batch effected (intra-batch churn cancels).
    pub inserts: usize,
    /// Net edge deletions the batch effected.
    pub deletes: usize,
    /// Vertices reset to their init value by invalidation (monotone
    /// algorithms after deletions).
    pub invalidated: usize,
    /// Distinct vertices that received a seed event — the dirty frontier.
    pub dirty_vertices: usize,
    /// Events processed during re-convergence.
    pub events_processed: u64,
    /// Events generated during re-convergence.
    pub events_generated: u64,
    /// Simulated cycles of the re-convergence run (`0` for the un-timed
    /// golden backend).
    pub cycles: u64,
    /// Whether the overlay was compacted back into a fresh CSR afterwards.
    pub compacted: bool,
}

/// Event-driven incremental recomputation over a stream of edge updates.
///
/// Owns the [`OverlayGraph`] and the algorithm's converged per-vertex
/// state; each [`apply_batch`](IncrementalEngine::apply_batch) mutates the
/// overlay, seeds only the dirty vertices, and re-converges through the
/// configured [`Backend`]. The state after every batch is exactly (up to
/// floating-point event-order tolerance for PageRank; exactly for the
/// monotone algorithms) what a from-scratch run on the mutated graph
/// produces — the property the differential test suite pins.
#[derive(Debug)]
pub struct IncrementalEngine<A: IncrementalAlgorithm> {
    algo: A,
    graph: OverlayGraph,
    values: Vec<A::Value>,
    config: StreamConfig,
}

impl<A: IncrementalAlgorithm> IncrementalEngine<A> {
    /// Builds the engine and fully converges on the base graph through
    /// the configured backend. The returned [`BatchReport`] describes the
    /// initial convergence (its `inserts`/`deletes` are zero), so callers
    /// can compare later incremental batches against the full-run cost.
    ///
    /// # Errors
    ///
    /// [`RunError`] from the accelerator backends (invalid configuration
    /// or cycle-limit overrun); the golden backend cannot fail.
    pub fn new(
        algo: A,
        base: CsrGraph,
        config: StreamConfig,
    ) -> Result<(Self, BatchReport), RunError> {
        let mut engine = IncrementalEngine {
            algo,
            graph: OverlayGraph::new(base),
            values: Vec::new(),
            config,
        };
        let (values, seeds) = initial_state(&engine.algo, &engine.graph);
        engine.values = values;
        let mut report = engine.run_backend(&seeds)?;
        report.dirty_vertices = seeds.len();
        Ok((engine, report))
    }

    /// Applies a batch of edge updates and re-converges the dirty
    /// frontier.
    ///
    /// Updates are applied in order with net-effect semantics (an edge
    /// inserted then deleted within one batch is a no-op; a weight change
    /// is a delete + insert pair). A batch with no net effect skips the
    /// engine entirely.
    ///
    /// # Errors
    ///
    /// [`RunError`] from the accelerator backends; the overlay mutation
    /// has already happened when that occurs, so the engine should be
    /// discarded (state and topology may disagree).
    pub fn apply_batch(&mut self, updates: &[EdgeUpdate]) -> Result<BatchReport, RunError> {
        let applied = self.graph.apply(updates);
        if applied.is_empty() {
            return Ok(BatchReport::default());
        }
        let plan = incremental_seeds(&self.algo, &self.graph, &mut self.values, &applied);
        let mut report = self.run_backend(&plan.seeds)?;
        report.inserts = applied.inserts.len();
        report.deletes = applied.deletes.len();
        report.invalidated = plan.invalidated.len();
        report.dirty_vertices = plan.dirty_vertices();
        report.compacted = self.graph.maybe_compact(self.config.compact_fraction);
        Ok(report)
    }

    /// Runs the configured backend from the current state with `seeds`,
    /// leaving the re-converged typed values in `self.values`.
    fn run_backend(&mut self, seeds: &[(VertexId, A::Delta)]) -> Result<BatchReport, RunError> {
        let mut report = BatchReport::default();
        match &self.config.backend {
            Backend::Golden => {
                let out = run_sequential_seeded(&self.algo, &self.graph, &mut self.values, seeds);
                report.events_processed = out.events_processed;
                report.events_generated = out.events_generated;
            }
            Backend::Accelerator(cfg) => {
                let accel = GraphPulse::new(cfg.as_ref().clone());
                let out = accel.run_seeded(&self.graph, &self.algo, self.values.clone(), seeds)?;
                self.values = out.values;
                report.events_processed = out.report.events_processed;
                report.events_generated = out.report.events_generated;
                report.cycles = out.report.cycles;
            }
            Backend::Parallel(cfg) => {
                let accel = GraphPulse::new(cfg.as_ref().clone());
                let out = accel.run_parallel_seeded(
                    &self.graph,
                    &self.algo,
                    self.values.clone(),
                    seeds,
                )?;
                self.values = out.values;
                report.events_processed = out.report.events_processed;
                report.events_generated = out.report.events_generated;
                report.cycles = out.report.cycles;
            }
            Backend::Turbo(cfg) => {
                let out = gp_turbo::run_turbo_seeded(
                    &self.algo,
                    &self.graph,
                    &mut self.values,
                    seeds,
                    cfg,
                );
                report.events_processed = out.events_processed;
                report.events_generated = out.events_generated;
            }
        }
        Ok(report)
    }

    /// The algorithm.
    pub fn algo(&self) -> &A {
        &self.algo
    }

    /// The current graph (base CSR + overlay).
    pub fn graph(&self) -> &OverlayGraph {
        &self.graph
    }

    /// The configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Current converged per-vertex state in the algorithm's typed
    /// representation.
    pub fn typed_values(&self) -> &[A::Value] {
        &self.values
    }

    /// Current converged values projected to `f64` via
    /// [`value_to_f64`](gp_algorithms::DeltaAlgorithm::value_to_f64).
    pub fn values(&self) -> Vec<f64> {
        self.values
            .iter()
            .map(|&v| self.algo.value_to_f64(v))
            .collect()
    }
}

/// Deterministic generator of edge-update streams with R-MAT-skewed
/// endpoints.
///
/// Insertions sample `(src, dst)` with the Graph500 quadrant recursion
/// (so update hot-spots match the power-law structure of an R-MAT base
/// graph); deletions pick a uniformly random existing edge. The mix is
/// controlled by `delete_fraction`. Deterministic for a given seed.
#[derive(Debug)]
pub struct UpdateStream {
    vertices: usize,
    levels: u32,
    delete_fraction: f64,
    weights: WeightMode,
    rng: StdRng,
}

impl UpdateStream {
    /// Creates a stream over `vertices` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `vertices` is zero or `delete_fraction` is outside
    /// `[0, 1]`.
    pub fn new(vertices: usize, delete_fraction: f64, weights: WeightMode, seed: u64) -> Self {
        assert!(vertices > 0, "update stream needs at least one vertex");
        assert!(
            (0.0..=1.0).contains(&delete_fraction),
            "delete fraction must be in [0, 1]"
        );
        UpdateStream {
            vertices,
            levels: (vertices as f64).log2().ceil().max(1.0) as u32,
            delete_fraction,
            weights,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the next batch of `len` updates against the current graph.
    ///
    /// Deletions target edges that exist in `graph` at draw time (within
    /// the batch, earlier draws are not tracked, so a batch may contain
    /// churn — which [`OverlayGraph::apply`] nets out). When no existing
    /// edge is found after a bounded number of probes (e.g. a nearly
    /// empty graph), the draw falls back to an insertion.
    pub fn next_batch(&mut self, graph: &OverlayGraph, len: usize) -> Vec<EdgeUpdate> {
        let mut batch = Vec::with_capacity(len);
        for _ in 0..len {
            let delete = self.rng.gen_range(0.0..1.0f64) < self.delete_fraction;
            if delete {
                if let Some((src, dst)) = self.existing_edge(graph) {
                    batch.push(EdgeUpdate::Delete { src, dst });
                    continue;
                }
            }
            let (src, dst) = self.rmat_pair();
            let weight = match self.weights {
                WeightMode::Unweighted => 1.0,
                WeightMode::Uniform(lo, hi) => self.rng.gen_range(lo..hi),
            };
            batch.push(EdgeUpdate::Insert { src, dst, weight });
        }
        batch
    }

    /// Samples one `(src, dst)` pair with the Graph500 quadrant walk and
    /// the same multiplicative scramble the [`rmat`]
    /// (gp_graph::generators::rmat) generator uses, so stream hot-spots
    /// land on the base graph's hubs.
    fn rmat_pair(&mut self) -> (VertexId, VertexId) {
        let (a, b, c) = (0.57, 0.19, 0.19);
        let mut row = 0usize;
        let mut col = 0usize;
        for _ in 0..self.levels {
            let roll = self.rng.gen_range(0.0..1.0f64);
            row <<= 1;
            col <<= 1;
            if roll < a {
                // top-left
            } else if roll < a + b {
                col |= 1;
            } else if roll < a + b + c {
                row |= 1;
            } else {
                row |= 1;
                col |= 1;
            }
        }
        let n = self.vertices as u64;
        let scramble = |v: usize| ((v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % n) as u32;
        let src = scramble(row);
        let mut dst = scramble(col);
        if src == dst {
            // The overlay refuses self-loops; nudge deterministically.
            dst = (dst + 1) % self.vertices as u32;
        }
        (VertexId::new(src), VertexId::new(dst))
    }

    /// Uniformly-ish samples an existing edge: a bounded number of random
    /// vertex probes, each followed by a uniform out-edge pick.
    fn existing_edge(&mut self, graph: &OverlayGraph) -> Option<(VertexId, VertexId)> {
        for _ in 0..32 {
            let v = VertexId::new(self.rng.gen_range(0..self.vertices as u32));
            let degree = graph.out_degree(v);
            if degree > 0 {
                let e = graph.out_edge(v, self.rng.gen_range(0..degree));
                return Some((v, e.other));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_algorithms::engine::run_sequential;
    use gp_algorithms::{max_abs_diff, ConnectedComponents, DeltaAlgorithm, PageRankDelta, Sssp};
    use gp_graph::generators::{erdos_renyi, rmat, RmatConfig};

    #[test]
    fn full_convergence_matches_cold_start() {
        let g = erdos_renyi(100, 500, WeightMode::Unweighted, 3);
        let algo = PageRankDelta::new(0.85, 1e-7);
        let cold = run_sequential(&algo, &g);
        let (engine, report) =
            IncrementalEngine::new(algo, g, StreamConfig::default()).expect("golden cannot fail");
        assert_eq!(max_abs_diff(&engine.values(), &cold.values), 0.0);
        assert_eq!(report.events_processed, cold.events_processed);
        assert_eq!(report.inserts, 0);
    }

    #[test]
    fn incremental_batches_track_from_scratch_runs() {
        let g = rmat(&RmatConfig::graph500(128, 1_024), 11);
        let algo = Sssp::new(VertexId::new(0));
        let (mut engine, _) =
            IncrementalEngine::new(algo, g, StreamConfig::golden(0.5)).expect("golden");
        let mut stream = UpdateStream::new(128, 0.3, WeightMode::Uniform(1.0, 9.0), 21);
        for _ in 0..5 {
            let batch = stream.next_batch(engine.graph(), 16);
            engine.apply_batch(&batch).expect("golden");
            let scratch = run_sequential(engine.algo(), &engine.graph().to_csr());
            assert_eq!(max_abs_diff(&engine.values(), &scratch.values), 0.0);
        }
    }

    /// Incremental-via-turbo must agree with incremental-via-golden batch
    /// by batch: bit-exact for the monotone algorithms (satellite of the
    /// `run_turbo_seeded` warm-start entry point).
    #[test]
    fn turbo_backend_matches_golden_incremental_bit_exact() {
        fn run_pair<A: IncrementalAlgorithm + Clone>(algo: A, seed: u64) {
            let g = rmat(&RmatConfig::graph500(128, 1_024), seed);
            let turbo_cfg = StreamConfig {
                backend: Backend::Turbo(gp_turbo::TurboConfig::default()),
                compact_fraction: 0.5,
            };
            let (mut via_turbo, _) =
                IncrementalEngine::new(algo.clone(), g.clone(), turbo_cfg).expect("turbo");
            let (mut via_golden, _) =
                IncrementalEngine::new(algo, g, StreamConfig::golden(0.5)).expect("golden");
            let mut stream = UpdateStream::new(128, 0.3, WeightMode::Uniform(1.0, 9.0), seed + 1);
            for _ in 0..4 {
                let batch = stream.next_batch(via_turbo.graph(), 24);
                via_turbo.apply_batch(&batch).expect("turbo");
                via_golden.apply_batch(&batch).expect("golden");
                let t: Vec<u64> = via_turbo.values().iter().map(|v| v.to_bits()).collect();
                let g: Vec<u64> = via_golden.values().iter().map(|v| v.to_bits()).collect();
                assert_eq!(t, g, "turbo incremental diverged from golden");
            }
        }
        run_pair(Sssp::new(VertexId::new(0)), 31);
        run_pair(gp_algorithms::Bfs::new(VertexId::new(0)), 32);
        run_pair(ConnectedComponents::new(), 33);
        run_pair(gp_algorithms::Sswp::new(VertexId::new(0)), 34);
    }

    /// PageRank-delta through the turbo backend stays within the
    /// algorithm's documented event-order tolerance of a from-scratch run.
    #[test]
    fn turbo_backend_tracks_pagerank_within_tolerance() {
        let g = rmat(&RmatConfig::graph500(128, 1_024), 41);
        let algo = PageRankDelta::new(0.85, 1e-9);
        let tol = algo.comparison_tolerance();
        let cfg = StreamConfig {
            backend: Backend::Turbo(gp_turbo::TurboConfig::default()),
            compact_fraction: 0.5,
        };
        let (mut engine, _) = IncrementalEngine::new(algo, g, cfg).expect("turbo");
        let mut stream = UpdateStream::new(128, 0.3, WeightMode::Unweighted, 42);
        for _ in 0..4 {
            let batch = stream.next_batch(engine.graph(), 24);
            engine.apply_batch(&batch).expect("turbo");
            let scratch = run_sequential(engine.algo(), &engine.graph().to_csr());
            assert!(max_abs_diff(&engine.values(), &scratch.values) < tol);
        }
    }

    #[test]
    fn no_op_batch_is_free() {
        let g = erdos_renyi(50, 200, WeightMode::Unweighted, 9);
        let algo = ConnectedComponents::new();
        let (mut engine, _) =
            IncrementalEngine::new(algo, g, StreamConfig::default()).expect("golden");
        // Insert-then-delete nets to nothing.
        let batch = [
            EdgeUpdate::Insert {
                src: VertexId::new(1),
                dst: VertexId::new(2),
                weight: 1.0,
            },
            EdgeUpdate::Delete {
                src: VertexId::new(1),
                dst: VertexId::new(2),
            },
        ];
        let report = engine.apply_batch(&batch).expect("golden");
        assert_eq!(report, BatchReport::default());
    }

    #[test]
    fn compaction_threshold_is_honored() {
        let g = erdos_renyi(40, 120, WeightMode::Unweighted, 5);
        let algo = ConnectedComponents::new();
        let (mut engine, _) =
            IncrementalEngine::new(algo, g, StreamConfig::golden(0.0)).expect("golden");
        let report = engine
            .apply_batch(&[EdgeUpdate::Insert {
                src: VertexId::new(0),
                dst: VertexId::new(39),
                weight: 1.0,
            }])
            .expect("golden");
        assert!(report.compacted, "threshold 0.0 compacts every batch");
        assert_eq!(engine.graph().pool_edge_slots(), 0);
    }

    #[test]
    fn update_stream_is_deterministic_and_respects_mix() {
        let g = rmat(&RmatConfig::graph500(64, 512), 2);
        let overlay = OverlayGraph::new(g);
        let mk = || UpdateStream::new(64, 0.5, WeightMode::Unweighted, 77);
        let (mut s1, mut s2) = (mk(), mk());
        let b1 = s1.next_batch(&overlay, 200);
        let b2 = s2.next_batch(&overlay, 200);
        assert_eq!(b1, b2, "same seed must give the same stream");
        let deletes = b1
            .iter()
            .filter(|u| matches!(u, EdgeUpdate::Delete { .. }))
            .count();
        assert!((40..160).contains(&deletes), "delete mix wildly off");
        for u in &b1 {
            if let EdgeUpdate::Delete { src, dst } = u {
                assert!(overlay.contains_edge(*src, *dst));
            }
        }
    }

    #[test]
    fn deletion_starved_stream_falls_back_to_inserts() {
        let overlay = OverlayGraph::new(gp_graph::GraphBuilder::new(4).build());
        let mut s = UpdateStream::new(4, 1.0, WeightMode::Unweighted, 3);
        let batch = s.next_batch(&overlay, 8);
        assert!(batch.iter().all(|u| matches!(u, EdgeUpdate::Insert { .. })));
    }
}
