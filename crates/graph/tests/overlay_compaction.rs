//! Compaction edge cases of [`OverlayGraph`]: exact threshold-boundary
//! behavior, delete-only batches, compaction of an untouched overlay, and
//! representation-invariance of the edge set across compaction.

use gp_graph::generators::{erdos_renyi, WeightMode};
use gp_graph::{CsrGraph, EdgeUpdate, OverlayGraph, VertexId};

fn v(i: u32) -> VertexId {
    VertexId::new(i)
}

fn base() -> CsrGraph {
    erdos_renyi(30, 150, WeightMode::Uniform(1.0, 5.0), 0xC0)
}

/// The overlay's full edge set, independent of representation.
fn edge_set(o: &OverlayGraph) -> Vec<(u32, u32, u32)> {
    let mut edges = Vec::new();
    for s in 0..o.base().num_vertices() as u32 {
        for e in o.out_edges_vec(v(s)) {
            edges.push((s, e.other.get(), e.weight.to_bits()));
        }
    }
    edges.sort_unstable();
    edges
}

#[test]
fn maybe_compact_boundary_is_inclusive() {
    let mut o = OverlayGraph::new(base());
    let mut d = 0u32;
    while o.pool_fraction() == 0.0 {
        while o.contains_edge(v(0), v(d)) || d == 0 {
            d += 1;
        }
        o.insert_edge(v(0), v(d), 2.0);
    }
    let pressure = o.pool_fraction();
    // Strictly above the pressure: must NOT compact.
    assert!(!o.maybe_compact(pressure * (1.0 + 1e-12) + f64::MIN_POSITIVE));
    assert!(
        o.pool_edge_slots() > 0,
        "overlay must still carry its patch"
    );
    // Exactly at the pressure (>= comparison): must compact.
    let before = edge_set(&o);
    assert!(o.maybe_compact(pressure));
    assert_eq!(o.pool_edge_slots(), 0);
    assert_eq!(edge_set(&o), before);
}

#[test]
fn compacting_an_untouched_overlay_is_a_no_op() {
    let mut o = OverlayGraph::new(base());
    let before = edge_set(&o);
    let base_edges = o.base().num_edges();
    o.compact();
    assert!(!o.maybe_compact(0.0), "nothing to fold back");
    assert_eq!(edge_set(&o), before);
    assert_eq!(o.base().num_edges(), base_edges);
    assert_eq!(o.patched_vertices(), 0);
}

#[test]
fn delete_only_batch_compacts_correctly() {
    let mut o = OverlayGraph::new(base());
    // Delete every edge leaving vertices 0..5 — a batch with no inserts.
    let mut batch = Vec::new();
    for s in 0..5u32 {
        for e in o.out_edges_vec(v(s)) {
            batch.push(EdgeUpdate::Delete {
                src: v(s),
                dst: e.other,
            });
        }
    }
    assert!(!batch.is_empty());
    let applied = o.apply(&batch);
    assert_eq!(applied.deletes.len(), batch.len());
    assert!(applied.inserts.is_empty());
    let before = edge_set(&o);

    assert!(o.maybe_compact(0.0), "delete-only patches must compact");
    assert_eq!(edge_set(&o), before);
    assert_eq!(o.pool_edge_slots(), 0);
    for s in 0..5u32 {
        assert!(o.out_edges_vec(v(s)).is_empty());
        assert_eq!(o.base().out_degree(v(s)), 0);
    }
    o.base().check_invariants().expect("compacted CSR is sound");
}

#[test]
fn deleting_every_edge_then_compacting_yields_an_empty_base() {
    let mut o = OverlayGraph::new(base());
    let mut batch = Vec::new();
    for s in 0..o.base().num_vertices() as u32 {
        for e in o.out_edges_vec(v(s)) {
            batch.push(EdgeUpdate::Delete {
                src: v(s),
                dst: e.other,
            });
        }
    }
    o.apply(&batch);
    assert!(edge_set(&o).is_empty());
    o.compact();
    assert_eq!(o.base().num_edges(), 0);
    assert_eq!(edge_set(&o), Vec::new());
    o.base().check_invariants().expect("empty CSR is sound");
}

#[test]
fn compaction_commutes_with_further_updates() {
    // Apply batch A, then batch B — once compacting in between, once not.
    // The final edge set and materialized CSR must be identical.
    let updates_a: Vec<EdgeUpdate> = (0..10u32)
        .map(|i| EdgeUpdate::Insert {
            src: v(i),
            dst: v((i + 13) % 30),
            weight: 3.0,
        })
        .collect();
    let updates_b: Vec<EdgeUpdate> = (0..10u32)
        .map(|i| {
            if i % 2 == 0 {
                EdgeUpdate::Delete {
                    src: v(i),
                    dst: v((i + 13) % 30),
                }
            } else {
                EdgeUpdate::Insert {
                    src: v(i + 10),
                    dst: v(i),
                    weight: 1.5,
                }
            }
        })
        .collect();

    let mut compacted = OverlayGraph::new(base());
    compacted.apply(&updates_a);
    compacted.compact();
    compacted.apply(&updates_b);
    compacted.compact();

    let mut lazy = OverlayGraph::new(base());
    lazy.apply(&updates_a);
    lazy.apply(&updates_b);

    assert_eq!(edge_set(&compacted), edge_set(&lazy));
    assert_eq!(compacted.to_csr(), lazy.to_csr());
}
