//! Property tests over the graph substrate: every generator yields
//! structurally valid CSR, partitions tile the vertex space, and both IO
//! formats round-trip arbitrary graphs.

use proptest::prelude::*;

use gp_graph::generators::{
    barabasi_albert, erdos_renyi, grid_2d, rmat, watts_strogatz, RmatConfig, WeightMode,
};
use gp_graph::partition::Partition;
use gp_graph::{io, CsrGraph, GraphBuilder, VertexId};

fn arb_weight_mode() -> impl Strategy<Value = WeightMode> {
    prop_oneof![
        Just(WeightMode::Unweighted),
        (0.1f32..10.0).prop_map(|lo| WeightMode::Uniform(lo, lo + 5.0)),
    ]
}

fn arb_generated() -> impl Strategy<Value = CsrGraph> {
    (2usize..64, 0u64..u64::MAX, arb_weight_mode(), 0usize..5).prop_map(
        |(n, seed, wm, kind)| match kind {
            0 => erdos_renyi(n, n * 4, wm, seed),
            1 => rmat(&RmatConfig::graph500(n, n * 4).with_weights(wm), seed),
            2 => barabasi_albert(n.max(4), 2, wm, seed),
            3 => watts_strogatz(n.max(4), 2, 0.3, wm, seed),
            _ => {
                let side = (n as f64).sqrt().ceil() as usize;
                grid_2d(side, side, wm, seed)
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generators_always_satisfy_csr_invariants(g in arb_generated()) {
        prop_assert!(g.check_invariants().is_ok());
        // Degree sums agree in both directions.
        let out_sum: u64 = g.vertices().map(|v| u64::from(g.out_degree(v))).sum();
        let in_sum: u64 = g.vertices().map(|v| u64::from(g.in_degree(v))).sum();
        prop_assert_eq!(out_sum, g.num_edges() as u64);
        prop_assert_eq!(in_sum, g.num_edges() as u64);
    }

    #[test]
    fn out_edge_indexing_matches_iteration(g in arb_generated()) {
        for v in g.vertices() {
            for (i, e) in g.out_edges(v).enumerate() {
                prop_assert_eq!(g.out_edge(v, i as u32), e);
            }
        }
    }

    #[test]
    fn partitions_tile_exactly(g in arb_generated(), cap in 1usize..40) {
        let p = Partition::contiguous(&g, cap);
        let mut covered = 0usize;
        let mut cursor = 0u32;
        for s in p.slices() {
            prop_assert_eq!(s.start.get(), cursor);
            prop_assert!(s.len() <= cap);
            prop_assert!(!s.is_empty());
            covered += s.len();
            cursor = s.end.get();
        }
        prop_assert_eq!(covered, g.num_vertices());
        // Every vertex maps back to the slice that contains it.
        for v in g.vertices() {
            prop_assert!(p.slices()[p.slice_of(v)].contains(v));
        }
    }

    #[test]
    fn binary_io_round_trips(g in arb_generated()) {
        let bytes = io::encode_binary(&g);
        let back = io::decode_binary(&bytes).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn text_io_round_trips_topology(g in arb_generated()) {
        let mut out = Vec::new();
        io::write_edge_list(&g, &mut out).unwrap();
        let back = io::read_edge_list(&out[..], Some(g.num_vertices())).unwrap();
        prop_assert_eq!(g.num_vertices(), back.num_vertices());
        prop_assert_eq!(g.num_edges(), back.num_edges());
        for v in g.vertices() {
            prop_assert_eq!(g.out_neighbors(v), back.out_neighbors(v));
        }
    }

    #[test]
    fn builder_is_idempotent_under_rebuild(g in arb_generated()) {
        // Re-feeding a built graph's edges reproduces it exactly.
        let mut b = GraphBuilder::new(g.num_vertices());
        b.weighted(g.is_weighted()).dedup(false).drop_self_loops(false);
        for v in g.vertices() {
            for e in g.out_edges(v) {
                b.add_edge(v, e.other, e.weight);
            }
        }
        prop_assert_eq!(b.build(), g);
    }
}

#[test]
fn partition_of_star_respects_caps() {
    let mut b = GraphBuilder::new(64);
    for i in 1..64u32 {
        b.add_edge(VertexId::new(0), VertexId::new(i), 1.0);
    }
    let g = b.build();
    let p = Partition::contiguous(&g, 10);
    assert!(p.slices().iter().all(|s| s.len() <= 10));
    assert_eq!(p.slices().iter().map(|s| s.len()).sum::<usize>(), 64);
}
