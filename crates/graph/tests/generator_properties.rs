//! Property tests over the graph substrate: every generator yields
//! structurally valid CSR, partitions tile the vertex space, and both IO
//! formats round-trip arbitrary graphs.
//!
//! Randomized cases are driven by the workspace's deterministic
//! [`gp_graph::rng::StdRng`], so every run exercises the same inputs.

use gp_graph::generators::{
    barabasi_albert, erdos_renyi, grid_2d, rmat, watts_strogatz, RmatConfig, WeightMode,
};
use gp_graph::partition::Partition;
use gp_graph::rng::{Rng, StdRng};
use gp_graph::{io, CsrGraph, GraphBuilder, VertexId};

fn random_weight_mode(rng: &mut StdRng) -> WeightMode {
    if rng.gen_bool(0.5) {
        WeightMode::Unweighted
    } else {
        let lo = rng.gen_range(0.1f32..10.0);
        WeightMode::Uniform(lo, lo + 5.0)
    }
}

fn random_generated(rng: &mut StdRng) -> CsrGraph {
    let n = rng.gen_range(2..64usize);
    let seed = rng.next_u64();
    let wm = random_weight_mode(rng);
    match rng.gen_range(0..5u32) {
        0 => erdos_renyi(n, n * 4, wm, seed),
        1 => rmat(&RmatConfig::graph500(n, n * 4).with_weights(wm), seed),
        2 => barabasi_albert(n.max(4), 2, wm, seed),
        3 => watts_strogatz(n.max(4), 2, 0.3, wm, seed),
        _ => {
            let side = (n as f64).sqrt().ceil() as usize;
            grid_2d(side, side, wm, seed)
        }
    }
}

#[test]
fn generators_always_satisfy_csr_invariants() {
    let mut rng = StdRng::seed_from_u64(0xC1);
    for _ in 0..64 {
        let g = random_generated(&mut rng);
        assert!(g.check_invariants().is_ok());
        // Degree sums agree in both directions.
        let out_sum: u64 = g.vertices().map(|v| u64::from(g.out_degree(v))).sum();
        let in_sum: u64 = g.vertices().map(|v| u64::from(g.in_degree(v))).sum();
        assert_eq!(out_sum, g.num_edges() as u64);
        assert_eq!(in_sum, g.num_edges() as u64);
    }
}

#[test]
fn out_edge_indexing_matches_iteration() {
    let mut rng = StdRng::seed_from_u64(0xC2);
    for _ in 0..64 {
        let g = random_generated(&mut rng);
        for v in g.vertices() {
            for (i, e) in g.out_edges(v).enumerate() {
                assert_eq!(g.out_edge(v, i as u32), e);
            }
        }
    }
}

#[test]
fn partitions_tile_exactly() {
    let mut rng = StdRng::seed_from_u64(0xC3);
    for _ in 0..64 {
        let g = random_generated(&mut rng);
        let cap = rng.gen_range(1..40usize);
        let p = Partition::contiguous(&g, cap);
        let mut covered = 0usize;
        let mut cursor = 0u32;
        for s in p.slices() {
            assert_eq!(s.start.get(), cursor);
            assert!(s.len() <= cap);
            assert!(!s.is_empty());
            covered += s.len();
            cursor = s.end.get();
        }
        assert_eq!(covered, g.num_vertices());
        // Every vertex maps back to the slice that contains it.
        for v in g.vertices() {
            assert!(p.slices()[p.slice_of(v)].contains(v));
        }
    }
}

#[test]
fn binary_io_round_trips() {
    let mut rng = StdRng::seed_from_u64(0xC4);
    for _ in 0..64 {
        let g = random_generated(&mut rng);
        let bytes = io::encode_binary(&g);
        let back = io::decode_binary(&bytes).unwrap();
        assert_eq!(g, back);
    }
}

#[test]
fn text_io_round_trips_topology() {
    let mut rng = StdRng::seed_from_u64(0xC5);
    for _ in 0..64 {
        let g = random_generated(&mut rng);
        let mut out = Vec::new();
        io::write_edge_list(&g, &mut out).unwrap();
        let back = io::read_edge_list(&out[..], Some(g.num_vertices())).unwrap();
        assert_eq!(g.num_vertices(), back.num_vertices());
        assert_eq!(g.num_edges(), back.num_edges());
        for v in g.vertices() {
            assert_eq!(g.out_neighbors(v), back.out_neighbors(v));
        }
    }
}

#[test]
fn builder_is_idempotent_under_rebuild() {
    let mut rng = StdRng::seed_from_u64(0xC6);
    for _ in 0..64 {
        let g = random_generated(&mut rng);
        // Re-feeding a built graph's edges reproduces it exactly.
        let mut b = GraphBuilder::new(g.num_vertices());
        b.weighted(g.is_weighted())
            .dedup(false)
            .drop_self_loops(false);
        for v in g.vertices() {
            for e in g.out_edges(v) {
                b.add_edge(v, e.other, e.weight);
            }
        }
        assert_eq!(b.build(), g);
    }
}

#[test]
fn partition_of_star_respects_caps() {
    let mut b = GraphBuilder::new(64);
    for i in 1..64u32 {
        b.add_edge(VertexId::new(0), VertexId::new(i), 1.0);
    }
    let g = b.build();
    let p = Partition::contiguous(&g, 10);
    assert!(p.slices().iter().all(|s| s.len() <= 10));
    assert_eq!(p.slices().iter().map(|s| s.len()).sum::<usize>(), 64);
}
