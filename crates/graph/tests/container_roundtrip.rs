//! Out-of-core container tests: encode → write → mmap-decode must be
//! bit-identical to the resident [`CsrGraph`] across seeded generator
//! graphs (including empty graphs, zero-degree vertices, and both weight
//! modes), the streaming builder must reproduce the resident build
//! byte-for-byte, and every corruption class must come back as a typed
//! [`ReadGraphError`] — never a panic.

use std::fs;
use std::path::PathBuf;

use gp_graph::container::{
    build_streaming, write_container, SegmentDigest, StreamBuildOptions, HEADER_DIGEST_AT,
};
use gp_graph::generators::{
    barabasi_albert, erdos_renyi, rmat, rmat_edges, RmatConfig, WeightMode,
};
use gp_graph::io::ReadGraphError;
use gp_graph::partition::Partition;
use gp_graph::rng::{Rng, StdRng};
use gp_graph::{CsrGraph, GraphBuilder, GraphView, MappedCsr, VertexId};

/// Fresh per-test scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("gp-container-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.0).ok();
    }
}

/// Asserts that `mapped` serves bit-identical adjacency to `resident`
/// through every `GraphView` accessor, and that re-materializing equals
/// the original.
fn assert_bit_identical(resident: &CsrGraph, mapped: &MappedCsr) {
    assert_eq!(mapped.num_vertices(), resident.num_vertices());
    assert_eq!(GraphView::num_edges(mapped), resident.num_edges());
    assert_eq!(mapped.is_weighted(), resident.is_weighted());
    for v in resident.vertices() {
        assert_eq!(mapped.out_degree(v), resident.out_degree(v), "{v} out deg");
        assert_eq!(mapped.out_edge_base(v), resident.out_edge_base(v));
        for i in 0..resident.out_degree(v) {
            let (a, b) = (mapped.out_edge(v, i), resident.out_edge(v, i));
            assert_eq!(a.other, b.other, "{v} out edge {i}");
            assert_eq!(a.weight.to_bits(), b.weight.to_bits(), "{v} out w {i}");
        }
        assert_eq!(mapped.in_degree(v), resident.in_degree(v), "{v} in deg");
        for i in 0..resident.in_degree(v) {
            let (a, b) = (mapped.in_edge(v, i), GraphView::in_edge(resident, v, i));
            assert_eq!(a.other, b.other, "{v} in edge {i}");
            assert_eq!(a.weight.to_bits(), b.weight.to_bits(), "{v} in w {i}");
        }
    }
    assert_eq!(&mapped.to_csr(), resident);
}

fn random_weight_mode(rng: &mut StdRng) -> WeightMode {
    if rng.gen_bool(0.5) {
        WeightMode::Unweighted
    } else {
        let lo = rng.gen_range(0.1f32..10.0);
        WeightMode::Uniform(lo, lo + 5.0)
    }
}

#[test]
fn mapped_container_bit_identical_to_resident() {
    let scratch = Scratch::new("roundtrip");
    let mut rng = StdRng::seed_from_u64(0xD15C);
    for case in 0..24 {
        let n = rng.gen_range(2..200usize);
        let seed = rng.next_u64();
        let wm = random_weight_mode(&mut rng);
        let g = match case % 3 {
            0 => rmat(&RmatConfig::graph500(n, n * 4).with_weights(wm), seed),
            1 => barabasi_albert(n.max(4), 2, wm, seed),
            _ => erdos_renyi(n, n * 4, wm, seed),
        };
        let path = scratch.path(&format!("case{case}.gpc"));
        let cap = rng.gen_range(1..n + 1);
        let summary = write_container(&g, &path, cap).unwrap();
        assert_eq!(summary.vertices as usize, g.num_vertices());
        assert_eq!(summary.edges as usize, g.num_edges());
        let mapped = MappedCsr::open_verified(&path).unwrap();
        assert_bit_identical(&g, &mapped);
        // The stored slice index must equal the partition machinery's
        // answer over the mapped graph at the same capacity.
        let part = Partition::contiguous(&mapped, cap);
        let stored = mapped.slice_extents();
        assert_eq!(stored.len(), part.len());
        for (s, p) in stored.iter().zip(part.slices()) {
            assert_eq!(
                (s.start, s.end),
                (u64::from(p.start.get()), u64::from(p.end.get()))
            );
        }
    }
}

#[test]
fn empty_and_zero_degree_graphs_round_trip() {
    let scratch = Scratch::new("edgecases");

    // Fully empty graph: zero vertices, zero edges, zero slices.
    let empty = GraphBuilder::new(0).build();
    let path = scratch.path("empty.gpc");
    let summary = write_container(&empty, &path, 16).unwrap();
    assert_eq!((summary.vertices, summary.edges, summary.slices), (0, 0, 0));
    let mapped = MappedCsr::open_verified(&path).unwrap();
    assert_bit_identical(&empty, &mapped);

    // Vertices with no edges at all.
    let isolated = GraphBuilder::new(17).build();
    let path = scratch.path("isolated.gpc");
    write_container(&isolated, &path, 4).unwrap();
    assert_bit_identical(&isolated, &MappedCsr::open_verified(&path).unwrap());

    // Zero-degree vertices interleaved with a weighted path, including a
    // trailing isolated vertex (exercises rowptr plateaus at both ends).
    let mut b = GraphBuilder::new(9);
    b.add_edge(VertexId::new(1), VertexId::new(4), 2.5);
    b.add_edge(VertexId::new(4), VertexId::new(7), -0.0); // signed-zero bit pattern
    b.weighted(true);
    let sparse = b.build();
    let path = scratch.path("sparse.gpc");
    write_container(&sparse, &path, 3).unwrap();
    assert_bit_identical(&sparse, &MappedCsr::open_verified(&path).unwrap());
}

#[test]
fn streaming_build_matches_resident_container_bytewise() {
    let scratch = Scratch::new("streaming");
    for (seed, weighted) in [(11u64, false), (12, true)] {
        let wm = if weighted {
            WeightMode::Uniform(0.5, 3.0)
        } else {
            WeightMode::Unweighted
        };
        let cfg = RmatConfig::graph500(1 << 10, 8 << 10).with_weights(wm);

        let resident_path = scratch.path(&format!("resident-{seed}.gpc"));
        let g = rmat(&cfg, seed);
        write_container(&g, &resident_path, 128).unwrap();

        // Tiny buckets force many spill files and multi-bucket assembly.
        let streamed_path = scratch.path(&format!("streamed-{seed}.gpc"));
        let opts = StreamBuildOptions {
            weighted,
            slice_vertices: 128,
            bucket_vertices: 100,
        };
        let summary = build_streaming(&streamed_path, cfg.vertices, &opts, |sink| {
            rmat_edges(&cfg, seed, sink);
        })
        .unwrap();
        assert_eq!(summary.edges as usize, g.num_edges());

        let resident_bytes = fs::read(&resident_path).unwrap();
        let streamed_bytes = fs::read(&streamed_path).unwrap();
        assert!(
            resident_bytes == streamed_bytes,
            "streamed container differs from resident container (seed {seed})"
        );
        assert_bit_identical(&g, &MappedCsr::open_verified(&streamed_path).unwrap());
    }
}

#[test]
fn streaming_build_rejects_out_of_range_edges() {
    let scratch = Scratch::new("streambad");
    let err = build_streaming(
        &scratch.path("bad.gpc"),
        4,
        &StreamBuildOptions::default(),
        |sink| sink(1, 9, 1.0),
    )
    .unwrap_err();
    assert!(err.to_string().contains("out of range"), "got: {err}");
}

// ---------------------------------------------------------------------------
// Corruption paths: every class is a typed error, never a panic.
// ---------------------------------------------------------------------------

/// Writes a small weighted container and returns its bytes.
fn healthy_container(scratch: &Scratch, name: &str) -> (PathBuf, Vec<u8>) {
    let cfg = RmatConfig::graph500(64, 256).with_weights(WeightMode::Uniform(1.0, 2.0));
    let g = rmat(&cfg, 99);
    assert!(g.num_edges() > 0);
    let path = scratch.path(name);
    write_container(&g, &path, 16).unwrap();
    let bytes = fs::read(&path).unwrap();
    (path, bytes)
}

/// Recomputes and patches the header digest after a deliberate header
/// edit, so the edit itself (not the digest) is what `open` sees.
fn reseal_header(bytes: &mut [u8]) {
    let mut d = SegmentDigest::new();
    d.update(&bytes[..HEADER_DIGEST_AT]);
    let digest = d.finish();
    bytes[HEADER_DIGEST_AT..HEADER_DIGEST_AT + 8].copy_from_slice(&digest.to_le_bytes());
}

fn open_patched(scratch: &Scratch, name: &str, bytes: &[u8]) -> Result<MappedCsr, ReadGraphError> {
    let path = scratch.path(name);
    fs::write(&path, bytes).unwrap();
    MappedCsr::open(&path)
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

#[test]
fn truncated_header_is_typed() {
    let scratch = Scratch::new("trunc-header");
    let (_, bytes) = healthy_container(&scratch, "ok.gpc");
    for cut in [0usize, 1, 100, 255] {
        let err = open_patched(&scratch, "cut.gpc", &bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, ReadGraphError::Truncated),
            "cut at {cut}: {err}"
        );
    }
}

#[test]
fn truncated_segment_is_typed() {
    let scratch = Scratch::new("trunc-seg");
    let (_, bytes) = healthy_container(&scratch, "ok.gpc");
    // Header intact, file cut mid-segment.
    let err = open_patched(&scratch, "cut.gpc", &bytes[..bytes.len() - 10]).unwrap_err();
    assert!(matches!(err, ReadGraphError::Truncated), "{err}");
}

#[test]
fn bad_magic_is_typed() {
    let scratch = Scratch::new("magic");
    let (_, mut bytes) = healthy_container(&scratch, "ok.gpc");
    bytes[0] = b'X';
    let err = open_patched(&scratch, "bad.gpc", &bytes).unwrap_err();
    assert!(matches!(err, ReadGraphError::BadMagic), "{err}");
}

#[test]
fn wrong_version_is_typed() {
    let scratch = Scratch::new("version");
    let (_, mut bytes) = healthy_container(&scratch, "ok.gpc");
    bytes[4..6].copy_from_slice(&7u16.to_le_bytes());
    let err = open_patched(&scratch, "bad.gpc", &bytes).unwrap_err();
    assert!(matches!(err, ReadGraphError::BadVersion(7)), "{err}");
}

#[test]
fn corrupted_header_fails_its_digest() {
    let scratch = Scratch::new("header-digest");
    let (_, mut bytes) = healthy_container(&scratch, "ok.gpc");
    bytes[8] ^= 1; // num_vertices, without resealing
    let err = open_patched(&scratch, "bad.gpc", &bytes).unwrap_err();
    assert!(matches!(err, ReadGraphError::ChecksumMismatch(_)), "{err}");
}

#[test]
fn misaligned_segment_offset_is_typed() {
    let scratch = Scratch::new("align");
    let (_, mut bytes) = healthy_container(&scratch, "ok.gpc");
    // Knock the out_neighbors descriptor (second segment, at 32 + 24) off
    // the 64-byte grid, then reseal the header digest so alignment is the
    // first check that can fail.
    let at = 32 + 24;
    let off = u64_at(&bytes, at);
    bytes[at..at + 8].copy_from_slice(&(off + 4).to_le_bytes());
    reseal_header(&mut bytes);
    let err = open_patched(&scratch, "bad.gpc", &bytes).unwrap_err();
    assert!(matches!(err, ReadGraphError::Misaligned(_)), "{err}");
}

#[test]
fn inconsistent_segment_length_is_typed() {
    let scratch = Scratch::new("seglen");
    let (_, mut bytes) = healthy_container(&scratch, "ok.gpc");
    // out_rowptr length disagrees with the header's vertex count.
    let at = 32 + 8;
    let len = u64_at(&bytes, at);
    bytes[at..at + 8].copy_from_slice(&(len + 4).to_le_bytes());
    reseal_header(&mut bytes);
    let err = open_patched(&scratch, "bad.gpc", &bytes).unwrap_err();
    assert!(matches!(err, ReadGraphError::Misaligned(_)), "{err}");
}

#[test]
fn segment_checksum_mismatch_is_typed() {
    let scratch = Scratch::new("checksum");
    let (_, mut bytes) = healthy_container(&scratch, "ok.gpc");
    // Flip a byte inside the out_neighbors payload: structural open still
    // succeeds (rowptrs are intact), full verification names the segment.
    let neigh_off = u64_at(&bytes, 32 + 24) as usize;
    bytes[neigh_off] ^= 0x01;
    let path = scratch.path("bad.gpc");
    fs::write(&path, &bytes).unwrap();
    let mapped = MappedCsr::open(&path).unwrap();
    let err = mapped.verify_checksums().unwrap_err();
    match &err {
        ReadGraphError::ChecksumMismatch(what) => {
            assert!(what.contains("out_neighbors"), "{what}")
        }
        other => panic!("expected checksum mismatch, got {other}"),
    }
    assert!(matches!(
        MappedCsr::open_verified(&path),
        Err(ReadGraphError::ChecksumMismatch(_))
    ));
}

#[test]
fn non_monotone_rowptr_is_typed() {
    let scratch = Scratch::new("rowptr");
    let (_, mut bytes) = healthy_container(&scratch, "ok.gpc");
    // Spike out_rowptr[1] above the edge count: monotonicity breaks at
    // vertex 2 (or the terminal total check fires). Structural, so no
    // header reseal is needed — open() must catch it before any digest of
    // the segment is consulted.
    let rowptr_off = u64_at(&bytes, 32) as usize;
    bytes[rowptr_off + 4..rowptr_off + 8].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = open_patched(&scratch, "bad.gpc", &bytes).unwrap_err();
    assert!(matches!(err, ReadGraphError::Corrupt(_)), "{err}");
}

#[test]
fn corrupt_slice_index_is_typed() {
    let scratch = Scratch::new("slices");
    let (_, mut bytes) = healthy_container(&scratch, "ok.gpc");
    // First slice's start vertex moved off zero: the index no longer tiles.
    let slice_off = u64_at(&bytes, 32 + 6 * 24) as usize;
    bytes[slice_off..slice_off + 8].copy_from_slice(&1u64.to_le_bytes());
    let err = open_patched(&scratch, "bad.gpc", &bytes).unwrap_err();
    assert!(matches!(err, ReadGraphError::Corrupt(_)), "{err}");
}
