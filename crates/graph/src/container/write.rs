//! Serializing a resident [`CsrGraph`] into a container file.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use super::{
    align_up, digest_of, encode_slice_index, slice_extents_from_rowptr, Header, SegmentDesc,
    HEADER_BYTES, SEG_COUNT,
};
use crate::{CsrGraph, VertexId};

/// Failure writing a container.
#[derive(Debug)]
pub enum ContainerWriteError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The input cannot be represented in the format (or the edge stream
    /// fed to the streaming builder was itself invalid).
    Invalid(String),
}

impl fmt::Display for ContainerWriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerWriteError::Io(e) => write!(f, "i/o error writing container: {e}"),
            ContainerWriteError::Invalid(what) => write!(f, "cannot write container: {what}"),
        }
    }
}

impl std::error::Error for ContainerWriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ContainerWriteError::Io(e) => Some(e),
            ContainerWriteError::Invalid(_) => None,
        }
    }
}

impl From<io::Error> for ContainerWriteError {
    fn from(e: io::Error) -> Self {
        ContainerWriteError::Io(e)
    }
}

/// What a container write produced; returned by [`write_container`] and
/// [`build_streaming`](super::build_streaming).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerSummary {
    /// Vertices in the written graph.
    pub vertices: u64,
    /// Deduplicated directed edges.
    pub edges: u64,
    /// Whether weight segments were written.
    pub weighted: bool,
    /// Entries in the per-slice index.
    pub slices: u32,
    /// Final file size in bytes.
    pub file_bytes: u64,
}

/// A writer that tracks its absolute position so segments can be padded to
/// their aligned offsets.
pub(crate) struct CountingWriter<W: Write> {
    inner: W,
    pos: u64,
}

impl<W: Write> CountingWriter<W> {
    pub fn new(inner: W) -> Self {
        CountingWriter { inner, pos: 0 }
    }

    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Writes zero bytes until the position reaches `offset`.
    pub fn pad_to(&mut self, offset: u64) -> io::Result<()> {
        debug_assert!(offset >= self.pos, "cannot pad backwards");
        const ZEROS: [u8; 64] = [0; 64];
        let mut gap = offset - self.pos;
        while gap > 0 {
            let take = gap.min(ZEROS.len() as u64) as usize;
            self.write_all(&ZEROS[..take])?;
            gap -= take as u64;
        }
        Ok(())
    }

    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.pos += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Computes the aligned segment layout for the given byte lengths and
/// returns `(descriptors-with-zero-digests, total_file_bytes)`.
pub(crate) fn layout(seg_lens: &[u64; SEG_COUNT]) -> ([SegmentDesc; SEG_COUNT], u64) {
    let mut segs = [SegmentDesc::default(); SEG_COUNT];
    let mut off = HEADER_BYTES;
    for (desc, &len) in segs.iter_mut().zip(seg_lens) {
        off = align_up(off);
        desc.offset = off;
        desc.len = len;
        off += len;
    }
    (segs, off)
}

/// Serializes a `u32` slice little-endian.
pub(crate) fn rowptr_bytes(rowptr: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(rowptr.len() * 4);
    for v in rowptr {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

fn neighbor_bytes(neighbors: &[VertexId]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(neighbors.len() * 4);
    for v in neighbors {
        buf.extend_from_slice(&v.get().to_le_bytes());
    }
    buf
}

fn weight_bytes(weights: &[f32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(weights.len() * 4);
    for w in weights {
        buf.extend_from_slice(&w.to_bits().to_le_bytes());
    }
    buf
}

/// Writes `graph` as a container at `path`, with a slice index computed at
/// a maximum of `slice_vertices` vertices per slice (the same greedy
/// edge-balancing as
/// [`Partition::contiguous`](crate::partition::Partition::contiguous)).
///
/// The segments are serialized one at a time (peak transient memory is one
/// segment, not a second copy of the graph), with the header back-patched
/// once all digests are known.
///
/// # Errors
///
/// [`ContainerWriteError::Io`] on filesystem failure.
///
/// # Panics
///
/// Panics if `slice_vertices` is zero.
pub fn write_container(
    graph: &CsrGraph,
    path: &Path,
    slice_vertices: usize,
) -> Result<ContainerSummary, ContainerWriteError> {
    let (out_off, out_nei, out_w) = graph.out_parts();
    let (in_off, in_nei, in_w) = graph.in_parts();
    let weighted = graph.is_weighted();
    let slices = slice_extents_from_rowptr(out_off, slice_vertices);
    let slice_index = encode_slice_index(&slices);

    let n = graph.num_vertices() as u64;
    let m = graph.num_edges() as u64;
    let wlen = if weighted { m * 4 } else { 0 };
    let seg_lens = [
        (n + 1) * 4,
        m * 4,
        wlen,
        (n + 1) * 4,
        m * 4,
        wlen,
        slice_index.len() as u64,
    ];
    let (mut segs, file_bytes) = layout(&seg_lens);

    let file = File::create(path)?;
    let mut w = CountingWriter::new(BufWriter::new(file));
    w.pad_to(HEADER_BYTES)?; // placeholder header, patched below

    // Segment payloads in file order. Weight segments on unweighted graphs
    // serialize as empty (the resident arrays hold implicit 1.0s).
    let payloads: [Vec<u8>; SEG_COUNT] = [
        rowptr_bytes(out_off),
        neighbor_bytes(out_nei),
        if weighted {
            weight_bytes(out_w)
        } else {
            Vec::new()
        },
        rowptr_bytes(in_off),
        neighbor_bytes(in_nei),
        if weighted {
            weight_bytes(in_w)
        } else {
            Vec::new()
        },
        slice_index,
    ];
    for (desc, payload) in segs.iter_mut().zip(payloads) {
        w.pad_to(desc.offset)?;
        desc.digest = digest_of(&payload);
        w.write_all(&payload)?;
    }
    debug_assert_eq!(w.pos(), file_bytes);

    let header = Header {
        num_vertices: n,
        num_edges: m,
        weighted,
        slice_count: slices.len() as u32,
        segments: segs,
    };
    let mut inner = w.into_inner();
    inner.flush()?;
    let mut file = inner.into_inner().map_err(io::IntoInnerError::into_error)?;
    file.seek(SeekFrom::Start(0))?;
    file.write_all(&header.encode())?;
    file.sync_all()?;

    Ok(ContainerSummary {
        vertices: n,
        edges: m,
        weighted,
        slices: slices.len() as u32,
        file_bytes,
    })
}
