//! [`MappedCsr`]: a [`GraphView`] served directly from a mapped container.

use std::fs::File;
use std::path::Path;

use super::mmap::Mapping;
use super::{
    digest_of, Header, SliceExtent, HEADER_BYTES, SEGMENT_ALIGN, SEG_COUNT, SEG_IN_NEIGHBORS,
    SEG_IN_ROWPTR, SEG_IN_WEIGHTS, SEG_NAMES, SEG_OUT_NEIGHBORS, SEG_OUT_ROWPTR, SEG_OUT_WEIGHTS,
    SEG_SLICE_INDEX, SLICE_ENTRY_BYTES,
};
use crate::io::ReadGraphError;
use crate::{CsrGraph, EdgeRef, GraphView, VertexId};

/// A disk-resident CSR graph opened from a container file.
///
/// Implements [`GraphView`] by decoding little-endian words straight out of
/// the mapped segments — no resident arrays, no alignment requirement on
/// the mapping (every access goes through `from_le_bytes` on a 4-byte
/// window). The resident footprint of an open graph is the struct itself
/// plus whatever pages the OS keeps warm; the golden engines, the
/// slice-swapping machinery, and turbo all run against it unmodified.
///
/// [`MappedCsr::open`] performs *structural* validation: magic, version,
/// header digest, segment alignment and extents, row-pointer monotonicity
/// for both directions, and slice-index consistency. It does **not** read
/// the edge segments (that would fault in the whole file);
/// [`MappedCsr::open_verified`] additionally recomputes every segment
/// digest for end-to-end integrity at the cost of one full scan.
#[derive(Debug)]
pub struct MappedCsr {
    map: Mapping,
    num_vertices: usize,
    num_edges: usize,
    weighted: bool,
    seg_bounds: [(usize, usize); SEG_COUNT],
    seg_digests: [u64; SEG_COUNT],
    slices: Vec<SliceExtent>,
}

/// Little-endian `u32` at element `index` of a 4-byte-record segment.
#[inline]
fn u32_at(seg: &[u8], index: usize) -> u32 {
    let at = index * 4;
    u32::from_le_bytes(seg[at..at + 4].try_into().expect("validated extent"))
}

impl MappedCsr {
    /// Opens and structurally validates a container.
    ///
    /// # Errors
    ///
    /// [`ReadGraphError::Io`] on filesystem failure, otherwise the typed
    /// corruption taxonomy: [`ReadGraphError::BadMagic`] /
    /// [`ReadGraphError::BadVersion`] / [`ReadGraphError::Truncated`] /
    /// [`ReadGraphError::Misaligned`] / [`ReadGraphError::ChecksumMismatch`]
    /// (header digest only at this level) / [`ReadGraphError::Corrupt`].
    pub fn open(path: &Path) -> Result<MappedCsr, ReadGraphError> {
        let file = File::open(path).map_err(ReadGraphError::Io)?;
        let map = Mapping::map(&file).map_err(ReadGraphError::Io)?;
        MappedCsr::from_mapping(map)
    }

    /// [`MappedCsr::open`] plus a full recomputation of every segment
    /// digest ([`MappedCsr::verify_checksums`]).
    ///
    /// # Errors
    ///
    /// Everything [`MappedCsr::open`] returns, plus
    /// [`ReadGraphError::ChecksumMismatch`] naming any segment whose bytes
    /// no longer match the header digest.
    pub fn open_verified(path: &Path) -> Result<MappedCsr, ReadGraphError> {
        let g = MappedCsr::open(path)?;
        g.verify_checksums()?;
        Ok(g)
    }

    fn from_mapping(map: Mapping) -> Result<MappedCsr, ReadGraphError> {
        let bytes = map.bytes();
        let header = Header::decode(bytes)?;
        let file_len = bytes.len() as u64;

        let n64 = header.num_vertices;
        let m64 = header.num_edges;
        if n64 > u64::from(u32::MAX) || m64 > u64::from(u32::MAX) {
            return Err(ReadGraphError::Corrupt(format!(
                "container claims {n64} vertices / {m64} edges, beyond the u32 id space"
            )));
        }
        let n = n64 as usize;
        let m = m64 as usize;

        // Expected byte length of each segment, in file order.
        let wlen = if header.weighted { m64 * 4 } else { 0 };
        let expected_len: [u64; SEG_COUNT] = [
            (n64 + 1) * 4,
            m64 * 4,
            wlen,
            (n64 + 1) * 4,
            m64 * 4,
            wlen,
            u64::from(header.slice_count) * SLICE_ENTRY_BYTES,
        ];

        let mut seg_bounds = [(0usize, 0usize); SEG_COUNT];
        let mut seg_digests = [0u64; SEG_COUNT];
        let mut prev_end = HEADER_BYTES;
        for i in 0..SEG_COUNT {
            let seg = header.segments[i];
            let name = SEG_NAMES[i];
            if seg.len != expected_len[i] {
                return Err(ReadGraphError::Misaligned(format!(
                    "segment {name} is {} bytes, header geometry requires {}",
                    seg.len, expected_len[i]
                )));
            }
            if seg.offset % SEGMENT_ALIGN != 0 {
                return Err(ReadGraphError::Misaligned(format!(
                    "segment {name} at offset {} breaks the {SEGMENT_ALIGN}-byte alignment",
                    seg.offset
                )));
            }
            if seg.offset < prev_end {
                return Err(ReadGraphError::Misaligned(format!(
                    "segment {name} at offset {} overlaps the previous region ending at {prev_end}",
                    seg.offset
                )));
            }
            let end = seg.offset.checked_add(seg.len).ok_or_else(|| {
                ReadGraphError::Misaligned(format!("segment {name} extent overflows"))
            })?;
            if end > file_len {
                return Err(ReadGraphError::Truncated);
            }
            seg_bounds[i] = (seg.offset as usize, end as usize);
            seg_digests[i] = seg.digest;
            prev_end = end;
        }

        let graph = MappedCsr {
            map,
            num_vertices: n,
            num_edges: m,
            weighted: header.weighted,
            seg_bounds,
            seg_digests,
            slices: Vec::new(),
        };

        // Row pointers must be monotone and end exactly at num_edges, in
        // both directions; this is what makes the panic-free GraphView
        // accessors sound.
        for (seg, dir) in [(SEG_OUT_ROWPTR, "out"), (SEG_IN_ROWPTR, "in")] {
            let rowptr = graph.seg(seg);
            let mut prev = u32_at(rowptr, 0);
            if prev != 0 {
                return Err(ReadGraphError::Corrupt(format!(
                    "{dir} row pointers start at {prev}, expected 0"
                )));
            }
            for v in 1..=n {
                let cur = u32_at(rowptr, v);
                if cur < prev {
                    return Err(ReadGraphError::Corrupt(format!(
                        "{dir} row pointers not monotone at vertex {v} ({cur} < {prev})"
                    )));
                }
                prev = cur;
            }
            if prev as usize != m {
                return Err(ReadGraphError::Corrupt(format!(
                    "{dir} row pointers end at {prev}, header claims {m} edges"
                )));
            }
        }

        // Decode and sanity-check the slice index (small: one entry per
        // slice, not per vertex).
        let raw = graph.seg(SEG_SLICE_INDEX);
        let mut slices = Vec::with_capacity(header.slice_count as usize);
        for s in 0..header.slice_count as usize {
            let at = s * SLICE_ENTRY_BYTES as usize;
            let f = |o: usize| u64::from_le_bytes(raw[at + o..at + o + 8].try_into().unwrap());
            slices.push(SliceExtent {
                start: f(0),
                end: f(8),
                edge_start: f(16),
                edge_end: f(24),
            });
        }
        let rowptr = graph.seg(SEG_OUT_ROWPTR);
        let mut cursor = 0u64;
        let mut edge_cursor = 0u64;
        for (i, s) in slices.iter().enumerate() {
            let rows_ok = s.start == cursor && s.end > s.start && s.end <= n64;
            let edges_ok = s.edge_start == edge_cursor
                && s.edge_start == u64::from(u32_at(rowptr, s.start as usize))
                && s.edge_end == u64::from(u32_at(rowptr, s.end as usize));
            if !rows_ok || !edges_ok {
                return Err(ReadGraphError::Corrupt(format!(
                    "slice {i} ({s:?}) does not tile the vertex/edge space"
                )));
            }
            cursor = s.end;
            edge_cursor = s.edge_end;
        }
        if header.slice_count > 0 && (cursor != n64 || edge_cursor != m64) {
            return Err(ReadGraphError::Corrupt(format!(
                "slice index covers {cursor}/{n64} vertices, {edge_cursor}/{m64} edges"
            )));
        }
        if header.slice_count == 0 && n > 0 {
            return Err(ReadGraphError::Corrupt(
                "non-empty graph with an empty slice index".into(),
            ));
        }

        Ok(MappedCsr { slices, ..graph })
    }

    /// Recomputes every segment digest against the header.
    ///
    /// # Errors
    ///
    /// [`ReadGraphError::ChecksumMismatch`] naming the first segment whose
    /// bytes disagree with the digest stored in the header.
    pub fn verify_checksums(&self) -> Result<(), ReadGraphError> {
        for (i, (&stored, name)) in self.seg_digests.iter().zip(SEG_NAMES).enumerate() {
            let computed = digest_of(self.seg(i));
            if computed != stored {
                return Err(ReadGraphError::ChecksumMismatch(format!(
                    "segment {name} digest {computed:#018x} != stored {stored:#018x}"
                )));
            }
        }
        Ok(())
    }

    fn seg(&self, i: usize) -> &[u8] {
        let (lo, hi) = self.seg_bounds[i];
        &self.map.bytes()[lo..hi]
    }

    /// The per-slice index stored in the container: contiguous vertex
    /// ranges with their out-edge extents, matching
    /// [`Partition::contiguous`](crate::partition::Partition::contiguous)
    /// over this graph at the writer's slice capacity.
    pub fn slice_extents(&self) -> &[SliceExtent] {
        &self.slices
    }

    /// Total size of the backing file in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.map.bytes().len() as u64
    }

    /// Whether the bytes are served by a kernel file mapping (`false`
    /// means the portability fallback read the file onto the heap).
    pub fn is_kernel_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Materializes a fully-resident [`CsrGraph`] with identical topology
    /// and weights — the bridge the differential oracle uses to pin
    /// mapped ≡ resident.
    pub fn to_csr(&self) -> CsrGraph {
        let n = self.num_vertices;
        let m = self.num_edges;
        let rowptr = self.seg(SEG_OUT_ROWPTR);
        let neigh = self.seg(SEG_OUT_NEIGHBORS);
        let mut out_offsets = Vec::with_capacity(n + 1);
        for v in 0..=n {
            out_offsets.push(u32_at(rowptr, v));
        }
        let mut out_neighbors = Vec::with_capacity(m);
        for e in 0..m {
            out_neighbors.push(VertexId::new(u32_at(neigh, e)));
        }
        let out_weights = if self.weighted {
            let w = self.seg(SEG_OUT_WEIGHTS);
            (0..m).map(|e| f32::from_bits(u32_at(w, e))).collect()
        } else {
            vec![1.0; m]
        };
        CsrGraph::from_parts(
            n as u32,
            out_offsets,
            out_neighbors,
            out_weights,
            self.weighted,
        )
    }

    #[inline]
    fn edge_at(&self, neigh_seg: usize, weight_seg: usize, idx: usize) -> EdgeRef {
        let other = VertexId::new(u32_at(self.seg(neigh_seg), idx));
        let weight = if self.weighted {
            f32::from_bits(u32_at(self.seg(weight_seg), idx))
        } else {
            1.0
        };
        EdgeRef { other, weight }
    }

    #[inline]
    fn rowptr_pair(&self, rowptr_seg: usize, v: VertexId) -> (usize, usize) {
        let seg = self.seg(rowptr_seg);
        let lo = u32_at(seg, v.index()) as usize;
        let hi = u32_at(seg, v.index() + 1) as usize;
        (lo, hi)
    }
}

impl GraphView for MappedCsr {
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn is_weighted(&self) -> bool {
        self.weighted
    }

    fn out_degree(&self, v: VertexId) -> u32 {
        let (lo, hi) = self.rowptr_pair(SEG_OUT_ROWPTR, v);
        (hi - lo) as u32
    }

    fn out_edge(&self, v: VertexId, i: u32) -> EdgeRef {
        let (lo, hi) = self.rowptr_pair(SEG_OUT_ROWPTR, v);
        let idx = lo + i as usize;
        assert!(idx < hi, "edge index {i} out of range for {v}");
        self.edge_at(SEG_OUT_NEIGHBORS, SEG_OUT_WEIGHTS, idx)
    }

    fn out_edge_base(&self, v: VertexId) -> usize {
        u32_at(self.seg(SEG_OUT_ROWPTR), v.index()) as usize
    }

    fn in_degree(&self, v: VertexId) -> u32 {
        let (lo, hi) = self.rowptr_pair(SEG_IN_ROWPTR, v);
        (hi - lo) as u32
    }

    fn in_edge(&self, v: VertexId, i: u32) -> EdgeRef {
        let (lo, hi) = self.rowptr_pair(SEG_IN_ROWPTR, v);
        let idx = lo + i as usize;
        assert!(idx < hi, "edge index {i} out of range for {v}");
        self.edge_at(SEG_IN_NEIGHBORS, SEG_IN_WEIGHTS, idx)
    }
}
