//! Read-only memory mapping, the only `unsafe` code in the crate.
//!
//! The workspace is hermetic (no external crates), so instead of `memmap2`
//! we declare the two libc symbols we need — `mmap` / `munmap` — directly;
//! std already links libc on every unix target. All unsafety is confined
//! to this module: the rest of the container code sees a [`Mapping`] as a
//! plain `&[u8]`.
//!
//! On non-unix targets (and whenever `mmap` fails, e.g. on a filesystem
//! that cannot map) we fall back to reading the file into an anonymous
//! heap buffer, trading residency for portability; callers cannot observe
//! the difference except through memory footprint.

use std::fs::File;
use std::io::{self, Read};

/// A read-only byte image of a file, memory-mapped when the platform
/// allows it and heap-buffered otherwise.
///
/// # Caveats
///
/// Like every file mapping, the kernel does not freeze the underlying
/// file: truncating it while mapped can fault the process. Containers are
/// written once and then opened read-only, so this is the standard mmap
/// contract, not an extra hazard.
pub(crate) enum Mapping {
    /// Kernel file mapping (unix only).
    #[cfg(unix)]
    Mapped {
        /// Page-aligned base address returned by `mmap`.
        ptr: *const u8,
        /// Mapping length in bytes (the file length at map time).
        len: usize,
    },
    /// Heap fallback: the whole file read into memory.
    Heap(Vec<u8>),
}

// SAFETY: the mapping is PROT_READ-only and never handed out mutably; a
// shared read-only page range is safe to reference from any thread, which
// is what lets `MappedCsr` satisfy the `Sync` bound the shard-parallel
// and turbo engines require.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    // Values shared by Linux and the BSD family for the flags we use.
    pub const PROT_READ: c_int = 1;
    pub const MAP_SHARED: c_int = 1;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl Mapping {
    /// Maps `file` read-only, falling back to a heap copy if mapping is
    /// unavailable. Zero-length files become an empty heap buffer (`mmap`
    /// rejects length 0).
    pub fn map(file: &File) -> io::Result<Mapping> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too large to map on this platform",
            ));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(Mapping::Heap(Vec::new()));
        }
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: we pass a null hint, a length matching the file, and
            // a valid open fd; the result is checked against MAP_FAILED
            // before use and unmapped exactly once in Drop.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr != sys::MAP_FAILED {
                return Ok(Mapping::Mapped {
                    ptr: ptr as *const u8,
                    len,
                });
            }
            // Fall through to the heap path on EINVAL/ENODEV etc.
        }
        let mut buf = Vec::with_capacity(len);
        let mut reader = file;
        reader.read_to_end(&mut buf)?;
        Ok(Mapping::Heap(buf))
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            // SAFETY: ptr/len came from a successful PROT_READ mmap that
            // stays live until Drop, and no mutable access ever exists.
            Mapping::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Mapping::Heap(buf) => buf,
        }
    }

    /// Whether the bytes are kernel-mapped (false: heap fallback).
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(unix)]
            Mapping::Mapped { .. } => true,
            Mapping::Heap(_) => false,
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Mapping::Mapped { ptr, len } = self {
            // SAFETY: exactly the region a successful mmap returned;
            // dropped once, and no borrow of the bytes can outlive `self`.
            unsafe {
                sys::munmap(*ptr as *mut std::os::raw::c_void, *len);
            }
        }
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            #[cfg(unix)]
            Mapping::Mapped { len, .. } => f.debug_struct("Mapped").field("len", len).finish(),
            Mapping::Heap(buf) => f.debug_struct("Heap").field("len", &buf.len()).finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir().join(format!("gp-mmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.bin");
        let payload: Vec<u8> = (0..4096u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let map = Mapping::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(map.bytes(), &payload[..]);
        #[cfg(unix)]
        assert!(map.is_mapped());
        drop(map);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_bytes() {
        let dir = std::env::temp_dir().join(format!("gp-mmap-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::File::create(&path).unwrap();
        let map = Mapping::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.bytes().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
