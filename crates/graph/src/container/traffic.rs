//! Byte-traffic metering for out-of-core runs.
//!
//! [`MeteredView`] wraps any [`GraphView`] and counts the container bytes
//! each accessor touches, split into row-pointer traffic and edge-list
//! traffic — the two access classes whose request-size mix the Dann et al.
//! memory-access-pattern studies identify as the determinant of graph
//! accelerator bandwidth efficiency. Dividing by the number of edges read
//! yields *bytes moved per edge*, the headline out-of-core metric in
//! `BENCH_outofcore.json`.
//!
//! Counters are relaxed atomics so the wrapper satisfies the `Sync` bound
//! the shard-parallel and turbo engines require; metering costs two
//! uncontended atomic adds per accessor call.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{EdgeRef, GraphView, VertexId};

/// Accumulated traffic snapshot from a [`MeteredView`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Traffic {
    /// Bytes of row-pointer (offset array) reads.
    pub rowptr_bytes: u64,
    /// Bytes of edge-list (neighbor + weight) reads.
    pub edge_bytes: u64,
    /// Number of individual edge reads.
    pub edges_read: u64,
}

impl Traffic {
    /// Total bytes moved.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.rowptr_bytes + self.edge_bytes
    }

    /// Average bytes moved per edge read (`NaN` when no edges were read).
    #[must_use]
    pub fn bytes_per_edge(&self) -> f64 {
        self.total_bytes() as f64 / self.edges_read as f64
    }
}

/// A [`GraphView`] adapter that meters the bytes its inner view serves.
///
/// Accounting is at accessor granularity against the container layout:
/// a degree lookup reads two adjacent `u32` row pointers (8 bytes), an
/// edge-base lookup one (4 bytes), and an edge read one `u32` neighbor
/// plus, on weighted graphs, one `f32` weight (4 or 8 bytes).
#[derive(Debug)]
pub struct MeteredView<'a, G: GraphView + ?Sized> {
    inner: &'a G,
    weighted: bool,
    rowptr_bytes: AtomicU64,
    edge_bytes: AtomicU64,
    edges_read: AtomicU64,
}

impl<'a, G: GraphView + ?Sized> MeteredView<'a, G> {
    /// Wraps `inner` with zeroed counters.
    pub fn new(inner: &'a G) -> Self {
        MeteredView {
            inner,
            weighted: inner.is_weighted(),
            rowptr_bytes: AtomicU64::new(0),
            edge_bytes: AtomicU64::new(0),
            edges_read: AtomicU64::new(0),
        }
    }

    /// Current counter values.
    pub fn snapshot(&self) -> Traffic {
        Traffic {
            rowptr_bytes: self.rowptr_bytes.load(Ordering::Relaxed),
            edge_bytes: self.edge_bytes.load(Ordering::Relaxed),
            edges_read: self.edges_read.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the counters (e.g. between algorithms on a shared mapping).
    pub fn reset(&self) {
        self.rowptr_bytes.store(0, Ordering::Relaxed);
        self.edge_bytes.store(0, Ordering::Relaxed);
        self.edges_read.store(0, Ordering::Relaxed);
    }

    #[inline]
    fn meter_edge(&self) {
        let bytes = if self.weighted { 8 } else { 4 };
        self.edge_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.edges_read.fetch_add(1, Ordering::Relaxed);
    }
}

impl<G: GraphView + ?Sized> GraphView for MeteredView<'_, G> {
    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.inner.num_edges()
    }

    fn edge_span(&self) -> usize {
        self.inner.edge_span()
    }

    fn is_weighted(&self) -> bool {
        self.weighted
    }

    fn out_degree(&self, v: VertexId) -> u32 {
        self.rowptr_bytes.fetch_add(8, Ordering::Relaxed);
        self.inner.out_degree(v)
    }

    fn out_edge(&self, v: VertexId, i: u32) -> EdgeRef {
        self.meter_edge();
        self.inner.out_edge(v, i)
    }

    fn out_edge_base(&self, v: VertexId) -> usize {
        self.rowptr_bytes.fetch_add(4, Ordering::Relaxed);
        self.inner.out_edge_base(v)
    }

    fn in_degree(&self, v: VertexId) -> u32 {
        self.rowptr_bytes.fetch_add(8, Ordering::Relaxed);
        self.inner.in_degree(v)
    }

    fn in_edge(&self, v: VertexId, i: u32) -> EdgeRef {
        self.meter_edge();
        self.inner.in_edge(v, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn counts_accessor_traffic() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(VertexId::new(0), VertexId::new(1), 2.0);
        b.add_edge(VertexId::new(0), VertexId::new(2), 3.0);
        b.weighted(true);
        let g = b.build();
        let metered = MeteredView::new(&g);
        let v0 = VertexId::new(0);
        let deg = metered.out_degree(v0); // 8 rowptr bytes
        for i in 0..deg {
            metered.out_edge(v0, i); // 8 edge bytes each (weighted)
        }
        metered.out_edge_base(v0); // 4 rowptr bytes
        let t = metered.snapshot();
        assert_eq!(t.rowptr_bytes, 12);
        assert_eq!(t.edge_bytes, 16);
        assert_eq!(t.edges_read, 2);
        assert_eq!(t.total_bytes(), 28);
        assert!((t.bytes_per_edge() - 14.0).abs() < 1e-12);
        metered.reset();
        assert_eq!(metered.snapshot(), Traffic::default());
    }

    #[test]
    fn unweighted_edges_cost_four_bytes() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(VertexId::new(0), VertexId::new(1), 1.0);
        let g = b.build();
        let metered = MeteredView::new(&g);
        metered.in_degree(VertexId::new(1));
        metered.in_edge(VertexId::new(1), 0);
        let t = metered.snapshot();
        assert_eq!((t.rowptr_bytes, t.edge_bytes, t.edges_read), (8, 4, 1));
    }
}
