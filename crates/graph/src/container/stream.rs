//! External-memory container construction from an edge stream.
//!
//! [`build_streaming`] assembles a container without ever materializing
//! the graph: the edge stream spills to per-source-bucket temporary files
//! (12 bytes per edge), each bucket is loaded alone, stable-sorted by
//! `(src, dst)` and deduplicated keep-first — exactly the
//! [`GraphBuilder`](crate::GraphBuilder) canonicalization, applied one
//! bucket at a time — and the CSR segments stream out as buckets resolve.
//! A second bucketed spill of `(dst, src, weight)` records builds the
//! in-adjacency mirror the same way. Peak resident memory is one bucket's
//! edges plus the row-pointer arrays, independent of total edge count, so
//! graphs whose resident CSR would not fit in RAM can still be built.
//!
//! Because each bucket covers a contiguous source range, the per-bucket
//! stable sort is the restriction of the global stable sort, and the
//! output is bit-identical to `GraphBuilder::build` over the same stream
//! (defaults: dedup on, self-loops dropped, no symmetrization).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use super::write::{layout, rowptr_bytes, ContainerSummary, ContainerWriteError, CountingWriter};
use super::{
    digest_of, encode_slice_index, slice_extents_from_rowptr, Header, SegmentDigest, SEG_COUNT,
};

/// Tuning and semantics knobs for [`build_streaming`].
#[derive(Debug, Clone, Copy)]
pub struct StreamBuildOptions {
    /// Mark the graph as carrying meaningful weights (writes the weight
    /// segments). Default `false`.
    pub weighted: bool,
    /// Maximum vertices per entry of the stored slice index. Default
    /// `1 << 16`, the accelerator-sized slice the partition machinery uses.
    pub slice_vertices: usize,
    /// Vertices per spill bucket — the unit of resident memory during the
    /// build (one bucket's edges are sorted in RAM at a time). Default
    /// `1 << 18`.
    pub bucket_vertices: usize,
}

impl Default for StreamBuildOptions {
    fn default() -> Self {
        StreamBuildOptions {
            weighted: false,
            slice_vertices: 1 << 16,
            bucket_vertices: 1 << 18,
        }
    }
}

/// Temporary spill directory, removed on drop (including error paths).
struct SpillDir(PathBuf);

impl SpillDir {
    fn create(container: &Path) -> io::Result<SpillDir> {
        let name = container
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "container".into());
        let dir = container
            .parent()
            .unwrap_or_else(|| Path::new("."))
            .join(format!(".{name}.spill-{}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        Ok(SpillDir(dir))
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// A segment temp file that digests everything written through it.
struct DigestingWriter {
    w: BufWriter<File>,
    digest: SegmentDigest,
    len: u64,
    path: PathBuf,
}

impl DigestingWriter {
    fn create(path: PathBuf) -> io::Result<DigestingWriter> {
        Ok(DigestingWriter {
            w: BufWriter::new(File::create(&path)?),
            digest: SegmentDigest::new(),
            len: 0,
            path,
        })
    }

    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.w.write_all(bytes)?;
        self.digest.update(bytes);
        self.len += bytes.len() as u64;
        Ok(())
    }

    /// Flushes and returns `(path, byte_len, digest)`.
    fn finish(mut self) -> io::Result<(PathBuf, u64, u64)> {
        self.w.flush()?;
        Ok((self.path, self.len, self.digest.finish()))
    }
}

/// One spilled edge record: two ids and a weight bit pattern.
const RECORD_BYTES: usize = 12;

fn push_record(w: &mut BufWriter<File>, a: u32, b: u32, wbits: u32) -> io::Result<()> {
    let mut rec = [0u8; RECORD_BYTES];
    rec[0..4].copy_from_slice(&a.to_le_bytes());
    rec[4..8].copy_from_slice(&b.to_le_bytes());
    rec[8..12].copy_from_slice(&wbits.to_le_bytes());
    w.write_all(&rec)
}

fn read_records(path: &Path) -> io::Result<Vec<(u32, u32, u32)>> {
    let mut bytes = Vec::new();
    BufReader::new(File::open(path)?).read_to_end(&mut bytes)?;
    debug_assert_eq!(bytes.len() % RECORD_BYTES, 0);
    Ok(bytes
        .chunks_exact(RECORD_BYTES)
        .map(|rec| {
            (
                u32::from_le_bytes(rec[0..4].try_into().unwrap()),
                u32::from_le_bytes(rec[4..8].try_into().unwrap()),
                u32::from_le_bytes(rec[8..12].try_into().unwrap()),
            )
        })
        .collect())
}

fn open_bucket_writers(
    dir: &SpillDir,
    prefix: &str,
    buckets: usize,
) -> io::Result<Vec<BufWriter<File>>> {
    (0..buckets)
        .map(|b| {
            Ok(BufWriter::new(File::create(
                dir.file(&format!("{prefix}{b}")),
            )?))
        })
        .collect()
}

/// Builds a container at `path` from the edge stream `feed` produces,
/// without materializing the graph in memory.
///
/// `feed` is called once with a sink closure and must push every
/// `(src, dst, weight)` triple through it — e.g. by forwarding
/// [`rmat_edges`](crate::generators::rmat_edges) or parsing an edge-list
/// file line by line. Semantics match `GraphBuilder` defaults: self loops
/// dropped, parallel edges deduplicated keeping the first-streamed weight.
/// The resulting file is byte-identical to
/// [`write_container`](super::write_container) over the resident build of
/// the same stream (same `slice_vertices`).
///
/// # Errors
///
/// [`ContainerWriteError::Invalid`] when an edge references a vertex
/// `>= num_vertices` or the deduplicated edge count exceeds `u32::MAX`;
/// [`ContainerWriteError::Io`] on filesystem failure. Spill files live in
/// a hidden sibling directory of `path` and are removed on all paths.
///
/// # Panics
///
/// Panics if `slice_vertices` or `bucket_vertices` is zero.
pub fn build_streaming<F>(
    path: &Path,
    num_vertices: usize,
    opts: &StreamBuildOptions,
    feed: F,
) -> Result<ContainerSummary, ContainerWriteError>
where
    F: FnOnce(&mut dyn FnMut(u32, u32, f32)),
{
    assert!(opts.bucket_vertices > 0, "bucket capacity must be nonzero");
    let n = num_vertices;
    if u32::try_from(n).is_err() {
        return Err(ContainerWriteError::Invalid(format!(
            "{n} vertices exceed the u32 id space"
        )));
    }
    let buckets = n.div_ceil(opts.bucket_vertices);
    let dir = SpillDir::create(path)?;

    // Phase A: spill the raw stream into per-source-bucket files.
    let mut out_spill = open_bucket_writers(&dir, "out", buckets)?;
    let mut io_err: Option<io::Error> = None;
    let mut bad_edge: Option<String> = None;
    {
        let mut sink = |s: u32, d: u32, w: f32| {
            if io_err.is_some() || bad_edge.is_some() {
                return;
            }
            if s as usize >= n || d as usize >= n {
                bad_edge = Some(format!("edge ({s} -> {d}) out of range for {n} vertices"));
                return;
            }
            if s == d {
                return; // self loops dropped, as in GraphBuilder
            }
            let b = s as usize / opts.bucket_vertices;
            if let Err(e) = push_record(&mut out_spill[b], s, d, w.to_bits()) {
                io_err = Some(e);
            }
        };
        feed(&mut sink);
    }
    if let Some(e) = io_err {
        return Err(e.into());
    }
    if let Some(what) = bad_edge {
        return Err(ContainerWriteError::Invalid(what));
    }
    for w in &mut out_spill {
        w.flush()?;
    }
    drop(out_spill);

    // Phase B: per bucket — sort, dedup, emit out-CSR rows/edges, and
    // re-spill (dst, src, weight) for the in-mirror.
    let mut in_spill = open_bucket_writers(&dir, "in", buckets)?;
    let mut out_rowptr: Vec<u32> = vec![0; n + 1];
    let mut out_neigh = DigestingWriter::create(dir.file("out_neigh.seg"))?;
    let mut out_weights = DigestingWriter::create(dir.file("out_weights.seg"))?;
    let mut edges: u64 = 0;
    for b in 0..buckets {
        let lo = b * opts.bucket_vertices;
        let hi = n.min(lo + opts.bucket_vertices);
        let mut recs = read_records(&dir.file(&format!("out{b}")))?;
        // Stable per-bucket sort == restriction of the global stable sort,
        // so keep-first dedup picks the same surviving edge the resident
        // GraphBuilder would.
        recs.sort_by_key(|r| (r.0, r.1));
        recs.dedup_by_key(|r| (r.0, r.1));
        edges += recs.len() as u64;
        if edges > u64::from(u32::MAX) {
            return Err(ContainerWriteError::Invalid(format!(
                "deduplicated edge count exceeds u32::MAX at bucket {b}"
            )));
        }
        let mut deg = vec![0u32; hi - lo];
        for &(s, d, wbits) in &recs {
            deg[s as usize - lo] += 1;
            out_neigh.put(&d.to_le_bytes())?;
            if opts.weighted {
                out_weights.put(&wbits.to_le_bytes())?;
            }
            let db = d as usize / opts.bucket_vertices;
            push_record(&mut in_spill[db], d, s, wbits)?;
        }
        for v in lo..hi {
            out_rowptr[v + 1] = out_rowptr[v] + deg[v - lo];
        }
        std::fs::remove_file(dir.file(&format!("out{b}")))?;
    }
    for w in &mut in_spill {
        w.flush()?;
    }
    drop(in_spill);
    let m = edges;

    // Phase C: the in-mirror, sorted by (dst, src) — the counting-sort
    // order CsrGraph::from_parts produces for the resident build.
    let mut in_rowptr: Vec<u32> = vec![0; n + 1];
    let mut in_neigh = DigestingWriter::create(dir.file("in_neigh.seg"))?;
    let mut in_weights = DigestingWriter::create(dir.file("in_weights.seg"))?;
    for b in 0..buckets {
        let lo = b * opts.bucket_vertices;
        let hi = n.min(lo + opts.bucket_vertices);
        let mut recs = read_records(&dir.file(&format!("in{b}")))?;
        recs.sort_by_key(|r| (r.0, r.1));
        let mut deg = vec![0u32; hi - lo];
        for &(d, s, wbits) in &recs {
            deg[d as usize - lo] += 1;
            in_neigh.put(&s.to_le_bytes())?;
            if opts.weighted {
                in_weights.put(&wbits.to_le_bytes())?;
            }
        }
        for v in lo..hi {
            in_rowptr[v + 1] = in_rowptr[v] + deg[v - lo];
        }
        std::fs::remove_file(dir.file(&format!("in{b}")))?;
    }

    // Assemble the container: all digests are known before the header is
    // written, so the file streams out front to back.
    let slices = slice_extents_from_rowptr(&out_rowptr, opts.slice_vertices);
    let slice_index = encode_slice_index(&slices);
    let out_rowptr_bytes = rowptr_bytes(&out_rowptr);
    let in_rowptr_bytes = rowptr_bytes(&in_rowptr);
    drop(out_rowptr);
    drop(in_rowptr);

    let (out_neigh_path, out_neigh_len, out_neigh_digest) = out_neigh.finish()?;
    let (out_w_path, out_w_len, out_w_digest) = out_weights.finish()?;
    let (in_neigh_path, in_neigh_len, in_neigh_digest) = in_neigh.finish()?;
    let (in_w_path, in_w_len, in_w_digest) = in_weights.finish()?;
    debug_assert_eq!(out_neigh_len, m * 4);
    debug_assert_eq!(in_neigh_len, m * 4);

    let seg_lens = [
        out_rowptr_bytes.len() as u64,
        out_neigh_len,
        out_w_len,
        in_rowptr_bytes.len() as u64,
        in_neigh_len,
        in_w_len,
        slice_index.len() as u64,
    ];
    let (mut segs, file_bytes) = layout(&seg_lens);
    let digests = [
        digest_of(&out_rowptr_bytes),
        out_neigh_digest,
        out_w_digest,
        digest_of(&in_rowptr_bytes),
        in_neigh_digest,
        in_w_digest,
        digest_of(&slice_index),
    ];
    for (seg, d) in segs.iter_mut().zip(digests) {
        seg.digest = d;
    }
    let header = Header {
        num_vertices: n as u64,
        num_edges: m,
        weighted: opts.weighted,
        slice_count: slices.len() as u32,
        segments: segs,
    };

    let mut w = CountingWriter::new(BufWriter::new(File::create(path)?));
    w.write_all(&header.encode())?;
    let sources: [Option<&Path>; SEG_COUNT] = [
        None, // out_rowptr: in memory
        Some(&out_neigh_path),
        Some(&out_w_path),
        None, // in_rowptr: in memory
        Some(&in_neigh_path),
        Some(&in_w_path),
        None, // slice index: in memory
    ];
    let in_memory = [
        Some(&out_rowptr_bytes),
        None,
        None,
        Some(&in_rowptr_bytes),
        None,
        None,
        Some(&slice_index),
    ];
    for i in 0..SEG_COUNT {
        w.pad_to(segs[i].offset)?;
        if let Some(bytes) = in_memory[i] {
            w.write_all(bytes)?;
        } else if let Some(src) = sources[i] {
            io::copy(&mut BufReader::new(File::open(src)?), &mut w)?;
        }
        if w.pos() != segs[i].offset + segs[i].len {
            return Err(ContainerWriteError::Invalid(format!(
                "segment {i} wrote {} bytes, layout expected {}",
                w.pos() - segs[i].offset,
                segs[i].len
            )));
        }
    }
    debug_assert_eq!(w.pos(), file_bytes);
    let mut inner = w.into_inner();
    inner.flush()?;
    inner
        .into_inner()
        .map_err(io::IntoInnerError::into_error)?
        .sync_all()?;

    Ok(ContainerSummary {
        vertices: n as u64,
        edges: m,
        weighted: opts.weighted,
        slices: slices.len() as u32,
        file_bytes,
    })
}
