//! On-disk, mmap-able CSR container — graphs beyond resident memory.
//!
//! The in-memory binary codec in [`io`](crate::io) round-trips a graph
//! through a byte buffer, but decoding rebuilds the whole CSR in RAM. This
//! module grows that codec into a *container*: a binary file laid out so a
//! read-only memory mapping of it **is** the CSR, with no decode step and
//! no resident copy. A [`MappedCsr`] implements [`GraphView`](crate::GraphView)
//! directly over the mapped segments, so every execution backend — the
//! golden engines, the cycle-level accelerator with its slice-swapping
//! machinery, the shard-parallel engine, turbo — runs unmodified against
//! disk-resident graphs, with the OS page cache deciding what is hot.
//!
//! # Layout (`GPC1`, version 1, little-endian)
//!
//! ```text
//! offset 0    fixed 256-byte header:
//!               magic "GPC1" · version u16 · flags u16 (bit 0: weighted)
//!               num_vertices u64 · num_edges u64 · slice_count u32 · pad
//!               7 segment descriptors (offset u64, len u64, digest u64)
//!               header digest u64 over bytes [0, 200) · zero padding
//! then        segments, each 64-byte aligned, in this order:
//!               out_rowptr   (num_vertices + 1) × u32
//!               out_neighbors  num_edges × u32
//!               out_weights    num_edges × f32   (empty when unweighted)
//!               in_rowptr    (num_vertices + 1) × u32
//!               in_neighbors   num_edges × u32
//!               in_weights     num_edges × f32   (empty when unweighted)
//!               slice_index    slice_count × 32 bytes
//! ```
//!
//! Design rationale, following the Dann et al. access-pattern studies (the
//! two "Memory Access Patterns for/of Graph Processing Accelerators"
//! papers): graph accelerators live or die on request-size distribution
//! and row-buffer locality, so the on-disk format keeps each access class
//! in its own dense, 64-byte-aligned segment — row-pointer reads are two
//! adjacent words, edge-list reads are contiguous bursts, and neither ever
//! straddles a transfer granule because of header skew. The per-slice
//! index mirrors the §IV-F slice-swapping machinery: contiguous vertex
//! ranges with their edge extents, so an out-of-core run can stream one
//! slice's worth of rows and edges at a time and account bytes moved per
//! edge, the headline metric.
//!
//! Integrity: every segment (and the header) carries a 64-bit digest with
//! the same index-mixed, order-independent construction as
//! [`gp_mem::integrity::ShadowChecksum`] — each 8-byte word contributes
//! [`slot_digest`]`(word_index, word)` to a
//! wrapping sum, so a flipped bit, a swapped word, or a resized segment all
//! change the digest. [`MappedCsr::open`] validates structure (magic,
//! version, alignment, extents, row-pointer monotonicity);
//! [`MappedCsr::open_verified`] additionally recomputes every digest.
//!
//! Containers are produced two ways:
//!
//! * [`write_container`] serializes a resident [`CsrGraph`](crate::CsrGraph)
//!   — the path the differential oracle uses to pin mapped ≡ resident;
//! * [`build_streaming`] assembles a container from an *edge stream*
//!   (e.g. [`rmat_edges`](crate::generators::rmat_edges)) without ever
//!   materializing the graph: edges spill to bucketed temporary files,
//!   each bucket is stable-sorted and deduplicated independently, and the
//!   result is bit-identical to the resident build of the same stream.

mod mapped;
#[allow(unsafe_code)]
mod mmap;
mod stream;
mod traffic;
mod write;

pub use mapped::MappedCsr;
pub use stream::{build_streaming, StreamBuildOptions};
pub use traffic::{MeteredView, Traffic};
pub use write::{write_container, ContainerSummary, ContainerWriteError};

use gp_mem::integrity::slot_digest;

use crate::io::ReadGraphError;

/// Container magic: the ASCII bytes `GPC1` as a little-endian `u32`.
pub const CONTAINER_MAGIC: u32 = u32::from_le_bytes(*b"GPC1");

/// Format version this build reads and writes.
pub const CONTAINER_VERSION: u16 = 1;

/// Required alignment of every segment, matching the DRAM transfer granule
/// the memory models assume (`gp_mem::LINE_BYTES`).
pub const SEGMENT_ALIGN: u64 = 64;

/// Fixed size of the header region; the first segment starts here.
pub const HEADER_BYTES: u64 = 256;

/// Bytes of one slice-index entry.
pub const SLICE_ENTRY_BYTES: u64 = 32;

/// Flag bit: the graph carries meaningful edge weights.
const FLAG_WEIGHTED: u16 = 1;

/// Number of segments in a container, in file order.
pub(crate) const SEG_COUNT: usize = 7;

/// Segment indexes into [`Header::segments`].
pub(crate) const SEG_OUT_ROWPTR: usize = 0;
pub(crate) const SEG_OUT_NEIGHBORS: usize = 1;
pub(crate) const SEG_OUT_WEIGHTS: usize = 2;
pub(crate) const SEG_IN_ROWPTR: usize = 3;
pub(crate) const SEG_IN_NEIGHBORS: usize = 4;
pub(crate) const SEG_IN_WEIGHTS: usize = 5;
pub(crate) const SEG_SLICE_INDEX: usize = 6;

/// Human-readable segment names, indexed like [`Header::segments`].
pub(crate) const SEG_NAMES: [&str; SEG_COUNT] = [
    "out_rowptr",
    "out_neighbors",
    "out_weights",
    "in_rowptr",
    "in_neighbors",
    "in_weights",
    "slice_index",
];

/// Byte offset of the header digest; it covers bytes `[0, HEADER_DIGEST_AT)`.
/// Public so corruption tests can re-seal a deliberately patched header.
pub const HEADER_DIGEST_AT: usize = 200;

/// Rounds `off` up to the next [`SEGMENT_ALIGN`] boundary.
pub(crate) fn align_up(off: u64) -> u64 {
    off.div_ceil(SEGMENT_ALIGN) * SEGMENT_ALIGN
}

/// Location and integrity digest of one segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct SegmentDesc {
    /// Byte offset from the start of the file.
    pub offset: u64,
    /// Length in bytes (0 for absent weight segments).
    pub len: u64,
    /// [`SegmentDigest`] of the segment bytes.
    pub digest: u64,
}

/// One entry of the per-slice index: a contiguous vertex range and the
/// out-edge extent it owns, the granularity at which the §IV-F
/// slice-swapping machinery streams a disk-resident graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceExtent {
    /// First vertex of the slice (inclusive).
    pub start: u64,
    /// One past the last vertex (exclusive).
    pub end: u64,
    /// First out-edge index owned by the slice.
    pub edge_start: u64,
    /// One past the last out-edge index.
    pub edge_end: u64,
}

impl SliceExtent {
    /// Bytes this slice's rows and out-edges occupy in the container —
    /// the unit of bytes-moved accounting for slice streaming.
    #[must_use]
    pub fn bytes(&self, weighted: bool) -> u64 {
        let rows = (self.end - self.start + 1) * 4;
        let edges = (self.edge_end - self.edge_start) * if weighted { 8 } else { 4 };
        rows + edges
    }
}

/// Streaming digest over a byte sequence, reusing the
/// [`ShadowChecksum`](gp_mem::integrity::ShadowChecksum)-style mixing:
/// each 8-byte little-endian word (zero-padded tail) contributes
/// `slot_digest(word_index, word)` to a wrapping sum, and the total length
/// is folded in at the end so padding is not confusable with real zeros.
#[derive(Debug, Clone, Default)]
pub struct SegmentDigest {
    sum: u64,
    words: u64,
    total_len: u64,
    tail: [u8; 8],
    tail_len: usize,
}

impl SegmentDigest {
    /// A fresh digest.
    #[must_use]
    pub fn new() -> Self {
        SegmentDigest::default()
    }

    /// Feeds `bytes` into the digest.
    pub fn update(&mut self, mut bytes: &[u8]) {
        self.total_len += bytes.len() as u64;
        if self.tail_len > 0 {
            let need = 8 - self.tail_len;
            let take = need.min(bytes.len());
            self.tail[self.tail_len..self.tail_len + take].copy_from_slice(&bytes[..take]);
            self.tail_len += take;
            bytes = &bytes[take..];
            if self.tail_len == 8 {
                self.absorb(self.tail);
                self.tail_len = 0;
            } else {
                return;
            }
        }
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.absorb(c.try_into().expect("chunks_exact(8)"));
        }
        let rem = chunks.remainder();
        self.tail[..rem.len()].copy_from_slice(rem);
        self.tail_len = rem.len();
    }

    fn absorb(&mut self, word: [u8; 8]) {
        self.sum = self
            .sum
            .wrapping_add(slot_digest(self.words as usize, u64::from_le_bytes(word)));
        self.words += 1;
    }

    /// Finishes the digest (zero-padding any partial tail word).
    #[must_use]
    pub fn finish(mut self) -> u64 {
        if self.tail_len > 0 {
            self.tail[self.tail_len..].fill(0);
            self.absorb(self.tail);
        }
        self.sum
            .wrapping_add(slot_digest(self.words as usize, self.total_len))
    }
}

/// Digest of a complete byte slice.
#[must_use]
pub(crate) fn digest_of(bytes: &[u8]) -> u64 {
    let mut d = SegmentDigest::new();
    d.update(bytes);
    d.finish()
}

/// Decoded container header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Header {
    pub num_vertices: u64,
    pub num_edges: u64,
    pub weighted: bool,
    pub slice_count: u32,
    pub segments: [SegmentDesc; SEG_COUNT],
}

impl Header {
    /// Serializes the header into its fixed 256-byte region, computing the
    /// embedded header digest.
    pub fn encode(&self) -> [u8; HEADER_BYTES as usize] {
        let mut buf = [0u8; HEADER_BYTES as usize];
        buf[0..4].copy_from_slice(&CONTAINER_MAGIC.to_le_bytes());
        buf[4..6].copy_from_slice(&CONTAINER_VERSION.to_le_bytes());
        let flags: u16 = if self.weighted { FLAG_WEIGHTED } else { 0 };
        buf[6..8].copy_from_slice(&flags.to_le_bytes());
        buf[8..16].copy_from_slice(&self.num_vertices.to_le_bytes());
        buf[16..24].copy_from_slice(&self.num_edges.to_le_bytes());
        buf[24..28].copy_from_slice(&self.slice_count.to_le_bytes());
        // buf[28..32] reserved, zero.
        for (i, seg) in self.segments.iter().enumerate() {
            let at = 32 + i * 24;
            buf[at..at + 8].copy_from_slice(&seg.offset.to_le_bytes());
            buf[at + 8..at + 16].copy_from_slice(&seg.len.to_le_bytes());
            buf[at + 16..at + 24].copy_from_slice(&seg.digest.to_le_bytes());
        }
        let digest = digest_of(&buf[..HEADER_DIGEST_AT]);
        buf[HEADER_DIGEST_AT..HEADER_DIGEST_AT + 8].copy_from_slice(&digest.to_le_bytes());
        buf
    }

    /// Parses and integrity-checks the header region.
    ///
    /// # Errors
    ///
    /// [`ReadGraphError::Truncated`] when shorter than the fixed header,
    /// [`ReadGraphError::BadMagic`] / [`ReadGraphError::BadVersion`] on an
    /// alien or future file, [`ReadGraphError::ChecksumMismatch`] when the
    /// header digest disagrees, and [`ReadGraphError::Corrupt`] for
    /// unknown flag bits.
    pub fn decode(bytes: &[u8]) -> Result<Header, ReadGraphError> {
        if bytes.len() < HEADER_BYTES as usize {
            return Err(ReadGraphError::Truncated);
        }
        let u16_at = |at: usize| u16::from_le_bytes(bytes[at..at + 2].try_into().unwrap());
        let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        if u32_at(0) != CONTAINER_MAGIC {
            return Err(ReadGraphError::BadMagic);
        }
        let version = u16_at(4);
        if version != CONTAINER_VERSION {
            return Err(ReadGraphError::BadVersion(version));
        }
        let stored = u64_at(HEADER_DIGEST_AT);
        let computed = digest_of(&bytes[..HEADER_DIGEST_AT]);
        if stored != computed {
            return Err(ReadGraphError::ChecksumMismatch(format!(
                "header digest {computed:#018x} != stored {stored:#018x}"
            )));
        }
        let flags = u16_at(6);
        if flags & !FLAG_WEIGHTED != 0 {
            return Err(ReadGraphError::Corrupt(format!(
                "unknown header flag bits {flags:#06x}"
            )));
        }
        let mut segments = [SegmentDesc::default(); SEG_COUNT];
        for (i, seg) in segments.iter_mut().enumerate() {
            let at = 32 + i * 24;
            *seg = SegmentDesc {
                offset: u64_at(at),
                len: u64_at(at + 8),
                digest: u64_at(at + 16),
            };
        }
        Ok(Header {
            num_vertices: u64_at(8),
            num_edges: u64_at(16),
            weighted: flags & FLAG_WEIGHTED != 0,
            slice_count: u32_at(24),
            segments,
        })
    }
}

/// Computes the container's slice boundaries from a row-pointer array: the
/// same greedy edge-balancing walk as
/// [`Partition::contiguous`](crate::partition::Partition::contiguous), so
/// the index stored in a container equals the partition the slice-swapping
/// machinery would compute over the mapped graph with the same vertex cap.
pub(crate) fn slice_extents_from_rowptr(rowptr: &[u32], max_vertices: usize) -> Vec<SliceExtent> {
    assert!(max_vertices > 0, "slice capacity must be nonzero");
    let n = rowptr.len() - 1;
    if n == 0 {
        return Vec::new();
    }
    let m = rowptr[n] as usize;
    let num_slices = n.div_ceil(max_vertices);
    let target_edges = (m / num_slices).max(1);
    let mut slices = Vec::with_capacity(num_slices);
    let mut start = 0usize;
    while start < n {
        let mut end = start;
        let mut edges = 0usize;
        while end < n && end - start < max_vertices {
            edges += (rowptr[end + 1] - rowptr[end]) as usize;
            end += 1;
            let remaining_slices = num_slices - slices.len() - 1;
            if edges >= target_edges && remaining_slices * max_vertices >= n - end {
                break;
            }
        }
        slices.push(SliceExtent {
            start: start as u64,
            end: end as u64,
            edge_start: u64::from(rowptr[start]),
            edge_end: u64::from(rowptr[end]),
        });
        start = end;
    }
    slices
}

/// Serializes the slice index segment.
pub(crate) fn encode_slice_index(slices: &[SliceExtent]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(slices.len() * SLICE_ENTRY_BYTES as usize);
    for s in slices {
        buf.extend_from_slice(&s.start.to_le_bytes());
        buf.extend_from_slice(&s.end.to_le_bytes());
        buf.extend_from_slice(&s.edge_start.to_le_bytes());
        buf.extend_from_slice(&s.edge_end.to_le_bytes());
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_distinguishes_padding_from_zeros() {
        assert_ne!(digest_of(b"abc"), digest_of(b"abc\0\0\0\0\0"));
        assert_ne!(digest_of(b""), digest_of(b"\0"));
        assert_eq!(digest_of(b"graphpulse"), digest_of(b"graphpulse"));
    }

    #[test]
    fn digest_is_incremental_over_chunking() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let whole = digest_of(&data);
        for split in [1usize, 3, 7, 8, 13, 64, 999] {
            let mut d = SegmentDigest::new();
            for chunk in data.chunks(split) {
                d.update(chunk);
            }
            assert_eq!(d.finish(), whole, "split {split}");
        }
    }

    #[test]
    fn header_round_trips() {
        let mut segments = [SegmentDesc::default(); SEG_COUNT];
        for (i, s) in segments.iter_mut().enumerate() {
            *s = SegmentDesc {
                offset: HEADER_BYTES + (i as u64) * 128,
                len: 64 + i as u64,
                digest: 0xDEAD_0000 + i as u64,
            };
        }
        let h = Header {
            num_vertices: 42,
            num_edges: 999,
            weighted: true,
            slice_count: 3,
            segments,
        };
        let bytes = h.encode();
        assert_eq!(Header::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn header_detects_its_own_corruption() {
        let h = Header {
            num_vertices: 8,
            num_edges: 16,
            weighted: false,
            slice_count: 1,
            segments: [SegmentDesc::default(); SEG_COUNT],
        };
        let mut bytes = h.encode();
        bytes[16] ^= 1; // num_edges
        assert!(matches!(
            Header::decode(&bytes),
            Err(ReadGraphError::ChecksumMismatch(_))
        ));
    }

    #[test]
    fn slice_extents_cover_contiguously() {
        // Degrees 3, 0, 5, 1, 0, 2 -> rowptr below.
        let rowptr = [0u32, 3, 3, 8, 9, 9, 11];
        for cap in 1..=6usize {
            let slices = slice_extents_from_rowptr(&rowptr, cap);
            assert_eq!(slices[0].start, 0);
            assert_eq!(slices.last().unwrap().end, 6);
            assert_eq!(slices.last().unwrap().edge_end, 11);
            for w in slices.windows(2) {
                assert_eq!(w[0].end, w[1].start);
                assert_eq!(w[0].edge_end, w[1].edge_start);
            }
            for s in &slices {
                assert!((s.end - s.start) as usize <= cap);
            }
        }
    }

    #[test]
    fn slice_extents_empty_graph() {
        assert!(slice_extents_from_rowptr(&[0], 8).is_empty());
    }
}
