//! Graph slicing for out-of-core accelerator execution (§IV-F).
//!
//! The accelerator's coalescing queue direct-maps every resident vertex to a
//! slot, so a slice may hold at most `queue capacity` vertices. Graphs
//! larger than that are split into contiguous vertex ranges ("slices"); the
//! paper relabels vertices so each slice is contiguous, which our generators
//! already guarantee, so slicing reduces to choosing boundaries.

use crate::{CsrGraph, GraphView, VertexId};

/// A contiguous vertex range `[start, end)` resident on the accelerator at
/// one time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slice {
    /// First vertex (inclusive).
    pub start: VertexId,
    /// One past the last vertex (exclusive).
    pub end: VertexId,
}

impl Slice {
    /// Number of vertices in the slice.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end.get() - self.start.get()) as usize
    }

    /// Whether the slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `v` belongs to this slice.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.start <= v && v < self.end
    }

    /// Slice-local index of `v`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `v` is not in the slice.
    #[inline]
    pub fn local_index(&self, v: VertexId) -> usize {
        debug_assert!(self.contains(v), "{v} outside slice");
        (v.get() - self.start.get()) as usize
    }
}

/// A partitioning of a graph into slices, with a vertex→slice lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    slices: Vec<Slice>,
}

impl Partition {
    /// Partitions `graph` into contiguous slices of at most
    /// `max_vertices_per_slice` vertices each, balancing *edge* counts:
    /// boundaries are chosen so slices carry roughly equal out-edge work,
    /// subject to the vertex cap (the binding constraint of the queue).
    ///
    /// # Panics
    ///
    /// Panics if `max_vertices_per_slice` is zero.
    pub fn contiguous<G: GraphView + ?Sized>(graph: &G, max_vertices_per_slice: usize) -> Self {
        assert!(max_vertices_per_slice > 0, "slice capacity must be nonzero");
        let n = graph.num_vertices();
        if n == 0 {
            return Partition { slices: vec![] };
        }
        let num_slices = n.div_ceil(max_vertices_per_slice);
        let target_edges = (graph.num_edges() / num_slices).max(1);

        let mut slices = Vec::with_capacity(num_slices);
        let mut start = 0usize;
        while start < n {
            let mut end = start;
            let mut edges = 0usize;
            while end < n && end - start < max_vertices_per_slice {
                edges += graph.out_degree(VertexId::from_index(end)) as usize;
                end += 1;
                // Leave the loop once the edge budget is met, but only if the
                // remaining vertices still fit into the remaining slices.
                let remaining_slices = num_slices - slices.len() - 1;
                if edges >= target_edges && remaining_slices * max_vertices_per_slice >= n - end {
                    break;
                }
            }
            slices.push(Slice {
                start: VertexId::from_index(start),
                end: VertexId::from_index(end),
            });
            start = end;
        }
        Partition { slices }
    }

    /// A single slice spanning the whole graph (no partitioning).
    pub fn whole<G: GraphView + ?Sized>(graph: &G) -> Self {
        Partition {
            slices: vec![Slice {
                start: VertexId::new(0),
                end: VertexId::from_index(graph.num_vertices()),
            }],
        }
    }

    /// The slices in vertex order.
    pub fn slices(&self) -> &[Slice] {
        &self.slices
    }

    /// Number of slices.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Whether there are no slices (empty graph).
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Index of the slice containing `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is beyond the partitioned range.
    pub fn slice_of(&self, v: VertexId) -> usize {
        match self.slices.binary_search_by(|s| {
            if v < s.start {
                std::cmp::Ordering::Greater
            } else if v >= s.end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => i,
            Err(_) => panic!("{v} outside every slice"),
        }
    }

    /// Number of edges crossing slice boundaries (inter-slice event traffic).
    pub fn cut_edges<G: GraphView + ?Sized>(&self, graph: &G) -> usize {
        let mut cut = 0;
        for (i, slice) in self.slices.iter().enumerate() {
            for v in slice.start.get()..slice.end.get() {
                let v = VertexId::new(v);
                for e in 0..graph.out_degree(v) {
                    if !self.slices[i].contains(graph.out_edge(v, e).other) {
                        cut += 1;
                    }
                }
            }
        }
        cut
    }
}

/// A seeded random permutation of `0..n`, for [`permute`].
///
/// Contiguous slicing concentrates a power-law graph's hubs (the
/// low-numbered vertices of R-MAT/Barabási generators) into the first
/// slice, which serializes shard-parallel execution: one shard carries
/// almost all events while the rest sit parked. Relabeling with a random
/// permutation spreads the hubs uniformly, so every slice carries a
/// similar share of the event load.
pub fn scatter_permutation(n: usize, seed: u64) -> Vec<u32> {
    use crate::rng::Rng;
    let mut rng = crate::rng::StdRng::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    // Fisher–Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i + 1);
        perm.swap(i, j);
    }
    perm
}

/// Relabels `graph` so old vertex `v` becomes `perm[v]`, preserving edges
/// and weights. `perm` must be a permutation of `0..graph.num_vertices()`.
///
/// # Panics
///
/// Panics if `perm.len() != graph.num_vertices()`.
pub fn permute(graph: &CsrGraph, perm: &[u32]) -> CsrGraph {
    assert_eq!(
        perm.len(),
        graph.num_vertices(),
        "permutation length must match the vertex count"
    );
    let mut b = crate::GraphBuilder::new(graph.num_vertices());
    b.weighted(graph.is_weighted());
    for v in graph.vertices() {
        let src = VertexId::new(perm[v.index()]);
        for e in graph.out_edges(v) {
            b.add_edge(src, VertexId::new(perm[e.other.index()]), e.weight);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, WeightMode};

    fn graph() -> CsrGraph {
        erdos_renyi(100, 600, WeightMode::Unweighted, 1)
    }

    #[test]
    fn slices_cover_exactly_once() {
        let g = graph();
        let p = Partition::contiguous(&g, 30);
        assert!(p.len() >= 4);
        let mut covered = 0;
        let mut prev_end = 0u32;
        for s in p.slices() {
            assert_eq!(s.start.get(), prev_end, "gap before slice");
            assert!(s.len() <= 30, "slice overflows vertex cap");
            covered += s.len();
            prev_end = s.end.get();
        }
        assert_eq!(covered, g.num_vertices());
    }

    #[test]
    fn slice_lookup_matches_contains() {
        let g = graph();
        let p = Partition::contiguous(&g, 17);
        for v in g.vertices() {
            let i = p.slice_of(v);
            assert!(p.slices()[i].contains(v));
            assert_eq!(
                p.slices()[i].local_index(v),
                (v.get() - p.slices()[i].start.get()) as usize
            );
        }
    }

    #[test]
    fn whole_partition_is_one_slice() {
        let g = graph();
        let p = Partition::whole(&g);
        assert_eq!(p.len(), 1);
        assert_eq!(p.slices()[0].len(), g.num_vertices());
        assert_eq!(p.cut_edges(&g), 0);
    }

    #[test]
    fn cut_edges_bounded_by_total() {
        let g = graph();
        let p = Partition::contiguous(&g, 25);
        let cut = p.cut_edges(&g);
        assert!(cut > 0, "random graph should cut something");
        assert!(cut <= g.num_edges());
    }

    #[test]
    fn permute_preserves_edges_and_weights() {
        let g = erdos_renyi(60, 300, WeightMode::Uniform(1.0, 5.0), 4);
        let perm = scatter_permutation(60, 9);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..60).collect::<Vec<u32>>(), "not a permutation");

        let p = permute(&g, &perm);
        assert_eq!(p.num_vertices(), g.num_vertices());
        assert_eq!(p.num_edges(), g.num_edges());
        assert!(p.is_weighted());
        for v in g.vertices() {
            let mut old: Vec<(u32, u32)> = g
                .out_edges(v)
                .map(|e| (perm[e.other.index()], e.weight.to_bits()))
                .collect();
            let mut new: Vec<(u32, u32)> = p
                .out_edges(VertexId::new(perm[v.index()]))
                .map(|e| (e.other.get(), e.weight.to_bits()))
                .collect();
            old.sort_unstable();
            new.sort_unstable();
            assert_eq!(old, new, "edge set changed for {v}");
        }
    }

    #[test]
    fn scatter_spreads_a_hub_graph_across_slices() {
        // All edges out of vertex 0: contiguous slicing puts every edge in
        // slice 0; after scattering, the hub lands in a random slice but
        // the *in*-edges (the event load) spread with their targets.
        let mut b = crate::GraphBuilder::new(64);
        for d in 1..64u32 {
            b.add_edge(VertexId::new(0), VertexId::new(d), 1.0);
        }
        let g = b.build();
        let p = permute(&g, &scatter_permutation(64, 3));
        let part = Partition::contiguous(&p, 16);
        let loads: Vec<usize> = part
            .slices()
            .iter()
            .map(|s| {
                (s.start.get()..s.end.get())
                    .map(|v| p.in_degree(VertexId::new(v)) as usize)
                    .sum()
            })
            .collect();
        assert!(
            loads.iter().all(|&l| l > 0),
            "a slice got no event load: {loads:?}"
        );
    }

    #[test]
    fn empty_graph_partitions_to_nothing() {
        let g = crate::GraphBuilder::new(0).build();
        let p = Partition::contiguous(&g, 10);
        assert!(p.is_empty());
    }

    #[test]
    fn edge_balancing_does_not_violate_caps() {
        // Hub-heavy graph: first vertex has most edges.
        let mut b = crate::GraphBuilder::new(50);
        for d in 1..50u32 {
            b.add_edge(VertexId::new(0), VertexId::new(d), 1.0);
        }
        for v in 1..49u32 {
            b.add_edge(VertexId::new(v), VertexId::new(v + 1), 1.0);
        }
        let g = b.build();
        let p = Partition::contiguous(&g, 20);
        for s in p.slices() {
            assert!(s.len() <= 20);
        }
        let total: usize = p.slices().iter().map(|s| s.len()).sum();
        assert_eq!(total, 50);
    }
}
