//! Read-only adjacency abstraction shared by the static CSR and the
//! mutable streaming overlay.
//!
//! Every execution backend (the golden engines, the cycle-accurate
//! accelerator, and the shard-parallel engine) iterates adjacency through
//! this trait, so the same machinery runs on a frozen [`CsrGraph`] and on
//! an [`OverlayGraph`](crate::OverlayGraph) carrying uncompacted edge
//! updates. The trait is object-safe: algorithm hooks such as
//! `DeltaAlgorithm::initial_delta` take `&dyn GraphView` so they stay
//! dispatchable from any backend without growing a type parameter.

use crate::{CsrGraph, EdgeRef, VertexId};

/// Read-only view of a directed graph with out- and in-adjacency and
/// optional `f32` edge weights.
///
/// Indexed access (`out_edge(v, i)`) mirrors how the accelerator's
/// generation streams walk edge lists; iterator convenience comes from
/// [`GraphView::vertex_ids`] plus per-edge index loops.
pub trait GraphView {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Number of live directed edges.
    fn num_edges(&self) -> usize;

    /// Size of the flat edge address space, in edge slots.
    ///
    /// For a CSR this equals [`GraphView::num_edges`]. A log-structured
    /// overlay may park patched edge lists past the base CSR, so its span
    /// can exceed the live edge count; memory models size the edge region
    /// from this value.
    fn edge_span(&self) -> usize {
        self.num_edges()
    }

    /// Whether the graph carries meaningful edge weights.
    fn is_weighted(&self) -> bool;

    /// Out-degree of `v`.
    fn out_degree(&self, v: VertexId) -> u32;

    /// The `i`-th out-edge of `v` (adjacency order). Constant time.
    ///
    /// # Panics
    ///
    /// Panics if `i >= out_degree(v)`.
    fn out_edge(&self, v: VertexId, i: u32) -> EdgeRef;

    /// Global flat index of the first out-edge of `v`, within
    /// [`GraphView::edge_span`]; used to compute DRAM addresses of edge
    /// lists.
    fn out_edge_base(&self, v: VertexId) -> usize;

    /// In-degree of `v`.
    fn in_degree(&self, v: VertexId) -> u32;

    /// The `i`-th in-edge of `v` (adjacency order).
    ///
    /// # Panics
    ///
    /// Panics if `i >= in_degree(v)`.
    fn in_edge(&self, v: VertexId, i: u32) -> EdgeRef;

    /// Iterator over all vertex ids.
    fn vertex_ids(&self) -> VertexIds {
        VertexIds {
            next: 0,
            end: self.num_vertices() as u32,
        }
    }
}

/// Iterator over the vertex ids of a [`GraphView`].
#[derive(Debug, Clone)]
pub struct VertexIds {
    next: u32,
    end: u32,
}

impl Iterator for VertexIds {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        if self.next < self.end {
            let v = VertexId::new(self.next);
            self.next += 1;
            Some(v)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.end - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for VertexIds {}

impl GraphView for CsrGraph {
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    fn is_weighted(&self) -> bool {
        CsrGraph::is_weighted(self)
    }

    fn out_degree(&self, v: VertexId) -> u32 {
        CsrGraph::out_degree(self, v)
    }

    fn out_edge(&self, v: VertexId, i: u32) -> EdgeRef {
        CsrGraph::out_edge(self, v, i)
    }

    fn out_edge_base(&self, v: VertexId) -> usize {
        CsrGraph::out_edge_base(self, v)
    }

    fn in_degree(&self, v: VertexId) -> u32 {
        CsrGraph::in_degree(self, v)
    }

    fn in_edge(&self, v: VertexId, i: u32) -> EdgeRef {
        CsrGraph::in_edge(self, v, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> CsrGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId::new(0), VertexId::new(1), 1.0);
        b.add_edge(VertexId::new(0), VertexId::new(2), 2.0);
        b.add_edge(VertexId::new(1), VertexId::new(3), 3.0);
        b.add_edge(VertexId::new(2), VertexId::new(3), 4.0);
        b.weighted(true);
        b.build()
    }

    #[test]
    fn csr_view_matches_inherent_accessors() {
        let g = diamond();
        let view: &dyn GraphView = &g;
        assert_eq!(view.num_vertices(), 4);
        assert_eq!(view.num_edges(), 4);
        assert_eq!(view.edge_span(), 4);
        assert!(view.is_weighted());
        for v in g.vertices() {
            assert_eq!(view.out_degree(v), g.out_degree(v));
            for i in 0..view.out_degree(v) {
                assert_eq!(view.out_edge(v, i), g.out_edge(v, i));
            }
            assert_eq!(view.out_edge_base(v), g.out_edge_base(v));
            assert_eq!(view.in_degree(v), g.in_degree(v));
            for (i, e) in g.in_edges(v).enumerate() {
                assert_eq!(view.in_edge(v, i as u32), e);
            }
        }
    }

    #[test]
    fn vertex_ids_covers_the_graph() {
        let g = diamond();
        let ids: Vec<u32> = GraphView::vertex_ids(&g).map(|v| v.get()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
