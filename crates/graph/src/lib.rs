//! # gp-graph — graph substrate for the GraphPulse reproduction
//!
//! Provides everything the accelerator and the baselines need to get a graph
//! into memory:
//!
//! * [`VertexId`] — strongly-typed vertex handles,
//! * [`CsrGraph`] — Compressed Sparse Row storage with both out- and
//!   in-adjacency (the paper stores graphs in CSR, §IV-E),
//! * [`GraphBuilder`] — edge-list ingestion with sorting / deduplication /
//!   symmetrization,
//! * [`generators`] — seeded synthetic graph generators (R-MAT,
//!   Barabási–Albert, Erdős–Rényi, Watts–Strogatz, 2-D grids),
//! * [`workloads`] — the Table IV dataset profiles (WG/FB/WK/LJ/TW)
//!   synthesized at a configurable scale,
//! * [`partition`] — contiguous slicing for graphs larger than the
//!   accelerator's on-chip event queue (§IV-F),
//! * [`GraphView`] — the read-only adjacency abstraction all execution
//!   backends iterate through,
//! * [`OverlayGraph`] — a mutable delta-overlay over the CSR for streaming
//!   edge updates, with threshold-triggered compaction,
//! * [`io`] — text and binary edge-list formats,
//! * [`container`] — the on-disk, mmap-able CSR container and
//!   [`MappedCsr`], the out-of-core [`GraphView`] for graphs beyond
//!   resident memory.
//!
//! # Examples
//!
//! ```
//! use gp_graph::{GraphBuilder, VertexId};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(VertexId::new(0), VertexId::new(1), 1.0);
//! b.add_edge(VertexId::new(1), VertexId::new(2), 2.0);
//! b.add_edge(VertexId::new(2), VertexId::new(3), 1.5);
//! let g = b.build();
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.out_degree(VertexId::new(1)), 1);
//! ```

// `deny` rather than `forbid`: the container's mmap shim is the one
// audited exception (`container::mmap` opts back in with a scoped allow);
// everything else in the crate remains safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod container;
mod csr;
pub mod generators;
pub mod io;
mod overlay;
pub mod partition;
pub mod stats;
mod vertex;
mod view;
pub mod workloads;

pub use builder::GraphBuilder;
pub use container::{MappedCsr, MeteredView};
pub use csr::{CsrGraph, EdgeRef, OutEdges};
pub use gp_sim::rng;
pub use overlay::{AppliedBatch, EdgeUpdate, GraphSnapshot, OverlayGraph};
pub use vertex::VertexId;
pub use view::{GraphView, VertexIds};
