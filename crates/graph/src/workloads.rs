//! Table IV workload profiles.
//!
//! The paper evaluates on five real-world graphs. This module records their
//! published sizes and synthesizes scaled stand-ins with matching average
//! degree and skew (see `DESIGN.md` §3 for the substitution rationale).

use crate::generators::{barabasi_albert, grid_2d, rmat, RmatConfig, WeightMode};
use crate::CsrGraph;

/// The five evaluation datasets of Table IV, plus a road-network profile
/// used by the examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Google Web graph (WG): 0.87 M nodes, 5.10 M edges.
    WebGoogle,
    /// Facebook social network (FB): 3.01 M nodes, 47.33 M edges.
    Facebook,
    /// Wikipedia page links (WK): 3.56 M nodes, 45.03 M edges.
    Wikipedia,
    /// LiveJournal social network (LJ): 4.84 M nodes, 68.99 M edges.
    LiveJournal,
    /// Twitter follower graph (TW): 41.65 M nodes, 1.46 B edges; requires
    /// slicing on the accelerator (§IV-F).
    Twitter,
    /// A 2-D grid road-network stand-in (not in Table IV; used by examples).
    Road,
}

impl Workload {
    /// The five Table IV workloads in paper order.
    pub const TABLE_IV: [Workload; 5] = [
        Workload::WebGoogle,
        Workload::Facebook,
        Workload::Wikipedia,
        Workload::LiveJournal,
        Workload::Twitter,
    ];

    /// Paper abbreviation (WG/FB/WK/LJ/TW).
    pub fn abbrev(self) -> &'static str {
        match self {
            Workload::WebGoogle => "WG",
            Workload::Facebook => "FB",
            Workload::Wikipedia => "WK",
            Workload::LiveJournal => "LJ",
            Workload::Twitter => "TW",
            Workload::Road => "RD",
        }
    }

    /// Human-readable name as in Table IV.
    pub fn description(self) -> &'static str {
        match self {
            Workload::WebGoogle => "Google Web Graph",
            Workload::Facebook => "Facebook Social Net.",
            Workload::Wikipedia => "Wikipedia Page Links",
            Workload::LiveJournal => "LiveJournal Social Net.",
            Workload::Twitter => "Twitter Follower Graph",
            Workload::Road => "Synthetic Road Grid",
        }
    }

    /// Published full-scale vertex count.
    pub fn full_vertices(self) -> usize {
        match self {
            Workload::WebGoogle => 870_000,
            Workload::Facebook => 3_010_000,
            Workload::Wikipedia => 3_560_000,
            Workload::LiveJournal => 4_840_000,
            Workload::Twitter => 41_650_000,
            Workload::Road => 1_000_000,
        }
    }

    /// Published full-scale edge count.
    pub fn full_edges(self) -> usize {
        match self {
            Workload::WebGoogle => 5_100_000,
            Workload::Facebook => 47_330_000,
            Workload::Wikipedia => 45_030_000,
            Workload::LiveJournal => 68_990_000,
            Workload::Twitter => 1_460_000_000,
            Workload::Road => 2_000_000,
        }
    }

    /// Average directed degree of the published dataset.
    pub fn avg_degree(self) -> f64 {
        self.full_edges() as f64 / self.full_vertices() as f64
    }

    /// Synthesizes the workload at `1/scale_denominator` of the published
    /// vertex count, preserving the average degree and skew class.
    ///
    /// * WG, WK, LJ, TW → R-MAT (directed power-law: web/social link graphs),
    /// * FB → Barabási–Albert (symmetric friendship graph),
    /// * Road → 2-D weighted grid.
    ///
    /// Deterministic for a given `(workload, scale, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `scale_denominator` is zero.
    pub fn synthesize(self, scale_denominator: usize, seed: u64) -> CsrGraph {
        self.synthesize_weighted(scale_denominator, WeightMode::Unweighted, seed)
    }

    /// Like [`Workload::synthesize`] but with explicit weight assignment
    /// (SSSP and Adsorption need weighted edges).
    pub fn synthesize_weighted(
        self,
        scale_denominator: usize,
        weights: WeightMode,
        seed: u64,
    ) -> CsrGraph {
        assert!(scale_denominator > 0, "scale denominator must be nonzero");
        let n = (self.full_vertices() / scale_denominator).max(64);
        let m = (self.full_edges() / scale_denominator).max(256);
        match self {
            Workload::Facebook => {
                let per_vertex = ((m / n) / 2).max(1); // BA inserts both directions
                barabasi_albert(n, per_vertex, weights, seed)
            }
            Workload::Road => {
                let side = (n as f64).sqrt().ceil() as usize;
                grid_2d(side, side, weights, seed)
            }
            _ => {
                // Edge-placement attempts are inflated to compensate for
                // dedup losses in skewed R-MAT.
                let attempts = m + m / 3;
                let cfg = RmatConfig::graph500(n, attempts).with_weights(weights);
                rmat(&cfg, seed)
            }
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_sizes_match_paper() {
        assert_eq!(Workload::WebGoogle.full_vertices(), 870_000);
        assert_eq!(Workload::Twitter.full_edges(), 1_460_000_000);
        assert!((Workload::LiveJournal.avg_degree() - 14.25).abs() < 0.1);
    }

    #[test]
    fn synthesized_scale_tracks_denominator() {
        let g = Workload::WebGoogle.synthesize(128, 1);
        let expect_n = 870_000 / 128;
        assert_eq!(g.num_vertices(), expect_n);
        // Average degree within 2x band of the real dataset (dedup losses).
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(avg > Workload::WebGoogle.avg_degree() / 2.0);
        assert!(avg < Workload::WebGoogle.avg_degree() * 2.0);
    }

    #[test]
    fn facebook_is_symmetric() {
        let g = Workload::Facebook.synthesize(4096, 2);
        for v in g.vertices().take(50) {
            for n in g.out_neighbors(v) {
                assert!(g.out_neighbors(*n).contains(&v));
            }
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(
            Workload::Wikipedia.synthesize(2048, 3),
            Workload::Wikipedia.synthesize(2048, 3)
        );
    }

    #[test]
    fn abbrevs_are_distinct() {
        let mut seen: Vec<&str> = Workload::TABLE_IV.iter().map(|w| w.abbrev()).collect();
        seen.dedup();
        assert_eq!(seen.len(), 5);
    }
}
