//! Graph-level statistics used to validate generators and size experiments.

use crate::CsrGraph;

/// Summary statistics of a graph's degree structure.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub vertices: usize,
    /// Directed edge count.
    pub edges: usize,
    /// Mean out-degree.
    pub avg_out_degree: f64,
    /// Largest out-degree.
    pub max_out_degree: u32,
    /// Largest in-degree.
    pub max_in_degree: u32,
    /// Number of vertices with no out-edges (sinks).
    pub sinks: usize,
    /// Number of vertices with no in-edges (sources).
    pub sources: usize,
    /// Log2-bucketed out-degree histogram: `hist[i]` counts vertices with
    /// out-degree in `[2^i, 2^(i+1))`; `hist[0]` counts degree 0 and 1.
    pub degree_histogram: Vec<u64>,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    pub fn compute(graph: &CsrGraph) -> Self {
        let n = graph.num_vertices();
        let mut max_out = 0u32;
        let mut max_in = 0u32;
        let mut sinks = 0usize;
        let mut sources = 0usize;
        let mut hist = vec![0u64; 33];
        for v in graph.vertices() {
            let d_out = graph.out_degree(v);
            let d_in = graph.in_degree(v);
            max_out = max_out.max(d_out);
            max_in = max_in.max(d_in);
            if d_out == 0 {
                sinks += 1;
            }
            if d_in == 0 {
                sources += 1;
            }
            let bucket = if d_out <= 1 {
                0
            } else {
                32 - (d_out.leading_zeros() as usize)
            };
            hist[bucket] += 1;
        }
        while hist.len() > 1 && *hist.last().unwrap() == 0 {
            hist.pop();
        }
        GraphStats {
            vertices: n,
            edges: graph.num_edges(),
            avg_out_degree: if n == 0 {
                0.0
            } else {
                graph.num_edges() as f64 / n as f64
            },
            max_out_degree: max_out,
            max_in_degree: max_in,
            sinks,
            sources,
            degree_histogram: hist,
        }
    }

    /// A crude power-law indicator: ratio of the max degree to the mean.
    pub fn skew(&self) -> f64 {
        if self.avg_out_degree == 0.0 {
            0.0
        } else {
            self.max_out_degree as f64 / self.avg_out_degree
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} vertices, {} edges, avg deg {:.2}, max out {}, max in {}, {} sinks, {} sources",
            self.vertices,
            self.edges,
            self.avg_out_degree,
            self.max_out_degree,
            self.max_in_degree,
            self.sinks,
            self.sources
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, rmat, RmatConfig, WeightMode};

    #[test]
    fn histogram_counts_every_vertex() {
        let g = erdos_renyi(500, 2_000, WeightMode::Unweighted, 6);
        let s = GraphStats::compute(&g);
        assert_eq!(s.degree_histogram.iter().sum::<u64>(), 500);
        assert_eq!(s.vertices, 500);
        assert_eq!(s.edges, g.num_edges());
    }

    #[test]
    fn rmat_skews_more_than_er() {
        let er = GraphStats::compute(&erdos_renyi(2_000, 16_000, WeightMode::Unweighted, 1));
        let rm = GraphStats::compute(&rmat(&RmatConfig::graph500(2_048, 16_384), 1));
        assert!(rm.skew() > 2.0 * er.skew());
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::GraphBuilder::new(0).build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.avg_out_degree, 0.0);
        assert_eq!(s.skew(), 0.0);
    }

    #[test]
    fn display_mentions_counts() {
        let g = erdos_renyi(10, 20, WeightMode::Unweighted, 0);
        let s = GraphStats::compute(&g).to_string();
        assert!(s.contains("10 vertices"));
    }
}
