//! Graph serialization: text edge lists and a compact binary format.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use crate::{CsrGraph, GraphBuilder, VertexId};

/// Little-endian cursor over a byte slice for the binary decoder.
struct Cursor<'a> {
    data: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data }
    }

    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], ReadGraphError> {
        if self.data.len() < N {
            return Err(ReadGraphError::Truncated);
        }
        let (head, rest) = self.data.split_at(N);
        self.data = rest;
        Ok(head.try_into().expect("split_at guarantees length"))
    }

    fn get_u8(&mut self) -> Result<u8, ReadGraphError> {
        Ok(self.take::<1>()?[0])
    }

    fn get_u16_le(&mut self) -> Result<u16, ReadGraphError> {
        Ok(u16::from_le_bytes(self.take()?))
    }

    fn get_u32_le(&mut self) -> Result<u32, ReadGraphError> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn get_u64_le(&mut self) -> Result<u64, ReadGraphError> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    fn get_f32_le(&mut self) -> Result<f32, ReadGraphError> {
        Ok(f32::from_le_bytes(self.take()?))
    }
}

/// Errors produced while reading graph files (the text/binary codecs here
/// and the mmap-able [`container`](crate::container) format).
#[derive(Debug)]
pub enum ReadGraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line or record could not be parsed; carries line number and detail.
    Parse(usize, String),
    /// The binary header magic did not match.
    BadMagic,
    /// The header carries a version this build does not understand.
    BadVersion(u16),
    /// The binary payload ended prematurely.
    Truncated,
    /// A container segment is not placed on its required alignment, or its
    /// extent is inconsistent with the header; names the segment and why.
    Misaligned(String),
    /// A stored checksum does not match the bytes it covers; names the
    /// corrupted region.
    ChecksumMismatch(String),
    /// The payload parses but violates a structural invariant (row-pointer
    /// monotonicity, edge-index bounds, out-of-range neighbor ids, ...).
    Corrupt(String),
}

impl fmt::Display for ReadGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadGraphError::Io(e) => write!(f, "i/o error reading graph: {e}"),
            ReadGraphError::Parse(line, what) => write!(f, "parse error on line {line}: {what}"),
            ReadGraphError::BadMagic => write!(f, "not a gp-graph binary file"),
            ReadGraphError::BadVersion(v) => {
                write!(f, "unsupported gp-graph format version {v}")
            }
            ReadGraphError::Truncated => write!(f, "binary graph payload truncated"),
            ReadGraphError::Misaligned(what) => {
                write!(f, "misaligned or inconsistent segment: {what}")
            }
            ReadGraphError::ChecksumMismatch(what) => {
                write!(f, "checksum mismatch: {what}")
            }
            ReadGraphError::Corrupt(what) => write!(f, "corrupt graph payload: {what}"),
        }
    }
}

impl Error for ReadGraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadGraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ReadGraphError {
    fn from(e: std::io::Error) -> Self {
        ReadGraphError::Io(e)
    }
}

/// Reads a whitespace-separated edge list: `src dst [weight]` per line.
///
/// Lines starting with `#` or `%` are comments. The vertex count is
/// `max id + 1` unless `num_vertices` pins it explicitly.
///
/// # Errors
///
/// Returns [`ReadGraphError`] on I/O failure or malformed lines.
///
/// # Examples
///
/// ```
/// let text = "# tiny\n0 1\n1 2 3.5\n";
/// let g = gp_graph::io::read_edge_list(text.as_bytes(), None).unwrap();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 2);
/// ```
pub fn read_edge_list<R: Read>(
    reader: R,
    num_vertices: Option<usize>,
) -> Result<CsrGraph, ReadGraphError> {
    let buf = BufReader::new(reader);
    let mut edges: Vec<(u32, u32, f32)> = Vec::new();
    let mut max_id = 0u32;
    let mut weighted = false;
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let src: u32 = it
            .next()
            .ok_or_else(|| ReadGraphError::Parse(lineno + 1, "missing src".into()))?
            .parse()
            .map_err(|e| ReadGraphError::Parse(lineno + 1, format!("src: {e}")))?;
        let dst: u32 = it
            .next()
            .ok_or_else(|| ReadGraphError::Parse(lineno + 1, "missing dst".into()))?
            .parse()
            .map_err(|e| ReadGraphError::Parse(lineno + 1, format!("dst: {e}")))?;
        let weight = match it.next() {
            Some(w) => {
                weighted = true;
                w.parse::<f32>()
                    .map_err(|e| ReadGraphError::Parse(lineno + 1, format!("weight: {e}")))?
            }
            None => 1.0,
        };
        max_id = max_id.max(src).max(dst);
        edges.push((src, dst, weight));
    }
    let n = num_vertices.unwrap_or(if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    });
    let mut b = GraphBuilder::new(n);
    b.weighted(weighted);
    for (s, d, w) in edges {
        b.add_edge(VertexId::new(s), VertexId::new(d), w);
    }
    Ok(b.build())
}

/// Writes a graph as a text edge list (`src dst weight` when weighted).
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# gp-graph edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for v in graph.vertices() {
        for e in graph.out_edges(v) {
            if graph.is_weighted() {
                writeln!(writer, "{} {} {}", v.get(), e.other.get(), e.weight)?;
            } else {
                writeln!(writer, "{} {}", v.get(), e.other.get())?;
            }
        }
    }
    Ok(())
}

const MAGIC: u32 = 0x4750_4C53; // "GPLS"

/// Encodes a graph into the compact binary format.
///
/// Layout: magic, version, vertex count, edge count, weighted flag, then
/// `(src, dst[, weight])` triples in CSR order, little-endian.
pub fn encode_binary(graph: &CsrGraph) -> Vec<u8> {
    let weighted = graph.is_weighted();
    let mut buf = Vec::with_capacity(20 + graph.num_edges() * if weighted { 12 } else { 8 });
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&1u16.to_le_bytes()); // version
    buf.push(u8::from(weighted));
    buf.push(0); // reserved
    buf.extend_from_slice(&(graph.num_vertices() as u32).to_le_bytes());
    buf.extend_from_slice(&(graph.num_edges() as u64).to_le_bytes());
    for v in graph.vertices() {
        for e in graph.out_edges(v) {
            buf.extend_from_slice(&v.get().to_le_bytes());
            buf.extend_from_slice(&e.other.get().to_le_bytes());
            if weighted {
                buf.extend_from_slice(&e.weight.to_le_bytes());
            }
        }
    }
    buf
}

/// Decodes a graph from the binary format produced by [`encode_binary`].
///
/// The payload is fully validated *before* any graph is constructed:
/// unknown versions are rejected, every endpoint must be in range (the
/// edge-index bounds a CSR decode would otherwise trust), and sources must
/// arrive in non-decreasing CSR order (the flat-triple analog of
/// row-pointer monotonicity). Malformed payloads therefore return a typed
/// error instead of panicking inside the builder.
///
/// # Errors
///
/// [`ReadGraphError::BadMagic`], [`ReadGraphError::BadVersion`],
/// [`ReadGraphError::Truncated`], or [`ReadGraphError::Corrupt`].
pub fn decode_binary(data: &[u8]) -> Result<CsrGraph, ReadGraphError> {
    let mut data = Cursor::new(data);
    if data.remaining() < 20 {
        return Err(ReadGraphError::Truncated);
    }
    if data.get_u32_le()? != MAGIC {
        return Err(ReadGraphError::BadMagic);
    }
    let version = data.get_u16_le()?;
    if version != 1 {
        return Err(ReadGraphError::BadVersion(version));
    }
    let weighted = data.get_u8()? != 0;
    let _reserved = data.get_u8()?;
    let n = data.get_u32_le()? as usize;
    let m = data.get_u64_le()? as usize;
    let record = if weighted { 12 } else { 8 };
    if data.remaining() < m * record {
        return Err(ReadGraphError::Truncated);
    }
    let mut edges = Vec::with_capacity(m);
    let mut prev_src = 0u32;
    for i in 0..m {
        let src = data.get_u32_le()?;
        let dst = data.get_u32_le()?;
        let w = if weighted { data.get_f32_le()? } else { 1.0 };
        if (src as usize) >= n || (dst as usize) >= n {
            return Err(ReadGraphError::Corrupt(format!(
                "edge {i} ({src} -> {dst}) references a vertex >= {n}"
            )));
        }
        if src < prev_src {
            return Err(ReadGraphError::Corrupt(format!(
                "edge {i}: source {src} after {prev_src} breaks CSR order \
                 (row pointers would not be monotone)"
            )));
        }
        prev_src = src;
        edges.push((src, dst, w));
    }
    let mut b = GraphBuilder::new(n);
    b.weighted(weighted);
    // Encoded graphs are already deduplicated CSR dumps.
    b.dedup(false).drop_self_loops(false);
    for (src, dst, w) in edges {
        b.add_edge(VertexId::new(src), VertexId::new(dst), w);
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, WeightMode};

    #[test]
    fn text_round_trip_unweighted() {
        let g = erdos_renyi(40, 120, WeightMode::Unweighted, 3);
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(&out[..], Some(40)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_round_trip_weighted() {
        let g = erdos_renyi(30, 90, WeightMode::Uniform(1.0, 8.0), 4);
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(&out[..], Some(30)).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        assert!(g2.is_weighted());
        for v in g.vertices() {
            let a: Vec<_> = g.out_edges(v).collect();
            let b: Vec<_> = g2.out_edges(v).collect();
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.other, y.other);
                assert!((x.weight - y.weight).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn binary_round_trip() {
        let g = erdos_renyi(50, 200, WeightMode::Uniform(0.5, 2.0), 9);
        let bytes = encode_binary(&g);
        let g2 = decode_binary(&bytes).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(matches!(
            decode_binary(&[0u8; 4]),
            Err(ReadGraphError::Truncated)
        ));
        let mut bad = encode_binary(&erdos_renyi(4, 4, WeightMode::Unweighted, 0)).to_vec();
        bad[0] ^= 0xFF;
        assert!(matches!(decode_binary(&bad), Err(ReadGraphError::BadMagic)));
    }

    #[test]
    fn binary_detects_truncation() {
        let bytes = encode_binary(&erdos_renyi(10, 30, WeightMode::Unweighted, 1));
        let cut = &bytes[..bytes.len() - 3];
        assert!(matches!(decode_binary(cut), Err(ReadGraphError::Truncated)));
    }

    /// 3 vertices, edges `0 -> 1`, `1 -> 2`; records start at byte 20,
    /// 8 bytes each (`src` then `dst`).
    fn small_encoded() -> Vec<u8> {
        let mut b = GraphBuilder::new(3);
        b.add_edge(VertexId::new(0), VertexId::new(1), 1.0);
        b.add_edge(VertexId::new(1), VertexId::new(2), 1.0);
        encode_binary(&b.build())
    }

    #[test]
    fn binary_rejects_unknown_version() {
        let mut bytes = small_encoded();
        bytes[4..6].copy_from_slice(&9u16.to_le_bytes());
        assert!(matches!(
            decode_binary(&bytes),
            Err(ReadGraphError::BadVersion(9))
        ));
    }

    #[test]
    fn binary_rejects_out_of_range_edges() {
        let mut bytes = small_encoded();
        bytes[24..28].copy_from_slice(&7u32.to_le_bytes()); // dst of edge 0
        match decode_binary(&bytes) {
            Err(ReadGraphError::Corrupt(msg)) => assert!(msg.contains("vertex >= 3"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn binary_rejects_non_monotone_sources() {
        let mut bytes = small_encoded();
        bytes[20..24].copy_from_slice(&2u32.to_le_bytes()); // src of edge 0
        match decode_binary(&bytes) {
            Err(ReadGraphError::Corrupt(msg)) => assert!(msg.contains("monotone"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# c\n\n% also comment\n0 1\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "0 1\nnot numbers\n";
        match read_edge_list(text.as_bytes(), None) {
            Err(ReadGraphError::Parse(line, _)) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
