//! Mutable delta-overlay over a static CSR for streaming edge updates.
//!
//! [`OverlayGraph`] keeps a frozen [`CsrGraph`] base plus per-vertex
//! *patched* adjacency lists for the vertices touched by edge insertions
//! or deletions since the last compaction. A patched vertex's edge list
//! lives in a log-structured pool addressed *past* the base CSR's edge
//! array (a bump allocator hands out pool regions), which is how an
//! accelerator would stage updates without rewriting the packed CSR:
//! reads indirect through the patch table, writes append to the pool, and
//! a threshold-triggered [`OverlayGraph::compact`] folds everything back
//! into a fresh CSR.
//!
//! The overlay maintains both out- and in-adjacency so incremental
//! recomputation can walk the *reverse* graph of the mutated topology
//! (needed to re-derive a vertex's value from its in-neighbors after a
//! deletion invalidates it).
//!
//! All iteration orders are deterministic: patch tables are `BTreeMap`s
//! and patched lists stay sorted by neighbor id, matching the CSR's
//! neighbor-sorted invariant from [`GraphBuilder`](crate::GraphBuilder).

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::view::GraphView;
use crate::{CsrGraph, EdgeRef, GraphBuilder, VertexId};

/// One edge mutation in an update stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeUpdate {
    /// Insert `src -> dst` with `weight` (ignored if the edge exists).
    Insert {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
        /// Edge weight (`1.0` for unweighted graphs).
        weight: f32,
    },
    /// Delete `src -> dst` (ignored if the edge is absent).
    Delete {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
    },
}

/// The **net** effect of a batch of [`EdgeUpdate`]s, as computed by
/// [`OverlayGraph::apply`]: the per-edge difference between the pre-batch
/// and post-batch adjacency. Intra-batch churn cancels — an edge deleted
/// and re-inserted at the same weight within one batch appears in neither
/// list, and an insert-then-delete leaves no trace. A weight change shows
/// up as a delete (old weight) plus an insert (new weight).
///
/// Incremental seeding rules need the *pre-batch* out-lists of every
/// net-changed source (degree changes redistribute PageRank shares;
/// deleted edges start monotone invalidation), so `apply` captures them
/// before mutating.
#[derive(Debug, Clone, Default)]
pub struct AppliedBatch {
    /// Net insertions `(src, dst, weight)`: absent before the batch,
    /// present after (at this weight). Sorted by `(src, dst)`.
    pub inserts: Vec<(VertexId, VertexId, f32)>,
    /// Net deletions `(src, dst, pre-batch weight)`: present before the
    /// batch, absent (or re-weighted) after. Sorted by `(src, dst)`.
    pub deletes: Vec<(VertexId, VertexId, f32)>,
    /// Pre-batch out-edge lists of every source with a net change, sorted
    /// by source id.
    pub old_out: Vec<(VertexId, Vec<EdgeRef>)>,
}

impl AppliedBatch {
    /// Whether the batch changed nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// A patched out-list: full replacement adjacency for one vertex, plus its
/// bump-allocated region in the patch pool.
#[derive(Debug, Clone)]
struct PatchList {
    /// Sorted by neighbor id, mirroring the CSR invariant.
    edges: Vec<(u32, f32)>,
    /// First edge slot of this list inside the patch pool.
    base_addr: usize,
    /// Slots reserved at `base_addr`; growing past it relocates the list.
    cap: usize,
}

/// A mutable graph: static CSR base + adjacency patches for updated
/// vertices. See the module-level docs above for the layout.
#[derive(Debug, Clone)]
pub struct OverlayGraph {
    /// Shared with every [`GraphSnapshot`] frozen from this overlay:
    /// compaction *replaces* the `Arc` rather than mutating through it, so
    /// pinned snapshots keep reading the base they were frozen against.
    base: Arc<CsrGraph>,
    out_patch: BTreeMap<u32, PatchList>,
    /// In-lists of vertices whose in-adjacency changed; `(src, weight)`
    /// sorted by src. In-lists need no pool addresses (only the forward
    /// edge array is walked by the generation streams).
    in_patch: BTreeMap<u32, Vec<(u32, f32)>>,
    /// Bump-allocator high-water mark of the patch pool, in edge slots.
    pool_len: usize,
    live_edges: usize,
}

impl OverlayGraph {
    /// Wraps `base` with an empty overlay.
    pub fn new(base: CsrGraph) -> Self {
        let live_edges = base.num_edges();
        OverlayGraph {
            base: Arc::new(base),
            out_patch: BTreeMap::new(),
            in_patch: BTreeMap::new(),
            pool_len: 0,
            live_edges,
        }
    }

    /// The underlying static CSR (stale for patched vertices).
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// Freezes the current adjacency into an immutable [`GraphSnapshot`].
    ///
    /// Cost is O(patched vertices), not O(V + E): the base CSR is shared
    /// by `Arc` and only the patch tables are cloned. Later mutations *and
    /// compactions* of this overlay leave the snapshot untouched —
    /// [`OverlayGraph::compact`] swaps the base `Arc` instead of rebuilding
    /// in place — which is what lets a serving layer pin epoch N while a
    /// writer publishes N+1.
    pub fn freeze(&self) -> GraphSnapshot {
        GraphSnapshot {
            base: Arc::clone(&self.base),
            out_patch: Arc::new(self.out_patch.clone()),
            in_patch: Arc::new(self.in_patch.clone()),
            pool_len: self.pool_len,
            live_edges: self.live_edges,
        }
    }

    /// Number of vertices with a patched out-list.
    pub fn patched_vertices(&self) -> usize {
        self.out_patch.len()
    }

    /// Edge slots consumed by the patch pool since the last compaction.
    pub fn pool_edge_slots(&self) -> usize {
        self.pool_len
    }

    /// Pool pressure: pool slots as a fraction of the base edge count.
    /// Drives threshold-triggered compaction.
    pub fn pool_fraction(&self) -> f64 {
        self.pool_len as f64 / self.base.num_edges().max(1) as f64
    }

    /// Whether edge `src -> dst` currently exists.
    pub fn contains_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.weight_of(src, dst).is_some()
    }

    /// Weight of edge `src -> dst`, or `None` if absent.
    pub fn weight_of(&self, src: VertexId, dst: VertexId) -> Option<f32> {
        match self.out_patch.get(&src.get()) {
            Some(patch) => patch
                .edges
                .binary_search_by_key(&dst.get(), |&(n, _)| n)
                .ok()
                .map(|i| patch.edges[i].1),
            None => {
                let deg = self.base.out_degree(src);
                (0..deg)
                    .map(|i| self.base.out_edge(src, i))
                    .find(|e| e.other == dst)
                    .map(|e| e.weight)
            }
        }
    }

    /// Current out-edges of `v`, in neighbor-sorted order.
    pub fn out_edges_vec(&self, v: VertexId) -> Vec<EdgeRef> {
        match self.out_patch.get(&v.get()) {
            Some(patch) => patch
                .edges
                .iter()
                .map(|&(n, w)| EdgeRef {
                    other: VertexId::new(n),
                    weight: w,
                })
                .collect(),
            None => self.base.out_edges(v).collect(),
        }
    }

    /// Inserts edge `src -> dst`; returns `false` (and changes nothing) if
    /// the edge already exists or is a self loop (the builder drops self
    /// loops, so the overlay refuses to reintroduce them).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn insert_edge(&mut self, src: VertexId, dst: VertexId, weight: f32) -> bool {
        self.check_endpoints(src, dst);
        if src == dst {
            return false;
        }
        let patch = self.ensure_out_patch(src);
        match patch.edges.binary_search_by_key(&dst.get(), |&(n, _)| n) {
            Ok(_) => return false,
            Err(at) => patch.edges.insert(at, (dst.get(), weight)),
        }
        self.realloc_if_grown(src);
        let in_list = Self::ensure_in_patch(&self.base, &mut self.in_patch, dst);
        let at = in_list
            .binary_search_by_key(&src.get(), |&(n, _)| n)
            .expect_err("out-list said the edge was absent");
        in_list.insert(at, (src.get(), weight));
        self.live_edges += 1;
        true
    }

    /// Deletes edge `src -> dst`; returns the removed weight, or `None`
    /// (changing nothing) if the edge is absent.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn delete_edge(&mut self, src: VertexId, dst: VertexId) -> Option<f32> {
        self.check_endpoints(src, dst);
        let patch = self.ensure_out_patch(src);
        let at = patch
            .edges
            .binary_search_by_key(&dst.get(), |&(n, _)| n)
            .ok()?;
        let (_, weight) = patch.edges.remove(at);
        let in_list = Self::ensure_in_patch(&self.base, &mut self.in_patch, dst);
        let at = in_list
            .binary_search_by_key(&src.get(), |&(n, _)| n)
            .expect("in-list out of sync with out-list");
        in_list.remove(at);
        self.live_edges -= 1;
        Some(weight)
    }

    /// Applies a batch of updates in order and returns the **net**
    /// adjacency diff (see [`AppliedBatch`]). No-op updates (inserting a
    /// present edge, deleting an absent one, self loops) are skipped, and
    /// intra-batch churn that cancels out — delete-then-reinsert at the
    /// same weight, insert-then-delete — is not reported: seeding rules
    /// must see only what actually changed between the pre- and post-batch
    /// graphs.
    pub fn apply(&mut self, updates: &[EdgeUpdate]) -> AppliedBatch {
        let mut captured: BTreeMap<u32, Vec<EdgeRef>> = BTreeMap::new();
        for &u in updates {
            match u {
                EdgeUpdate::Insert { src, dst, weight } => {
                    if src == dst || self.contains_edge(src, dst) {
                        continue;
                    }
                    captured
                        .entry(src.get())
                        .or_insert_with(|| self.out_edges_vec(src));
                    let inserted = self.insert_edge(src, dst, weight);
                    debug_assert!(inserted);
                }
                EdgeUpdate::Delete { src, dst } => {
                    if !self.contains_edge(src, dst) {
                        continue;
                    }
                    captured
                        .entry(src.get())
                        .or_insert_with(|| self.out_edges_vec(src));
                    self.delete_edge(src, dst);
                }
            }
        }

        // Net effect per touched source: two-pointer diff of the
        // neighbor-sorted pre- and post-batch lists.
        let mut batch = AppliedBatch::default();
        for (u, old) in captured {
            let u = VertexId::new(u);
            let new = self.out_edges_vec(u);
            let mut changed = false;
            let (mut i, mut j) = (0, 0);
            while i < old.len() || j < new.len() {
                match (old.get(i), new.get(j)) {
                    (Some(o), Some(n)) if o.other == n.other => {
                        if o.weight.to_bits() != n.weight.to_bits() {
                            batch.deletes.push((u, o.other, o.weight));
                            batch.inserts.push((u, n.other, n.weight));
                            changed = true;
                        }
                        i += 1;
                        j += 1;
                    }
                    (Some(o), Some(n)) if o.other < n.other => {
                        batch.deletes.push((u, o.other, o.weight));
                        changed = true;
                        i += 1;
                    }
                    (Some(_), Some(n)) => {
                        batch.inserts.push((u, n.other, n.weight));
                        changed = true;
                        j += 1;
                    }
                    (Some(o), None) => {
                        batch.deletes.push((u, o.other, o.weight));
                        changed = true;
                        i += 1;
                    }
                    (None, Some(n)) => {
                        batch.inserts.push((u, n.other, n.weight));
                        changed = true;
                        j += 1;
                    }
                    (None, None) => unreachable!("loop condition"),
                }
            }
            if changed {
                batch.old_out.push((u, old));
            }
        }
        batch
    }

    /// Folds every patch back into a freshly built CSR base and resets the
    /// pool. Values computed on the overlay remain valid: compaction only
    /// changes the representation, never the edge set.
    pub fn compact(&mut self) {
        if self.out_patch.is_empty() {
            self.pool_len = 0;
            return;
        }
        self.base = Arc::new(self.to_csr());
        self.out_patch.clear();
        self.in_patch.clear();
        self.pool_len = 0;
        self.live_edges = self.base.num_edges();
    }

    /// Compacts when pool pressure reaches `max_pool_fraction` of the base
    /// edge count; returns whether compaction ran.
    pub fn maybe_compact(&mut self, max_pool_fraction: f64) -> bool {
        if self.pool_fraction() >= max_pool_fraction && !self.out_patch.is_empty() {
            self.compact();
            true
        } else {
            false
        }
    }

    /// Materializes the current (mutated) adjacency as a standalone CSR
    /// without clearing the overlay — the "from scratch on the mutated
    /// graph" side of differential tests.
    pub fn to_csr(&self) -> CsrGraph {
        let mut b = GraphBuilder::new(self.base.num_vertices());
        b.weighted(self.base.is_weighted());
        for v in self.base.vertices() {
            match self.out_patch.get(&v.get()) {
                Some(patch) => {
                    for &(n, w) in &patch.edges {
                        b.add_edge(v, VertexId::new(n), w);
                    }
                }
                None => {
                    for e in self.base.out_edges(v) {
                        b.add_edge(v, e.other, e.weight);
                    }
                }
            }
        }
        b.build()
    }

    fn check_endpoints(&self, src: VertexId, dst: VertexId) {
        let n = self.base.num_vertices();
        assert!(
            src.index() < n && dst.index() < n,
            "edge ({src}, {dst}) out of range for {n} vertices"
        );
    }

    fn ensure_out_patch(&mut self, v: VertexId) -> &mut PatchList {
        if !self.out_patch.contains_key(&v.get()) {
            let edges: Vec<(u32, f32)> = self
                .base
                .out_edges(v)
                .map(|e| (e.other.get(), e.weight))
                .collect();
            let cap = pool_region(edges.len());
            let base_addr = self.pool_len;
            self.pool_len += cap;
            self.out_patch.insert(
                v.get(),
                PatchList {
                    edges,
                    base_addr,
                    cap,
                },
            );
        }
        self.out_patch.get_mut(&v.get()).expect("just inserted")
    }

    /// Relocates `v`'s patched list to a fresh pool region if an insert
    /// outgrew its reservation (log-structured append, old region leaks
    /// until compaction).
    fn realloc_if_grown(&mut self, v: VertexId) {
        let pool_len = &mut self.pool_len;
        let patch = self.out_patch.get_mut(&v.get()).expect("patched");
        if patch.edges.len() > patch.cap {
            patch.cap = pool_region(patch.edges.len());
            patch.base_addr = *pool_len;
            *pool_len += patch.cap;
        }
    }

    fn ensure_in_patch<'a>(
        base: &CsrGraph,
        in_patch: &'a mut BTreeMap<u32, Vec<(u32, f32)>>,
        v: VertexId,
    ) -> &'a mut Vec<(u32, f32)> {
        in_patch.entry(v.get()).or_insert_with(|| {
            base.in_edges(v)
                .map(|e| (e.other.get(), e.weight))
                .collect()
        })
    }
}

/// Pool reservation for a list of `len` edges: next power of two, min 2,
/// so repeated single-edge inserts amortize relocations.
fn pool_region(len: usize) -> usize {
    len.next_power_of_two().max(2)
}

/// An immutable, cheaply clonable point-in-time view of an
/// [`OverlayGraph`], produced by [`OverlayGraph::freeze`].
///
/// The base CSR and the patch tables are shared behind `Arc`s, so cloning
/// a snapshot (one reader pinning an epoch) is two reference-count bumps.
/// Nothing can mutate a snapshot after it is frozen: the overlay's
/// mutators copy-on-write their own patch maps and compaction replaces the
/// base `Arc`, never the CSR behind it. Reads see exactly the adjacency
/// the overlay had at freeze time, via the same patch-indirection as
/// [`OverlayGraph`] itself.
#[derive(Debug, Clone)]
pub struct GraphSnapshot {
    base: Arc<CsrGraph>,
    out_patch: Arc<BTreeMap<u32, PatchList>>,
    in_patch: Arc<BTreeMap<u32, Vec<(u32, f32)>>>,
    pool_len: usize,
    live_edges: usize,
}

impl GraphSnapshot {
    /// The static CSR this snapshot patches over (stale for patched
    /// vertices).
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// Number of vertices with a patched out-list at freeze time.
    pub fn patched_vertices(&self) -> usize {
        self.out_patch.len()
    }

    /// Current out-edges of `v`, in neighbor-sorted order.
    pub fn out_edges_vec(&self, v: VertexId) -> Vec<EdgeRef> {
        match self.out_patch.get(&v.get()) {
            Some(patch) => patch
                .edges
                .iter()
                .map(|&(n, w)| EdgeRef {
                    other: VertexId::new(n),
                    weight: w,
                })
                .collect(),
            None => self.base.out_edges(v).collect(),
        }
    }
}

impl GraphView for GraphSnapshot {
    fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.live_edges
    }

    fn edge_span(&self) -> usize {
        self.base.num_edges() + self.pool_len
    }

    fn is_weighted(&self) -> bool {
        self.base.is_weighted()
    }

    fn out_degree(&self, v: VertexId) -> u32 {
        match self.out_patch.get(&v.get()) {
            Some(patch) => patch.edges.len() as u32,
            None => self.base.out_degree(v),
        }
    }

    fn out_edge(&self, v: VertexId, i: u32) -> EdgeRef {
        match self.out_patch.get(&v.get()) {
            Some(patch) => {
                let (n, w) = patch.edges[i as usize];
                EdgeRef {
                    other: VertexId::new(n),
                    weight: w,
                }
            }
            None => self.base.out_edge(v, i),
        }
    }

    fn out_edge_base(&self, v: VertexId) -> usize {
        match self.out_patch.get(&v.get()) {
            Some(patch) => self.base.num_edges() + patch.base_addr,
            None => self.base.out_edge_base(v),
        }
    }

    fn in_degree(&self, v: VertexId) -> u32 {
        match self.in_patch.get(&v.get()) {
            Some(list) => list.len() as u32,
            None => self.base.in_degree(v),
        }
    }

    fn in_edge(&self, v: VertexId, i: u32) -> EdgeRef {
        match self.in_patch.get(&v.get()) {
            Some(list) => {
                let (n, w) = list[i as usize];
                EdgeRef {
                    other: VertexId::new(n),
                    weight: w,
                }
            }
            None => self.base.in_edge(v, i),
        }
    }
}

impl GraphView for OverlayGraph {
    fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.live_edges
    }

    fn edge_span(&self) -> usize {
        self.base.num_edges() + self.pool_len
    }

    fn is_weighted(&self) -> bool {
        self.base.is_weighted()
    }

    fn out_degree(&self, v: VertexId) -> u32 {
        match self.out_patch.get(&v.get()) {
            Some(patch) => patch.edges.len() as u32,
            None => self.base.out_degree(v),
        }
    }

    fn out_edge(&self, v: VertexId, i: u32) -> EdgeRef {
        match self.out_patch.get(&v.get()) {
            Some(patch) => {
                let (n, w) = patch.edges[i as usize];
                EdgeRef {
                    other: VertexId::new(n),
                    weight: w,
                }
            }
            None => self.base.out_edge(v, i),
        }
    }

    fn out_edge_base(&self, v: VertexId) -> usize {
        match self.out_patch.get(&v.get()) {
            Some(patch) => self.base.num_edges() + patch.base_addr,
            None => self.base.out_edge_base(v),
        }
    }

    fn in_degree(&self, v: VertexId) -> u32 {
        match self.in_patch.get(&v.get()) {
            Some(list) => list.len() as u32,
            None => self.base.in_degree(v),
        }
    }

    fn in_edge(&self, v: VertexId, i: u32) -> EdgeRef {
        match self.in_patch.get(&v.get()) {
            Some(list) => {
                let (n, w) = list[i as usize];
                EdgeRef {
                    other: VertexId::new(n),
                    weight: w,
                }
            }
            None => self.base.in_edge(v, i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, WeightMode};
    use crate::rng::{Rng, StdRng};

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    fn base() -> CsrGraph {
        erdos_renyi(40, 200, WeightMode::Uniform(1.0, 9.0), 17)
    }

    /// Collects (src, dst, weight-bits) over any view, sorted.
    fn edge_set(g: &dyn GraphView) -> Vec<(u32, u32, u32)> {
        let mut out = Vec::new();
        for s in 0..g.num_vertices() as u32 {
            for i in 0..g.out_degree(v(s)) {
                let e = g.out_edge(v(s), i);
                out.push((s, e.other.get(), e.weight.to_bits()));
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn fresh_overlay_mirrors_base() {
        let g = base();
        let o = OverlayGraph::new(g.clone());
        assert_eq!(edge_set(&o), edge_set(&g));
        assert_eq!(GraphView::num_edges(&o), g.num_edges());
        assert_eq!(o.edge_span(), g.num_edges());
        assert_eq!(o.pool_edge_slots(), 0);
    }

    #[test]
    fn insert_and_delete_round_trip() {
        let mut o = OverlayGraph::new(base());
        let before = edge_set(&o);
        // Find an absent edge deterministically.
        let (s, d) = (0..40u32)
            .flat_map(|s| (0..40u32).map(move |d| (s, d)))
            .find(|&(s, d)| s != d && !o.contains_edge(v(s), v(d)))
            .expect("sparse graph has absent edges");
        assert!(o.insert_edge(v(s), v(d), 3.5));
        assert!(!o.insert_edge(v(s), v(d), 9.9), "duplicate insert");
        assert_eq!(o.weight_of(v(s), v(d)), Some(3.5));
        assert_eq!(o.delete_edge(v(s), v(d)), Some(3.5));
        assert_eq!(o.delete_edge(v(s), v(d)), None, "double delete");
        assert_eq!(edge_set(&o), before);
    }

    #[test]
    fn self_loops_are_refused() {
        let mut o = OverlayGraph::new(base());
        let n = GraphView::num_edges(&o);
        assert!(!o.insert_edge(v(3), v(3), 1.0));
        assert_eq!(GraphView::num_edges(&o), n);
    }

    #[test]
    fn overlay_matches_materialized_csr_after_random_updates() {
        let g = base();
        let mut o = OverlayGraph::new(g);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..300 {
            let s = rng.gen_range(0..40u32);
            let d = rng.gen_range(0..40u32);
            if rng.gen_range(0..3u32) == 0 {
                o.delete_edge(v(s), v(d));
            } else {
                o.insert_edge(v(s), v(d), rng.gen_range(1..10u32) as f32);
            }
        }
        let snap = o.to_csr();
        snap.check_invariants().unwrap();
        assert_eq!(edge_set(&o), edge_set(&snap));
        assert_eq!(GraphView::num_edges(&o), snap.num_edges());
        // In-adjacency stays in sync with out-adjacency.
        for d in 0..40u32 {
            let mut via_in: Vec<(u32, u32)> = (0..GraphView::in_degree(&o, v(d)))
                .map(|i| {
                    let e = GraphView::in_edge(&o, v(d), i);
                    (e.other.get(), e.weight.to_bits())
                })
                .collect();
            let mut via_out: Vec<(u32, u32)> = snap
                .in_edges(v(d))
                .map(|e| (e.other.get(), e.weight.to_bits()))
                .collect();
            via_in.sort_unstable();
            via_out.sort_unstable();
            assert_eq!(via_in, via_out, "in-list out of sync at vertex {d}");
        }
    }

    #[test]
    fn compaction_preserves_edges_and_resets_pool() {
        let mut o = OverlayGraph::new(base());
        for i in 0..15u32 {
            o.insert_edge(v(i), v((i + 20) % 40), 2.0);
        }
        assert!(o.pool_edge_slots() > 0);
        let before = edge_set(&o);
        o.compact();
        assert_eq!(edge_set(&o), before);
        assert_eq!(o.pool_edge_slots(), 0);
        assert_eq!(o.patched_vertices(), 0);
        assert_eq!(o.base().num_edges(), before.len());
    }

    #[test]
    fn maybe_compact_honors_threshold() {
        let mut o = OverlayGraph::new(base());
        o.insert_edge(v(0), v(39), 1.0);
        assert!(!o.maybe_compact(10.0), "tiny pool must not compact");
        assert!(o.maybe_compact(0.0), "zero threshold always compacts");
        assert_eq!(o.pool_edge_slots(), 0);
    }

    #[test]
    fn patched_lists_live_past_the_base_edge_array() {
        let mut o = OverlayGraph::new(base());
        let base_edges = o.base().num_edges();
        o.insert_edge(v(7), v(31), 1.0);
        assert!(GraphView::out_edge_base(&o, v(7)) >= base_edges);
        assert!(o.edge_span() > base_edges);
        // Untouched vertices keep their base addresses.
        assert_eq!(
            GraphView::out_edge_base(&o, v(8)),
            o.base().out_edge_base(v(8))
        );
    }

    #[test]
    fn freeze_mirrors_overlay_and_survives_mutation() {
        let mut o = OverlayGraph::new(base());
        o.insert_edge(v(1), v(30), 5.0);
        o.delete_edge(v(2), o.out_edges_vec(v(2))[0].other);
        let snap = o.freeze();
        let frozen = edge_set(&snap);
        assert_eq!(frozen, edge_set(&o), "snapshot mirrors overlay");
        assert_eq!(GraphView::num_edges(&snap), GraphView::num_edges(&o));
        // Mutating the overlay after freeze must not leak into the
        // snapshot (copy-on-write patch tables).
        o.insert_edge(v(5), v(25), 7.0);
        o.delete_edge(v(1), v(30));
        assert_eq!(
            edge_set(&snap),
            frozen,
            "snapshot mutated by overlay writes"
        );
        assert_ne!(edge_set(&o), frozen);
    }

    #[test]
    fn freeze_survives_compaction() {
        let mut o = OverlayGraph::new(base());
        for i in 0..10u32 {
            o.insert_edge(v(i), v((i + 13) % 40), 2.5);
        }
        let snap = o.freeze();
        let frozen = edge_set(&snap);
        assert!(snap.patched_vertices() > 0);
        // Compaction swaps the overlay's base Arc; the snapshot keeps the
        // base it was frozen against and stays bit-identical.
        o.insert_edge(v(20), v(3), 9.0);
        o.compact();
        assert_eq!(o.patched_vertices(), 0);
        assert_eq!(
            edge_set(&snap),
            frozen,
            "compaction disturbed a pinned snapshot"
        );
        assert_eq!(snap.base().num_edges(), base().num_edges());
        // In-adjacency is frozen too.
        let d = v(13);
        let in_list: Vec<u32> = (0..GraphView::in_degree(&snap, d))
            .map(|i| GraphView::in_edge(&snap, d, i).other.get())
            .collect();
        assert!(in_list.contains(&0), "inserted in-edge 0->13 missing");
    }

    #[test]
    fn snapshot_clone_is_shallow_and_identical() {
        let mut o = OverlayGraph::new(base());
        o.insert_edge(v(4), v(17), 1.5);
        let a = o.freeze();
        let b = a.clone();
        assert_eq!(edge_set(&a), edge_set(&b));
        assert_eq!(a.edge_span(), b.edge_span());
    }

    #[test]
    fn apply_reports_effective_updates_and_old_lists() {
        let mut o = OverlayGraph::new(base());
        let old_deg0 = GraphView::out_degree(&o, v(0));
        let existing = o.base().out_edges(v(0)).next().expect("vertex 0 has edges");
        let absent = (1..40u32)
            .find(|&d| !o.contains_edge(v(0), v(d)))
            .expect("absent edge");
        let batch = o.apply(&[
            EdgeUpdate::Insert {
                src: v(0),
                dst: v(absent),
                weight: 4.0,
            },
            EdgeUpdate::Insert {
                src: v(0),
                dst: existing.other,
                weight: 9.0,
            }, // no-op
            EdgeUpdate::Delete {
                src: v(0),
                dst: existing.other,
            },
            EdgeUpdate::Delete {
                src: v(1),
                dst: v(1),
            }, // no-op (self loop can't exist)
        ]);
        assert_eq!(batch.inserts, vec![(v(0), v(absent), 4.0)]);
        assert_eq!(batch.deletes.len(), 1);
        assert_eq!(batch.deletes[0].0, v(0));
        assert_eq!(batch.old_out.len(), 1);
        assert_eq!(batch.old_out[0].0, v(0));
        assert_eq!(batch.old_out[0].1.len(), old_deg0 as usize);
        // Old list is pre-batch: it contains the deleted edge, not the
        // inserted one.
        assert!(batch.old_out[0].1.iter().any(|e| e.other == existing.other));
        assert!(!batch.old_out[0].1.iter().any(|e| e.other == v(absent)));
    }
}
