//! Strongly-typed vertex handles.

use std::fmt;

/// Identifier of a vertex in a [`CsrGraph`](crate::CsrGraph).
///
/// A newtype over `u32` (graphs of up to ~4.2 B vertices, well beyond what a
/// single accelerator slice addresses) so vertex ids cannot be confused with
/// degrees, offsets, or slice-local indices.
///
/// ```
/// use gp_graph::VertexId;
/// let v = VertexId::new(7);
/// assert_eq!(v.index(), 7usize);
/// assert_eq!(v.get(), 7u32);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(u32);

impl VertexId {
    /// Creates a vertex id.
    #[inline]
    pub const fn new(id: u32) -> Self {
        VertexId(id)
    }

    /// The raw id.
    #[inline]
    pub const fn get(self) -> u32 {
        self.0
    }

    /// The id as a `usize` array index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a vertex id from an array index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        VertexId(u32::try_from(index).expect("vertex index exceeds u32 range"))
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(id: u32) -> Self {
        VertexId(id)
    }
}

impl From<VertexId> for u32 {
    #[inline]
    fn from(v: VertexId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let v = VertexId::from_index(123);
        assert_eq!(v, VertexId::new(123));
        assert_eq!(u32::from(v), 123);
        assert_eq!(VertexId::from(123u32), v);
        assert_eq!(v.to_string(), "v123");
    }

    #[test]
    fn ordering_follows_ids() {
        assert!(VertexId::new(1) < VertexId::new(2));
    }
}
