//! Edge-list to CSR construction.

use crate::{CsrGraph, VertexId};

/// Accumulates an edge list and assembles a [`CsrGraph`].
///
/// A non-consuming builder (configuration methods take `&mut self`); the
/// terminal [`GraphBuilder::build`] consumes the accumulated edges.
///
/// * `dedup(true)` (default) removes parallel edges, keeping the
///   first-added weight (stable sort, then keep-first).
/// * `drop_self_loops(true)` (default) removes `v -> v` edges, which
///   delta-accumulative algorithms treat as no-ops anyway.
/// * `symmetric(true)` inserts the reverse of every edge (social-network
///   style undirected graphs).
/// * `weighted(true)` marks the graph as carrying meaningful weights.
///
/// # Examples
///
/// ```
/// use gp_graph::{GraphBuilder, VertexId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(VertexId::new(0), VertexId::new(1), 1.0);
/// b.add_edge(VertexId::new(0), VertexId::new(1), 9.0); // duplicate, dropped
/// b.symmetric(true);
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2); // 0->1 and 1->0
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: u32,
    edges: Vec<(u32, u32, f32)>,
    dedup: bool,
    drop_self_loops: bool,
    symmetric: bool,
    weighted: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices: u32::try_from(num_vertices).expect("vertex count exceeds u32"),
            edges: Vec::new(),
            dedup: true,
            drop_self_loops: true,
            symmetric: false,
            weighted: false,
        }
    }

    /// Adds a directed edge `src -> dst` with `weight`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, weight: f32) -> &mut Self {
        assert!(
            src.get() < self.num_vertices && dst.get() < self.num_vertices,
            "edge ({src}, {dst}) out of range for {} vertices",
            self.num_vertices
        );
        self.edges.push((src.get(), dst.get(), weight));
        self
    }

    /// Bulk-adds unweighted edges (weight `1.0`).
    pub fn extend_unweighted<I>(&mut self, edges: I) -> &mut Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        for (s, d) in edges {
            self.add_edge(s, d, 1.0);
        }
        self
    }

    /// Whether to remove parallel edges (default `true`).
    pub fn dedup(&mut self, yes: bool) -> &mut Self {
        self.dedup = yes;
        self
    }

    /// Whether to remove self loops (default `true`).
    pub fn drop_self_loops(&mut self, yes: bool) -> &mut Self {
        self.drop_self_loops = yes;
        self
    }

    /// Whether to mirror every edge (default `false`).
    pub fn symmetric(&mut self, yes: bool) -> &mut Self {
        self.symmetric = yes;
        self
    }

    /// Whether the weights are meaningful (default `false`).
    pub fn weighted(&mut self, yes: bool) -> &mut Self {
        self.weighted = yes;
        self
    }

    /// Number of edges currently accumulated (before dedup/symmetrize).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Sorts, optionally deduplicates and symmetrizes, and assembles the CSR.
    pub fn build(&self) -> CsrGraph {
        let mut edges = self.edges.clone();
        if self.symmetric {
            let mirrored: Vec<_> = edges.iter().map(|&(s, d, w)| (d, s, w)).collect();
            edges.extend(mirrored);
        }
        if self.drop_self_loops {
            edges.retain(|&(s, d, _)| s != d);
        }
        // Stable sort: among parallel edges, dedup keeps the *first added*,
        // which is the canonical keep-first semantics the out-of-core
        // streaming container builder reproduces without ever holding the
        // full edge list (it spills generation-ordered runs and stable-sorts
        // per bucket, so "first in sorted order" means the same edge there).
        edges.sort_by_key(|e| (e.0, e.1));
        if self.dedup {
            edges.dedup_by_key(|e| (e.0, e.1));
        }

        let n = self.num_vertices as usize;
        let mut offsets = vec![0u32; n + 1];
        for &(s, _, _) in &edges {
            offsets[s as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let neighbors: Vec<VertexId> = edges.iter().map(|&(_, d, _)| VertexId::new(d)).collect();
        let weights: Vec<f32> = edges.iter().map(|&(_, _, w)| w).collect();

        CsrGraph::from_parts(
            self.num_vertices,
            offsets,
            neighbors,
            weights,
            self.weighted,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_first_sorted_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(VertexId::new(0), VertexId::new(1), 5.0);
        b.add_edge(VertexId::new(0), VertexId::new(1), 7.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        let e: Vec<_> = g.out_edges(VertexId::new(0)).collect();
        assert_eq!(e[0].weight, 5.0);
    }

    #[test]
    fn no_dedup_keeps_parallel_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(VertexId::new(0), VertexId::new(1), 1.0);
        b.add_edge(VertexId::new(0), VertexId::new(1), 1.0);
        b.dedup(false);
        assert_eq!(b.build().num_edges(), 2);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(VertexId::new(0), VertexId::new(0), 1.0);
        b.add_edge(VertexId::new(0), VertexId::new(1), 1.0);
        assert_eq!(b.build().num_edges(), 1);
        b.drop_self_loops(false);
        assert_eq!(b.build().num_edges(), 2);
    }

    #[test]
    fn symmetric_mirrors_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(VertexId::new(0), VertexId::new(2), 4.0);
        b.symmetric(true);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(VertexId::new(2)), &[VertexId::new(0)]);
        let back: Vec<_> = g.out_edges(VertexId::new(2)).collect();
        assert_eq!(back[0].weight, 4.0);
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut b = GraphBuilder::new(5);
        for d in [4u32, 1, 3, 2] {
            b.add_edge(VertexId::new(0), VertexId::new(d), 1.0);
        }
        let g = b.build();
        let ns: Vec<u32> = g
            .out_neighbors(VertexId::new(0))
            .iter()
            .map(|v| v.get())
            .collect();
        assert_eq!(ns, vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(VertexId::new(0), VertexId::new(2), 1.0);
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn extend_unweighted_defaults_weight_one() {
        let mut b = GraphBuilder::new(3);
        b.extend_unweighted([(VertexId::new(0), VertexId::new(1))]);
        let g = b.build();
        let e: Vec<_> = g.out_edges(VertexId::new(0)).collect();
        assert_eq!(e[0].weight, 1.0);
        assert!(!g.is_weighted());
    }
}
