//! Barabási–Albert preferential-attachment generator.

use gp_sim::rng::{Rng, StdRng};

use super::WeightMode;
use crate::{CsrGraph, GraphBuilder, VertexId};

/// Generates a Barabási–Albert scale-free graph.
///
/// Starts from a small seed clique and attaches every new vertex to
/// `edges_per_vertex` existing vertices chosen with probability proportional
/// to their degree (implemented with the standard repeated-endpoint trick:
/// sampling a uniform endpoint from the running edge list is exactly
/// degree-proportional sampling). Edges are inserted in both directions so
/// the result is symmetric, mirroring undirected social networks such as the
/// Facebook dataset of Table IV.
///
/// # Panics
///
/// Panics if `vertices < edges_per_vertex + 1` or `edges_per_vertex == 0`.
///
/// # Examples
///
/// ```
/// use gp_graph::generators::{barabasi_albert, WeightMode};
/// let g = barabasi_albert(1_000, 8, WeightMode::Unweighted, 9);
/// assert_eq!(g.num_vertices(), 1_000);
/// ```
pub fn barabasi_albert(
    vertices: usize,
    edges_per_vertex: usize,
    weights: WeightMode,
    seed: u64,
) -> CsrGraph {
    assert!(edges_per_vertex > 0, "edges_per_vertex must be nonzero");
    assert!(
        vertices > edges_per_vertex,
        "need more vertices ({vertices}) than edges per vertex ({edges_per_vertex})"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(vertices);
    weights.mark(&mut builder);
    builder.symmetric(true);

    // Flat list of edge endpoints; sampling uniformly from it is
    // degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * vertices * edges_per_vertex);

    // Seed clique over the first m+1 vertices.
    let m = edges_per_vertex;
    for i in 0..=m {
        for j in (i + 1)..=m {
            builder.add_edge(
                VertexId::from_index(i),
                VertexId::from_index(j),
                weights.sample(&mut rng),
            );
            endpoints.push(i as u32);
            endpoints.push(j as u32);
        }
    }

    for v in (m + 1)..vertices {
        let mut chosen = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 100 * m {
            guard += 1;
            let pick = endpoints[rng.gen_range(0..endpoints.len())];
            if pick as usize != v && !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for &t in &chosen {
            builder.add_edge(
                VertexId::from_index(v),
                VertexId::new(t),
                weights.sample(&mut rng),
            );
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_symmetric() {
        let g1 = barabasi_albert(200, 4, WeightMode::Unweighted, 11);
        let g2 = barabasi_albert(200, 4, WeightMode::Unweighted, 11);
        assert_eq!(g1, g2);
        for v in g1.vertices() {
            for n in g1.out_neighbors(v) {
                assert!(
                    g1.out_neighbors(*n).contains(&v),
                    "edge {v}->{n} has no mirror"
                );
            }
        }
    }

    #[test]
    fn hubs_emerge() {
        let g = barabasi_albert(2_000, 4, WeightMode::Unweighted, 1);
        let max_deg = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!((max_deg as f64) > 5.0 * avg);
        g.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "more vertices")]
    fn too_small_panics() {
        let _ = barabasi_albert(3, 4, WeightMode::Unweighted, 0);
    }
}
