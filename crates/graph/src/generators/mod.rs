//! Seeded synthetic graph generators.
//!
//! The paper evaluates on five real-world datasets (Table IV). Offline, we
//! substitute parameterized synthetic graphs whose degree distribution and
//! average degree match each dataset (see `DESIGN.md` §3). All generators are
//! deterministic given a seed.
//!
//! * [`rmat`] — recursive-matrix power-law graphs (Graph500 style), the
//!   default stand-in for web/social graphs,
//! * [`barabasi_albert`] — preferential-attachment scale-free graphs,
//! * [`erdos_renyi`] — uniform random graphs (G(n, m) variant),
//! * [`watts_strogatz`] — Watts–Strogatz ring-rewiring graphs,
//! * [`grid_2d`] — 2-D lattices, a stand-in for road networks.

mod barabasi;
mod erdos_renyi;
mod grid;
mod rmat;
mod small_world;

pub use barabasi::barabasi_albert;
pub use erdos_renyi::{erdos_renyi, erdos_renyi_edges};
pub use grid::grid_2d;
pub use rmat::{rmat, rmat_edges, RmatConfig};
pub use small_world::watts_strogatz;

use gp_sim::rng::Rng;

use crate::GraphBuilder;

/// How edge weights are assigned by a generator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum WeightMode {
    /// All weights `1.0`; the graph is marked unweighted.
    #[default]
    Unweighted,
    /// Weights drawn uniformly from `[lo, hi)`; the graph is marked weighted.
    Uniform(f32, f32),
}

impl WeightMode {
    pub(crate) fn sample<R: Rng>(self, rng: &mut R) -> f32 {
        match self {
            WeightMode::Unweighted => 1.0,
            WeightMode::Uniform(lo, hi) => rng.gen_range(lo..hi),
        }
    }

    pub(crate) fn mark(self, builder: &mut GraphBuilder) {
        if let WeightMode::Uniform(..) = self {
            builder.weighted(true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_sim::rng::StdRng;

    #[test]
    fn weight_modes_sample_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(WeightMode::Unweighted.sample(&mut rng), 1.0);
        for _ in 0..100 {
            let w = WeightMode::Uniform(2.0, 5.0).sample(&mut rng);
            assert!((2.0..5.0).contains(&w));
        }
    }
}
