//! R-MAT (recursive matrix) graph generator.

use gp_sim::rng::{Rng, StdRng};

use super::WeightMode;
use crate::{CsrGraph, GraphBuilder, VertexId};

/// Parameters of the R-MAT recursive edge-placement process.
///
/// The classic Graph500 parameterization is `a=0.57, b=0.19, c=0.19,
/// d=0.05`, which produces heavily skewed power-law graphs similar to web
/// and social networks. `a + b + c + d` must be `1.0` (±1e-6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// Number of vertices; rounded up to the next power of two internally.
    pub vertices: usize,
    /// Number of edge-placement attempts (final edge count is slightly lower
    /// after deduplication and self-loop removal).
    pub edges: usize,
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Quadrant-probability noise applied per recursion level, which avoids
    /// the artificial self-similarity of noiseless R-MAT.
    pub noise: f64,
    /// Edge-weight assignment.
    pub weights: WeightMode,
}

impl RmatConfig {
    /// Graph500-style skew with the given size.
    pub fn graph500(vertices: usize, edges: usize) -> Self {
        RmatConfig {
            vertices,
            edges,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
            weights: WeightMode::Unweighted,
        }
    }

    /// Sets the weight mode (builder-style convenience).
    pub fn with_weights(mut self, weights: WeightMode) -> Self {
        self.weights = weights;
        self
    }

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an R-MAT graph.
///
/// Vertex ids are scrambled by a fixed permutation so that the high-degree
/// vertices are not clustered at low ids (matching relabeled real datasets).
/// Deterministic for a given `(config, seed)` pair.
///
/// # Panics
///
/// Panics if the quadrant probabilities do not sum to 1, or if
/// `config.vertices` is zero.
///
/// # Examples
///
/// ```
/// use gp_graph::generators::{rmat, RmatConfig};
/// let g = rmat(&RmatConfig::graph500(1 << 10, 8 << 10), 42);
/// assert_eq!(g.num_vertices(), 1 << 10);
/// assert!(g.num_edges() > 6 << 10);
/// ```
pub fn rmat(config: &RmatConfig, seed: u64) -> CsrGraph {
    let mut builder = GraphBuilder::new(config.vertices);
    config.weights.mark(&mut builder);
    rmat_edges(config, seed, |s, d, w| {
        builder.add_edge(VertexId::new(s), VertexId::new(d), w);
    });
    builder.build()
}

/// Streams the raw R-MAT edge-placement sequence to `sink` without building
/// a graph: exactly the `(src, dst, weight)` triples [`rmat`] feeds its
/// builder, in the same order, from the same RNG stream. The out-of-core
/// container builder uses this to assemble disk-resident graphs whose edge
/// set is bit-identical to the resident [`rmat`] build (same stable
/// sort + keep-first dedup, applied per spill bucket instead of in RAM).
///
/// # Panics
///
/// Same contract as [`rmat`].
pub fn rmat_edges(config: &RmatConfig, seed: u64, mut sink: impl FnMut(u32, u32, f32)) {
    assert!(config.vertices > 0, "rmat needs at least one vertex");
    let partial = config.a + config.b + config.c;
    assert!(
        config.a >= 0.0 && config.b >= 0.0 && config.c >= 0.0 && partial <= 1.0 + 1e-6,
        "rmat quadrant probabilities must be nonnegative and sum to 1 (a+b+c = {partial})"
    );

    let levels = (config.vertices as f64).log2().ceil().max(1.0) as u32;
    let side = 1usize << levels;
    let mut rng = StdRng::seed_from_u64(seed);

    // Fixed multiplicative scramble maps the padded id space onto the
    // requested vertex count while dispersing hubs.
    let n = config.vertices as u64;
    let scramble =
        |v: usize| -> u32 { ((v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % n) as u32 };

    for _ in 0..config.edges {
        let (mut lo_r, mut hi_r) = (0usize, side);
        let (mut lo_c, mut hi_c) = (0usize, side);
        while hi_r - lo_r > 1 {
            let jitter = |p: f64, rng: &mut StdRng| -> f64 {
                if config.noise > 0.0 {
                    (p * (1.0 + rng.gen_range(-config.noise..config.noise))).max(1e-9)
                } else {
                    p
                }
            };
            let a = jitter(config.a, &mut rng);
            let b = jitter(config.b, &mut rng);
            let c = jitter(config.c, &mut rng);
            let d = jitter(config.d(), &mut rng);
            let sum = a + b + c + d;
            let roll: f64 = rng.gen_range(0.0..sum);
            let mid_r = (lo_r + hi_r) / 2;
            let mid_c = (lo_c + hi_c) / 2;
            if roll < a {
                hi_r = mid_r;
                hi_c = mid_c;
            } else if roll < a + b {
                hi_r = mid_r;
                lo_c = mid_c;
            } else if roll < a + b + c {
                lo_r = mid_r;
                hi_c = mid_c;
            } else {
                lo_r = mid_r;
                lo_c = mid_c;
            }
        }
        let src = scramble(lo_r);
        let dst = scramble(lo_c);
        let w = config.weights.sample(&mut rng);
        sink(src, dst, w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = RmatConfig::graph500(256, 1024);
        let g1 = rmat(&cfg, 7);
        let g2 = rmat(&cfg, 7);
        assert_eq!(g1, g2);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RmatConfig::graph500(256, 1024);
        assert_ne!(rmat(&cfg, 1), rmat(&cfg, 2));
    }

    #[test]
    fn skewed_degrees() {
        let cfg = RmatConfig::graph500(1 << 10, 16 << 10);
        let g = rmat(&cfg, 3);
        let max_deg = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        // Power-law: the hub should be far above average.
        assert!(
            (max_deg as f64) > 8.0 * avg,
            "max degree {max_deg} not skewed vs avg {avg}"
        );
        g.check_invariants().unwrap();
    }

    #[test]
    fn weighted_mode_marks_graph() {
        let cfg = RmatConfig::graph500(64, 128).with_weights(WeightMode::Uniform(1.0, 4.0));
        let g = rmat(&cfg, 5);
        assert!(g.is_weighted());
        for v in g.vertices() {
            for e in g.out_edges(v) {
                assert!((1.0..4.0).contains(&e.weight));
            }
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_probabilities_rejected() {
        let cfg = RmatConfig {
            a: 0.9,
            b: 0.9,
            ..RmatConfig::graph500(8, 8)
        };
        let _ = rmat(&cfg, 0);
    }
}
