//! 2-D grid (road-network-like) graphs.

use gp_sim::rng::StdRng;

use super::WeightMode;
use crate::{CsrGraph, GraphBuilder, VertexId};

/// Generates a `rows × cols` 4-connected grid with bidirectional edges.
///
/// Grids are the standard stand-in for road networks: bounded degree, huge
/// diameter — the opposite corner case from power-law graphs, and a
/// stress-test for SSSP/BFS where few vertices are active per round.
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
///
/// # Examples
///
/// ```
/// use gp_graph::generators::{grid_2d, WeightMode};
/// let g = grid_2d(8, 8, WeightMode::Uniform(1.0, 5.0), 2);
/// assert_eq!(g.num_vertices(), 64);
/// ```
pub fn grid_2d(rows: usize, cols: usize, weights: WeightMode, seed: u64) -> CsrGraph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be nonzero");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(rows * cols);
    weights.mark(&mut builder);
    builder.symmetric(true);
    let at = |r: usize, c: usize| VertexId::from_index(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                builder.add_edge(at(r, c), at(r, c + 1), weights.sample(&mut rng));
            }
            if r + 1 < rows {
                builder.add_edge(at(r, c), at(r + 1, c), weights.sample(&mut rng));
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_and_center_degrees() {
        let g = grid_2d(3, 3, WeightMode::Unweighted, 0);
        assert_eq!(g.out_degree(VertexId::new(0)), 2); // corner
        assert_eq!(g.out_degree(VertexId::new(4)), 4); // center
        assert_eq!(g.num_edges(), 2 * (3 * 2 + 2 * 3)); // 12 undirected = 24 directed
        g.check_invariants().unwrap();
    }

    #[test]
    fn single_row_is_a_path() {
        let g = grid_2d(1, 5, WeightMode::Unweighted, 0);
        assert_eq!(g.num_edges(), 8); // 4 undirected edges
        assert_eq!(g.out_degree(VertexId::new(0)), 1);
        assert_eq!(g.out_degree(VertexId::new(2)), 2);
    }
}
