//! Erdős–Rényi uniform random graphs.

use gp_sim::rng::{Rng, StdRng};

use super::WeightMode;
use crate::{CsrGraph, GraphBuilder, VertexId};

/// Generates a `G(n, m)` Erdős–Rényi graph: `edges` directed edges with
/// uniformly random endpoints (self loops and duplicates removed, so the
/// final count can be slightly lower).
///
/// # Panics
///
/// Panics if `vertices == 0`.
///
/// # Examples
///
/// ```
/// use gp_graph::generators::{erdos_renyi, WeightMode};
/// let g = erdos_renyi(100, 500, WeightMode::Uniform(1.0, 10.0), 3);
/// assert_eq!(g.num_vertices(), 100);
/// assert!(g.is_weighted());
/// ```
pub fn erdos_renyi(vertices: usize, edges: usize, weights: WeightMode, seed: u64) -> CsrGraph {
    let mut builder = GraphBuilder::new(vertices);
    weights.mark(&mut builder);
    erdos_renyi_edges(vertices, edges, weights, seed, |s, d, w| {
        builder.add_edge(VertexId::new(s), VertexId::new(d), w);
    });
    builder.build()
}

/// Streams the raw `G(n, m)` edge sequence to `sink` without building a
/// graph: the same triples [`erdos_renyi`] feeds its builder, in the same
/// order, from the same RNG stream. Used by the out-of-core container
/// builder to assemble disk-resident graphs bit-identical to the resident
/// build.
///
/// # Panics
///
/// Panics if `vertices == 0`.
pub fn erdos_renyi_edges(
    vertices: usize,
    edges: usize,
    weights: WeightMode,
    seed: u64,
    mut sink: impl FnMut(u32, u32, f32),
) {
    assert!(vertices > 0, "erdos_renyi needs at least one vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..edges {
        let s = rng.gen_range(0..vertices);
        let d = rng.gen_range(0..vertices);
        sink(s as u32, d as u32, weights.sample(&mut rng));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_close_to_requested() {
        let g = erdos_renyi(1_000, 5_000, WeightMode::Unweighted, 5);
        // Collisions remove a small fraction.
        assert!(g.num_edges() > 4_800 && g.num_edges() <= 5_000);
        g.check_invariants().unwrap();
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            erdos_renyi(64, 128, WeightMode::Unweighted, 9),
            erdos_renyi(64, 128, WeightMode::Unweighted, 9)
        );
    }

    #[test]
    fn degrees_are_roughly_uniform() {
        let g = erdos_renyi(1_000, 20_000, WeightMode::Unweighted, 2);
        let max_deg = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        // Poisson tail: max should stay within a small factor of the mean.
        assert!((max_deg as f64) < 4.0 * avg);
    }
}
