//! Watts–Strogatz small-world graphs.

use gp_sim::rng::{Rng, StdRng};

use super::WeightMode;
use crate::{CsrGraph, GraphBuilder, VertexId};

/// Generates a Watts–Strogatz small-world graph.
///
/// Starts from a ring where every vertex connects to its `k` nearest
/// clockwise neighbors, then rewires each edge's endpoint with probability
/// `rewire_p` to a uniformly random vertex. Inserted symmetrically.
///
/// # Panics
///
/// Panics if `k == 0`, `k >= vertices`, or `rewire_p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use gp_graph::generators::{watts_strogatz, WeightMode};
/// let g = watts_strogatz(100, 4, 0.1, WeightMode::Unweighted, 7);
/// assert_eq!(g.num_vertices(), 100);
/// ```
pub fn watts_strogatz(
    vertices: usize,
    k: usize,
    rewire_p: f64,
    weights: WeightMode,
    seed: u64,
) -> CsrGraph {
    assert!(k > 0 && k < vertices, "k must be in 1..vertices");
    assert!((0.0..=1.0).contains(&rewire_p), "rewire_p must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(vertices);
    weights.mark(&mut builder);
    builder.symmetric(true);
    for v in 0..vertices {
        for step in 1..=k {
            let mut target = (v + step) % vertices;
            if rng.gen_bool(rewire_p) {
                target = rng.gen_range(0..vertices);
                if target == v {
                    target = (v + 1) % vertices;
                }
            }
            builder.add_edge(
                VertexId::from_index(v),
                VertexId::from_index(target),
                weights.sample(&mut rng),
            );
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_rewire_is_a_ring_lattice() {
        let g = watts_strogatz(10, 2, 0.0, WeightMode::Unweighted, 1);
        // Every vertex: 2 clockwise + 2 mirrored = degree 4.
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 4, "vertex {v}");
        }
        g.check_invariants().unwrap();
    }

    #[test]
    fn rewiring_changes_structure_deterministically() {
        let a = watts_strogatz(64, 3, 0.5, WeightMode::Unweighted, 4);
        let b = watts_strogatz(64, 3, 0.5, WeightMode::Unweighted, 4);
        let c = watts_strogatz(64, 3, 0.0, WeightMode::Unweighted, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn oversized_k_rejected() {
        let _ = watts_strogatz(4, 4, 0.0, WeightMode::Unweighted, 0);
    }
}
