//! Compressed Sparse Row graph storage.

use std::fmt;

use crate::VertexId;

/// A directed graph in Compressed Sparse Row form, with both out- and
/// in-adjacency and optional `f32` edge weights.
///
/// This is the memory layout the accelerator streams (§IV-E of the paper:
/// "The graph is stored in a Compressed Sparse Row format in memory"): a
/// per-vertex offset array into a flat neighbor array, with a parallel
/// weight array when the algorithm needs weights (SSSP, Adsorption).
///
/// The in-adjacency mirror is built eagerly; the pull-direction software
/// baseline (Ligra-style `edge_map` in dense mode) requires it, and keeping
/// both directions matches what graph frameworks load in practice.
///
/// Construct via [`GraphBuilder`](crate::GraphBuilder) or the
/// [`generators`](crate::generators).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph {
    num_vertices: u32,
    /// `out_offsets[v]..out_offsets[v+1]` indexes `out_neighbors`/`weights`.
    out_offsets: Vec<u32>,
    out_neighbors: Vec<VertexId>,
    /// Same length as `out_neighbors`; all `1.0` for unweighted graphs.
    out_weights: Vec<f32>,
    in_offsets: Vec<u32>,
    in_neighbors: Vec<VertexId>,
    in_weights: Vec<f32>,
    weighted: bool,
}

/// One edge observed while iterating adjacency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRef {
    /// The vertex on the far end of the edge.
    pub other: VertexId,
    /// Edge weight (`1.0` on unweighted graphs).
    pub weight: f32,
}

impl CsrGraph {
    /// Assembles a graph from raw CSR arrays; used by the builder.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the offset arrays are malformed.
    pub(crate) fn from_parts(
        num_vertices: u32,
        out_offsets: Vec<u32>,
        out_neighbors: Vec<VertexId>,
        out_weights: Vec<f32>,
        weighted: bool,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), num_vertices as usize + 1);
        debug_assert_eq!(*out_offsets.last().unwrap() as usize, out_neighbors.len());
        debug_assert_eq!(out_neighbors.len(), out_weights.len());

        // Build the in-CSR mirror by counting sort over destinations.
        let n = num_vertices as usize;
        let mut in_degrees = vec![0u32; n];
        for dst in &out_neighbors {
            in_degrees[dst.index()] += 1;
        }
        let mut in_offsets = vec![0u32; n + 1];
        for v in 0..n {
            in_offsets[v + 1] = in_offsets[v] + in_degrees[v];
        }
        let m = out_neighbors.len();
        let mut in_neighbors = vec![VertexId::default(); m];
        let mut in_weights = vec![0.0f32; m];
        let mut cursor = in_offsets[..n].to_vec();
        for src in 0..n {
            let lo = out_offsets[src] as usize;
            let hi = out_offsets[src + 1] as usize;
            for e in lo..hi {
                let dst = out_neighbors[e].index();
                let slot = cursor[dst] as usize;
                in_neighbors[slot] = VertexId::from_index(src);
                in_weights[slot] = out_weights[e];
                cursor[dst] += 1;
            }
        }

        CsrGraph {
            num_vertices,
            out_offsets,
            out_neighbors,
            out_weights,
            in_offsets,
            in_neighbors,
            in_weights,
            weighted,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices as usize
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_neighbors.len()
    }

    /// Whether the graph carries meaningful edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices).map(VertexId::new)
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u32 {
        self.out_offsets[v.index() + 1] - self.out_offsets[v.index()]
    }

    /// In-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> u32 {
        self.in_offsets[v.index() + 1] - self.in_offsets[v.index()]
    }

    /// Out-neighbors of `v` as a slice.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.out_offsets[v.index()] as usize;
        let hi = self.out_offsets[v.index() + 1] as usize;
        &self.out_neighbors[lo..hi]
    }

    /// In-neighbors of `v` as a slice.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        &self.in_neighbors[lo..hi]
    }

    /// Out-edges of `v` with weights.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> OutEdges<'_> {
        let lo = self.out_offsets[v.index()] as usize;
        let hi = self.out_offsets[v.index() + 1] as usize;
        OutEdges {
            neighbors: &self.out_neighbors[lo..hi],
            weights: &self.out_weights[lo..hi],
            pos: 0,
        }
    }

    /// In-edges of `v` with weights.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> OutEdges<'_> {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        OutEdges {
            neighbors: &self.in_neighbors[lo..hi],
            weights: &self.in_weights[lo..hi],
            pos: 0,
        }
    }

    /// The `i`-th out-edge of `v` (CSR order). Constant time; used by the
    /// accelerator's generation streams, which walk edge lists by index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= out_degree(v)`.
    #[inline]
    pub fn out_edge(&self, v: VertexId, i: u32) -> EdgeRef {
        let lo = self.out_offsets[v.index()] as usize;
        let hi = self.out_offsets[v.index() + 1] as usize;
        let idx = lo + i as usize;
        assert!(idx < hi, "edge index {i} out of range for {v}");
        EdgeRef {
            other: self.out_neighbors[idx],
            weight: self.out_weights[idx],
        }
    }

    /// The `i`-th in-edge of `v` (CSR order). Constant time.
    ///
    /// # Panics
    ///
    /// Panics if `i >= in_degree(v)`.
    #[inline]
    pub fn in_edge(&self, v: VertexId, i: u32) -> EdgeRef {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        let idx = lo + i as usize;
        assert!(idx < hi, "in-edge index {i} out of range for {v}");
        EdgeRef {
            other: self.in_neighbors[idx],
            weight: self.in_weights[idx],
        }
    }

    /// Global flat index of the first out-edge of `v`.
    ///
    /// The accelerator's memory model uses this to compute the DRAM address
    /// of a vertex's edge list.
    #[inline]
    pub fn out_edge_base(&self, v: VertexId) -> usize {
        self.out_offsets[v.index()] as usize
    }

    /// Raw out-CSR arrays `(offsets, neighbors, weights)`; the on-disk
    /// container serializes these segments verbatim.
    pub(crate) fn out_parts(&self) -> (&[u32], &[VertexId], &[f32]) {
        (&self.out_offsets, &self.out_neighbors, &self.out_weights)
    }

    /// Raw in-CSR arrays `(offsets, neighbors, weights)`.
    pub(crate) fn in_parts(&self) -> (&[u32], &[VertexId], &[f32]) {
        (&self.in_offsets, &self.in_neighbors, &self.in_weights)
    }

    /// Sum of out-degrees over `lo..hi` — edge work in a vertex range.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn edges_in_range(&self, lo: VertexId, hi: VertexId) -> usize {
        (self.out_offsets[hi.index()] - self.out_offsets[lo.index()]) as usize
    }

    /// Validates structural invariants; exercised by tests and `proptest`.
    ///
    /// Checks: offsets are monotone and bounded, in/out edge counts agree,
    /// every neighbor id is in range, and weights arrays are aligned.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.num_vertices as usize;
        if self.out_offsets.len() != n + 1 || self.in_offsets.len() != n + 1 {
            return Err("offset array length mismatch".into());
        }
        for w in self
            .out_offsets
            .windows(2)
            .chain(self.in_offsets.windows(2))
        {
            if w[0] > w[1] {
                return Err("offsets not monotone".into());
            }
        }
        if *self.out_offsets.last().unwrap() as usize != self.out_neighbors.len() {
            return Err("out offset tail mismatch".into());
        }
        if *self.in_offsets.last().unwrap() as usize != self.in_neighbors.len() {
            return Err("in offset tail mismatch".into());
        }
        if self.out_neighbors.len() != self.in_neighbors.len() {
            return Err("in/out edge count mismatch".into());
        }
        if self.out_neighbors.len() != self.out_weights.len()
            || self.in_neighbors.len() != self.in_weights.len()
        {
            return Err("weight array mismatch".into());
        }
        if self
            .out_neighbors
            .iter()
            .chain(self.in_neighbors.iter())
            .any(|v| v.index() >= n)
        {
            return Err("neighbor id out of range".into());
        }
        Ok(())
    }

    /// The isomorphic graph in which vertex `v` is renamed `perm[v]`.
    ///
    /// `perm` must be a bijection of `0..num_vertices()`. Because
    /// [`GraphBuilder`](crate::GraphBuilder) canonicalizes adjacency order,
    /// relabeling and then inverting the relabeling reproduces the original
    /// graph exactly; verification harnesses use this for metamorphic
    /// label-invariance checks.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..num_vertices()`.
    pub fn relabel(&self, perm: &[u32]) -> CsrGraph {
        let n = self.num_vertices();
        assert_eq!(perm.len(), n, "permutation length must match vertex count");
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(
                (p as usize) < n && !seen[p as usize],
                "perm must be a bijection of 0..{n}"
            );
            seen[p as usize] = true;
        }
        let mut b = crate::GraphBuilder::new(n);
        b.weighted(self.weighted);
        for v in self.vertices() {
            for e in self.out_edges(v) {
                b.add_edge(
                    VertexId::new(perm[v.index()]),
                    VertexId::new(perm[e.other.index()]),
                    e.weight,
                );
            }
        }
        b.build()
    }
}

impl fmt::Display for CsrGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrGraph({} vertices, {} edges, {})",
            self.num_vertices(),
            self.num_edges(),
            if self.weighted {
                "weighted"
            } else {
                "unweighted"
            }
        )
    }
}

/// Iterator over the (out- or in-) edges of one vertex.
///
/// Produced by [`CsrGraph::out_edges`] and [`CsrGraph::in_edges`].
#[derive(Debug, Clone)]
pub struct OutEdges<'a> {
    neighbors: &'a [VertexId],
    weights: &'a [f32],
    pos: usize,
}

impl Iterator for OutEdges<'_> {
    type Item = EdgeRef;

    fn next(&mut self) -> Option<EdgeRef> {
        if self.pos < self.neighbors.len() {
            let e = EdgeRef {
                other: self.neighbors[self.pos],
                weight: self.weights[self.pos],
            };
            self.pos += 1;
            Some(e)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.neighbors.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for OutEdges<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId::new(0), VertexId::new(1), 1.0);
        b.add_edge(VertexId::new(0), VertexId::new(2), 2.0);
        b.add_edge(VertexId::new(1), VertexId::new(3), 3.0);
        b.add_edge(VertexId::new(2), VertexId::new(3), 4.0);
        b.weighted(true);
        b.build()
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(VertexId::new(0)), 2);
        assert_eq!(g.in_degree(VertexId::new(3)), 2);
        assert_eq!(
            g.out_neighbors(VertexId::new(0)),
            &[VertexId::new(1), VertexId::new(2)]
        );
        assert_eq!(
            g.in_neighbors(VertexId::new(3)),
            &[VertexId::new(1), VertexId::new(2)]
        );
    }

    #[test]
    fn in_edges_carry_matching_weights() {
        let g = diamond();
        let in3: Vec<_> = g.in_edges(VertexId::new(3)).collect();
        assert_eq!(in3.len(), 2);
        let w1 = in3.iter().find(|e| e.other == VertexId::new(1)).unwrap();
        assert_eq!(w1.weight, 3.0);
        let w2 = in3.iter().find(|e| e.other == VertexId::new(2)).unwrap();
        assert_eq!(w2.weight, 4.0);
    }

    #[test]
    fn invariants_hold() {
        diamond().check_invariants().unwrap();
    }

    #[test]
    fn out_edges_iterator_is_exact_size() {
        let g = diamond();
        let it = g.out_edges(VertexId::new(0));
        assert_eq!(it.len(), 2);
        let edges: Vec<_> = it.collect();
        assert_eq!(edges[0].other, VertexId::new(1));
        assert_eq!(edges[0].weight, 1.0);
    }

    #[test]
    fn edges_in_range_counts_row_sums() {
        let g = diamond();
        assert_eq!(g.edges_in_range(VertexId::new(0), VertexId::new(2)), 3);
        assert_eq!(g.edges_in_range(VertexId::new(0), VertexId::new(4)), 4);
        assert_eq!(g.edges_in_range(VertexId::new(3), VertexId::new(4)), 0);
    }

    #[test]
    fn display_mentions_counts() {
        let s = diamond().to_string();
        assert!(s.contains("4 vertices"));
        assert!(s.contains("4 edges"));
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = diamond();
        let perm = [2u32, 0, 3, 1]; // old -> new
        let r = g.relabel(&perm);
        r.check_invariants().unwrap();
        assert_eq!(r.num_vertices(), 4);
        assert_eq!(r.num_edges(), 4);
        assert!(r.is_weighted());
        // Edge (0 -> 1, w=1.0) becomes (2 -> 0, w=1.0).
        let e: Vec<_> = r.out_edges(VertexId::new(2)).collect();
        assert!(e
            .iter()
            .any(|e| e.other == VertexId::new(0) && e.weight == 1.0));
        // Round trip through the inverse permutation is the identity.
        let mut inv = [0u32; 4];
        for (old, &new) in perm.iter().enumerate() {
            inv[new as usize] = old as u32;
        }
        assert_eq!(r.relabel(&inv), g);
    }

    #[test]
    #[should_panic(expected = "bijection")]
    fn relabel_rejects_non_bijections() {
        diamond().relabel(&[0, 0, 1, 2]);
    }
}
