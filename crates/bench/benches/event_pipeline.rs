//! Bench behind Figs. 13/14: the event processing/generation pipeline —
//! optimized (prefetch + 4 streams) vs baseline (demand reads, 1 stream)
//! on the same graph, plus the Graphicionado BSP model.

use gp_baselines::graphicionado::GraphicionadoConfig;
use gp_bench::{microbench, prepare, run_graphicionado, run_graphpulse, App};
use gp_graph::workloads::Workload;
use graphpulse_core::{AcceleratorConfig, QueueConfig};

fn small_queue(mut cfg: AcceleratorConfig) -> AcceleratorConfig {
    cfg.queue = QueueConfig {
        bins: 8,
        rows: 512,
        cols: 16,
    };
    cfg.input_buffer = 16;
    cfg
}

fn main() {
    println!("## event_pipeline");
    let prepared = prepare(Workload::WebGoogle, App::PageRank, 2048, 3);

    let opt = small_queue(AcceleratorConfig::optimized());
    microbench::report("event_pipeline/gp_optimized", 10, || {
        run_graphpulse(App::PageRank, &prepared, &opt).report.cycles
    });

    let mut base = small_queue(AcceleratorConfig::baseline());
    base.processors = 32; // keep the bench affordable; same per-cycle shape
    microbench::report("event_pipeline/gp_baseline", 10, || {
        run_graphpulse(App::PageRank, &prepared, &base)
            .report
            .cycles
    });

    microbench::report("event_pipeline/graphicionado", 10, || {
        run_graphicionado(App::PageRank, &prepared, &GraphicionadoConfig::default()).cycles
    });
}
