//! Criterion bench behind Figs. 13/14: the event processing/generation
//! pipeline — optimized (prefetch + 4 streams) vs baseline (demand reads,
//! 1 stream) on the same graph, plus the Graphicionado BSP model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gp_baselines::graphicionado::GraphicionadoConfig;
use gp_bench::{prepare, run_graphicionado, run_graphpulse, App};
use gp_graph::workloads::Workload;
use graphpulse_core::{AcceleratorConfig, QueueConfig};

fn small_queue(mut cfg: AcceleratorConfig) -> AcceleratorConfig {
    cfg.queue = QueueConfig { bins: 8, rows: 512, cols: 16 };
    cfg.input_buffer = 16;
    cfg
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_pipeline");
    group.sample_size(10);
    let prepared = prepare(Workload::WebGoogle, App::PageRank, 2048, 3);

    let opt = small_queue(AcceleratorConfig::optimized());
    group.bench_function(BenchmarkId::from_parameter("gp_optimized"), |b| {
        b.iter(|| run_graphpulse(App::PageRank, &prepared, &opt).report.cycles);
    });

    let mut base = small_queue(AcceleratorConfig::baseline());
    base.processors = 32; // keep the bench affordable; same per-cycle shape
    group.bench_function(BenchmarkId::from_parameter("gp_baseline"), |b| {
        b.iter(|| run_graphpulse(App::PageRank, &prepared, &base).report.cycles);
    });

    group.bench_function(BenchmarkId::from_parameter("graphicionado"), |b| {
        b.iter(|| {
            run_graphicionado(App::PageRank, &prepared, &GraphicionadoConfig::default()).cycles
        });
    });
    group.finish();
}

criterion_group!{
    name = benches;
    // Simulated (deterministic) timings have zero variance, which the
    // plotting backend cannot render — disable plots.
    config = Criterion::default().without_plots();
    targets = bench_pipeline
}
criterion_main!(benches);
