//! Criterion bench behind Figs. 4/8: throughput of the coalescing path
//! measured end-to-end as PageRank-Delta runs dominated by queue traffic
//! on power-law vs uniform graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gp_algorithms::PageRankDelta;
use gp_graph::generators::{erdos_renyi, rmat, RmatConfig, WeightMode};
use graphpulse_core::{AcceleratorConfig, GraphPulse};

fn bench_coalescing(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_coalescing");
    group.sample_size(10);
    let cases = [
        ("rmat", rmat(&RmatConfig::graph500(1 << 10, 8 << 10), 1)),
        ("uniform", erdos_renyi(1 << 10, 8 << 10, WeightMode::Unweighted, 1)),
    ];
    for (name, graph) in &cases {
        group.throughput(Throughput::Elements(graph.num_edges() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), graph, |b, g| {
            let accel = GraphPulse::new(AcceleratorConfig::small_test());
            let algo = PageRankDelta::new(0.85, 1e-4);
            b.iter(|| {
                let out = accel.run(g, &algo).expect("run");
                assert!(out.report.events_coalesced > 0);
                out.report.events_generated
            });
        });
    }
    group.finish();
}

criterion_group!{
    name = benches;
    // Simulated (deterministic) timings have zero variance, which the
    // plotting backend cannot render — disable plots.
    config = Criterion::default().without_plots();
    targets = bench_coalescing
}
criterion_main!(benches);
