//! Bench behind Figs. 4/8: throughput of the coalescing path measured
//! end-to-end as PageRank-Delta runs dominated by queue traffic on
//! power-law vs uniform graphs.

use gp_algorithms::PageRankDelta;
use gp_bench::microbench;
use gp_graph::generators::{erdos_renyi, rmat, RmatConfig, WeightMode};
use graphpulse_core::{AcceleratorConfig, GraphPulse};

fn main() {
    println!("## queue_coalescing");
    let cases = [
        ("rmat", rmat(&RmatConfig::graph500(1 << 10, 8 << 10), 1)),
        (
            "uniform",
            erdos_renyi(1 << 10, 8 << 10, WeightMode::Unweighted, 1),
        ),
    ];
    for (name, graph) in &cases {
        let accel = GraphPulse::new(AcceleratorConfig::small_test());
        let algo = PageRankDelta::new(0.85, 1e-4);
        let secs = microbench::report(&format!("queue_coalescing/{name}"), 10, || {
            let out = accel.run(graph, &algo).expect("run");
            assert!(out.report.events_coalesced > 0);
            out.report.events_generated
        });
        let eps = graph.num_edges() as f64 / secs;
        println!("    {:.1} Medges/s traversed", eps / 1e6);
    }
}
