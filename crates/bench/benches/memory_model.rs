//! Criterion bench behind Figs. 11/12: *modeled* DRAM throughput under
//! sequential vs random access streams.
//!
//! Uses `iter_custom` to report **simulated** time (1 ns per modeled cycle
//! at the paper's 1 GHz clock), so the throughput lines read as the DRAM
//! model's achieved bandwidth: sequential streams ride row-buffer hits and
//! all four channels (~60 GB/s of the 68 GB/s peak), random single-channel
//! row-conflict streams collapse to a fraction of that.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gp_mem::{DramConfig, MemRequest, MemorySystem, TrafficClass};
use gp_sim::Cycle;

fn drive(mem: &mut MemorySystem, addrs: &[u64]) -> u64 {
    let mut now = Cycle::ZERO;
    let mut next = 0usize;
    let mut done = 0usize;
    while done < addrs.len() {
        while next < addrs.len() && mem.can_accept(addrs[next]) {
            mem.request(now, MemRequest::read(addrs[next], 64, TrafficClass::Other))
                .expect("accepted");
            next += 1;
        }
        mem.tick(now);
        while mem.pop_completion(now).is_some() {
            done += 1;
        }
        now = now.next();
    }
    now.get()
}

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_model");
    group.sample_size(20);
    let n = 4_096u64;
    let sequential: Vec<u64> = (0..n).map(|i| i * 64).collect();
    let random: Vec<u64> = (0..n).map(|i| (i.wrapping_mul(2654435761) % n) * 8192).collect();
    for (name, addrs) in [("sequential", sequential), ("random", random)] {
        group.throughput(Throughput::Bytes(addrs.len() as u64 * 64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &addrs, |b, a| {
            b.iter_custom(|iters| {
                let mut simulated = Duration::ZERO;
                for _ in 0..iters {
                    let mut mem = MemorySystem::new(DramConfig::paper());
                    let cycles = drive(&mut mem, a);
                    simulated += Duration::from_nanos(cycles); // 1 GHz clock
                }
                simulated
            });
        });
    }
    group.finish();
}

criterion_group!{
    name = benches;
    // Simulated (deterministic) timings have zero variance, which the
    // plotting backend cannot render — disable plots.
    config = Criterion::default().without_plots();
    targets = bench_dram
}
criterion_main!(benches);
