//! Bench behind Figs. 11/12: *modeled* DRAM throughput under sequential
//! vs random access streams, plus a shard-style parallel drive.
//!
//! Simulated time is 1 ns per modeled cycle at the paper's 1 GHz clock,
//! so the throughput lines read as the DRAM model's achieved bandwidth:
//! sequential streams ride row-buffer hits and all four channels
//! (~60 GB/s of the 68 GB/s peak), random single-channel row-conflict
//! streams collapse to a fraction of that.
//!
//! The parallel section mirrors the shard-parallel engine's memory
//! layout — one independent `MemorySystem` per shard — and drives the
//! 16 systems from 1/2/4/8 threads, reporting self-relative wall-clock
//! speedup (each shard's modeled cycle count is unchanged by threading).

use gp_bench::print_table;
use gp_mem::{DramConfig, MemRequest, MemorySystem, TrafficClass};
use gp_sim::Cycle;

fn drive(mem: &mut MemorySystem, addrs: &[u64]) -> u64 {
    let mut now = Cycle::ZERO;
    let mut next = 0usize;
    let mut done = 0usize;
    while done < addrs.len() {
        while next < addrs.len() && mem.can_accept(addrs[next]) {
            mem.request(now, MemRequest::read(addrs[next], 64, TrafficClass::Other))
                .expect("accepted");
            next += 1;
        }
        mem.tick(now);
        while mem.pop_completion(now).is_some() {
            done += 1;
        }
        now = now.next();
    }
    now.get()
}

fn modeled_bandwidth() {
    println!("\n== memory_model: modeled DRAM bandwidth ==\n");
    let n = 4_096u64;
    let sequential: Vec<u64> = (0..n).map(|i| i * 64).collect();
    let random: Vec<u64> = (0..n)
        .map(|i| (i.wrapping_mul(2654435761) % n) * 8192)
        .collect();
    let mut rows = Vec::new();
    for (name, addrs) in [("sequential", &sequential), ("random", &random)] {
        let mut mem = MemorySystem::new(DramConfig::paper());
        let cycles = drive(&mut mem, addrs);
        let bytes = addrs.len() as u64 * 64;
        // 1 GHz: modeled cycles are nanoseconds, so B/ns reads as GB/s.
        let gbps = bytes as f64 / cycles as f64;
        println!("{name:<12} {cycles:>8} cycles  {gbps:>6.1} GB/s modeled");
        rows.push(vec![
            name.to_string(),
            cycles.to_string(),
            format!("{gbps:.1}"),
        ]);
    }
    print_table(
        "memory_model modeled bandwidth",
        &["stream", "cycles", "GB/s"],
        &rows,
    );
}

fn parallel_drive() {
    println!("\n== memory_model: per-shard memory systems, threaded drive ==\n");
    const SHARDS: usize = 16;
    let n = 16_384u64;
    let streams: Vec<Vec<u64>> = (0..SHARDS as u64)
        .map(|s| {
            (0..n)
                .map(|i| ((i.wrapping_mul(2654435761).wrapping_add(s * 97)) % n) * 4096)
                .collect()
        })
        .collect();

    let run = |threads: usize| -> (f64, u64) {
        let mut systems: Vec<MemorySystem> = (0..SHARDS)
            .map(|_| MemorySystem::new(DramConfig::paper()))
            .collect();
        let t0 = std::time::Instant::now();
        let chunk = SHARDS.div_ceil(threads);
        std::thread::scope(|scope| {
            for (mems, addrs) in systems.chunks_mut(chunk).zip(streams.chunks(chunk)) {
                scope.spawn(move || {
                    for (mem, a) in mems.iter_mut().zip(addrs) {
                        drive(mem, a);
                    }
                });
            }
        });
        let secs = t0.elapsed().as_secs_f64();
        let accesses: u64 = systems.iter().map(|m| m.stats().total_accesses()).sum();
        (secs, accesses)
    };

    // Warmup.
    let _ = run(1);
    let mut base = 0.0f64;
    let mut rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (secs, accesses) = run(threads);
        if threads == 1 {
            base = secs;
        }
        println!(
            "threads={threads:<2} {:>9.1} ms  speedup {:>5.2}x  ({accesses} modeled accesses)",
            secs * 1e3,
            base / secs
        );
        rows.push(vec![
            threads.to_string(),
            format!("{:.1}", secs * 1e3),
            format!("{:.2}", base / secs),
        ]);
    }
    print_table(
        "memory_model threaded drive (16 shard memory systems)",
        &["threads", "ms", "speedup"],
        &rows,
    );
}

fn main() {
    modeled_bandwidth();
    parallel_drive();
}
