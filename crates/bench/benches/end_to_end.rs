//! Criterion bench behind Fig. 10: end-to-end accelerator runs, one per
//! application, on a small LiveJournal-profile graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gp_bench::{gp_config, prepare, run_graphpulse, App};
use gp_graph::workloads::Workload;

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for app in App::ALL {
        let prepared = prepare(Workload::LiveJournal, app, 4096, 7);
        let cfg = gp_config(Workload::LiveJournal, &prepared.graph, true);
        group.bench_with_input(BenchmarkId::from_parameter(app.label()), &prepared, |b, p| {
            b.iter(|| run_graphpulse(app, p, &cfg).report.cycles);
        });
    }
    group.finish();
}

criterion_group!{
    name = benches;
    // Simulated (deterministic) timings have zero variance, which the
    // plotting backend cannot render — disable plots.
    config = Criterion::default().without_plots();
    targets = bench_apps
}
criterion_main!(benches);
