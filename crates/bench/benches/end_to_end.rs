//! Bench behind Fig. 10: end-to-end accelerator runs, one per
//! application, on a small LiveJournal-profile graph — plus the
//! shard-parallel worker sweep.
//!
//! The per-app section reports wall-clock medians next to the simulated
//! cycle counts (the figure's actual metric, which is deterministic).
//!
//! The sweep section runs PageRank-Delta on a 2^18-vertex R-MAT through
//! the shard-parallel engine at 1/2/4/8 workers. The engine guarantees
//! bit-identical vertex values, cycle counts, and stat registries for
//! every worker count, so the only thing that changes is how the shard
//! work is spread over threads. The table reports two self-relative
//! speedups over the 1-worker run: wall-clock (capped by this host's
//! core count) and work-distribution (total shard ticks divided by the
//! critical-path worker's share — the deterministic speedup a host with
//! enough cores realizes).
//!
//! The turbo-trajectory section races the speed-first `gp-turbo` backend
//! against the cycle-level model on scatter-permuted R-MAT graphs
//! (PageRank-Delta and SSSP at every size, BFS and CC at the largest) and
//! writes the measurements to a machine-readable `BENCH_end_to_end.json`
//! (schema `gp-bench/end_to_end/v1`, validated by the `bench_check`
//! binary). Each turbo run is cross-checked against the sequential golden
//! engine, so the trajectory doubles as a turbo-vs-golden smoke test.
//!
//! Flags: `--sweep-only` runs just the worker sweep, `--turbo-only` just
//! the turbo trajectory, `--json PATH` redirects the JSON output (default
//! `BENCH_end_to_end.json`). The sweep's shape can be overridden for
//! quick runs via environment variables: `SWEEP_LOG2_N` (default 18),
//! `SWEEP_DEGREE` (default 4), `SWEEP_SHARDS` (default 16), `SWEEP_EPS`
//! (default 1e-3); the trajectory sizes via `TURBO_LOG2` (comma list of
//! log2 vertex counts, default `14,16,18`).

use std::time::Instant;

use gp_algorithms::engine::run_sequential;
use gp_algorithms::{max_abs_diff, Bfs, ConnectedComponents, DeltaAlgorithm, PageRankDelta, Sssp};
use gp_bench::json::{Json, END_TO_END_SCHEMA};
use gp_bench::{gp_config, microbench, prepare, print_table, run_graphpulse, write_output, App};
use gp_graph::generators::{rmat, RmatConfig, WeightMode};
use gp_graph::partition::{permute, scatter_permutation};
use gp_graph::workloads::Workload;
use gp_graph::{CsrGraph, VertexId};
use gp_turbo::{run_turbo, TurboConfig};
use graphpulse_core::{AcceleratorConfig, GraphPulse, QueueConfig};

fn per_app_runs() {
    println!("\n== end_to_end: per-app runs (LiveJournal profile) ==\n");
    for app in App::ALL {
        let prepared = prepare(Workload::LiveJournal, app, 4096, 7);
        let cfg = gp_config(Workload::LiveJournal, &prepared.graph, true);
        let mut cycles = 0;
        microbench::report(&format!("end_to_end/{}", app.label()), 3, || {
            cycles = run_graphpulse(app, &prepared, &cfg).report.cycles;
        });
        println!("{:<40} {cycles:>10} simulated cycles", "");
    }
}

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn worker_sweep() {
    let log2_n: u32 = env_or("SWEEP_LOG2_N", 18);
    let degree: usize = env_or("SWEEP_DEGREE", 4);
    let shards: usize = env_or("SWEEP_SHARDS", 16);
    let eps: f64 = env_or("SWEEP_EPS", 1e-3);
    let n = 1usize << log2_n;

    println!("\n== end_to_end: shard-parallel worker sweep ==");
    println!(
        "   (2^{log2_n} = {n} vertices, {} edges, {shards} shards, eps {eps:e})\n",
        n * degree
    );

    let t0 = Instant::now();
    // Scatter the R-MAT hubs across the vertex range so contiguous shards
    // carry comparable event load (otherwise shard 0 serializes the run).
    let raw = rmat(&RmatConfig::graph500(n, n * degree), 42);
    let graph = permute(&raw, &scatter_permutation(n, 7));
    drop(raw);
    println!("graph generated in {:.1} s", t0.elapsed().as_secs_f64());
    let algo = PageRankDelta::new(0.85, eps);

    // Shrink the queue so each shard holds n/shards vertices (the shard
    // count derives from capacity, never from the worker count — that is
    // what keeps results worker-independent).
    let per_shard = n / shards;
    let mut cfg = AcceleratorConfig::optimized();
    cfg.queue = QueueConfig {
        bins: 8,
        rows: per_shard / 64,
        cols: 8,
    };
    assert_eq!(
        cfg.queue.capacity(),
        per_shard,
        "shard size must divide evenly"
    );
    cfg.input_buffer = 64;
    cfg.parallel.epoch_cycles = 16_384;

    // The wall-clock column depends on how many hardware cores this host
    // exposes; the work column is host-independent — it divides the total
    // simulation work (ticks, identical for every worker count) by the
    // critical-path worker's share, i.e. the speedup a host with enough
    // cores realizes.
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("host exposes {cores} hardware thread(s); wall-clock speedup is capped there\n");

    let work_speedup = |ticks: &[u64], workers: usize| -> f64 {
        let chunk = ticks.len().div_ceil(workers);
        let total: u64 = ticks.iter().sum();
        let critical: u64 = ticks
            .chunks(chunk)
            .map(|c| c.iter().sum())
            .max()
            .unwrap_or(1);
        total as f64 / critical.max(1) as f64
    };

    let mut rows = Vec::new();
    let mut base_secs = 0.0f64;
    let mut base_cycles = 0u64;
    let mut speedup4 = 0.0f64;
    for workers in [1usize, 2, 4, 8] {
        cfg.parallel.workers = workers;
        let accel = GraphPulse::new(cfg.clone());
        let t0 = Instant::now();
        let out = accel.run_parallel(&graph, &algo).expect("parallel run");
        let secs = t0.elapsed().as_secs_f64();
        if workers == 1 {
            base_secs = secs;
            base_cycles = out.report.cycles;
        }
        assert_eq!(
            out.report.cycles, base_cycles,
            "parallel engine must be cycle-deterministic across worker counts"
        );
        let work = work_speedup(&out.shard_ticks, workers);
        if workers == 4 {
            speedup4 = work;
        }
        println!(
            "workers={workers:<2} shards={:<3} {:>9.1} ms  wall speedup {:>5.2}x  work speedup {:>5.2}x",
            out.shards,
            secs * 1e3,
            base_secs / secs,
            work,
        );
        rows.push(vec![
            workers.to_string(),
            out.shards.to_string(),
            format!("{:.1}", secs * 1e3),
            format!("{:.2}", base_secs / secs),
            format!("{:.2}", work),
            out.report.cycles.to_string(),
        ]);
    }
    print_table(
        "end_to_end worker sweep (R-MAT, PageRank-Delta)",
        &[
            "workers",
            "shards",
            "ms",
            "wall_speedup",
            "work_speedup",
            "cycles",
        ],
        &rows,
    );
    assert!(
        speedup4 >= 2.0,
        "4-worker work-distribution speedup {speedup4:.2}x fell below 2x: shards are imbalanced"
    );
    println!("\n4-worker work-distribution speedup: {speedup4:.2}x (>= 2x required)");
}

/// One backend leg of a trajectory entry, ready for JSON.
fn leg_json(wall_secs: f64, events_processed: u64, extra: &[(&'static str, Json)]) -> Json {
    let mut pairs = vec![
        ("wall_secs", Json::Num(wall_secs)),
        ("events_processed", Json::Num(events_processed as f64)),
        (
            "events_per_sec",
            Json::Num(events_processed as f64 / wall_secs.max(1e-12)),
        ),
    ];
    pairs.extend(extra.iter().cloned());
    Json::obj(pairs)
}

/// Races turbo against the cycle-level model on one (app, graph) point;
/// cross-checks turbo against the sequential golden engine.
fn measure_point<A: DeltaAlgorithm>(
    app: &'static str,
    log2_n: u32,
    graph: &CsrGraph,
    algo: &A,
) -> (Json, Vec<String>) {
    let n = graph.num_vertices();

    // Cycle-level leg, queue sized to hold the whole graph in one slice
    // (one run: the model is deterministic and dominates the wall clock).
    let mut cfg = AcceleratorConfig::optimized();
    cfg.queue = QueueConfig {
        bins: 8,
        rows: n.div_ceil(64).max(1),
        cols: 8,
    };
    cfg.input_buffer = 64;
    let t0 = Instant::now();
    let cycle = GraphPulse::new(cfg)
        .run(graph, algo)
        .expect("cycle-level run failed");
    let cycle_secs = t0.elapsed().as_secs_f64();

    // Turbo leg: outcome once (bit-deterministic), wall time as the
    // median of three timed runs.
    let tcfg = TurboConfig::default();
    let turbo = run_turbo(algo, graph, &tcfg);
    let turbo_secs = microbench::median_secs(3, || run_turbo(algo, graph, &tcfg));

    // Golden cross-check — the turbo-vs-golden smoke CI relies on.
    let golden = run_sequential(algo, graph);
    let diff = max_abs_diff(&turbo.values, &golden.values);
    let tol = algo.comparison_tolerance().max(1e-9);
    assert!(
        diff <= tol,
        "{app} 2^{log2_n}: turbo diverged from golden (max |diff| {diff:e} > {tol:e})"
    );

    let cycle_eps = cycle.report.events_processed as f64 / cycle_secs.max(1e-12);
    let turbo_eps = turbo.events_processed as f64 / turbo_secs.max(1e-12);
    let speedup = turbo_eps / cycle_eps.max(1e-12);
    println!(
        "{app:<5} 2^{log2_n:<2} cycle {:>12.0} ev/s  turbo {:>12.0} ev/s  speedup {speedup:>8.1}x  \
         (diff vs golden {diff:.2e})",
        cycle_eps, turbo_eps
    );

    let entry = Json::obj([
        ("app", Json::Str(app.into())),
        ("log2_vertices", Json::Num(f64::from(log2_n))),
        ("vertices", Json::Num(n as f64)),
        ("edges", Json::Num(graph.num_edges() as f64)),
        (
            "cycle",
            leg_json(
                cycle_secs,
                cycle.report.events_processed,
                &[("cycles", Json::Num(cycle.report.cycles as f64))],
            ),
        ),
        (
            "turbo",
            leg_json(
                turbo_secs,
                turbo.events_processed,
                &[
                    ("rounds", Json::Num(turbo.rounds as f64)),
                    ("coalesce_rate", Json::Num(turbo.coalesce_rate())),
                ],
            ),
        ),
        ("speedup_events_per_sec", Json::Num(speedup)),
        ("max_abs_diff_vs_golden", Json::Num(diff)),
    ]);
    let row = vec![
        app.to_string(),
        format!("2^{log2_n}"),
        format!("{:.3e}", cycle_eps),
        format!("{:.3e}", turbo_eps),
        format!("{speedup:.1}"),
        turbo.rounds.to_string(),
    ];
    (entry, row)
}

/// The turbo perf trajectory: events/sec of the cycle model vs. the turbo
/// backend per algorithm and graph size, written to `json_path`.
fn turbo_trajectory(json_path: &std::path::Path) {
    let sizes: Vec<u32> = std::env::var("TURBO_LOG2")
        .unwrap_or_else(|_| "14,16,18".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    assert!(!sizes.is_empty(), "TURBO_LOG2 parsed to no sizes");
    let largest = *sizes.iter().max().unwrap();

    println!("\n== end_to_end: turbo perf trajectory ==");
    println!("   (scatter-permuted R-MAT, degree 4, sizes {sizes:?})\n");

    let mut entries = Vec::new();
    let mut rows = Vec::new();
    for &log2_n in &sizes {
        let n = 1usize << log2_n;
        let unweighted = permute(
            &rmat(&RmatConfig::graph500(n, n * 4), 42),
            &scatter_permutation(n, 7),
        );
        let weighted = permute(
            &rmat(
                &RmatConfig::graph500(n, n * 4).with_weights(WeightMode::Uniform(1.0, 10.0)),
                42,
            ),
            &scatter_permutation(n, 7),
        );
        let root = weighted
            .vertices()
            .max_by_key(|v| weighted.out_degree(*v))
            .unwrap_or(VertexId::new(0));

        let (e, r) = measure_point("PRD", log2_n, &unweighted, &PageRankDelta::new(0.85, 1e-3));
        entries.push(e);
        rows.push(r);
        let (e, r) = measure_point("SSSP", log2_n, &weighted, &Sssp::new(root));
        entries.push(e);
        rows.push(r);
        if log2_n == largest {
            let (e, r) = measure_point("BFS", log2_n, &unweighted, &Bfs::new(root));
            entries.push(e);
            rows.push(r);
            let (e, r) = measure_point("CC", log2_n, &unweighted, &ConnectedComponents::new());
            entries.push(e);
            rows.push(r);
        }
    }

    print_table(
        "end_to_end turbo trajectory (R-MAT)",
        &[
            "app",
            "size",
            "cycle_ev_per_s",
            "turbo_ev_per_s",
            "speedup",
            "turbo_rounds",
        ],
        &rows,
    );

    let doc = Json::obj([
        ("schema", Json::Str(END_TO_END_SCHEMA.into())),
        (
            "host_threads",
            Json::Num(std::thread::available_parallelism().map_or(1.0, |p| p.get() as f64)),
        ),
        ("entries", Json::Arr(entries)),
    ]);
    match write_output(json_path, &doc.render()) {
        Ok(()) => println!("\nwrote {}", json_path.display()),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

const USAGE: &str = "\
Usage: end_to_end [flags]
  --sweep-only  run only the shard-parallel worker sweep
  --turbo-only  run only the turbo perf trajectory
  --json PATH   JSON output path (default BENCH_end_to_end.json)
  --help        print this reference and exit";

struct Invocation {
    sweep_only: bool,
    turbo_only: bool,
    json_path: String,
}

fn parse(args: impl Iterator<Item = String>) -> Result<Option<Invocation>, String> {
    let mut inv = Invocation {
        sweep_only: false,
        turbo_only: false,
        json_path: "BENCH_end_to_end.json".into(),
    };
    let mut args = gp_bench::cli::Flags::new(args);
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--sweep-only" => inv.sweep_only = true,
            "--turbo-only" => inv.turbo_only = true,
            "--json" => inv.json_path = args.value(&flag)?,
            // `cargo bench` forwards its own harness flags (e.g. --bench);
            // ignore anything unrecognized rather than failing the run.
            _ => {}
        }
    }
    if args.help_requested() {
        return Ok(None);
    }
    Ok(Some(inv))
}

fn main() {
    let inv = gp_bench::cli::finish(parse(std::env::args().skip(1)), USAGE);
    if !inv.sweep_only && !inv.turbo_only {
        per_app_runs();
    }
    if !inv.turbo_only {
        worker_sweep();
    }
    if !inv.sweep_only {
        turbo_trajectory(std::path::Path::new(&inv.json_path));
    }
}
