//! Bench behind Fig. 10: end-to-end accelerator runs, one per
//! application, on a small LiveJournal-profile graph — plus the
//! shard-parallel worker sweep.
//!
//! The per-app section reports wall-clock medians next to the simulated
//! cycle counts (the figure's actual metric, which is deterministic).
//!
//! The sweep section runs PageRank-Delta on a 2^18-vertex R-MAT through
//! the shard-parallel engine at 1/2/4/8 workers. The engine guarantees
//! bit-identical vertex values, cycle counts, and stat registries for
//! every worker count, so the only thing that changes is how the shard
//! work is spread over threads. The table reports two self-relative
//! speedups over the 1-worker run: wall-clock (capped by this host's
//! core count) and work-distribution (total shard ticks divided by the
//! critical-path worker's share — the deterministic speedup a host with
//! enough cores realizes).
//!
//! `--sweep-only` skips the per-app section. The sweep's shape can be
//! overridden for quick runs via environment variables:
//! `SWEEP_LOG2_N` (default 18), `SWEEP_DEGREE` (default 4),
//! `SWEEP_SHARDS` (default 16), `SWEEP_EPS` (default 1e-3).

use std::time::Instant;

use gp_algorithms::PageRankDelta;
use gp_bench::{gp_config, microbench, prepare, print_table, run_graphpulse, App};
use gp_graph::generators::{rmat, RmatConfig};
use gp_graph::partition::{permute, scatter_permutation};
use gp_graph::workloads::Workload;
use graphpulse_core::{AcceleratorConfig, GraphPulse, QueueConfig};

fn per_app_runs() {
    println!("\n== end_to_end: per-app runs (LiveJournal profile) ==\n");
    for app in App::ALL {
        let prepared = prepare(Workload::LiveJournal, app, 4096, 7);
        let cfg = gp_config(Workload::LiveJournal, &prepared.graph, true);
        let mut cycles = 0;
        microbench::report(&format!("end_to_end/{}", app.label()), 3, || {
            cycles = run_graphpulse(app, &prepared, &cfg).report.cycles;
        });
        println!("{:<40} {cycles:>10} simulated cycles", "");
    }
}

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn worker_sweep() {
    let log2_n: u32 = env_or("SWEEP_LOG2_N", 18);
    let degree: usize = env_or("SWEEP_DEGREE", 4);
    let shards: usize = env_or("SWEEP_SHARDS", 16);
    let eps: f64 = env_or("SWEEP_EPS", 1e-3);
    let n = 1usize << log2_n;

    println!("\n== end_to_end: shard-parallel worker sweep ==");
    println!(
        "   (2^{log2_n} = {n} vertices, {} edges, {shards} shards, eps {eps:e})\n",
        n * degree
    );

    let t0 = Instant::now();
    // Scatter the R-MAT hubs across the vertex range so contiguous shards
    // carry comparable event load (otherwise shard 0 serializes the run).
    let raw = rmat(&RmatConfig::graph500(n, n * degree), 42);
    let graph = permute(&raw, &scatter_permutation(n, 7));
    drop(raw);
    println!("graph generated in {:.1} s", t0.elapsed().as_secs_f64());
    let algo = PageRankDelta::new(0.85, eps);

    // Shrink the queue so each shard holds n/shards vertices (the shard
    // count derives from capacity, never from the worker count — that is
    // what keeps results worker-independent).
    let per_shard = n / shards;
    let mut cfg = AcceleratorConfig::optimized();
    cfg.queue = QueueConfig {
        bins: 8,
        rows: per_shard / 64,
        cols: 8,
    };
    assert_eq!(
        cfg.queue.capacity(),
        per_shard,
        "shard size must divide evenly"
    );
    cfg.input_buffer = 64;
    cfg.parallel.epoch_cycles = 16_384;

    // The wall-clock column depends on how many hardware cores this host
    // exposes; the work column is host-independent — it divides the total
    // simulation work (ticks, identical for every worker count) by the
    // critical-path worker's share, i.e. the speedup a host with enough
    // cores realizes.
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("host exposes {cores} hardware thread(s); wall-clock speedup is capped there\n");

    let work_speedup = |ticks: &[u64], workers: usize| -> f64 {
        let chunk = ticks.len().div_ceil(workers);
        let total: u64 = ticks.iter().sum();
        let critical: u64 = ticks
            .chunks(chunk)
            .map(|c| c.iter().sum())
            .max()
            .unwrap_or(1);
        total as f64 / critical.max(1) as f64
    };

    let mut rows = Vec::new();
    let mut base_secs = 0.0f64;
    let mut base_cycles = 0u64;
    let mut speedup4 = 0.0f64;
    for workers in [1usize, 2, 4, 8] {
        cfg.parallel.workers = workers;
        let accel = GraphPulse::new(cfg.clone());
        let t0 = Instant::now();
        let out = accel.run_parallel(&graph, &algo).expect("parallel run");
        let secs = t0.elapsed().as_secs_f64();
        if workers == 1 {
            base_secs = secs;
            base_cycles = out.report.cycles;
        }
        assert_eq!(
            out.report.cycles, base_cycles,
            "parallel engine must be cycle-deterministic across worker counts"
        );
        let work = work_speedup(&out.shard_ticks, workers);
        if workers == 4 {
            speedup4 = work;
        }
        println!(
            "workers={workers:<2} shards={:<3} {:>9.1} ms  wall speedup {:>5.2}x  work speedup {:>5.2}x",
            out.shards,
            secs * 1e3,
            base_secs / secs,
            work,
        );
        rows.push(vec![
            workers.to_string(),
            out.shards.to_string(),
            format!("{:.1}", secs * 1e3),
            format!("{:.2}", base_secs / secs),
            format!("{:.2}", work),
            out.report.cycles.to_string(),
        ]);
    }
    print_table(
        "end_to_end worker sweep (R-MAT, PageRank-Delta)",
        &[
            "workers",
            "shards",
            "ms",
            "wall_speedup",
            "work_speedup",
            "cycles",
        ],
        &rows,
    );
    assert!(
        speedup4 >= 2.0,
        "4-worker work-distribution speedup {speedup4:.2}x fell below 2x: shards are imbalanced"
    );
    println!("\n4-worker work-distribution speedup: {speedup4:.2}x (>= 2x required)");
}

fn main() {
    let sweep_only = std::env::args().any(|a| a == "--sweep-only");
    if !sweep_only {
        per_app_runs();
    }
    worker_sweep();
}
