//! Criterion bench of the software baseline (denominator of Fig. 10):
//! the Ligra-style framework on the five applications.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gp_bench::{prepare, run_ligra, App};
use gp_baselines::ligra::LigraConfig;
use gp_graph::workloads::Workload;

fn bench_ligra(c: &mut Criterion) {
    let mut group = c.benchmark_group("ligra_baseline");
    group.sample_size(10);
    let cfg = LigraConfig::default();
    for app in App::ALL {
        let prepared = prepare(Workload::WebGoogle, app, 1024, 5);
        group.bench_with_input(BenchmarkId::from_parameter(app.label()), &prepared, |b, p| {
            b.iter(|| run_ligra(app, p, &cfg).iterations);
        });
    }
    group.finish();
}

criterion_group!{
    name = benches;
    // Simulated (deterministic) timings have zero variance, which the
    // plotting backend cannot render — disable plots.
    config = Criterion::default().without_plots();
    targets = bench_ligra
}
criterion_main!(benches);
