//! Bench of the software baseline (denominator of Fig. 10): the
//! Ligra-style framework on the five applications.

use gp_baselines::ligra::LigraConfig;
use gp_bench::{microbench, prepare, run_ligra, App};
use gp_graph::workloads::Workload;

fn main() {
    println!("## ligra_baseline");
    let cfg = LigraConfig::default();
    for app in App::ALL {
        let prepared = prepare(Workload::WebGoogle, app, 1024, 5);
        microbench::report(&format!("ligra_baseline/{}", app.label()), 10, || {
            run_ligra(app, &prepared, &cfg).iterations
        });
    }
}
