//! Invocation tests for the `fuzz`, `chaos`, `serve_bench`, and
//! `bench_check` binaries: good runs exit 0, validation failures exit 1,
//! bad flags and unknown schemas exit 2 with a usage text that enumerates
//! every valid fault kind / schema tag.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> std::process::Output {
    Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("could not spawn {bin}: {e}"))
}

#[test]
fn fuzz_good_invocation_passes() {
    let out = run(env!("CARGO_BIN_EXE_fuzz"), &["--seed", "3", "--iters", "1"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("1 iteration(s) passed"), "{stdout}");
}

#[test]
fn fuzz_bad_fault_exits_2_and_lists_every_kind() {
    let out = run(env!("CARGO_BIN_EXE_fuzz"), &["--inject-fault", "nope"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown fault \"nope\""), "{stderr}");
    for kind in gp_chaos::FaultKind::labels() {
        assert!(
            stderr.contains(kind),
            "usage must list fault kind {kind}:\n{stderr}"
        );
    }
}

#[test]
fn fuzz_help_lists_every_fault_kind() {
    let out = run(env!("CARGO_BIN_EXE_fuzz"), &["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for kind in gp_chaos::FaultKind::labels() {
        assert!(stdout.contains(kind), "help must list {kind}:\n{stdout}");
    }
    assert!(stdout.contains("--chaos"), "{stdout}");
}

#[test]
fn fuzz_injected_fault_exits_1() {
    let out = run(
        env!("CARGO_BIN_EXE_fuzz"),
        &[
            "--seed",
            "7",
            "--iters",
            "5",
            "--no-shrink",
            "--inject-fault",
            "drop-event",
        ],
    );
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL"), "{stdout}");
    assert!(stdout.contains("chaos-detection"), "{stdout}");
}

#[test]
fn chaos_bad_flag_exits_2() {
    let out = run(env!("CARGO_BIN_EXE_chaos"), &["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("gp-bench-cli-{}-{name}", std::process::id()))
}

/// A hand-written document that satisfies every `validate_serve` rule;
/// the malformed variants below each break exactly one of them.
const VALID_SERVE_DOC: &str = r#"{"schema":"gp-bench/serve/v2","seed":1,"vertices":64,
"edges":256,"tenants":1,"clients":1,"turbo_shards":2,
"runs":[{"executors":2,"queries_total":10,"wall_secs":0.1,
"throughput_qps":100,"rejected":0,"degraded":0,"epochs_published":1,
"update_batches":1,"warm_starts":0,"cold_runs":1,"fused_runs":1,
"path_cache_hits":0,"path_warm_starts":0,"verified_samples":2,
"verify_failures":0,
"classes":[{"class":"pagerank","served":10,"mean_us":5,"p50_us":4,
"p99_us":9,"p999_us":9,"max_us":9}]}]}"#;

#[test]
fn serve_bench_tiny_run_emits_output_bench_check_accepts() {
    let out_path = temp_path("serve-tiny.json");
    let out = run(
        env!("CARGO_BIN_EXE_serve_bench"),
        &[
            "--seed",
            "9",
            "--vertices",
            "64",
            "--queries",
            "100",
            "--clients",
            "2",
            "--batches",
            "1",
            "--batch-size",
            "8",
            "--sample-every",
            "16",
            "--executors",
            "1,2",
            "--turbo-shards",
            "2",
            "--verify-all",
            "--out",
            out_path.to_str().unwrap(),
        ],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("0 mismatch(es)"), "{stdout}");
    assert!(
        stdout.contains("2 executor(s)"),
        "sweep must reach the second pool size:\n{stdout}"
    );
    let check = run(
        env!("CARGO_BIN_EXE_bench_check"),
        &[out_path.to_str().unwrap()],
    );
    assert!(
        check.status.success(),
        "bench_check rejected serve_bench's own output:\n{}",
        String::from_utf8_lossy(&check.stderr)
    );
    std::fs::remove_file(&out_path).ok();
}

#[test]
fn serve_bench_help_exits_0_and_bad_flag_exits_2() {
    let help = run(env!("CARGO_BIN_EXE_serve_bench"), &["--help"]);
    assert!(help.status.success());
    let stdout = String::from_utf8_lossy(&help.stdout);
    assert!(stdout.contains("--verify-all"), "{stdout}");
    assert!(stdout.contains("--executors"), "{stdout}");
    assert!(stdout.contains("--turbo-shards"), "{stdout}");

    let bad = run(env!("CARGO_BIN_EXE_serve_bench"), &["--wat"]);
    assert_eq!(bad.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown flag"));
}

#[test]
fn serve_bench_rejects_bad_executor_and_shard_flags_with_usage() {
    // Zero anywhere in the sweep list, a non-numeric entry, and a zero
    // shard count are all bad invocations: exit 2 and print the usage.
    for args in [
        ["--executors", "0"],
        ["--executors", "1,0,4"],
        ["--executors", "two"],
        ["--executors", ""],
        ["--turbo-shards", "0"],
        ["--turbo-shards", "many"],
    ] {
        let out = run(env!("CARGO_BIN_EXE_serve_bench"), &args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?} must exit 2, stderr:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("Usage: serve_bench"),
            "{args:?} must print usage:\n{stderr}"
        );
        assert!(
            stderr.contains(args[0]),
            "{args:?} diagnostic must name the flag:\n{stderr}"
        );
    }
}

#[test]
fn bench_check_unknown_schema_exits_2_naming_known_tags() {
    let path = temp_path("unknown-schema.json");
    std::fs::write(&path, r#"{"schema": "gp-bench/mystery/v9"}"#).unwrap();
    let out = run(env!("CARGO_BIN_EXE_bench_check"), &[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    for tag in [
        "gp-bench/end_to_end/v1",
        "gp-bench/chaos/v1",
        "gp-bench/serve/v2",
    ] {
        assert!(stderr.contains(tag), "must name known tag {tag}:\n{stderr}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn bench_check_accepts_valid_serve_doc_and_rejects_tampered_one() {
    let good = temp_path("serve-good.json");
    std::fs::write(&good, VALID_SERVE_DOC).unwrap();
    let out = run(env!("CARGO_BIN_EXE_bench_check"), &[good.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&good).ok();

    // A recorded cross-check failure is a validation failure: exit 1.
    let bad = temp_path("serve-bad.json");
    std::fs::write(
        &bad,
        VALID_SERVE_DOC.replace("\"verify_failures\":0", "\"verify_failures\":3"),
    )
    .unwrap();
    let out = run(env!("CARGO_BIN_EXE_bench_check"), &[bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("diverged"));
    std::fs::remove_file(&bad).ok();
}
