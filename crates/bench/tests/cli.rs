//! Invocation tests for the `fuzz` and `chaos` binaries: good runs exit
//! 0, bad flags exit 2 with a usage text that enumerates every valid
//! fault kind.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> std::process::Output {
    Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("could not spawn {bin}: {e}"))
}

#[test]
fn fuzz_good_invocation_passes() {
    let out = run(env!("CARGO_BIN_EXE_fuzz"), &["--seed", "3", "--iters", "1"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("1 iteration(s) passed"), "{stdout}");
}

#[test]
fn fuzz_bad_fault_exits_2_and_lists_every_kind() {
    let out = run(env!("CARGO_BIN_EXE_fuzz"), &["--inject-fault", "nope"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown fault \"nope\""), "{stderr}");
    for kind in gp_chaos::FaultKind::labels() {
        assert!(
            stderr.contains(kind),
            "usage must list fault kind {kind}:\n{stderr}"
        );
    }
}

#[test]
fn fuzz_help_lists_every_fault_kind() {
    let out = run(env!("CARGO_BIN_EXE_fuzz"), &["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for kind in gp_chaos::FaultKind::labels() {
        assert!(stdout.contains(kind), "help must list {kind}:\n{stdout}");
    }
    assert!(stdout.contains("--chaos"), "{stdout}");
}

#[test]
fn fuzz_injected_fault_exits_1() {
    let out = run(
        env!("CARGO_BIN_EXE_fuzz"),
        &[
            "--seed",
            "7",
            "--iters",
            "5",
            "--no-shrink",
            "--inject-fault",
            "drop-event",
        ],
    );
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL"), "{stdout}");
    assert!(stdout.contains("chaos-detection"), "{stdout}");
}

#[test]
fn chaos_bad_flag_exits_2() {
    let out = run(env!("CARGO_BIN_EXE_chaos"), &["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}
