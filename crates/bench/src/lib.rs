//! # gp-bench — the evaluation harness
//!
//! Regenerates every table and figure of the GraphPulse paper's evaluation
//! (§VI). Each figure has a dedicated binary (`fig04_coalescing`,
//! `fig08_lookahead`, `fig10_speedup`, `fig11_offchip`,
//! `fig12_utilization`, `fig13_stages`, `fig14_breakdown`, `tab05_power`)
//! plus a `report` binary that runs the full suite; the wall-clock benches
//! in `benches/` (see [`microbench`]) cover the hot paths behind each
//! figure and the shard-parallel worker sweep.
//!
//! All binaries accept the same reproducibility flags (see
//! [`HarnessConfig::USAGE`], printed by `--help` on every binary):
//!
//! ```text
//! --scale N        scale denominator vs. the published dataset sizes (default 256)
//! --seed S         RNG seed (default 42)
//! --workloads W    comma list of WG,FB,WK,LJ,TW (default all)
//! --apps A         comma list of pr,ads,sssp,bfs,cc (default all)
//! --threads T      software-baseline threads (default: all cores)
//! --workers W      run the accelerator with the shard-parallel engine on W
//!                  worker threads (omit for the classic sequential engine;
//!                  results are bit-identical for every W)
//! --epoch-cycles E cycles between parallel-engine exchange barriers
//! --vertices N     update-stream graph size (streaming binary, default 2^16)
//! --batches B      update batches to stream (streaming binary, default 16)
//! --batch-size U   edge updates per batch (streaming binary, default 256)
//! --delete-frac F  deletion fraction of the update mix (streaming binary,
//!                  default 0.3)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod json;

use gp_algorithms::{
    normalize_inbound, Adsorption, AdsorptionParams, Bfs, ConnectedComponents, PageRankDelta, Sssp,
};
use gp_baselines::graphicionado::{self, GraphicionadoConfig};
use gp_baselines::ligra::{apps as ligra_apps, LigraConfig, LigraOutput};
use gp_graph::generators::WeightMode;
use gp_graph::workloads::Workload;
use gp_graph::{CsrGraph, VertexId};
use graphpulse_core::{AcceleratorConfig, GraphPulse, Outcome, ParallelOutcome, QueueConfig};

/// The five applications of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// PageRank-Delta.
    PageRank,
    /// Adsorption.
    Adsorption,
    /// Single-source shortest paths.
    Sssp,
    /// Breadth-first search.
    Bfs,
    /// Connected components.
    Cc,
}

impl App {
    /// All apps in the paper's Fig. 10 order.
    pub const ALL: [App; 5] = [App::PageRank, App::Adsorption, App::Sssp, App::Bfs, App::Cc];

    /// Paper-style short label.
    pub fn label(self) -> &'static str {
        match self {
            App::PageRank => "PRD",
            App::Adsorption => "ADS",
            App::Sssp => "SSSP",
            App::Bfs => "BFS",
            App::Cc => "CC",
        }
    }

    /// Parses `pr`, `ads`, `sssp`, `bfs`, `cc` (case-insensitive).
    pub fn parse(s: &str) -> Option<App> {
        match s.to_ascii_lowercase().as_str() {
            "pr" | "prd" | "pagerank" => Some(App::PageRank),
            "ads" | "adsorption" => Some(App::Adsorption),
            "sssp" => Some(App::Sssp),
            "bfs" => Some(App::Bfs),
            "cc" => Some(App::Cc),
            _ => None,
        }
    }
}

/// Harness-wide knobs parsed from the command line.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Scale denominator against the published dataset sizes.
    pub scale: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Workloads to run.
    pub workloads: Vec<Workload>,
    /// Apps to run.
    pub apps: Vec<App>,
    /// Software-baseline threads.
    pub threads: usize,
    /// Accelerator worker threads: `Some(w)` routes every accelerator run
    /// through the shard-parallel engine on `w` workers; `None` keeps the
    /// classic sequential engine.
    pub workers: Option<usize>,
    /// Override for the parallel engine's epoch length in cycles.
    pub epoch_cycles: Option<u64>,
    /// Update-stream graph size (`--vertices`, streaming binary).
    pub stream_vertices: usize,
    /// Number of update batches to stream (`--batches`, streaming binary).
    pub batches: usize,
    /// Edge updates per batch (`--batch-size`, streaming binary).
    pub batch_size: usize,
    /// Deletion fraction of the update mix (`--delete-frac`, streaming
    /// binary).
    pub delete_fraction: f64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale: 256,
            seed: 42,
            workloads: Workload::TABLE_IV.to_vec(),
            apps: App::ALL.to_vec(),
            threads: std::thread::available_parallelism().map_or(4, |p| p.get()),
            workers: None,
            epoch_cycles: None,
            stream_vertices: 1 << 16,
            batches: 16,
            batch_size: 256,
            delete_fraction: 0.3,
        }
    }
}

impl HarnessConfig {
    /// The flag reference every binary prints on `--help`.
    pub const USAGE: &'static str = "\
Common flags (every gp-bench binary):
  --scale N        scale denominator vs. published dataset sizes (default 256)
  --seed S         RNG seed (default 42)
  --workloads W    comma list of WG,FB,WK,LJ,TW (default all)
  --apps A         comma list of pr,ads,sssp,bfs,cc (default all)
  --threads T      software-baseline threads (default: all cores)
  --workers W      shard-parallel accelerator engine on W worker threads
                   (omit for the sequential engine; results bit-identical)
  --epoch-cycles E cycles between parallel-engine exchange barriers
  --vertices N     update-stream graph size (streaming, default 65536)
  --batches B      update batches to stream (streaming, default 16)
  --batch-size U   edge updates per batch (streaming, default 256)
  --delete-frac F  deletion fraction of the update mix (streaming, default 0.3)
  --help           print this reference and exit";

    /// Parses `std::env::args()`-style arguments without touching the
    /// process: `Ok(Some(cfg))` on success, `Ok(None)` when `--help` was
    /// requested, `Err` describing the first bad flag or value.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown flags, flags missing
    /// their value, and unparsable values.
    pub fn try_from_args(args: impl Iterator<Item = String>) -> Result<Option<Self>, String> {
        let mut cfg = HarnessConfig::default();
        let mut args = cli::Flags::new(args);
        while let Some(flag) = args.next_flag() {
            match flag.as_str() {
                "--scale" => cfg.scale = args.parsed(&flag, "an integer")?,
                "--seed" => cfg.seed = args.parsed(&flag, "an integer")?,
                "--threads" => cfg.threads = args.parsed(&flag, "an integer")?,
                "--workers" => cfg.workers = Some(args.parsed(&flag, "an integer")?),
                "--epoch-cycles" => {
                    cfg.epoch_cycles = Some(args.parsed(&flag, "an integer")?);
                }
                "--vertices" => cfg.stream_vertices = args.parsed(&flag, "an integer")?,
                "--batches" => cfg.batches = args.parsed(&flag, "an integer")?,
                "--batch-size" => cfg.batch_size = args.parsed(&flag, "an integer")?,
                "--delete-frac" => cfg.delete_fraction = args.parsed(&flag, "a number")?,
                "--workloads" => {
                    cfg.workloads = args
                        .value(&flag)?
                        .split(',')
                        .map(|w| match w.to_ascii_uppercase().as_str() {
                            "WG" => Ok(Workload::WebGoogle),
                            "FB" => Ok(Workload::Facebook),
                            "WK" => Ok(Workload::Wikipedia),
                            "LJ" => Ok(Workload::LiveJournal),
                            "TW" => Ok(Workload::Twitter),
                            other => Err(format!(
                                "unknown workload {other} (expected WG,FB,WK,LJ,TW)"
                            )),
                        })
                        .collect::<Result<_, _>>()?;
                }
                "--apps" => {
                    cfg.apps = args
                        .value(&flag)?
                        .split(',')
                        .map(|a| {
                            App::parse(a).ok_or_else(|| {
                                format!("unknown app {a} (expected pr,ads,sssp,bfs,cc)")
                            })
                        })
                        .collect::<Result<_, _>>()?;
                }
                other => return Err(cli::Flags::unknown(other)),
            }
        }
        if args.help_requested() {
            return Ok(None);
        }
        Ok(Some(cfg))
    }

    /// Parses `std::env::args()`-style arguments for a binary's `main`.
    /// `--help` prints [`HarnessConfig::USAGE`] and exits 0; bad flags
    /// print the error plus the same reference to stderr and exit 2.
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        cli::finish(Self::try_from_args(args), Self::USAGE)
    }

    /// The Ligra configuration derived from the harness knobs.
    pub fn ligra(&self) -> LigraConfig {
        LigraConfig {
            threads: self.threads,
            ..LigraConfig::default()
        }
    }

    /// Runs one app on the accelerator, honoring `--workers`: without the
    /// flag this is [`run_graphpulse`] (the sequential engine); with it the
    /// run goes through the shard-parallel engine, whose results are
    /// bit-identical for every worker count.
    pub fn run_accelerator(
        &self,
        app: App,
        prepared: &Prepared,
        base: &AcceleratorConfig,
    ) -> Outcome {
        match self.workers {
            None => run_graphpulse(app, prepared, base),
            Some(w) => {
                let mut cfg = base.clone();
                cfg.parallel.workers = w.max(1);
                if let Some(e) = self.epoch_cycles {
                    cfg.parallel.epoch_cycles = e;
                }
                let out = run_graphpulse_parallel(app, prepared, &cfg);
                Outcome {
                    values: out.values,
                    report: out.report,
                }
            }
        }
    }
}

/// A workload instantiated for one app: the right graph variant plus
/// Adsorption parameters when needed.
pub struct Prepared {
    /// The graph the app runs on.
    pub graph: CsrGraph,
    /// Per-vertex Adsorption parameters (only for [`App::Adsorption`]).
    pub params: Option<AdsorptionParams>,
    /// Root vertex for BFS/SSSP (highest out-degree, paper-style).
    pub root: VertexId,
}

/// Builds the graph (and parameters) `app` needs for `workload`.
///
/// PR/BFS/CC run on the unweighted synthetic graph; SSSP gets uniform
/// weights in `[1, 10)`; Adsorption gets random weights normalized per
/// inbound vertex (§VI-A). Twitter is scaled an extra 4x beyond the
/// requested denominator so the simulations stay affordable on one host;
/// it remains by far the largest graph and still exercises the 3-slice
/// execution path (see `gp_config`).
pub fn prepare(workload: Workload, app: App, scale: usize, seed: u64) -> Prepared {
    let scale = if workload == Workload::Twitter {
        scale * 4
    } else {
        scale
    };
    let (graph, params) = match app {
        App::Sssp => (
            workload.synthesize_weighted(scale, WeightMode::Uniform(1.0, 10.0), seed),
            None,
        ),
        App::Adsorption => {
            let raw = workload.synthesize_weighted(scale, WeightMode::Uniform(0.5, 2.0), seed);
            let graph = normalize_inbound(&raw);
            let params = Some(AdsorptionParams::random(
                graph.num_vertices(),
                seed ^ 0xAD50,
            ));
            (graph, params)
        }
        _ => (workload.synthesize(scale, seed), None),
    };
    let root = graph
        .vertices()
        .max_by_key(|v| graph.out_degree(*v))
        .unwrap_or(VertexId::new(0));
    Prepared {
        graph,
        params,
        root,
    }
}

/// The PageRank threshold used throughout the harness.
pub const PR_EPS: f64 = 1e-7;
/// The Adsorption threshold used throughout the harness.
pub const ADS_EPS: f64 = 1e-7;

/// GraphPulse configuration for a workload: the paper's machine, with the
/// queue sized so Twitter needs ~3 slices (§IV-F / §VI-A) and smaller
/// workloads fit in one.
pub fn gp_config(workload: Workload, graph: &CsrGraph, optimized: bool) -> AcceleratorConfig {
    let mut cfg = if optimized {
        AcceleratorConfig::optimized()
    } else {
        AcceleratorConfig::baseline()
    };
    if workload == Workload::Twitter {
        // Force the paper's 3-slice execution at any scale.
        let per_slice = graph.num_vertices().div_ceil(3).max(1);
        let cols = cfg.queue.cols;
        let bins = cfg.queue.bins;
        let rows = per_slice.div_ceil(cols * bins).max(1);
        cfg.queue = QueueConfig { bins, rows, cols };
    }
    cfg
}

/// Runs one app on the GraphPulse accelerator model.
///
/// # Panics
///
/// Panics if the simulation errors (configuration is validated upstream).
pub fn run_graphpulse(app: App, prepared: &Prepared, cfg: &AcceleratorConfig) -> Outcome {
    let accel = GraphPulse::new(cfg.clone());
    let g = &prepared.graph;
    match app {
        App::PageRank => accel.run(g, &PageRankDelta::new(0.85, PR_EPS)),
        App::Adsorption => accel.run(
            g,
            &Adsorption::new(prepared.params.clone().expect("adsorption params"), ADS_EPS),
        ),
        App::Sssp => accel.run(g, &Sssp::new(prepared.root)),
        App::Bfs => accel.run(g, &Bfs::new(prepared.root)),
        App::Cc => accel.run(g, &ConnectedComponents::new()),
    }
    .expect("accelerator run failed")
}

/// Runs one app on the shard-parallel accelerator engine (workers and
/// epoch length come from `cfg.parallel`).
///
/// # Panics
///
/// Panics if the simulation errors (configuration is validated upstream).
pub fn run_graphpulse_parallel(
    app: App,
    prepared: &Prepared,
    cfg: &AcceleratorConfig,
) -> ParallelOutcome {
    let accel = GraphPulse::new(cfg.clone());
    let g = &prepared.graph;
    match app {
        App::PageRank => accel.run_parallel(g, &PageRankDelta::new(0.85, PR_EPS)),
        App::Adsorption => accel.run_parallel(
            g,
            &Adsorption::new(prepared.params.clone().expect("adsorption params"), ADS_EPS),
        ),
        App::Sssp => accel.run_parallel(g, &Sssp::new(prepared.root)),
        App::Bfs => accel.run_parallel(g, &Bfs::new(prepared.root)),
        App::Cc => accel.run_parallel(g, &ConnectedComponents::new()),
    }
    .expect("accelerator run failed")
}

/// Runs one app on the Ligra-style software framework (measured wall time).
pub fn run_ligra(app: App, prepared: &Prepared, cfg: &LigraConfig) -> LigraOutput {
    let g = &prepared.graph;
    match app {
        App::PageRank => ligra_apps::pagerank_delta(g, 0.85, PR_EPS, cfg),
        App::Adsorption => ligra_apps::adsorption(
            g,
            prepared.params.as_ref().expect("adsorption params"),
            ADS_EPS,
            cfg,
        ),
        App::Sssp => ligra_apps::sssp(g, prepared.root, cfg),
        App::Bfs => ligra_apps::bfs(g, prepared.root, cfg),
        App::Cc => ligra_apps::cc(g, cfg),
    }
}

/// Runs one app on the Graphicionado model.
pub fn run_graphicionado(
    app: App,
    prepared: &Prepared,
    cfg: &GraphicionadoConfig,
) -> graphicionado::GraphicionadoOutput {
    let g = &prepared.graph;
    match app {
        App::PageRank => graphicionado::run(g, &PageRankDelta::new(0.85, PR_EPS), cfg),
        App::Adsorption => graphicionado::run(
            g,
            &Adsorption::new(prepared.params.clone().expect("adsorption params"), ADS_EPS),
            cfg,
        ),
        App::Sssp => graphicionado::run(g, &Sssp::new(prepared.root), cfg),
        App::Bfs => graphicionado::run(g, &Bfs::new(prepared.root), cfg),
        App::Cc => graphicionado::run(g, &ConnectedComponents::new(), cfg),
    }
}

/// Prints a Markdown-ish table: a header row then aligned data rows.
///
/// Also drops a machine-readable copy under `figures/<slug>.csv` (relative
/// to the working directory) so the data behind every figure can be
/// re-plotted; failures to write the CSV are reported but non-fatal.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    if let Err(e) = write_csv(title, header, rows) {
        eprintln!("note: could not write figures CSV: {e}");
    }
    println!("\n### {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let cols: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("| {} |", cols.join(" | "));
    };
    line(header.iter().map(|s| s.to_string()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row.clone());
    }
}

/// Minimal wall-clock micro-benchmark support for the `benches/` targets.
///
/// The workspace builds hermetically offline, so the benches are plain
/// `harness = false` binaries driven by these helpers instead of an
/// external benchmarking crate. Timings are wall-clock medians over a
/// fixed iteration count — noisy relative to a statistics-driven harness,
/// but all the figure benches compare *simulated* cycle counts or
/// self-relative speedups, which are deterministic.
pub mod microbench {
    use std::time::Instant;

    /// Runs `f` once as warmup, then `iters` more times; returns the
    /// median wall-clock seconds of the timed runs.
    pub fn median_secs<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
        let iters = iters.max(1);
        std::hint::black_box(f());
        let mut samples: Vec<f64> = (0..iters)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed().as_secs_f64()
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[samples.len() / 2]
    }

    /// Times `f` and prints `label: <median> ms (n=<iters>)`; returns the
    /// median seconds so callers can derive throughput or speedup.
    pub fn report<R>(label: &str, iters: usize, f: impl FnMut() -> R) -> f64 {
        let secs = median_secs(iters, f);
        println!("{label:<40} {:>10.3} ms  (n={iters})", secs * 1e3);
        secs
    }
}

/// Writes `contents` to `path`, creating missing parent directories.
///
/// This is the one chokepoint every bench binary's file output goes
/// through (`figures/*.csv`, `BENCH_*.json`), so a missing or unwritable
/// output directory fails with a readable, path-carrying message instead
/// of a panic or a bare `os error`.
///
/// # Errors
///
/// Returns a human-readable description naming the path and the failing
/// step (directory creation vs. file write).
pub fn write_output(path: &std::path::Path, contents: &str) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| {
                format!(
                    "could not create output directory `{}` for `{}`: {e}",
                    parent.display(),
                    path.display()
                )
            })?;
        }
    }
    std::fs::write(path, contents)
        .map_err(|e| format!("could not write output file `{}`: {e}", path.display()))
}

fn write_csv(title: &str, header: &[&str], rows: &[Vec<String>]) -> Result<(), String> {
    let slug: String = title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect::<String>()
        .split('-')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("-");
    let slug: String = slug.chars().take(60).collect();
    let mut contents = String::new();
    contents.push_str(&header.join(","));
    contents.push('\n');
    for row in rows {
        contents.push_str(&row.join(","));
        contents.push('\n');
    }
    write_output(
        std::path::Path::new(&format!("figures/{slug}.csv")),
        &contents,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn try_parse(args: &[&str]) -> Result<Option<HarnessConfig>, String> {
        HarnessConfig::try_from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn args_parse_round_trip() {
        let cfg = try_parse(&[
            "--scale",
            "128",
            "--seed",
            "7",
            "--workloads",
            "WG,LJ",
            "--apps",
            "pr,bfs",
            "--threads",
            "2",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(cfg.scale, 128);
        assert_eq!(cfg.seed, 7);
        assert_eq!(
            cfg.workloads,
            vec![Workload::WebGoogle, Workload::LiveJournal]
        );
        assert_eq!(cfg.apps, vec![App::PageRank, App::Bfs]);
        assert_eq!(cfg.threads, 2);
    }

    #[test]
    fn help_is_not_an_error() {
        assert!(try_parse(&["--help"]).unwrap().is_none());
        assert!(try_parse(&["--scale", "4", "-h"]).unwrap().is_none());
    }

    #[test]
    fn bad_invocations_are_reported_not_panicked() {
        let err = try_parse(&["--frobnicate"]).unwrap_err();
        assert!(err.contains("unknown flag --frobnicate"), "{err}");

        let err = try_parse(&["--scale"]).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");

        let err = try_parse(&["--seed", "not-a-number"]).unwrap_err();
        assert!(err.contains("--seed takes an integer"), "{err}");

        let err = try_parse(&["--apps", "pr,quux"]).unwrap_err();
        assert!(err.contains("unknown app quux"), "{err}");

        let err = try_parse(&["--workloads", "WG,ZZ"]).unwrap_err();
        assert!(err.contains("unknown workload ZZ"), "{err}");
    }

    #[test]
    fn prepare_gives_weights_where_needed() {
        let p = prepare(Workload::WebGoogle, App::Sssp, 2048, 1);
        assert!(p.graph.is_weighted());
        let p = prepare(Workload::WebGoogle, App::PageRank, 2048, 1);
        assert!(!p.graph.is_weighted());
        let p = prepare(Workload::WebGoogle, App::Adsorption, 2048, 1);
        assert!(p.params.is_some());
        assert!(p.graph.out_degree(p.root) > 0);
    }

    #[test]
    fn twitter_config_forces_three_slices() {
        // Scale chosen so the queue's bins-by-cols granularity still splits
        // the (extra-4x-scaled) Twitter graph into about three slices.
        let p = prepare(Workload::Twitter, App::PageRank, 1024, 1);
        let cfg = gp_config(Workload::Twitter, &p.graph, true);
        let cap = cfg.queue.capacity();
        let slices = p.graph.num_vertices().div_ceil(cap);
        assert!((2..=4).contains(&slices), "got {slices} slices");
    }

    #[test]
    fn write_output_creates_parent_dirs_and_reports_readable_errors() {
        let base = std::env::temp_dir().join(format!("gp-bench-out-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);

        // Nested directories that do not exist yet are created.
        let nested = base.join("figures").join("deep").join("out.csv");
        write_output(&nested, "a,b\n1,2\n").unwrap();
        assert_eq!(std::fs::read_to_string(&nested).unwrap(), "a,b\n1,2\n");

        // A file squatting on the directory path yields a readable error
        // that names the path — not a panic.
        let squatter = base.join("blocked");
        std::fs::write(&squatter, "i am a file").unwrap();
        let err = write_output(&squatter.join("x.json"), "{}").unwrap_err();
        assert!(
            err.contains("could not create output directory") && err.contains("blocked"),
            "unreadable error: {err}"
        );

        // An unwritable target (the path IS a directory) also reports.
        let dir_target = base.join("figures");
        let err = write_output(&dir_target, "text").unwrap_err();
        assert!(
            err.contains("could not write output file") && err.contains("figures"),
            "unreadable error: {err}"
        );

        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn all_backends_agree_on_a_small_run() {
        let p = prepare(Workload::WebGoogle, App::Bfs, 8192, 3);
        let mut cfg = gp_config(Workload::WebGoogle, &p.graph, true);
        cfg.queue = QueueConfig {
            bins: 8,
            rows: 64,
            cols: 8,
        };
        let gp = run_graphpulse(App::Bfs, &p, &cfg);
        let sw = run_ligra(App::Bfs, &p, &LigraConfig::sequential());
        let hw = run_graphicionado(App::Bfs, &p, &GraphicionadoConfig::default());
        assert!(gp_algorithms::max_abs_diff(&gp.values, &sw.values) < 1e-9);
        assert!(gp_algorithms::max_abs_diff(&gp.values, &hw.values) < 1e-9);
    }
}
