//! Figure 11: total off-chip memory accesses of GraphPulse normalized to
//! Graphicionado (lower is better; the paper reports 54% less on average).

use gp_baselines::graphicionado::GraphicionadoConfig;
use gp_bench::{gp_config, prepare, print_table, run_graphicionado, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_args(std::env::args().skip(1));
    println!(
        "Fig. 11 — off-chip accesses, GraphPulse normalized to Graphicionado (scale 1/{})",
        cfg.scale
    );
    let mut rows = Vec::new();
    let mut geo = 0.0f64;
    let mut runs = 0u32;
    for app in &cfg.apps {
        for workload in &cfg.workloads {
            let prepared = prepare(*workload, *app, cfg.scale, cfg.seed);
            let gp = cfg.run_accelerator(
                *app,
                &prepared,
                &gp_config(*workload, &prepared.graph, true),
            );
            let hw = run_graphicionado(*app, &prepared, &GraphicionadoConfig::default());
            let gp_acc = gp.report.memory.total_accesses();
            let hw_acc = hw.memory.total_accesses().max(1);
            let norm = gp_acc as f64 / hw_acc as f64;
            geo += norm.ln();
            runs += 1;
            rows.push(vec![
                app.label().to_string(),
                workload.abbrev().to_string(),
                gp_acc.to_string(),
                hw_acc.to_string(),
                format!("{norm:.2}"),
            ]);
        }
    }
    print_table(
        "Off-chip accesses (normalized, GraphPulse / Graphicionado)",
        &["app", "graph", "GraphPulse", "Graphicionado", "normalized"],
        &rows,
    );
    if runs > 0 {
        println!(
            "\ngeomean normalized accesses: {:.2} (paper: ~0.46, i.e. 54% less traffic)",
            (geo / f64::from(runs)).exp()
        );
    }
}
