//! Schema validator for the machine-readable bench output.
//!
//! ```text
//! cargo run -p gp-bench --bin bench_check -- BENCH_end_to_end.json [...]
//! ```
//!
//! For every path given: the file must exist, parse as JSON, and carry a
//! known schema tag, which selects the validator — `gp-bench/end_to_end/v1`
//! documents go through `gp_bench::json::validate_end_to_end` (required
//! keys, positive throughput on both backends), `gp-bench/chaos/v1`
//! documents through `gp_bench::json::validate_chaos` (every scenario
//! detected and recovered, overhead baselines bit-exact, summary present),
//! `gp-bench/serve/v2` documents through `gp_bench::json::validate_serve`
//! (non-empty executor sweep, ordered per-class latency quantiles per run,
//! golden cross-checks ran and passed), and `gp-bench/outofcore/v1`
//! documents through `gp_bench::json::validate_outofcore` (consistent
//! bytes-moved-per-edge accounting, positive throughput on both engines,
//! turbo within tolerance of golden, and — when a resident-memory budget
//! was enforced — a mapped working state that fits where the fully
//! resident graph cannot). CI runs this so the bench binaries can never
//! silently stop emitting measurements.
//!
//! Exit status: 0 when every file passes, 1 when a file fails its schema's
//! validation, 2 on a bad invocation or an unknown schema tag (the
//! diagnostic names the known tags).

use gp_bench::json::{
    validate_chaos, validate_end_to_end, validate_outofcore, validate_serve, Json, CHAOS_SCHEMA,
    END_TO_END_SCHEMA, OUTOFCORE_SCHEMA, SERVE_SCHEMA,
};

const USAGE: &str = "\
Usage: bench_check <BENCH_*.json> [more.json ...]

Validates machine-readable bench output against its embedded schema tag.
Known schemas: gp-bench/end_to_end/v1, gp-bench/chaos/v1, gp-bench/serve/v2,
gp-bench/outofcore/v1.

Exit status: 0 when every file passes, 1 on a validation failure, 2 on a
bad invocation or an unknown schema tag.";

type Validator = fn(&Json) -> Result<(), String>;

/// How badly one file failed: validation failures exit 1, structural
/// problems (unreadable, unparsable, unknown schema) exit 2.
struct CheckError {
    exit: i32,
    message: String,
}

impl CheckError {
    fn invalid(message: String) -> Self {
        CheckError { exit: 1, message }
    }

    fn unusable(message: String) -> Self {
        CheckError { exit: 2, message }
    }
}

fn check(path: &str) -> Result<(), CheckError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CheckError::unusable(format!("cannot read `{path}`: {e}")))?;
    let doc = Json::parse(&text)
        .map_err(|e| CheckError::unusable(format!("`{path}` is not valid JSON: {e}")))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| CheckError::unusable(format!("`{path}` has no string key \"schema\"")))?;
    let (validate, count_key): (Validator, &str) = match schema {
        END_TO_END_SCHEMA => (validate_end_to_end, "entries"),
        CHAOS_SCHEMA => (validate_chaos, "scenarios"),
        SERVE_SCHEMA => (validate_serve, "runs"),
        OUTOFCORE_SCHEMA => (validate_outofcore, "entries"),
        other => {
            return Err(CheckError::unusable(format!(
                "`{path}` has unknown schema {other:?} \
                 (known: {END_TO_END_SCHEMA:?}, {CHAOS_SCHEMA:?}, {SERVE_SCHEMA:?}, \
                 {OUTOFCORE_SCHEMA:?})"
            )))
        }
    };
    validate(&doc)
        .map_err(|e| CheckError::invalid(format!("`{path}` failed schema check: {e}")))?;
    let count = doc
        .get(count_key)
        .and_then(Json::as_arr)
        .map_or(0, |a| a.len());
    println!("ok: {path} ({count} {count_key})");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|p| p == "--help" || p == "-h") {
        println!("{USAGE}");
        return;
    }
    if args.is_empty() {
        eprintln!("error: no files given\n\n{USAGE}");
        std::process::exit(2);
    }
    let mut exit = 0;
    for path in &args {
        if let Err(e) = check(path) {
            eprintln!("error: {}", e.message);
            exit = exit.max(e.exit);
        }
    }
    std::process::exit(exit);
}
