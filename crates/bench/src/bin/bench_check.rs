//! Schema validator for the machine-readable bench output.
//!
//! ```text
//! cargo run -p gp-bench --bin bench_check -- BENCH_end_to_end.json [...]
//! ```
//!
//! For every path given: the file must exist, parse as JSON, and carry a
//! known schema tag, which selects the validator — `gp-bench/end_to_end/v1`
//! documents go through `gp_bench::json::validate_end_to_end` (required
//! keys, positive throughput on both backends) and `gp-bench/chaos/v1`
//! documents through `gp_bench::json::validate_chaos` (every scenario
//! detected and recovered, overhead baselines bit-exact, summary present).
//! Exits 0 when every file passes, 1 with a readable diagnosis otherwise —
//! CI runs this so the bench binaries can never silently stop emitting
//! measurements.

use gp_bench::json::{validate_chaos, validate_end_to_end, Json, CHAOS_SCHEMA, END_TO_END_SCHEMA};

type Validator = fn(&Json) -> Result<(), String>;

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("`{path}` is not valid JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("`{path}` has no string key \"schema\""))?;
    let (validate, count_key): (Validator, &str) = match schema {
        END_TO_END_SCHEMA => (validate_end_to_end, "entries"),
        CHAOS_SCHEMA => (validate_chaos, "scenarios"),
        other => {
            return Err(format!(
                "`{path}` has unknown schema {other:?} \
                 (known: {END_TO_END_SCHEMA:?}, {CHAOS_SCHEMA:?})"
            ))
        }
    };
    validate(&doc).map_err(|e| format!("`{path}` failed schema check: {e}"))?;
    let count = doc
        .get(count_key)
        .and_then(Json::as_arr)
        .map_or(0, |a| a.len());
    println!("ok: {path} ({count} {count_key})");
    Ok(())
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|p| p == "--help" || p == "-h") {
        eprintln!("usage: bench_check <BENCH_*.json> [more.json ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        if let Err(e) = check(path) {
            eprintln!("error: {e}");
            failed = true;
        }
    }
    std::process::exit(i32::from(failed));
}
