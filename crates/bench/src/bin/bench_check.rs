//! Schema validator for the machine-readable bench output.
//!
//! ```text
//! cargo run -p gp-bench --bin bench_check -- BENCH_end_to_end.json [...]
//! ```
//!
//! For every path given: the file must exist, parse as JSON, carry the
//! `gp-bench/end_to_end/v1` schema tag, contain at least one entry, and
//! every entry must have the required keys with positive throughput on
//! both backends (see `gp_bench::json::validate_end_to_end`). Exits 0 when
//! every file passes, 1 with a readable diagnosis otherwise — CI runs this
//! so the bench binary can never silently stop emitting measurements.

use gp_bench::json::{validate_end_to_end, Json};

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("`{path}` is not valid JSON: {e}"))?;
    validate_end_to_end(&doc).map_err(|e| format!("`{path}` failed schema check: {e}"))?;
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .map_or(0, |a| a.len());
    println!("ok: {path} ({entries} entries)");
    Ok(())
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|p| p == "--help" || p == "-h") {
        eprintln!("usage: bench_check <BENCH_*.json> [more.json ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        if let Err(e) = check(path) {
            eprintln!("error: {e}");
            failed = true;
        }
    }
    std::process::exit(i32::from(failed));
}
