//! Figure 12: fraction of off-chip data actually utilized by the
//! computation (GraphPulse; the paper shows large fractions across apps).

use gp_baselines::graphicionado::GraphicionadoConfig;
use gp_bench::{gp_config, prepare, print_table, run_graphicionado, HarnessConfig};
use gp_mem::TrafficClass;

fn main() {
    let cfg = HarnessConfig::from_args(std::env::args().skip(1));
    println!(
        "Fig. 12 — fraction of off-chip data utilized (scale 1/{})",
        cfg.scale
    );
    let mut rows = Vec::new();
    for app in &cfg.apps {
        for workload in &cfg.workloads {
            let prepared = prepare(*workload, *app, cfg.scale, cfg.seed);
            let gp = cfg.run_accelerator(
                *app,
                &prepared,
                &gp_config(*workload, &prepared.graph, true),
            );
            let hw = run_graphicionado(*app, &prepared, &GraphicionadoConfig::default());
            let m = &gp.report.memory;
            let class_util = |c: TrafficClass| -> String {
                let b = m.bytes(c);
                if b == 0 {
                    "-".into()
                } else {
                    format!("{:.2}", m.useful_bytes(c) as f64 / b as f64)
                }
            };
            rows.push(vec![
                app.label().to_string(),
                workload.abbrev().to_string(),
                format!("{:.2}", m.utilization()),
                class_util(TrafficClass::VertexRead),
                class_util(TrafficClass::EdgeRead),
                format!("{:.2}", hw.memory.utilization()),
            ]);
        }
    }
    print_table(
        "Utilized fraction of off-chip transfers",
        &[
            "app",
            "graph",
            "GP total",
            "GP vertex",
            "GP edge",
            "Graphicionado",
        ],
        &rows,
    );
    println!(
        "\npaper reference: GraphPulse utilizes a very large fraction of the\n\
         bytes it moves off-chip (Fig. 12), thanks to data-carrying events,\n\
         block prefetching, and degree-bounded edge streams."
    );
}
