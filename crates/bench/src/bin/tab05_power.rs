//! Table V: power and area of the accelerator components, plus the
//! energy-efficiency comparison against the software framework (the paper
//! reports 280× better energy efficiency than Ligra on a 12-core Xeon).

use gp_bench::{gp_config, prepare, print_table, run_ligra, App, HarnessConfig};
use gp_graph::workloads::Workload;

/// TDP assumed for the software platform (12-core Xeon, Table III class).
const CPU_WATTS: f64 = 95.0;

fn main() {
    let cfg = HarnessConfig::from_args(std::env::args().skip(1));
    let workload = Workload::LiveJournal;
    println!(
        "Table V — power/area breakdown (PageRank-Delta on {}, 1/{} scale)",
        workload.abbrev(),
        cfg.scale
    );
    let prepared = prepare(workload, App::PageRank, cfg.scale, cfg.seed);
    let out = cfg.run_accelerator(
        App::PageRank,
        &prepared,
        &gp_config(workload, &prepared.graph, true),
    );
    let e = &out.report.energy;

    let rows: Vec<Vec<String>> = e
        .rows
        .iter()
        .map(|r| {
            vec![
                r.component.to_string(),
                r.count.to_string(),
                format!("{:.1}", r.static_mw),
                format!("{:.1}", r.dynamic_mw),
                format!("{:.1}", r.total_mw()),
                format!("{:.2}", r.area_mm2),
            ]
        })
        .collect();
    print_table(
        "Power and area of the accelerator components",
        &[
            "component",
            "#",
            "static mW",
            "dynamic mW",
            "total mW",
            "area mm²",
        ],
        &rows,
    );
    println!(
        "\ntotal: {:.1} mW, {:.1} mm² (paper Table V: queue ≈ 8.8 W total, 190 mm²;\n\
         network 54.7 mW / 3.10 mm²; logic+network < 60 mW)",
        e.total_mw, e.total_area_mm2
    );

    // Energy-efficiency comparison (paper: 280x better than the software).
    let sw = run_ligra(App::PageRank, &prepared, &cfg.ligra());
    let sw_energy_mj = sw.elapsed.as_secs_f64() * CPU_WATTS * 1e3;
    let accel_energy_mj = e.total_mj;
    println!(
        "\nenergy: software {:.1} mJ (at {CPU_WATTS} W TDP) vs accelerator {:.2} mJ → {:.0}x better",
        sw_energy_mj,
        accel_energy_mj,
        sw_energy_mj / accel_energy_mj.max(1e-9)
    );
    println!("paper reference: 280x better energy efficiency than the software framework.");
}
