//! Figure 4: events produced per round (blue) vs. events remaining after
//! coalescing (orange) for PageRank-Delta on the LiveJournal profile.
//!
//! The paper's headline observation: "over 90% of the events are eliminated
//! via coalescing multiple events destined to the same vertex."

use gp_bench::{gp_config, prepare, print_table, App, HarnessConfig};
use gp_graph::workloads::Workload;

fn main() {
    let cfg = HarnessConfig::from_args(std::env::args().skip(1));
    let workload = Workload::LiveJournal;
    println!(
        "Fig. 4 — PageRank-Delta on {} (1/{} scale, seed {})",
        workload.description(),
        cfg.scale,
        cfg.seed
    );
    let prepared = prepare(workload, App::PageRank, cfg.scale, cfg.seed);
    println!(
        "graph: {} vertices, {} edges",
        prepared.graph.num_vertices(),
        prepared.graph.num_edges()
    );
    let accel_cfg = gp_config(workload, &prepared.graph, true);
    let outcome = cfg.run_accelerator(App::PageRank, &prepared, &accel_cfg);
    let report = &outcome.report;

    let rows: Vec<Vec<String>> = report
        .rounds_log
        .iter()
        .map(|r| {
            vec![
                r.round.to_string(),
                r.produced.to_string(),
                r.remaining.to_string(),
                if r.produced == 0 {
                    "-".into()
                } else {
                    format!(
                        "{:.1}%",
                        100.0 * (1.0 - r.remaining as f64 / r.produced.max(1) as f64)
                    )
                },
            ]
        })
        .collect();
    print_table(
        "Events produced vs. remaining after coalescing, per round",
        &["round", "produced", "remaining", "eliminated"],
        &rows,
    );
    println!(
        "\ntotals: generated {} | processed {} | coalesced away {} ({:.1}% eliminated)",
        report.events_generated,
        report.events_processed,
        report.events_coalesced,
        100.0 * report.coalesce_rate()
    );
    println!("paper reference: >90% of events eliminated by coalescing (PR on LiveJournal).");
}
