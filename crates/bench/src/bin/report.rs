//! Full evaluation report: Tables III/IV plus a compact version of every
//! figure, in one run. Use the dedicated `figXX_*` binaries for the
//! full-resolution per-figure output.
//!
//! ```text
//! cargo run -p gp-bench --release --bin report -- --scale 128
//! ```

use gp_baselines::graphicionado::GraphicionadoConfig;
use gp_bench::{gp_config, prepare, print_table, run_graphicionado, run_ligra, HarnessConfig};
use gp_graph::stats::GraphStats;
use graphpulse_core::AcceleratorConfig;

fn main() {
    let cfg = HarnessConfig::from_args(std::env::args().skip(1));
    println!(
        "# GraphPulse evaluation report (scale 1/{}, seed {})",
        cfg.scale, cfg.seed
    );

    table_iii();
    table_iv(&cfg);
    figures(&cfg);
}

fn table_iii() {
    let opt = AcceleratorConfig::optimized();
    let base = AcceleratorConfig::baseline();
    print_table(
        "Table III — device configurations",
        &["parameter", "GraphPulse+opt", "GraphPulse-base"],
        &[
            vec![
                "compute".into(),
                format!("{} processors @ {} GHz", opt.processors, opt.clock_ghz),
                format!("{} processors @ {} GHz", base.processors, base.clock_ghz),
            ],
            vec![
                "gen streams/processor".into(),
                opt.gen_streams.to_string(),
                base.gen_streams.to_string(),
            ],
            vec![
                "queue slots".into(),
                opt.queue.capacity().to_string(),
                base.queue.capacity().to_string(),
            ],
            vec![
                "prefetch".into(),
                opt.prefetch.to_string(),
                base.prefetch.to_string(),
            ],
            vec![
                "off-chip".into(),
                format!(
                    "{}x DDR3 {} B/cyc",
                    opt.dram.channels, opt.dram.bytes_per_cycle
                ),
                format!(
                    "{}x DDR3 {} B/cyc",
                    base.dram.channels, base.dram.bytes_per_cycle
                ),
            ],
        ],
    );
}

fn table_iv(cfg: &HarnessConfig) {
    let rows: Vec<Vec<String>> = cfg
        .workloads
        .iter()
        .map(|w| {
            let g = w.synthesize(cfg.scale, cfg.seed);
            let s = GraphStats::compute(&g);
            vec![
                w.abbrev().to_string(),
                w.description().to_string(),
                format!("{:.2}M", w.full_vertices() as f64 / 1e6),
                format!("{:.2}M", w.full_edges() as f64 / 1e6),
                s.vertices.to_string(),
                s.edges.to_string(),
                format!("{:.1}", s.avg_out_degree),
                format!("{:.0}", s.skew()),
            ]
        })
        .collect();
    print_table(
        "Table IV — workloads (published size vs. synthesized at this scale)",
        &[
            "graph",
            "description",
            "pub V",
            "pub E",
            "syn V",
            "syn E",
            "avg deg",
            "skew",
        ],
        &rows,
    );
}

fn figures(cfg: &HarnessConfig) {
    let mut speedup_rows = Vec::new();
    let mut offchip_rows = Vec::new();
    let mut geo = [0.0f64; 4]; // opt, base, graphicionado, offchip-norm
    let mut runs = 0u32;

    for app in &cfg.apps {
        for workload in &cfg.workloads {
            eprintln!("[report] running {}/{} ...", app.label(), workload.abbrev());
            let prepared = prepare(*workload, *app, cfg.scale, cfg.seed);
            let sw = run_ligra(*app, &prepared, &cfg.ligra());
            let opt = cfg.run_accelerator(
                *app,
                &prepared,
                &gp_config(*workload, &prepared.graph, true),
            );
            let base = cfg.run_accelerator(
                *app,
                &prepared,
                &gp_config(*workload, &prepared.graph, false),
            );
            let hw = run_graphicionado(*app, &prepared, &GraphicionadoConfig::default());
            assert!(
                gp_algorithms::max_abs_diff(&opt.values, &sw.values) < 1e-2,
                "backend divergence on {app:?}/{workload}"
            );

            let sw_secs = sw.elapsed.as_secs_f64().max(1e-9);
            let s_opt = sw_secs / opt.report.seconds.max(1e-12);
            let s_base = sw_secs / base.report.seconds.max(1e-12);
            let s_hw = sw_secs / hw.seconds.max(1e-12);
            let norm = opt.report.memory.total_accesses() as f64
                / hw.memory.total_accesses().max(1) as f64;
            geo[0] += s_opt.ln();
            geo[1] += s_base.ln();
            geo[2] += s_hw.ln();
            geo[3] += norm.ln();
            runs += 1;

            speedup_rows.push(vec![
                app.label().into(),
                workload.abbrev().into(),
                format!("{s_opt:.1}x"),
                format!("{s_base:.1}x"),
                format!("{s_hw:.1}x"),
                format!("{:.1}x", s_opt / s_hw.max(1e-12)),
            ]);
            offchip_rows.push(vec![
                app.label().into(),
                workload.abbrev().into(),
                format!("{norm:.2}"),
                format!("{:.2}", opt.report.memory.utilization()),
                format!("{:.2}", hw.memory.utilization()),
                format!("{:.0}%", 100.0 * opt.report.coalesce_rate()),
            ]);
        }
    }
    print_table(
        "Fig. 10 — speedup over the software framework",
        &[
            "app",
            "graph",
            "GP+opt",
            "GP-base",
            "Graphicionado",
            "GP/Graphicionado",
        ],
        &speedup_rows,
    );
    print_table(
        "Figs. 11/12/4 — off-chip accesses (normalized to Graphicionado), utilization, coalescing",
        &[
            "app",
            "graph",
            "accesses norm",
            "GP util",
            "Gr util",
            "coalesced",
        ],
        &offchip_rows,
    );
    if runs > 0 {
        let n = f64::from(runs);
        println!(
            "\ngeomeans: GP+opt {:.1}x | GP-base {:.1}x | Graphicionado {:.1}x | GP accesses {:.2} of Graphicionado",
            (geo[0] / n).exp(),
            (geo[1] / n).exp(),
            (geo[2] / n).exp(),
            (geo[3] / n).exp()
        );
        println!(
            "paper: 28x avg (up to 74x) over Ligra; 6.2x over Graphicionado; 54% less off-chip traffic."
        );
    }
}
