//! Figure 8: degree of lookahead in events processed in each round
//! (PageRank-Delta on the LiveJournal profile, 256-bin-class queue).
//!
//! Lookahead = the spread of virtual-iteration depths compounded into one
//! coalesced event; the paper buckets it as 0, <100, <200, <300, <400, >400.

use gp_bench::{gp_config, prepare, print_table, App, HarnessConfig};
use gp_graph::workloads::Workload;

fn main() {
    let cfg = HarnessConfig::from_args(std::env::args().skip(1));
    let workload = Workload::LiveJournal;
    println!(
        "Fig. 8 — lookahead per round, PageRank-Delta on {} (1/{} scale)",
        workload.description(),
        cfg.scale
    );
    let prepared = prepare(workload, App::PageRank, cfg.scale, cfg.seed);
    let accel_cfg = gp_config(workload, &prepared.graph, true);
    let outcome = cfg.run_accelerator(App::PageRank, &prepared, &accel_cfg);

    let rows: Vec<Vec<String>> = outcome
        .report
        .rounds_log
        .iter()
        .map(|r| {
            let mut row = vec![r.round.to_string()];
            row.extend(r.lookahead.rows().iter().map(|(_, c)| c.to_string()));
            row
        })
        .collect();
    print_table(
        "Events drained per round by lookahead bucket",
        &["round", "0", "<100", "<200", "<300", "<400", ">400"],
        &rows,
    );
    let total = outcome.report.total_lookahead();
    let nonzero = total.total() - total.zero;
    println!(
        "\ntotals: {} events, {} with nonzero lookahead ({:.1}%)",
        total.total(),
        nonzero,
        100.0 * nonzero as f64 / total.total().max(1) as f64
    );
    println!(
        "paper reference: events quickly compound the effects of hundreds of\n\
         prior iterations within a few rounds (Fig. 8)."
    );
}
