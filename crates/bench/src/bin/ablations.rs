//! Ablation study of the design choices DESIGN.md calls out: each §V
//! optimization and queue-geometry decision is varied in isolation on
//! PageRank-Delta over the LiveJournal profile, reporting cycles and
//! traffic. This extends the paper's opt-vs-baseline comparison (Fig. 10)
//! with per-mechanism attribution.
//!
//! ```text
//! cargo run -p gp-bench --release --bin ablations -- --scale 512
//! ```

use gp_bench::{gp_config, prepare, print_table, App, HarnessConfig};
use gp_graph::workloads::Workload;
use graphpulse_core::{AcceleratorConfig, QueueConfig, SchedulingPolicy};

fn main() {
    let harness = HarnessConfig::from_args(std::env::args().skip(1));
    let workload = Workload::LiveJournal;
    let prepared = prepare(workload, App::PageRank, harness.scale, harness.seed);
    println!(
        "Ablations — PageRank-Delta on {} (1/{} scale): {} vertices, {} edges",
        workload.abbrev(),
        harness.scale,
        prepared.graph.num_vertices(),
        prepared.graph.num_edges()
    );

    let base = gp_config(workload, &prepared.graph, true);
    let reference = harness.run_accelerator(App::PageRank, &prepared, &base);
    let ref_cycles = reference.report.cycles as f64;

    let mut rows = Vec::new();
    let mut run = |label: String, cfg: AcceleratorConfig| {
        let out = harness.run_accelerator(App::PageRank, &prepared, &cfg);
        let r = &out.report;
        rows.push(vec![
            label,
            r.cycles.to_string(),
            format!("{:.2}x", r.cycles as f64 / ref_cycles),
            r.memory.total_accesses().to_string(),
            format!("{:.0}%", 100.0 * r.memory.utilization()),
            format!("{:.0}%", 100.0 * r.coalesce_rate()),
        ]);
    };

    run("paper optimized (reference)".into(), base.clone());

    // §V optimization 1: vertex scratchpad prefetching.
    let mut c = base.clone();
    c.prefetch = false;
    run("- no vertex prefetch".into(), c);

    // §V optimization 2: parallel generation streams.
    for streams in [1usize, 2, 8] {
        let mut c = base.clone();
        c.gen_streams = streams;
        run(format!("- {streams} gen streams (vs 4)"), c);
    }

    // §V optimization 3: degree-hinted edge prefetch depth N.
    for depth in [1u64, 8] {
        let mut c = base.clone();
        c.edge_prefetch_depth = depth;
        run(format!("- edge prefetch N={depth} (vs 4)"), c);
    }

    // Queue geometry: row width (drain/prefetch block size).
    for cols in [8usize, 64] {
        let mut c = base.clone();
        let capacity = base.queue.capacity();
        let bins = base.queue.bins;
        c.queue = QueueConfig {
            bins,
            rows: capacity.div_ceil(bins * cols),
            cols,
        };
        c.input_buffer = c.input_buffer.max(cols);
        run(format!("- {cols}-wide rows (vs 32)"), c);
    }

    // Queue geometry: bin count (insertion parallelism).
    for bins in [16usize, 256] {
        let mut c = base.clone();
        let capacity = base.queue.capacity();
        let cols = base.queue.cols;
        c.queue = QueueConfig {
            bins,
            rows: capacity.div_ceil(bins * cols),
            cols,
        };
        run(format!("- {bins} bins (vs 64)"), c);
    }

    // Scheduling policy extension (§IV-C).
    let mut c = base.clone();
    c.scheduling = SchedulingPolicy::OccupancyFirst;
    run("+ occupancy-first scheduling".into(), c);

    // Coalescer pipeline depth (structural hazard window).
    let mut c = base.clone();
    c.coalescer_depth = 8;
    run("- 8-cycle coalescer (vs 4)".into(), c);

    print_table(
        "Single-change ablations (cycles relative to the paper configuration)",
        &[
            "configuration",
            "cycles",
            "rel",
            "offchip acc",
            "util",
            "coalesced",
        ],
        &rows,
    );
}
