//! Figure 10: speedup of GraphPulse (optimized + baseline) and
//! Graphicionado over the Ligra-style software framework, for five
//! applications × five graphs.
//!
//! Speedup = measured Ligra wall-clock ÷ simulated accelerator time
//! (cycles at 1 GHz), exactly how the paper compares a real CPU against a
//! simulated accelerator. Absolute numbers depend on the host CPU; the
//! reproduction target is the *shape*: GraphPulse-opt > Graphicionado and
//! GraphPulse-opt > GraphPulse-base > software.

use gp_baselines::graphicionado::GraphicionadoConfig;
use gp_bench::{gp_config, prepare, print_table, run_graphicionado, run_ligra, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_args(std::env::args().skip(1));
    println!(
        "Fig. 10 — speedups over the software framework (scale 1/{}, {} sw threads)",
        cfg.scale, cfg.threads
    );
    let mut rows = Vec::new();
    let mut geo = [0.0f64; 3];
    let mut runs = 0u32;
    for app in &cfg.apps {
        for workload in &cfg.workloads {
            let prepared = prepare(*workload, *app, cfg.scale, cfg.seed);
            let sw = run_ligra(*app, &prepared, &cfg.ligra());
            let sw_secs = sw.elapsed.as_secs_f64().max(1e-9);

            let opt = cfg.run_accelerator(
                *app,
                &prepared,
                &gp_config(*workload, &prepared.graph, true),
            );
            let base = cfg.run_accelerator(
                *app,
                &prepared,
                &gp_config(*workload, &prepared.graph, false),
            );
            let hw = run_graphicionado(*app, &prepared, &GraphicionadoConfig::default());

            // Sanity: all backends agree on the answer.
            let diff_opt = gp_algorithms::max_abs_diff(&opt.values, &sw.values);
            assert!(diff_opt < 1e-2, "{app:?}/{workload} diverged: {diff_opt}");

            let s_opt = sw_secs / opt.report.seconds.max(1e-12);
            let s_base = sw_secs / base.report.seconds.max(1e-12);
            let s_hw = sw_secs / hw.seconds.max(1e-12);
            geo[0] += s_opt.ln();
            geo[1] += s_base.ln();
            geo[2] += s_hw.ln();
            runs += 1;
            rows.push(vec![
                app.label().to_string(),
                workload.abbrev().to_string(),
                format!("{:.1}ms", sw_secs * 1e3),
                format!("{:.2}ms", opt.report.seconds * 1e3),
                format!("{s_opt:.1}x"),
                format!("{s_base:.1}x"),
                format!("{s_hw:.1}x"),
            ]);
        }
    }
    print_table(
        "Speedup over software framework",
        &[
            "app",
            "graph",
            "sw time",
            "GP time",
            "GP+opt",
            "GP-base",
            "Graphicionado",
        ],
        &rows,
    );
    if runs > 0 {
        println!(
            "\ngeomean speedups: GP+opt {:.1}x | GP-base {:.1}x | Graphicionado {:.1}x",
            (geo[0] / f64::from(runs)).exp(),
            (geo[1] / f64::from(runs)).exp(),
            (geo[2] / f64::from(runs)).exp(),
        );
        println!(
            "paper reference: GraphPulse averages 28x over Ligra (up to 74x) and\n\
             6.2x over Graphicionado; optimized GraphPulse >> baseline GraphPulse."
        );
    }
}
