//! Load generator for the `gp-serve` query service.
//!
//! ```text
//! cargo run --release -p gp-bench --bin serve_bench -- [flags]
//! ```
//!
//! Drives seed-deterministic mixed traffic — ~30% PageRank reads, ~10%
//! component reads, ~60% path queries (SSSP/BFS/SSWP) from a skewed
//! hot-source pool — from several client threads against a live server,
//! while an updater thread races edge-update batches through the writer so
//! epochs advance mid-run. Latency is measured per query at the client and
//! reported as p50/p99/p999 per class in `BENCH_serve.json`
//! (`gp-bench/serve/v2`, checked by `bench_check`).
//!
//! `--executors` takes a comma-separated list of executor-pool sizes and
//! runs the identical workload once per size (a fresh server each time,
//! same seeds, same traffic), recording one sweep entry per run —
//! throughput scaling across pool sizes lands in a single document.
//! `--turbo-shards` sets the engine shard count every turbo run uses;
//! sharded runs are bit-identical to single-shard runs, so the golden
//! cross-checks are unaffected.
//!
//! A deterministic slice of the responses is cross-checked after each run
//! against golden sequential recomputes on the *exact epoch each response
//! named* (the store retains every epoch the run publishes): bit-exact for
//! the monotone classes (SSSP/BFS/SSWP/CC), within the algorithm's
//! comparison tolerance for PageRank. `--verify-all` lifts the golden-run
//! budget and checks every sampled response — CI's smoke mode.
//!
//! Exit status: 0 on success, 1 when any cross-check diverges (or the
//! output cannot be written), 2 on a bad invocation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gp_algorithms::engine::run_sequential;
use gp_algorithms::{Bfs, ConnectedComponents, DeltaAlgorithm, PageRankDelta, Sssp, Sswp};
use gp_bench::json::{Json, SERVE_SCHEMA};
use gp_bench::{cli, write_output};
use gp_graph::generators::{rmat, RmatConfig, WeightMode};
use gp_graph::rng::{Rng, StdRng};
use gp_graph::{CsrGraph, OverlayGraph, VertexId};
use gp_serve::{Query, QueryClass, QueryResponse, ServeConfig, Server};
use gp_stream::UpdateStream;

const USAGE: &str = "\
Usage: serve_bench [flags]
  --seed S         traffic + graph seed (default 42)
  --vertices N     R-MAT graph size (default 65536)
  --queries Q      total queries across all clients (default 120000)
  --clients C      client threads (default 4)
  --tenants T      registered tenants, clients round-robin (default 2)
  --batches B      edge-update batches raced against the queries (default 32)
  --batch-size U   edge updates per batch (default 96)
  --hot-sources H  size of the skewed path-source pool (default 16)
  --executors E    comma-separated executor-pool sizes; the identical
                   workload runs once per size and each run is one sweep
                   entry in the output (default 1)
  --turbo-shards S engine shards for every turbo run; bit-identical to
                   single-shard execution (default 1)
  --sample-every K sample every K-th query per client for the golden
                   cross-check (default 512)
  --verify-all     cross-check every sampled response (no golden-run
                   budget); slower, used by the CI smoke
  --out PATH       JSON output path (default BENCH_serve.json)
  --help           print this reference and exit

Exit status: 0 on success, 1 when any sampled response diverges from the
golden recompute on its epoch, 2 on a bad invocation.";

#[derive(Clone)]
struct Args {
    seed: u64,
    vertices: usize,
    queries: usize,
    clients: usize,
    tenants: usize,
    batches: usize,
    batch_size: usize,
    hot_sources: usize,
    executors: Vec<usize>,
    turbo_shards: usize,
    sample_every: usize,
    verify_all: bool,
    out: std::path::PathBuf,
}

fn parse_executor_list(raw: &str) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for part in raw.split(',') {
        let n: usize = part
            .trim()
            .parse()
            .map_err(|_| format!("--executors expects positive integers, got {part:?}"))?;
        if n == 0 {
            return Err("--executors counts must be positive".into());
        }
        out.push(n);
    }
    Ok(out)
}

fn parse(args: impl Iterator<Item = String>) -> Result<Option<Args>, String> {
    let mut parsed = Args {
        seed: 42,
        vertices: 1 << 16,
        queries: 120_000,
        clients: 4,
        tenants: 2,
        batches: 32,
        batch_size: 96,
        hot_sources: 16,
        executors: vec![1],
        turbo_shards: 1,
        sample_every: 512,
        verify_all: false,
        out: "BENCH_serve.json".into(),
    };
    let mut args = cli::Flags::new(args);
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--seed" => parsed.seed = args.parsed(&flag, "an integer")?,
            "--vertices" => parsed.vertices = args.parsed(&flag, "an integer")?,
            "--queries" => parsed.queries = args.parsed(&flag, "an integer")?,
            "--clients" => parsed.clients = args.parsed(&flag, "an integer")?,
            "--tenants" => parsed.tenants = args.parsed(&flag, "an integer")?,
            "--batches" => parsed.batches = args.parsed(&flag, "an integer")?,
            "--batch-size" => parsed.batch_size = args.parsed(&flag, "an integer")?,
            "--hot-sources" => parsed.hot_sources = args.parsed(&flag, "an integer")?,
            "--executors" => parsed.executors = parse_executor_list(&args.value(&flag)?)?,
            "--turbo-shards" => parsed.turbo_shards = args.parsed(&flag, "an integer")?,
            "--sample-every" => parsed.sample_every = args.parsed(&flag, "an integer")?,
            "--verify-all" => parsed.verify_all = true,
            "--out" => parsed.out = args.value(&flag)?.into(),
            other => return Err(cli::Flags::unknown(other)),
        }
    }
    if args.help_requested() {
        return Ok(None);
    }
    if parsed.vertices < 64 {
        return Err("--vertices must be at least 64".into());
    }
    if parsed.clients == 0 || parsed.tenants == 0 || parsed.queries == 0 {
        return Err("--clients, --tenants, and --queries must be positive".into());
    }
    if parsed.turbo_shards == 0 {
        return Err("--turbo-shards must be positive".into());
    }
    if parsed.executors.is_empty() {
        return Err("--executors needs at least one pool size".into());
    }
    parsed.hot_sources = parsed.hot_sources.clamp(1, parsed.vertices);
    parsed.sample_every = parsed.sample_every.max(1);
    Ok(Some(parsed))
}

/// One client thread's output: per-class latencies (µs) and the sampled
/// (query, response) pairs for the golden cross-check.
struct ClientRun {
    latencies_us: [Vec<f64>; 5],
    samples: Vec<(Query, QueryResponse)>,
}

fn class_index(class: QueryClass) -> usize {
    QueryClass::ALL
        .iter()
        .position(|&c| c == class)
        .expect("class")
}

fn run_client(
    client: gp_serve::ServeClient,
    tenant: usize,
    queries: usize,
    hot: Arc<Vec<u32>>,
    seed: u64,
    sample_every: usize,
    progress: Arc<AtomicU64>,
) -> ClientRun {
    let n = client.num_vertices() as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = ClientRun {
        latencies_us: std::array::from_fn(|_| Vec::new()),
        samples: Vec::new(),
    };
    for i in 0..queries {
        let src = VertexId::new(hot[rng.gen_range(0..hot.len())]);
        let dst = VertexId::new(rng.gen_range(0..n));
        let roll = rng.gen_range(0.0..1.0f64);
        let query = if roll < 0.30 {
            Query::PageRank { v: dst }
        } else if roll < 0.40 {
            Query::Components { v: dst }
        } else if roll < 0.60 {
            Query::Sssp { src, dst }
        } else if roll < 0.80 {
            Query::Bfs { src, dst }
        } else {
            Query::Sswp { src, dst }
        };
        let t0 = Instant::now();
        let response = loop {
            match client.query(tenant, query) {
                Ok(r) => break r,
                // Backpressure sheds the query; a real client retries
                // later. Keep the bench lossless so served == offered.
                Err(_) => std::thread::yield_now(),
            }
        };
        let micros = t0.elapsed().as_secs_f64() * 1e6;
        out.latencies_us[class_index(query.class())].push(micros);
        progress.fetch_add(1, Ordering::Relaxed);
        if i % sample_every == 0 {
            out.samples.push((query, response));
        }
    }
    out
}

/// Golden recomputes, cached per epoch (whole-graph classes) or per
/// (class, source, epoch) (path classes), with an optional budget on how
/// many distinct golden runs the verification phase may spend.
struct GoldenCache<'a> {
    store: &'a gp_serve::SnapshotStore,
    pagerank: PageRankDelta,
    values: std::collections::HashMap<(QueryClass, u32, u64), Arc<Vec<f64>>>,
    runs_left: usize,
}

impl GoldenCache<'_> {
    /// The golden value vector serving `(class, src)` at `epoch`, or
    /// `None` when the budget is spent (never for an unretained epoch —
    /// the bench retains every epoch it publishes).
    fn values_for(&mut self, class: QueryClass, src: u32, number: u64) -> Option<Arc<Vec<f64>>> {
        let key = (class, src, number);
        if let Some(v) = self.values.get(&key) {
            return Some(Arc::clone(v));
        }
        if self.runs_left == 0 {
            return None;
        }
        self.runs_left -= 1;
        let epoch = self
            .store
            .epoch(number)
            .expect("every published epoch is retained for verification");
        let root = VertexId::new(src);
        let values = match class {
            QueryClass::PageRank => run_sequential(&self.pagerank, &epoch.graph).values,
            QueryClass::Components => {
                run_sequential(&ConnectedComponents::new(), &epoch.graph).values
            }
            QueryClass::Sssp => run_sequential(&Sssp::new(root), &epoch.graph).values,
            QueryClass::Bfs => run_sequential(&Bfs::new(root), &epoch.graph).values,
            QueryClass::Sswp => run_sequential(&Sswp::new(root), &epoch.graph).values,
        };
        let values = Arc::new(values);
        self.values.insert(key, Arc::clone(&values));
        Some(values)
    }
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the full workload against a fresh server with `executors`
/// executor threads and returns the sweep entry plus the cross-check
/// failure count.
#[allow(clippy::too_many_lines)]
fn run_sweep_entry(args: &Args, graph: &CsrGraph, executors: usize) -> (Json, u64) {
    println!(
        "serve_bench: {} executor(s), {} turbo shard(s), {} queries on {} client(s), \
         {} update batch(es)",
        executors, args.turbo_shards, args.queries, args.clients, args.batches
    );
    let shadow_base = graph.clone();

    let config = ServeConfig {
        tenants: (0..args.tenants).map(|i| format!("t{i}")).collect(),
        executors,
        turbo_shards: args.turbo_shards,
        // Retain every epoch this run can publish so the cross-check can
        // recompute on exactly the epoch each response names.
        retain_epochs: args.batches + 2,
        // The harness-wide PageRank threshold: golden recomputes at 1e-9
        // would dominate the verification phase without changing the story.
        pagerank_threshold: gp_bench::PR_EPS,
        ..ServeConfig::default()
    };
    let pagerank = PageRankDelta::new(config.pagerank_damping, config.pagerank_threshold);
    let handle = Server::start(graph.clone(), config);

    // Skewed hot-source pool shared by every client: repeated sources hit
    // the per-epoch path cache; distinct ones fuse into shared traversals.
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x407);
    let hot: Arc<Vec<u32>> = Arc::new(
        (0..args.hot_sources)
            .map(|_| rng.gen_range(0..args.vertices as u32))
            .collect(),
    );

    // Updater thread: paced against query progress so the batches spread
    // across the whole run instead of finishing in the first millisecond.
    let progress = Arc::new(AtomicU64::new(0));
    let updater_thread = {
        let updater = handle.updater();
        let progress = Arc::clone(&progress);
        let total = args.queries as u64;
        let batches = args.batches;
        let batch_size = args.batch_size;
        let seed = args.seed ^ 0xDE1A;
        let vertices = args.vertices;
        std::thread::spawn(move || {
            let mut shadow = OverlayGraph::new(shadow_base);
            let mut stream = UpdateStream::new(vertices, 0.3, WeightMode::Uniform(1.0, 10.0), seed);
            for b in 0..batches {
                let gate = total * b as u64 / batches.max(1) as u64;
                while progress.load(Ordering::Relaxed) < gate {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                let updates = stream.next_batch(&shadow, batch_size);
                shadow.apply(&updates);
                if !updater.submit(updates) {
                    return;
                }
            }
        })
    };

    let t0 = Instant::now();
    let mut clients = Vec::new();
    for c in 0..args.clients {
        let client = handle.client();
        let hot = Arc::clone(&hot);
        let progress = Arc::clone(&progress);
        let per = args.queries / args.clients + usize::from(c < args.queries % args.clients);
        let tenant = c % args.tenants;
        let seed = args.seed ^ (0xC11E47 + c as u64);
        let sample_every = args.sample_every;
        clients.push(std::thread::spawn(move || {
            run_client(client, tenant, per, hot, seed, sample_every, progress)
        }));
    }
    let runs: Vec<ClientRun> = clients
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();
    let wall_secs = t0.elapsed().as_secs_f64();
    updater_thread.join().expect("updater thread");

    // Golden cross-check on the pinned epochs. The budget bounds how many
    // full recomputes the verification phase spends (each one covers every
    // sample sharing its (class, source, epoch) key); --verify-all lifts it.
    let mut golden = GoldenCache {
        store: handle.store(),
        pagerank: pagerank.clone(),
        values: std::collections::HashMap::new(),
        runs_left: if args.verify_all { usize::MAX } else { 64 },
    };
    let tolerance = pagerank.comparison_tolerance();
    let mut verified = 0u64;
    let mut failures = 0u64;
    let mut budget_skipped = 0u64;
    for (query, response) in runs.iter().flat_map(|r| r.samples.iter()) {
        let (class, src, read) = match *query {
            Query::PageRank { v } => (QueryClass::PageRank, 0, v),
            Query::Components { v } => (QueryClass::Components, 0, v),
            Query::Sssp { src, dst } => (QueryClass::Sssp, src.get(), dst),
            Query::Bfs { src, dst } => (QueryClass::Bfs, src.get(), dst),
            Query::Sswp { src, dst } => (QueryClass::Sswp, src.get(), dst),
        };
        let Some(values) = golden.values_for(class, src, response.epoch) else {
            budget_skipped += 1;
            continue;
        };
        let expected = values[read.index()];
        let ok = if class == QueryClass::PageRank {
            (expected - response.value).abs() <= tolerance
        } else {
            expected.to_bits() == response.value.to_bits()
        };
        verified += 1;
        if !ok {
            failures += 1;
            eprintln!(
                "MISMATCH {query:?} at epoch {}: served {} vs golden {expected}",
                response.epoch, response.value
            );
        }
    }
    if budget_skipped > 0 {
        println!(
            "note: golden-run budget exhausted; {budget_skipped} sample(s) not checked \
             (use --verify-all to check everything)"
        );
    }

    let stats = handle.shutdown();
    let throughput = stats.served as f64 / wall_secs.max(1e-12);
    println!(
        "{} queries in {wall_secs:.2}s = {throughput:.0} q/s \
         ({} epochs published, {} warm starts, {} fused runs, {} path warm starts, {} degraded)",
        stats.served,
        stats.epochs_published,
        stats.warm_starts,
        stats.fused_runs,
        stats.path_warm_starts,
        stats.degraded
    );
    println!("cross-checked {verified} sampled response(s), {failures} mismatch(es)");

    let mut classes = Vec::new();
    for (i, class) in QueryClass::ALL.iter().enumerate() {
        let mut lat: Vec<f64> = runs
            .iter()
            .flat_map(|r| r.latencies_us[i].iter().copied())
            .collect();
        lat.sort_by(|a, b| a.total_cmp(b));
        let mean = lat.iter().sum::<f64>() / lat.len().max(1) as f64;
        let (p50, p99, p999) = (
            quantile(&lat, 0.50),
            quantile(&lat, 0.99),
            quantile(&lat, 0.999),
        );
        println!(
            "{:<9} served {:>8}  p50 {p50:>9.1}us  p99 {p99:>9.1}us  p999 {p999:>9.1}us",
            class.name(),
            stats.served_by_class[i]
        );
        classes.push(Json::obj([
            ("class", Json::Str(class.name().into())),
            ("served", Json::Num(stats.served_by_class[i] as f64)),
            ("mean_us", Json::Num(mean)),
            ("p50_us", Json::Num(p50)),
            ("p99_us", Json::Num(p99)),
            ("p999_us", Json::Num(p999)),
            ("max_us", Json::Num(lat.last().copied().unwrap_or(0.0))),
        ]));
    }

    let entry = Json::obj([
        ("executors", Json::Num(executors as f64)),
        ("queries_total", Json::Num(stats.served as f64)),
        ("wall_secs", Json::Num(wall_secs)),
        ("throughput_qps", Json::Num(throughput)),
        ("rejected", Json::Num(stats.rejected as f64)),
        ("degraded", Json::Num(stats.degraded as f64)),
        ("epochs_published", Json::Num(stats.epochs_published as f64)),
        ("update_batches", Json::Num(stats.update_batches as f64)),
        ("warm_starts", Json::Num(stats.warm_starts as f64)),
        ("cold_runs", Json::Num(stats.cold_runs as f64)),
        ("fused_runs", Json::Num(stats.fused_runs as f64)),
        ("path_cache_hits", Json::Num(stats.path_cache_hits as f64)),
        ("path_warm_starts", Json::Num(stats.path_warm_starts as f64)),
        ("verified_samples", Json::Num(verified as f64)),
        ("verify_failures", Json::Num(failures as f64)),
        ("classes", Json::Arr(classes)),
    ]);
    (entry, failures)
}

fn main() {
    let args = cli::finish(parse(std::env::args().skip(1)), USAGE);

    println!(
        "serve_bench: 2^{:.0} vertices, executor sweep {:?}",
        (args.vertices as f64).log2(),
        args.executors
    );
    let graph = rmat(
        &RmatConfig::graph500(args.vertices, 4 * args.vertices)
            .with_weights(WeightMode::Uniform(1.0, 10.0)),
        args.seed,
    );
    let base_edges = graph.num_edges();

    let mut entries = Vec::new();
    let mut total_failures = 0u64;
    for &executors in &args.executors {
        let (entry, failures) = run_sweep_entry(&args, &graph, executors);
        entries.push(entry);
        total_failures += failures;
    }

    let doc = Json::obj([
        ("schema", Json::Str(SERVE_SCHEMA.into())),
        ("seed", Json::Num(args.seed as f64)),
        ("vertices", Json::Num(args.vertices as f64)),
        ("edges", Json::Num(base_edges as f64)),
        ("tenants", Json::Num(args.tenants as f64)),
        ("clients", Json::Num(args.clients as f64)),
        ("turbo_shards", Json::Num(args.turbo_shards as f64)),
        ("runs", Json::Arr(entries)),
    ]);
    if let Err(e) = write_output(&args.out, &doc.render()) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    println!("wrote {}", args.out.display());
    if total_failures > 0 {
        std::process::exit(1);
    }
}
