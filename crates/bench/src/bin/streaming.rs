//! `streaming` — update-stream benchmark: incremental recomputation vs
//! full recompute on an R-MAT edge-update stream.
//!
//! For each of the five incremental-capable algorithms (PRD, SSSP, BFS,
//! CC, SSWP — Adsorption has no incremental seeding rule, so `--apps` is
//! ignored here) the bench:
//!
//! 1. builds an R-MAT graph (`--vertices`, default 2^16) and fully
//!    converges on the accelerator model (the shard-parallel engine when
//!    `--workers` is given),
//! 2. streams `--batches` batches of `--batch-size` edge updates with a
//!    `--delete-frac` deletion mix through the [`gp_stream`] overlay +
//!    incremental engine, re-converging after every batch,
//! 3. runs one cold full recompute on the final mutated graph, and
//!    reports events per update, mean re-convergence cycles per batch,
//!    and the incremental-vs-full speedup.

use gp_algorithms::{Bfs, ConnectedComponents, IncrementalAlgorithm, PageRankDelta, Sssp, Sswp};
use gp_bench::{print_table, HarnessConfig, PR_EPS};
use gp_graph::generators::{rmat, RmatConfig, WeightMode};
use gp_graph::{GraphView, VertexId};
use gp_stream::{Backend, IncrementalEngine, StreamConfig, UpdateStream};
use graphpulse_core::{AcceleratorConfig, GraphPulse};

fn accel_config(cfg: &HarnessConfig) -> AcceleratorConfig {
    let mut ac = AcceleratorConfig::optimized();
    if let Some(w) = cfg.workers {
        ac.parallel.workers = w.max(1);
    }
    if let Some(e) = cfg.epoch_cycles {
        ac.parallel.epoch_cycles = e;
    }
    ac
}

fn backend(cfg: &HarnessConfig) -> Backend {
    let ac = Box::new(accel_config(cfg));
    match cfg.workers {
        Some(_) => Backend::Parallel(ac),
        None => Backend::Accelerator(ac),
    }
}

/// Root with the highest out-degree, like the figure binaries use.
fn pick_root(g: &dyn GraphView) -> VertexId {
    g.vertex_ids()
        .max_by_key(|&v| g.out_degree(v))
        .unwrap_or(VertexId::new(0))
}

fn run_app<A: IncrementalAlgorithm>(
    label: &str,
    make: impl FnOnce(VertexId) -> A,
    weights: WeightMode,
    cfg: &HarnessConfig,
    rows: &mut Vec<Vec<String>>,
) {
    let n = cfg.stream_vertices.max(2);
    let graph = rmat(
        &RmatConfig::graph500(n, 8 * n).with_weights(weights),
        cfg.seed,
    );
    let algo = make(pick_root(&graph));
    let stream_config = StreamConfig {
        backend: backend(cfg),
        compact_fraction: 0.25,
    };
    let (mut engine, init) =
        IncrementalEngine::new(algo, graph, stream_config).expect("initial convergence failed");
    let mut stream = UpdateStream::new(n, cfg.delete_fraction, weights, cfg.seed ^ 0x57EA);

    let mut updates = 0u64;
    let mut events = 0u64;
    let mut dirty = 0u64;
    let mut cycles = 0u64;
    let mut compactions = 0u64;
    for _ in 0..cfg.batches {
        let batch = stream.next_batch(engine.graph(), cfg.batch_size);
        let r = engine
            .apply_batch(&batch)
            .expect("incremental batch failed");
        updates += (r.inserts + r.deletes) as u64;
        events += r.events_processed;
        dirty += r.dirty_vertices as u64;
        cycles += r.cycles;
        compactions += u64::from(r.compacted);
    }

    // Cold full recompute on the final mutated graph, same backend.
    let accel = GraphPulse::new(accel_config(cfg));
    let full_cycles = match cfg.workers {
        Some(_) => {
            accel
                .run_parallel(engine.graph(), engine.algo())
                .expect("full recompute failed")
                .report
                .cycles
        }
        None => {
            accel
                .run(engine.graph(), engine.algo())
                .expect("full recompute failed")
                .report
                .cycles
        }
    };

    let batches = cfg.batches.max(1) as u64;
    let mean_cycles = cycles as f64 / batches as f64;
    let speedup = full_cycles as f64 / mean_cycles.max(1.0);
    rows.push(vec![
        label.to_string(),
        engine.graph().num_edges().to_string(),
        updates.to_string(),
        format!("{:.1}", dirty as f64 / batches as f64),
        format!("{:.1}", events as f64 / updates.max(1) as f64),
        format!("{:.0}", mean_cycles),
        init.cycles.to_string(),
        full_cycles.to_string(),
        format!("{speedup:.1}x"),
        compactions.to_string(),
    ]);
}

fn main() {
    let cfg = HarnessConfig::from_args(std::env::args().skip(1));
    let n = cfg.stream_vertices.max(2);
    println!(
        "Streaming updates: {n}-vertex R-MAT, {} batches x {} updates, \
         {:.0}% deletions, seed {}, backend {}",
        cfg.batches,
        cfg.batch_size,
        cfg.delete_fraction * 100.0,
        cfg.seed,
        match cfg.workers {
            Some(w) => format!("parallel ({w} workers)"),
            None => "sequential".to_string(),
        },
    );

    let weighted = WeightMode::Uniform(1.0, 10.0);
    let mut rows = Vec::new();
    run_app(
        "PRD",
        |_| PageRankDelta::new(0.85, PR_EPS),
        WeightMode::Unweighted,
        &cfg,
        &mut rows,
    );
    run_app("SSSP", Sssp::new, weighted, &cfg, &mut rows);
    run_app("BFS", Bfs::new, WeightMode::Unweighted, &cfg, &mut rows);
    run_app(
        "CC",
        |_| ConnectedComponents::new(),
        WeightMode::Unweighted,
        &cfg,
        &mut rows,
    );
    run_app("SSWP", Sswp::new, weighted, &cfg, &mut rows);

    print_table(
        "Update streams — incremental vs full recompute",
        &[
            "app",
            "edges",
            "net updates",
            "dirty/batch",
            "events/update",
            "inc cycles/batch",
            "init cycles",
            "full cycles",
            "speedup",
            "compactions",
        ],
        &rows,
    );
}
