//! Figure 13: average cycles an event spends in each execution stage,
//! chronological bottom-to-top: Vtx Mem, Process, Gen-Buffer, Edge Mem,
//! Generate.

use gp_bench::{gp_config, prepare, print_table, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_args(std::env::args().skip(1));
    println!(
        "Fig. 13 — per-event stage latencies in cycles (scale 1/{})",
        cfg.scale
    );
    let mut rows = Vec::new();
    for app in &cfg.apps {
        for workload in &cfg.workloads {
            let prepared = prepare(*workload, *app, cfg.scale, cfg.seed);
            let out = cfg.run_accelerator(
                *app,
                &prepared,
                &gp_config(*workload, &prepared.graph, true),
            );
            let s = &out.report.stages;
            rows.push(vec![
                app.label().to_string(),
                workload.abbrev().to_string(),
                format!("{:.1}", s.vtx_mem.mean()),
                format!("{:.1}", s.process.mean()),
                format!("{:.1}", s.gen_buffer.mean()),
                format!("{:.1}", s.edge_mem.mean()),
                format!("{:.1}", s.generate.mean()),
            ]);
        }
    }
    print_table(
        "Mean cycles per stage",
        &[
            "app",
            "graph",
            "Vtx Mem",
            "Process",
            "Gen-Buffer",
            "Edge Mem",
            "Generate",
        ],
        &rows,
    );
    println!(
        "\npaper reference: vertex reads take only a few cycles thanks to the\n\
         prefetcher; edge-memory time dominates the generation path (Fig. 13)."
    );
}
