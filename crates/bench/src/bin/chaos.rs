//! Chaos-campaign bench: fault-injection sweep with recovery-cost metrics.
//!
//! ```text
//! cargo run --release -p gp-bench --bin chaos -- [--seed S] [--out PATH]
//! ```
//!
//! Runs the full [`gp_chaos::run_campaign`] sweep — every fault kind ×
//! all six algorithms, transient and persistent modes — prints the
//! deterministic campaign log, and writes `BENCH_chaos.json`
//! (`gp-bench/chaos/v1`, checked by `bench_check`): per-scenario
//! detection latency, recovery kind, rollback count, wasted events, and
//! checkpoint traffic, plus per-algorithm fault-free checkpointing
//! overhead and an MTTR-style summary. Everything is derived from the
//! seed — no wall clock enters the output, so reruns are byte-identical.
//!
//! Exits 0 when every scenario detected its fault and recovered to the
//! fault-free reference, 1 otherwise, 2 on a bad invocation.

use gp_bench::json::{Json, CHAOS_SCHEMA};
use gp_bench::write_output;
use gp_chaos::{run_campaign, CampaignReport};

const USAGE: &str = "\
Usage: chaos [flags]
  --seed S    campaign seed (default 42)
  --out PATH  JSON output path (default BENCH_chaos.json)
  --help      print this reference and exit

Exit status: 0 when every scenario detected its fault and recovered
bit-exactly, 1 on a campaign failure, 2 on a bad invocation.";

struct Args {
    seed: u64,
    out: std::path::PathBuf,
}

fn parse(args: impl Iterator<Item = String>) -> Result<Option<Args>, String> {
    let mut parsed = Args {
        seed: 42,
        out: "BENCH_chaos.json".into(),
    };
    let mut args = gp_bench::cli::Flags::new(args);
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--seed" => parsed.seed = args.parsed(&flag, "an integer")?,
            "--out" => parsed.out = args.value(&flag)?.into(),
            other => return Err(gp_bench::cli::Flags::unknown(other)),
        }
    }
    if args.help_requested() {
        return Ok(None);
    }
    Ok(Some(parsed))
}

fn to_json(report: &CampaignReport) -> Json {
    let scenarios: Vec<Json> = report
        .records
        .iter()
        .map(|r| {
            Json::obj([
                ("fault", Json::Str(r.fault.label().into())),
                ("algo", Json::Str(r.algo.into())),
                ("mode", Json::Str(r.mode.into())),
                ("backend", Json::Str(r.backend.into())),
                ("detected", Json::Num(f64::from(r.detected))),
                ("detector", Json::Str(r.detector.clone())),
                (
                    "detection_latency_epochs",
                    Json::Num(r.latency_epochs as f64),
                ),
                ("recovery", Json::Str(r.recovery.into())),
                ("rollbacks", Json::Num(f64::from(r.rollbacks))),
                ("wasted_events", Json::Num(r.wasted_events as f64)),
                ("checkpoint_bytes", Json::Num(r.checkpoint_bytes as f64)),
                ("max_abs_diff", Json::Num(r.max_diff)),
                ("result_ok", Json::Bool(r.result_ok)),
            ])
        })
        .collect();
    let overhead: Vec<Json> = report
        .overhead
        .iter()
        .map(|o| {
            Json::obj([
                ("algo", Json::Str(o.algo.into())),
                ("events_processed", Json::Num(o.events_processed as f64)),
                ("epochs", Json::Num(o.epochs as f64)),
                ("checkpoints", Json::Num(o.checkpoints as f64)),
                ("checkpoint_words", Json::Num(o.checkpoint_words as f64)),
                ("checkpoint_bytes", Json::Num(o.checkpoint_bytes as f64)),
                (
                    "checkpoint_bytes_per_event",
                    Json::Num(o.checkpoint_bytes as f64 / o.events_processed.max(1) as f64),
                ),
                ("bitexact", Json::Bool(o.bitexact)),
            ])
        })
        .collect();

    let n = report.records.len();
    let detections: u64 = report.records.iter().map(|r| u64::from(r.detected)).sum();
    let recoveries = report.records.iter().filter(|r| r.detected > 0).count();
    let latency_sum: u64 = report.records.iter().map(|r| r.latency_epochs).sum();
    let rollback_sum: u64 = report.records.iter().map(|r| u64::from(r.rollbacks)).sum();
    let wasted: u64 = report.records.iter().map(|r| r.wasted_events).sum();
    let ckpt_bytes: u64 = report.records.iter().map(|r| r.checkpoint_bytes).sum();
    let summary = Json::obj([
        ("scenarios", Json::Num(n as f64)),
        ("detections", Json::Num(detections as f64)),
        (
            "mean_detection_latency_epochs",
            Json::Num(latency_sum as f64 / recoveries.max(1) as f64),
        ),
        (
            "mean_rollbacks_per_recovery",
            Json::Num(rollback_sum as f64 / recoveries.max(1) as f64),
        ),
        ("wasted_events_total", Json::Num(wasted as f64)),
        ("checkpoint_bytes_total", Json::Num(ckpt_bytes as f64)),
    ]);

    Json::obj([
        ("schema", Json::Str(CHAOS_SCHEMA.into())),
        ("seed", Json::Num(report.seed as f64)),
        ("scenarios", Json::Arr(scenarios)),
        ("overhead", Json::Arr(overhead)),
        ("summary", summary),
    ])
}

fn main() {
    let args = gp_bench::cli::finish(parse(std::env::args().skip(1)), USAGE);
    let report = run_campaign(args.seed);
    print!("{}", report.render_log());
    if let Err(e) = write_output(&args.out, &to_json(&report).render()) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    println!("wrote {}", args.out.display());
    if !report.failures().is_empty() {
        std::process::exit(1);
    }
}
