//! Deterministic differential-fuzzing driver.
//!
//! Thin CLI over [`gp_verify::run_fuzz`]: every iteration generates a
//! seed-determined random case (graph, machine, update stream), runs the
//! golden / accelerator / shard-parallel / incremental differential
//! oracle plus the metamorphic and micro-architectural invariant checks,
//! and on failure shrinks to a minimal repro printed as a ready-to-paste
//! regression test. Same seed, same output — byte for byte.

use gp_verify::{Fault, FuzzConfig};

const USAGE: &str = "\
Usage: fuzz [flags]
  --seed S              master seed (default 7)
  --iters N             iterations to run (default 50)
  --shrink              shrink the first failing case (default)
  --no-shrink           report the failing case unshrunk
  --inject-fault F      deliberately inject a defect to self-test the
                        harness; F is one of: merge-order
  --help                print this reference and exit

Exit status: 0 when every iteration passes, 1 on an oracle failure,
2 on a bad invocation.";

fn parse(mut args: impl Iterator<Item = String>) -> Result<Option<FuzzConfig>, String> {
    let mut cfg = FuzzConfig::default();
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--help" | "-h" => return Ok(None),
            "--seed" => {
                let v = value()?;
                cfg.seed = v
                    .parse()
                    .map_err(|_| format!("--seed takes an integer, got {v:?}"))?;
            }
            "--iters" => {
                let v = value()?;
                cfg.iters = v
                    .parse()
                    .map_err(|_| format!("--iters takes an integer, got {v:?}"))?;
            }
            "--shrink" => cfg.shrink = true,
            "--no-shrink" => cfg.shrink = false,
            "--inject-fault" => {
                let v = value()?;
                cfg.fault = Some(Fault::parse(&v).ok_or_else(|| format!("unknown fault {v:?}"))?);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Some(cfg))
}

fn main() {
    let cfg = match parse(std::env::args().skip(1)) {
        Ok(Some(cfg)) => cfg,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let mut out = std::io::stdout().lock();
    let report = gp_verify::run_fuzz(&cfg, &mut out).expect("writing to stdout failed");
    if !report.passed() {
        std::process::exit(1);
    }
}
