//! Deterministic differential-fuzzing driver.
//!
//! Thin CLI over [`gp_verify::run_fuzz`]: every iteration generates a
//! seed-determined random case (graph, machine, update stream), runs the
//! golden / accelerator / shard-parallel / incremental / turbo / chaos
//! differential oracle plus the metamorphic and micro-architectural
//! invariant checks, and on failure shrinks to a minimal repro printed as
//! a ready-to-paste regression test. Same seed, same output — byte for
//! byte.
//!
//! `--inject-fault F` deliberately injects one of the `gp-chaos` fault
//! kinds to self-test the harness's detection paths, and `--chaos` runs
//! the full fault-injection campaign (every kind × every backend,
//! detect → recover → bit-exact) instead of the fuzz loop.

use gp_verify::{Fault, FuzzConfig};

fn usage() -> String {
    format!(
        "\
Usage: fuzz [flags]
  --seed S              master seed (default 7)
  --iters N             iterations to run (default 50)
  --shrink              shrink the first failing case (default)
  --no-shrink           report the failing case unshrunk
  --inject-fault F      deliberately inject a defect to self-test the
                        harness; F is one of: {kinds}
  --chaos               run the fault-injection campaign (every fault
                        kind x backend, detect/recover/verify) instead
                        of the fuzz loop; uses --seed
  --help                print this reference and exit

Exit status: 0 when every iteration passes, 1 on an oracle or campaign
failure, 2 on a bad invocation.",
        kinds = Fault::labels().join(", ")
    )
}

struct Invocation {
    cfg: FuzzConfig,
    chaos: bool,
}

fn parse(args: impl Iterator<Item = String>) -> Result<Option<Invocation>, String> {
    let mut cfg = FuzzConfig::default();
    let mut chaos = false;
    let mut args = gp_bench::cli::Flags::new(args);
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--seed" => cfg.seed = args.parsed(&flag, "an integer")?,
            "--iters" => cfg.iters = args.parsed(&flag, "an integer")?,
            "--shrink" => cfg.shrink = true,
            "--no-shrink" => cfg.shrink = false,
            "--chaos" => chaos = true,
            "--inject-fault" => {
                let v = args.value(&flag)?;
                cfg.fault = Some(Fault::parse(&v).ok_or_else(|| {
                    format!(
                        "unknown fault {v:?}; valid kinds: {}",
                        Fault::labels().join(", ")
                    )
                })?);
            }
            other => return Err(gp_bench::cli::Flags::unknown(other)),
        }
    }
    if args.help_requested() {
        return Ok(None);
    }
    Ok(Some(Invocation { cfg, chaos }))
}

fn main() {
    let inv = gp_bench::cli::finish(parse(std::env::args().skip(1)), &usage());
    if inv.chaos {
        let report = gp_chaos::run_campaign(inv.cfg.seed);
        print!("{}", report.render_log());
        if !report.failures().is_empty() {
            std::process::exit(1);
        }
        return;
    }
    let mut out = std::io::stdout().lock();
    let report = match gp_verify::run_fuzz(&inv.cfg, &mut out) {
        Ok(report) => report,
        Err(e) => {
            // stdout vanished mid-run (closed pipe, full disk): report on
            // stderr instead of panicking with a raw io::Error.
            eprintln!("error: could not write the fuzz log to stdout: {e}");
            std::process::exit(1);
        }
    };
    if !report.passed() {
        std::process::exit(1);
    }
}
