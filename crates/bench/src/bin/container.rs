//! `container` — out-of-core CSR container bench: builds on-disk `GPC1`
//! containers with the streaming external-memory builder (the full graph
//! is never materialized in RAM), memory-maps them, and drives the golden
//! engine and turbo over the mapping.
//!
//! Per scale (`--log2`, default `20,22`) the bench:
//!
//! 1. streams a seeded R-MAT edge list straight into [`build_streaming`]
//!    — resident memory during the build is one spill bucket, not the
//!    graph,
//! 2. opens the container with [`MappedCsr::open_verified`] (full segment
//!    checksum verification) and picks the highest-out-degree root,
//! 3. for each of PRD, SSSP, BFS, CC, and SSWP, runs the golden engine
//!    over a [`MeteredView`] of the mapping (reporting events/sec and the
//!    bytes-moved-per-edge traffic split) and turbo over the raw mapping
//!    (reporting its events/sec and its max |diff| vs golden, which must
//!    sit within the algorithm's comparison tolerance — for PRD widened
//!    to the first-order residue bound `threshold * max_in_degree`: every
//!    in-neighbor may legitimately hold sub-threshold residue it never
//!    propagated, so on scale-free R-MATs the mega-hub's rank can differ
//!    by up to that sum and the flat tolerance under-scales past ~2^20),
//! 4. emits a `BENCH_outofcore.json` document (`gp-bench/outofcore/v1`,
//!    schema-checked by `bench_check`).
//!
//! Adsorption is skipped: it needs inbound-normalized weights, a whole
//! graph rewrite the streaming builder deliberately does not perform.
//!
//! `--budget-mb` turns the run into the out-of-core demonstration: the
//! bench computes the *analytic* fully-resident footprint of each graph
//! (both CSR directions: `2*4*(n+1)` row-pointer plus `2*4*m` neighbor
//! and, when weighted, `2*4*m` weight bytes) and a conservative bound on
//! the mapped run's heap working state (48 B/vertex for values, pending
//! deltas, and scheduler entries, plus the 32 B/slice index). The run
//! fails unless the working state fits under the budget; the validator
//! additionally requires at least one scale whose resident footprint
//! exceeds it — i.e. a graph the fully-resident path could not have
//! loaded under the same budget. Mapped file pages are excluded by
//! design: they are clean, evictable page cache, not committed memory.

use std::path::PathBuf;
use std::time::Instant;

use gp_algorithms::engine::run_sequential;
use gp_algorithms::{max_abs_diff, DeltaAlgorithm};
use gp_algorithms::{Bfs, ConnectedComponents, PageRankDelta, Sssp, Sswp};
use gp_bench::cli::{finish, Flags};
use gp_bench::json::{Json, OUTOFCORE_SCHEMA};
use gp_graph::container::{build_streaming, StreamBuildOptions};
use gp_graph::generators::{rmat_edges, RmatConfig, WeightMode};
use gp_graph::{GraphView, MappedCsr, MeteredView, VertexId};
use gp_turbo::{run_turbo, TurboConfig};

/// PageRank-Delta convergence threshold — the same `1e-3` the end-to-end
/// trajectory uses at scale. PRD's comparison tolerance scales with its
/// threshold (sub-threshold residue accumulates along paths), so the
/// tight small-fixture `PR_EPS` would reject legitimate turbo-vs-golden
/// residue drift on multi-million-edge graphs.
const PRD_THRESHOLD: f64 = 1e-3;

const USAGE: &str = "\
Usage: container [--seed N] [--log2 L1,L2,...] [--edge-factor N]
                 [--slice-vertices N] [--bucket-vertices N] [--budget-mb N]
                 [--unweighted] [--dir PATH] [--out PATH]

Builds on-disk GPC1 containers at each 2^L-vertex scale with the streaming
builder (no resident graph), memory-maps them, and benchmarks the golden
engine and turbo over the mapping. Writes a gp-bench/outofcore/v1 document.

  --seed N            R-MAT seed (default 42)
  --log2 LIST         comma-separated log2 vertex counts (default 20,22)
  --edge-factor N     directed edges per vertex before dedup (default 8)
  --slice-vertices N  stored slice-index granularity (default 65536)
  --bucket-vertices N vertices per streaming spill bucket (default 262144)
  --budget-mb N       resident-memory budget; the mapped working state must
                      fit under it (0 = no budget, the default)
  --check-resident    also materialize each graph in RAM and require golden
                      and turbo over the mapping to be bit-identical to the
                      fully-resident runs (CI smoke; defeats the budget)
  --unweighted        drop the weight segments (default: weighted)
  --dir PATH          scratch directory for containers (default: temp dir)
  --out PATH          output JSON path (default BENCH_outofcore.json)";

struct Config {
    seed: u64,
    log2: Vec<u32>,
    edge_factor: usize,
    slice_vertices: usize,
    bucket_vertices: usize,
    budget_mb: u64,
    check_resident: bool,
    weighted: bool,
    dir: Option<PathBuf>,
    out: PathBuf,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 42,
            log2: vec![20, 22],
            edge_factor: 8,
            slice_vertices: 1 << 16,
            bucket_vertices: 1 << 18,
            budget_mb: 0,
            check_resident: false,
            weighted: true,
            dir: None,
            out: PathBuf::from("BENCH_outofcore.json"),
        }
    }
}

fn parse_log2_list(v: &str) -> Result<Vec<u32>, String> {
    let mut out = Vec::new();
    for part in v.split(',') {
        let lg: u32 = part
            .trim()
            .parse()
            .map_err(|_| format!("--log2 takes a comma-separated integer list, got {v:?}"))?;
        if !(1..=31).contains(&lg) {
            return Err(format!("--log2 entries must be in 1..=31, got {lg}"));
        }
        out.push(lg);
    }
    if out.is_empty() {
        return Err("--log2 list is empty".into());
    }
    Ok(out)
}

fn parse(mut flags: Flags) -> Result<Option<Config>, String> {
    let mut cfg = Config::default();
    while let Some(flag) = flags.next_flag() {
        match flag.as_str() {
            "--seed" => cfg.seed = flags.parsed(&flag, "an integer")?,
            "--log2" => cfg.log2 = parse_log2_list(&flags.value(&flag)?)?,
            "--edge-factor" => cfg.edge_factor = flags.parsed(&flag, "an integer")?,
            "--slice-vertices" => cfg.slice_vertices = flags.parsed(&flag, "an integer")?,
            "--bucket-vertices" => cfg.bucket_vertices = flags.parsed(&flag, "an integer")?,
            "--budget-mb" => cfg.budget_mb = flags.parsed(&flag, "an integer")?,
            "--check-resident" => cfg.check_resident = true,
            "--unweighted" => cfg.weighted = false,
            "--dir" => cfg.dir = Some(PathBuf::from(flags.value(&flag)?)),
            "--out" => cfg.out = PathBuf::from(flags.value(&flag)?),
            other => return Err(Flags::unknown(other)),
        }
    }
    if flags.help_requested() {
        return Ok(None);
    }
    if cfg.edge_factor == 0 {
        return Err("--edge-factor must be positive".into());
    }
    if cfg.slice_vertices == 0 || cfg.bucket_vertices == 0 {
        return Err("--slice-vertices and --bucket-vertices must be positive".into());
    }
    Ok(Some(cfg))
}

/// Root with the highest out-degree, like the figure binaries use.
fn pick_root(g: &dyn GraphView) -> VertexId {
    g.vertex_ids()
        .max_by_key(|&v| g.out_degree(v))
        .unwrap_or(VertexId::new(0))
}

/// One per-algorithm measurement row.
struct AlgoRow {
    label: &'static str,
    json: Json,
    bytes_per_edge: f64,
    golden_eps: f64,
    turbo_eps: f64,
    turbo_diff: f64,
    turbo_ok: bool,
}

/// Golden over the metered mapping, turbo over the raw mapping.
///
/// `residue_bound` widens the turbo-vs-golden acceptance beyond the
/// algorithm's flat [`comparison_tolerance`] — pass `0.0` for algorithms
/// whose backends agree bit-exactly, and the first-order sub-threshold
/// residue bound `threshold * max_in_degree` for PageRank-delta (every
/// in-neighbor may hold up to `threshold` of never-propagated rank, so a
/// hub's converged value can legitimately differ by their sum).
///
/// [`comparison_tolerance`]: DeltaAlgorithm::comparison_tolerance
fn measure<A: DeltaAlgorithm>(
    label: &'static str,
    algo: &A,
    mapped: &MappedCsr,
    residue_bound: f64,
) -> AlgoRow {
    let metered = MeteredView::new(mapped);
    let t = Instant::now();
    let golden = run_sequential(algo, &metered);
    let wall = t.elapsed().as_secs_f64();
    let traffic = metered.snapshot();

    let t = Instant::now();
    let turbo = run_turbo(algo, mapped, &TurboConfig::default());
    let turbo_wall = t.elapsed().as_secs_f64();
    let diff = max_abs_diff(&turbo.values, &golden.values);
    let turbo_ok = diff <= algo.comparison_tolerance().max(residue_bound);

    let eps = golden.events_processed as f64 / wall.max(1e-9);
    let turbo_eps = turbo.events_processed as f64 / turbo_wall.max(1e-9);
    let json = Json::obj([
        ("algo", Json::Str(label.into())),
        ("wall_secs", Json::Num(wall)),
        (
            "events_processed",
            Json::Num(golden.events_processed as f64),
        ),
        ("events_per_sec", Json::Num(eps)),
        ("edges_read", Json::Num(traffic.edges_read as f64)),
        ("rowptr_bytes", Json::Num(traffic.rowptr_bytes as f64)),
        ("edge_bytes", Json::Num(traffic.edge_bytes as f64)),
        ("bytes_moved", Json::Num(traffic.total_bytes() as f64)),
        ("bytes_per_edge", Json::Num(traffic.bytes_per_edge())),
        ("turbo_wall_secs", Json::Num(turbo_wall)),
        ("turbo_events_per_sec", Json::Num(turbo_eps)),
        ("turbo_max_abs_diff", Json::Num(diff)),
        ("turbo_ok", Json::Bool(turbo_ok)),
    ]);
    AlgoRow {
        label,
        json,
        bytes_per_edge: traffic.bytes_per_edge(),
        golden_eps: eps,
        turbo_eps,
        turbo_diff: diff,
        turbo_ok,
    }
}

/// Bit-compares golden and turbo over the mapping against the same runs
/// on the fully-resident graph: value bits and every event counter.
fn check_resident<A: DeltaAlgorithm>(
    label: &'static str,
    algo: &A,
    resident: &gp_graph::CsrGraph,
    mapped: &MappedCsr,
) -> Result<(), String> {
    let bits = |values: &[f64]| values.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    let g_ram = run_sequential(algo, resident);
    let g_map = run_sequential(algo, mapped);
    if bits(&g_map.values) != bits(&g_ram.values)
        || g_map.events_processed != g_ram.events_processed
        || g_map.events_generated != g_ram.events_generated
    {
        return Err(format!(
            "{label}: golden over the mapping diverged from the resident run"
        ));
    }
    let tcfg = TurboConfig::default();
    let t_ram = run_turbo(algo, resident, &tcfg);
    let t_map = run_turbo(algo, mapped, &tcfg);
    if bits(&t_map.values) != bits(&t_ram.values)
        || t_map.events_processed != t_ram.events_processed
        || t_map.events_generated != t_ram.events_generated
        || t_map.rounds != t_ram.rounds
    {
        return Err(format!(
            "{label}: turbo over the mapping diverged from the resident run"
        ));
    }
    Ok(())
}

fn run_scale(cfg: &Config, dir: &std::path::Path, lg: u32) -> Result<Json, String> {
    let n = 1usize << lg;
    let weights = if cfg.weighted {
        WeightMode::Uniform(1.0, 10.0)
    } else {
        WeightMode::Unweighted
    };
    let rcfg = RmatConfig::graph500(n, n.saturating_mul(cfg.edge_factor)).with_weights(weights);
    let path = dir.join(format!("rmat-2p{lg}.gpc"));

    println!(
        "[2^{lg}] streaming {n}-vertex R-MAT into {}",
        path.display()
    );
    let t = Instant::now();
    let opts = StreamBuildOptions {
        weighted: cfg.weighted,
        slice_vertices: cfg.slice_vertices,
        bucket_vertices: cfg.bucket_vertices,
    };
    let summary = build_streaming(&path, n, &opts, |sink| {
        rmat_edges(&rcfg, cfg.seed, sink);
    })
    .map_err(|e| format!("2^{lg}: streaming build failed: {e}"))?;
    let build_secs = t.elapsed().as_secs_f64();

    let mapped = MappedCsr::open_verified(&path)
        .map_err(|e| format!("2^{lg}: container failed verified open: {e:?}"))?;
    let m = mapped.num_edges();
    let slices = mapped.slice_extents().len();

    // Analytic footprints: what a fully-resident CsrGraph would commit
    // (both directions) vs a conservative bound on the mapped run's heap
    // working state. Mapped file pages are evictable cache, not commit.
    let resident_graph_bytes = (8 * (n as u64 + 1)) + 8 * m as u64 * (1 + u64::from(cfg.weighted));
    let mapped_state_bytes = 48 * n as u64 + 32 * slices as u64;
    println!(
        "[2^{lg}] {m} edges, {} slices, container {} B in {build_secs:.1}s \
         (kernel-mapped: {}); resident {} MiB vs mapped state {} MiB",
        slices,
        summary.file_bytes,
        mapped.is_kernel_mapped(),
        resident_graph_bytes >> 20,
        mapped_state_bytes >> 20,
    );
    if cfg.budget_mb > 0 {
        let budget = cfg.budget_mb << 20;
        if mapped_state_bytes > budget {
            return Err(format!(
                "2^{lg}: mapped working state ({mapped_state_bytes} B) exceeds the \
                 {} MiB budget",
                cfg.budget_mb
            ));
        }
        println!(
            "[2^{lg}] budget {} MiB: mapped state fits; fully-resident graph {}",
            cfg.budget_mb,
            if resident_graph_bytes > budget {
                "would NOT fit"
            } else {
                "would also fit"
            },
        );
    }

    let root = pick_root(&mapped);
    if cfg.check_resident {
        let resident = mapped.to_csr();
        check_resident(
            "pagerank-delta",
            &PageRankDelta::new(0.85, PRD_THRESHOLD),
            &resident,
            &mapped,
        )
        .map_err(|e| format!("2^{lg}: {e}"))?;
        check_resident("sssp", &Sssp::new(root), &resident, &mapped)
            .map_err(|e| format!("2^{lg}: {e}"))?;
        check_resident("bfs", &Bfs::new(root), &resident, &mapped)
            .map_err(|e| format!("2^{lg}: {e}"))?;
        check_resident("cc", &ConnectedComponents::new(), &resident, &mapped)
            .map_err(|e| format!("2^{lg}: {e}"))?;
        check_resident("sswp", &Sswp::new(root), &resident, &mapped)
            .map_err(|e| format!("2^{lg}: {e}"))?;
        println!("[2^{lg}] mapped runs are bit-identical to the fully-resident path");
    }
    let max_in_degree = mapped
        .vertex_ids()
        .map(|v| mapped.in_degree(v))
        .max()
        .unwrap_or(0);
    let prd_residue_bound = PRD_THRESHOLD * f64::from(max_in_degree);
    let mut rows = vec![
        measure(
            "pagerank-delta",
            &PageRankDelta::new(0.85, PRD_THRESHOLD),
            &mapped,
            prd_residue_bound,
        ),
        measure("sssp", &Sssp::new(root), &mapped, 0.0),
        measure("bfs", &Bfs::new(root), &mapped, 0.0),
        measure("cc", &ConnectedComponents::new(), &mapped, 0.0),
        measure("sswp", &Sswp::new(root), &mapped, 0.0),
    ];
    for row in &rows {
        println!(
            "[2^{lg}] {:>14}: {:>9.0} ev/s golden, {:>9.0} ev/s turbo, \
             {:.2} B/edge, turbo |diff| {:.2e} ok: {}",
            row.label,
            row.golden_eps,
            row.turbo_eps,
            row.bytes_per_edge,
            row.turbo_diff,
            row.turbo_ok,
        );
    }
    if let Some(bad) = rows.iter().find(|r| !r.turbo_ok) {
        return Err(format!(
            "2^{lg}: turbo diverged from golden beyond tolerance on {}",
            bad.label
        ));
    }

    std::fs::remove_file(&path).ok();
    Ok(Json::obj([
        ("log2_vertices", Json::Num(f64::from(lg))),
        ("vertices", Json::Num(n as f64)),
        ("edges", Json::Num(m as f64)),
        ("weighted", Json::Bool(cfg.weighted)),
        ("container_bytes", Json::Num(summary.file_bytes as f64)),
        ("build_secs", Json::Num(build_secs)),
        ("kernel_mapped", Json::Bool(mapped.is_kernel_mapped())),
        (
            "resident_graph_bytes",
            Json::Num(resident_graph_bytes as f64),
        ),
        ("mapped_state_bytes", Json::Num(mapped_state_bytes as f64)),
        ("algos", Json::Arr(rows.drain(..).map(|r| r.json).collect())),
    ]))
}

fn main() {
    let cfg = finish(parse(Flags::from_env()), USAGE);
    let scratch;
    let dir = match &cfg.dir {
        Some(d) => d.clone(),
        None => {
            scratch = std::env::temp_dir().join(format!("gp-container-{}", std::process::id()));
            scratch.clone()
        }
    };
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: cannot create scratch dir {}: {e}", dir.display());
        std::process::exit(2);
    }

    let mut entries = Vec::new();
    for &lg in &cfg.log2 {
        match run_scale(&cfg, &dir, lg) {
            Ok(entry) => entries.push(entry),
            Err(e) => {
                eprintln!("error: {e}");
                if cfg.dir.is_none() {
                    std::fs::remove_dir_all(&dir).ok();
                }
                std::process::exit(1);
            }
        }
    }
    if cfg.dir.is_none() {
        std::fs::remove_dir_all(&dir).ok();
    }

    let doc = Json::obj([
        ("schema", Json::Str(OUTOFCORE_SCHEMA.into())),
        ("seed", Json::Num(cfg.seed as f64)),
        ("edge_factor", Json::Num(cfg.edge_factor as f64)),
        ("slice_vertices", Json::Num(cfg.slice_vertices as f64)),
        ("budget_mb", Json::Num(cfg.budget_mb as f64)),
        ("entries", Json::Arr(entries)),
    ]);
    if let Err(e) = std::fs::write(&cfg.out, doc.render() + "\n") {
        eprintln!("error: cannot write {}: {e}", cfg.out.display());
        std::process::exit(2);
    }
    println!("wrote {}", cfg.out.display());
}
