//! Figure 14: fraction of execution time the processors (left bars) and
//! generation units (right bars) spend in each state.
//!
//! Paper reference points: generation units spend close to 80% of cycles
//! reading edge memory; processors stall ~70% waiting for generators.

use gp_bench::{gp_config, prepare, print_table, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_args(std::env::args().skip(1));
    println!("Fig. 14 — unit time breakdown (scale 1/{})", cfg.scale);
    let mut rows = Vec::new();
    for app in &cfg.apps {
        for workload in &cfg.workloads {
            let prepared = prepare(*workload, *app, cfg.scale, cfg.seed);
            let out = cfg.run_accelerator(
                *app,
                &prepared,
                &gp_config(*workload, &prepared.graph, true),
            );
            let fmt = |fracs: &[(&'static str, u64, f64)]| -> Vec<String> {
                fracs
                    .iter()
                    .map(|(_, _, f)| format!("{:.0}%", f * 100.0))
                    .collect()
            };
            let proc = fmt(&out.report.proc_timeline.fractions());
            let gen = fmt(&out.report.gen_timeline.fractions());
            let mut row = vec![app.label().to_string(), workload.abbrev().to_string()];
            row.extend(proc);
            row.extend(gen);
            rows.push(row);
        }
    }
    print_table(
        "Processor states (vertex-read/process/stall/idle) | generator states (edge-read/generate/stall/idle)",
        &[
            "app", "graph", "P:vtx", "P:proc", "P:stall", "P:idle", "G:edge", "G:gen", "G:stall",
            "G:idle",
        ],
        &rows,
    );
}
