//! Minimal JSON support for machine-readable bench output.
//!
//! The workspace builds hermetically offline (no serde), so the
//! `BENCH_*.json` files the bench binaries emit — and the `bench_check`
//! schema validator reads back — go through this small, std-only value
//! type: a writer with stable formatting (two-space indent, keys in
//! insertion order, so reruns diff cleanly) and a strict recursive-descent
//! parser for the subset of JSON the harness produces (no comments, no
//! trailing commas, finite numbers only).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has no NaN/Inf; the writer rejects them).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, duplicate keys rejected by the parser.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline.
    ///
    /// # Panics
    ///
    /// Panics on non-finite numbers — JSON cannot represent them, and a
    /// bench emitting NaN is a bug worth failing loudly on.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                assert!(n.is_finite(), "JSON cannot encode {n}");
                // Integers render without a fraction so counters stay exact
                // and diff-friendly.
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    render_string(out, k);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first problem.
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii slice");
    let n: f64 = text
        .parse()
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number {text:?} at byte {start}"));
    }
    Ok(Json::Num(n))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?,
                            16,
                        )
                        .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid code point {code:#x}"))?,
                        );
                    }
                    other => return Err(format!("unknown escape \\{}", *other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut pairs: Vec<(String, Json)> = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        if pairs.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate key {key:?}"));
        }
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        pairs.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Validates a `BENCH_end_to_end.json` document: schema tag, non-empty
/// entry list, required keys, and positive throughput on every backend.
/// This is the check `bench_check` (and CI) runs — it fails loudly if the
/// bench binary ever stops emitting complete, sane numbers.
///
/// # Errors
///
/// Returns a readable description of the first violated rule.
pub fn validate_end_to_end(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string key \"schema\"")?;
    if schema != END_TO_END_SCHEMA {
        return Err(format!(
            "schema is {schema:?}, expected {END_TO_END_SCHEMA:?}"
        ));
    }
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing array key \"entries\"")?;
    if entries.is_empty() {
        return Err("\"entries\" is empty — the bench emitted no measurements".into());
    }
    for (i, entry) in entries.iter().enumerate() {
        let ctx = |msg: String| format!("entry {i}: {msg}");
        entry
            .get("app")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string key \"app\"".into()))?;
        for key in ["log2_vertices", "vertices", "edges"] {
            let v = entry
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| ctx(format!("missing numeric key {key:?}")))?;
            if v <= 0.0 {
                return Err(ctx(format!("{key} must be positive, got {v}")));
            }
        }
        for backend in ["cycle", "turbo"] {
            let leg = entry
                .get(backend)
                .ok_or_else(|| ctx(format!("missing object key {backend:?}")))?;
            for key in ["wall_secs", "events_processed", "events_per_sec"] {
                let v = leg
                    .get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ctx(format!("{backend}: missing numeric key {key:?}")))?;
                if key == "events_per_sec" && v <= 0.0 {
                    return Err(ctx(format!(
                        "{backend}.events_per_sec must be > 0, got {v}"
                    )));
                }
            }
        }
        let speedup = entry
            .get("speedup_events_per_sec")
            .and_then(Json::as_f64)
            .ok_or_else(|| ctx("missing numeric key \"speedup_events_per_sec\"".into()))?;
        if speedup <= 0.0 {
            return Err(ctx(format!("speedup must be > 0, got {speedup}")));
        }
    }
    Ok(())
}

/// Schema tag `validate_end_to_end` requires.
pub const END_TO_END_SCHEMA: &str = "gp-bench/end_to_end/v1";

/// Schema tag `validate_chaos` requires.
pub const CHAOS_SCHEMA: &str = "gp-bench/chaos/v1";

/// Schema tag `validate_serve` requires.
pub const SERVE_SCHEMA: &str = "gp-bench/serve/v2";

/// Schema tag `validate_outofcore` requires.
pub const OUTOFCORE_SCHEMA: &str = "gp-bench/outofcore/v1";

/// Validates a `BENCH_serve.json` document: schema tag, positive graph,
/// traffic, and `turbo_shards` fields, and a non-empty `runs` sweep (one
/// entry per executor count). Each run must carry a positive `executors`
/// count, positive traffic totals, a non-empty per-class latency table
/// with ordered p50 ≤ p99 ≤ p999 quantiles that accounts for every served
/// query, and the golden cross-check record (some samples verified, zero
/// failures — a serve bench that stopped checking its answers, or whose
/// answers diverged from the golden recompute, fails here).
///
/// # Errors
///
/// Returns a readable description of the first violated rule.
pub fn validate_serve(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string key \"schema\"")?;
    if schema != SERVE_SCHEMA {
        return Err(format!("schema is {schema:?}, expected {SERVE_SCHEMA:?}"));
    }
    doc.get("seed")
        .and_then(Json::as_f64)
        .ok_or("missing numeric key \"seed\"")?;
    for key in ["vertices", "edges", "tenants", "clients", "turbo_shards"] {
        let v = doc
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric key {key:?}"))?;
        if v <= 0.0 {
            return Err(format!("{key} must be positive, got {v}"));
        }
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("missing array key \"runs\"")?;
    if runs.is_empty() {
        return Err("\"runs\" is empty — the sweep ran no executor configuration".into());
    }
    for (i, run) in runs.iter().enumerate() {
        validate_serve_run(run).map_err(|e| format!("run {i}: {e}"))?;
    }
    Ok(())
}

/// Validates one executor-sweep entry of a serve document.
fn validate_serve_run(run: &Json) -> Result<(), String> {
    for key in ["executors", "queries_total", "wall_secs", "throughput_qps"] {
        let v = run
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric key {key:?}"))?;
        if v <= 0.0 {
            return Err(format!("{key} must be positive, got {v}"));
        }
    }
    for key in [
        "rejected",
        "degraded",
        "epochs_published",
        "update_batches",
        "warm_starts",
        "cold_runs",
        "fused_runs",
        "path_cache_hits",
        "path_warm_starts",
        "verified_samples",
        "verify_failures",
    ] {
        let v = run
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric key {key:?}"))?;
        if v < 0.0 {
            return Err(format!("{key} must be >= 0, got {v}"));
        }
    }
    let verified = run
        .get("verified_samples")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if verified < 1.0 {
        return Err("verified_samples is 0 — no golden cross-checks ran".into());
    }
    let failures = run
        .get("verify_failures")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if failures != 0.0 {
        return Err(format!(
            "verify_failures is {failures} — sampled answers diverged from the golden recompute"
        ));
    }

    let classes = run
        .get("classes")
        .and_then(Json::as_arr)
        .ok_or("missing array key \"classes\"")?;
    if classes.is_empty() {
        return Err("\"classes\" is empty — the bench served no query class".into());
    }
    let mut served_sum = 0.0;
    for (i, class) in classes.iter().enumerate() {
        let ctx = |msg: String| format!("class {i}: {msg}");
        class
            .get("class")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string key \"class\"".into()))?;
        let mut quantiles = [0.0f64; 3];
        for (slot, key) in ["served", "mean_us", "p50_us", "p99_us", "p999_us", "max_us"]
            .iter()
            .enumerate()
        {
            let v = class
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| ctx(format!("missing numeric key {key:?}")))?;
            if v < 0.0 {
                return Err(ctx(format!("{key} must be >= 0, got {v}")));
            }
            if *key == "served" {
                served_sum += v;
            }
            if (2..=4).contains(&slot) {
                quantiles[slot - 2] = v;
            }
        }
        if quantiles[0] > quantiles[1] || quantiles[1] > quantiles[2] {
            return Err(ctx(format!(
                "quantiles out of order: p50 {} p99 {} p999 {}",
                quantiles[0], quantiles[1], quantiles[2]
            )));
        }
    }
    let total = run
        .get("queries_total")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if served_sum != total {
        return Err(format!(
            "per-class served totals sum to {served_sum} but queries_total is {total}"
        ));
    }
    Ok(())
}

/// Validates a `BENCH_chaos.json` document: schema tag, non-empty
/// scenario list with the fault-injection campaign's invariants (every
/// scenario detected its fault and recovered to the reference — the
/// "never silently wrong" contract), per-algorithm checkpoint-overhead
/// records, and the MTTR-style summary block.
///
/// # Errors
///
/// Returns a readable description of the first violated rule.
pub fn validate_chaos(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string key \"schema\"")?;
    if schema != CHAOS_SCHEMA {
        return Err(format!("schema is {schema:?}, expected {CHAOS_SCHEMA:?}"));
    }
    doc.get("seed")
        .and_then(Json::as_f64)
        .ok_or("missing numeric key \"seed\"")?;

    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .ok_or("missing array key \"scenarios\"")?;
    if scenarios.is_empty() {
        return Err("\"scenarios\" is empty — the campaign ran nothing".into());
    }
    for (i, s) in scenarios.iter().enumerate() {
        let ctx = |msg: String| format!("scenario {i}: {msg}");
        for key in ["fault", "algo", "mode", "backend", "detector", "recovery"] {
            s.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| ctx(format!("missing string key {key:?}")))?;
        }
        for key in [
            "detected",
            "detection_latency_epochs",
            "rollbacks",
            "wasted_events",
            "checkpoint_bytes",
            "max_abs_diff",
        ] {
            let v = s
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| ctx(format!("missing numeric key {key:?}")))?;
            if v < 0.0 {
                return Err(ctx(format!("{key} must be >= 0, got {v}")));
            }
        }
        let detected = s.get("detected").and_then(Json::as_f64).unwrap_or(0.0);
        if detected < 1.0 {
            return Err(ctx("fault was never detected (detected < 1)".into()));
        }
        match s.get("result_ok") {
            Some(Json::Bool(true)) => {}
            Some(Json::Bool(false)) => {
                return Err(ctx(
                    "result_ok is false — the recovered result diverged".into()
                ))
            }
            _ => return Err(ctx("missing boolean key \"result_ok\"".into())),
        }
    }

    let overhead = doc
        .get("overhead")
        .and_then(Json::as_arr)
        .ok_or("missing array key \"overhead\"")?;
    if overhead.is_empty() {
        return Err("\"overhead\" is empty — no fault-free baseline was measured".into());
    }
    for (i, o) in overhead.iter().enumerate() {
        let ctx = |msg: String| format!("overhead {i}: {msg}");
        o.get("algo")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("missing string key \"algo\"".into()))?;
        for key in [
            "events_processed",
            "epochs",
            "checkpoints",
            "checkpoint_words",
            "checkpoint_bytes",
        ] {
            let v = o
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| ctx(format!("missing numeric key {key:?}")))?;
            if v <= 0.0 {
                return Err(ctx(format!("{key} must be positive, got {v}")));
            }
        }
        if o.get("bitexact") != Some(&Json::Bool(true)) {
            return Err(ctx(
                "bitexact is not true — the fault-free chaos run diverged".into(),
            ));
        }
    }

    let summary = doc.get("summary").ok_or("missing object key \"summary\"")?;
    for key in [
        "scenarios",
        "detections",
        "mean_detection_latency_epochs",
        "mean_rollbacks_per_recovery",
        "wasted_events_total",
        "checkpoint_bytes_total",
    ] {
        let v = summary
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("summary: missing numeric key {key:?}"))?;
        if v < 0.0 {
            return Err(format!("summary: {key} must be >= 0, got {v}"));
        }
    }
    let n = summary
        .get("scenarios")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    if n != scenarios.len() as f64 {
        return Err(format!(
            "summary.scenarios is {n} but {} scenarios are listed",
            scenarios.len()
        ));
    }
    Ok(())
}

/// Validates a `BENCH_outofcore.json` document: schema tag, positive
/// generator parameters, and a non-empty per-scale entry list. Every
/// entry must carry the container geometry (positive vertex, edge, and
/// byte counts), the analytic fully-resident footprint next to the
/// measured mapped working state, and a non-empty per-algorithm table
/// whose traffic accounting is internally consistent
/// (`bytes_moved = rowptr_bytes + edge_bytes`,
/// `bytes_per_edge = bytes_moved / edges_read`) with positive event
/// throughput on both the golden engine and turbo, and turbo answers
/// within the algorithm's tolerance of golden (`turbo_ok`). When a
/// resident-memory budget was enforced (`budget_mb > 0`), every entry's
/// mapped working state must fit under it and at least one entry's
/// resident footprint must exceed it — otherwise the run demonstrated
/// nothing about out-of-core execution.
///
/// # Errors
///
/// Returns a readable description of the first violated rule.
pub fn validate_outofcore(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing string key \"schema\"")?;
    if schema != OUTOFCORE_SCHEMA {
        return Err(format!(
            "schema is {schema:?}, expected {OUTOFCORE_SCHEMA:?}"
        ));
    }
    doc.get("seed")
        .and_then(Json::as_f64)
        .ok_or("missing numeric key \"seed\"")?;
    for key in ["edge_factor", "slice_vertices"] {
        let v = doc
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric key {key:?}"))?;
        if v <= 0.0 {
            return Err(format!("{key} must be positive, got {v}"));
        }
    }
    let budget_mb = doc
        .get("budget_mb")
        .and_then(Json::as_f64)
        .ok_or("missing numeric key \"budget_mb\"")?;
    if budget_mb < 0.0 {
        return Err(format!("budget_mb must be >= 0, got {budget_mb}"));
    }
    let budget_bytes = budget_mb * (1u64 << 20) as f64;

    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing array key \"entries\"")?;
    if entries.is_empty() {
        return Err("\"entries\" is empty — the bench measured no scale".into());
    }
    let mut resident_over_budget = false;
    for (i, entry) in entries.iter().enumerate() {
        let ctx = |msg: String| format!("entry {i}: {msg}");
        for key in [
            "log2_vertices",
            "vertices",
            "edges",
            "container_bytes",
            "resident_graph_bytes",
            "mapped_state_bytes",
        ] {
            let v = entry
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| ctx(format!("missing numeric key {key:?}")))?;
            if v <= 0.0 {
                return Err(ctx(format!("{key} must be positive, got {v}")));
            }
        }
        let build = entry
            .get("build_secs")
            .and_then(Json::as_f64)
            .ok_or_else(|| ctx("missing numeric key \"build_secs\"".into()))?;
        if build < 0.0 {
            return Err(ctx(format!("build_secs must be >= 0, got {build}")));
        }
        for key in ["weighted", "kernel_mapped"] {
            match entry.get(key) {
                Some(Json::Bool(_)) => {}
                _ => return Err(ctx(format!("missing boolean key {key:?}"))),
            }
        }
        let resident = entry
            .get("resident_graph_bytes")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let mapped_state = entry
            .get("mapped_state_bytes")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        if budget_mb > 0.0 {
            if mapped_state > budget_bytes {
                return Err(ctx(format!(
                    "mapped_state_bytes {mapped_state} exceeds the {budget_mb} MiB budget \
                     — the out-of-core path did not fit"
                )));
            }
            if resident > budget_bytes {
                resident_over_budget = true;
            }
        }
        let algos = entry
            .get("algos")
            .and_then(Json::as_arr)
            .ok_or_else(|| ctx("missing array key \"algos\"".into()))?;
        if algos.is_empty() {
            return Err(ctx("\"algos\" is empty — no algorithm was measured".into()));
        }
        for (j, a) in algos.iter().enumerate() {
            validate_outofcore_algo(a).map_err(|e| ctx(format!("algo {j}: {e}")))?;
        }
    }
    if budget_mb > 0.0 && !resident_over_budget {
        return Err(format!(
            "budget_mb is {budget_mb} but no entry's resident_graph_bytes exceeds it \
             — the budget demonstrates nothing"
        ));
    }
    Ok(())
}

/// Validates one per-algorithm row of an out-of-core entry.
fn validate_outofcore_algo(a: &Json) -> Result<(), String> {
    a.get("algo")
        .and_then(Json::as_str)
        .ok_or("missing string key \"algo\"")?;
    for key in [
        "events_processed",
        "events_per_sec",
        "edges_read",
        "bytes_moved",
        "bytes_per_edge",
        "turbo_events_per_sec",
    ] {
        let v = a
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric key {key:?}"))?;
        if v <= 0.0 {
            return Err(format!("{key} must be positive, got {v}"));
        }
    }
    for key in [
        "wall_secs",
        "rowptr_bytes",
        "edge_bytes",
        "turbo_wall_secs",
        "turbo_max_abs_diff",
    ] {
        let v = a
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric key {key:?}"))?;
        if v < 0.0 {
            return Err(format!("{key} must be >= 0, got {v}"));
        }
    }
    let num = |key: &str| a.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    let moved = num("bytes_moved");
    let parts = num("rowptr_bytes") + num("edge_bytes");
    if moved != parts {
        return Err(format!(
            "bytes_moved is {moved} but rowptr_bytes + edge_bytes is {parts}"
        ));
    }
    let per_edge = num("bytes_per_edge");
    let expect = moved / num("edges_read");
    if (per_edge - expect).abs() > 1e-9 * expect.max(1.0) {
        return Err(format!(
            "bytes_per_edge is {per_edge} but bytes_moved / edges_read is {expect}"
        ));
    }
    match a.get("turbo_ok") {
        Some(Json::Bool(true)) => Ok(()),
        Some(Json::Bool(false)) => Err(
            "turbo_ok is false — turbo over the mapping diverged from golden beyond tolerance"
                .into(),
        ),
        _ => Err("missing boolean key \"turbo_ok\"".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let doc = Json::obj([
            ("schema", Json::Str("x/y/v1".into())),
            ("count", Json::Num(42.0)),
            ("rate", Json::Num(1.5e9)),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Arr(vec![
                    Json::Num(-1.0),
                    Json::Str("quote \" backslash \\ newline \n".into()),
                    Json::Arr(vec![]),
                    Json::Obj(vec![]),
                ]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        // Integers must render without a fraction.
        assert!(text.contains("\"count\": 42,"), "{text}");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": 1,}",
            "{\"a\": 1} trailing",
            "{\"a\": 1, \"a\": 2}",
            "\"unterminated",
            "nul",
            "1e999", // overflows to inf
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    fn sample_entry() -> Json {
        Json::obj([
            ("app", Json::Str("PRD".into())),
            ("log2_vertices", Json::Num(14.0)),
            ("vertices", Json::Num(16384.0)),
            ("edges", Json::Num(65536.0)),
            (
                "cycle",
                Json::obj([
                    ("wall_secs", Json::Num(1.0)),
                    ("events_processed", Json::Num(1000.0)),
                    ("events_per_sec", Json::Num(1000.0)),
                ]),
            ),
            (
                "turbo",
                Json::obj([
                    ("wall_secs", Json::Num(0.1)),
                    ("events_processed", Json::Num(1000.0)),
                    ("events_per_sec", Json::Num(10000.0)),
                ]),
            ),
            ("speedup_events_per_sec", Json::Num(10.0)),
        ])
    }

    #[test]
    fn validator_accepts_a_complete_document() {
        let doc = Json::obj([
            ("schema", Json::Str(END_TO_END_SCHEMA.into())),
            ("entries", Json::Arr(vec![sample_entry()])),
        ]);
        validate_end_to_end(&doc).unwrap();
    }

    #[test]
    fn validator_rejects_missing_and_bad_fields() {
        let empty = Json::obj([
            ("schema", Json::Str(END_TO_END_SCHEMA.into())),
            ("entries", Json::Arr(vec![])),
        ]);
        assert!(validate_end_to_end(&empty).unwrap_err().contains("empty"));

        let wrong_schema = Json::obj([
            ("schema", Json::Str("other/v9".into())),
            ("entries", Json::Arr(vec![sample_entry()])),
        ]);
        assert!(validate_end_to_end(&wrong_schema)
            .unwrap_err()
            .contains("schema"));

        // Zero throughput must fail.
        let mut entry = sample_entry();
        if let Json::Obj(pairs) = &mut entry {
            for (k, v) in pairs.iter_mut() {
                if k == "turbo" {
                    *v = Json::obj([
                        ("wall_secs", Json::Num(0.1)),
                        ("events_processed", Json::Num(0.0)),
                        ("events_per_sec", Json::Num(0.0)),
                    ]);
                }
            }
        }
        let doc = Json::obj([
            ("schema", Json::Str(END_TO_END_SCHEMA.into())),
            ("entries", Json::Arr(vec![entry])),
        ]);
        let err = validate_end_to_end(&doc).unwrap_err();
        assert!(err.contains("events_per_sec must be > 0"), "{err}");
    }

    fn sample_chaos_doc() -> Json {
        Json::obj([
            ("schema", Json::Str(CHAOS_SCHEMA.into())),
            ("seed", Json::Num(42.0)),
            (
                "scenarios",
                Json::Arr(vec![Json::obj([
                    ("fault", Json::Str("drop-event".into())),
                    ("algo", Json::Str("sssp".into())),
                    ("mode", Json::Str("transient".into())),
                    ("backend", Json::Str("chaos-exec".into())),
                    ("detected", Json::Num(1.0)),
                    ("detector", Json::Str("event-conservation".into())),
                    ("detection_latency_epochs", Json::Num(0.0)),
                    ("recovery", Json::Str("rollback".into())),
                    ("rollbacks", Json::Num(1.0)),
                    ("wasted_events", Json::Num(12.0)),
                    ("checkpoint_bytes", Json::Num(4096.0)),
                    ("max_abs_diff", Json::Num(0.0)),
                    ("result_ok", Json::Bool(true)),
                ])]),
            ),
            (
                "overhead",
                Json::Arr(vec![Json::obj([
                    ("algo", Json::Str("sssp".into())),
                    ("events_processed", Json::Num(400.0)),
                    ("epochs", Json::Num(25.0)),
                    ("checkpoints", Json::Num(24.0)),
                    ("checkpoint_words", Json::Num(2600.0)),
                    ("checkpoint_bytes", Json::Num(21248.0)),
                    ("bitexact", Json::Bool(true)),
                ])]),
            ),
            (
                "summary",
                Json::obj([
                    ("scenarios", Json::Num(1.0)),
                    ("detections", Json::Num(1.0)),
                    ("mean_detection_latency_epochs", Json::Num(0.0)),
                    ("mean_rollbacks_per_recovery", Json::Num(1.0)),
                    ("wasted_events_total", Json::Num(12.0)),
                    ("checkpoint_bytes_total", Json::Num(4096.0)),
                ]),
            ),
        ])
    }

    #[test]
    fn chaos_validator_accepts_a_complete_document() {
        validate_chaos(&sample_chaos_doc()).unwrap();
    }

    fn sample_serve_class(name: &str, served: f64) -> Json {
        Json::obj([
            ("class", Json::Str(name.into())),
            ("served", Json::Num(served)),
            ("mean_us", Json::Num(42.0)),
            ("p50_us", Json::Num(30.0)),
            ("p99_us", Json::Num(120.0)),
            ("p999_us", Json::Num(400.0)),
            ("max_us", Json::Num(900.0)),
        ])
    }

    fn sample_serve_run(executors: f64) -> Json {
        Json::obj([
            ("executors", Json::Num(executors)),
            ("queries_total", Json::Num(1000.0)),
            ("wall_secs", Json::Num(1.5)),
            ("throughput_qps", Json::Num(666.0)),
            ("rejected", Json::Num(0.0)),
            ("degraded", Json::Num(3.0)),
            ("epochs_published", Json::Num(8.0)),
            ("update_batches", Json::Num(8.0)),
            ("warm_starts", Json::Num(7.0)),
            ("cold_runs", Json::Num(2.0)),
            ("fused_runs", Json::Num(20.0)),
            ("path_cache_hits", Json::Num(500.0)),
            ("path_warm_starts", Json::Num(12.0)),
            ("verified_samples", Json::Num(64.0)),
            ("verify_failures", Json::Num(0.0)),
            (
                "classes",
                Json::Arr(vec![
                    sample_serve_class("pagerank", 400.0),
                    sample_serve_class("sssp", 600.0),
                ]),
            ),
        ])
    }

    fn sample_serve_doc() -> Json {
        Json::obj([
            ("schema", Json::Str(SERVE_SCHEMA.into())),
            ("seed", Json::Num(42.0)),
            ("vertices", Json::Num(65536.0)),
            ("edges", Json::Num(262144.0)),
            ("tenants", Json::Num(2.0)),
            ("clients", Json::Num(4.0)),
            ("turbo_shards", Json::Num(2.0)),
            (
                "runs",
                Json::Arr(vec![sample_serve_run(1.0), sample_serve_run(4.0)]),
            ),
        ])
    }

    /// Replaces one top-level numeric key in a serve doc.
    fn with_serve_field(mut doc: Json, key: &str, value: Json) -> Json {
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == key {
                    *v = value.clone();
                }
            }
        }
        doc
    }

    /// Replaces one key in every run of a serve doc's sweep.
    fn with_run_field(mut doc: Json, key: &str, value: Json) -> Json {
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k != "runs" {
                    continue;
                }
                if let Json::Arr(runs) = v {
                    for run in runs.iter_mut() {
                        if let Json::Obj(fields) = run {
                            for (rk, rv) in fields.iter_mut() {
                                if rk == key {
                                    *rv = value.clone();
                                }
                            }
                        }
                    }
                }
            }
        }
        doc
    }

    #[test]
    fn serve_validator_accepts_a_complete_document() {
        validate_serve(&sample_serve_doc()).unwrap();
    }

    #[test]
    fn serve_validator_rejects_malformed_documents() {
        let err = validate_serve(&with_serve_field(
            sample_serve_doc(),
            "schema",
            Json::Str("other/v9".into()),
        ))
        .unwrap_err();
        assert!(err.contains("schema"), "{err}");

        let err = validate_serve(&with_serve_field(
            sample_serve_doc(),
            "turbo_shards",
            Json::Num(0.0),
        ))
        .unwrap_err();
        assert!(err.contains("turbo_shards must be positive"), "{err}");

        let err = validate_serve(&with_serve_field(
            sample_serve_doc(),
            "runs",
            Json::Arr(vec![]),
        ))
        .unwrap_err();
        assert!(err.contains("\"runs\" is empty"), "{err}");

        let err = validate_serve(&with_run_field(
            sample_serve_doc(),
            "executors",
            Json::Num(0.0),
        ))
        .unwrap_err();
        assert!(err.contains("executors must be positive"), "{err}");

        let err = validate_serve(&with_run_field(
            sample_serve_doc(),
            "verified_samples",
            Json::Num(0.0),
        ))
        .unwrap_err();
        assert!(err.contains("no golden cross-checks ran"), "{err}");

        let err = validate_serve(&with_run_field(
            sample_serve_doc(),
            "verify_failures",
            Json::Num(2.0),
        ))
        .unwrap_err();
        assert!(err.contains("diverged from the golden recompute"), "{err}");

        let err = validate_serve(&with_run_field(
            sample_serve_doc(),
            "throughput_qps",
            Json::Num(0.0),
        ))
        .unwrap_err();
        assert!(err.contains("throughput_qps must be positive"), "{err}");

        let err = validate_serve(&with_run_field(
            sample_serve_doc(),
            "classes",
            Json::Arr(vec![]),
        ))
        .unwrap_err();
        assert!(err.contains("empty"), "{err}");

        // A missing run-level counter is named, with the run index.
        let mut doc = sample_serve_doc();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "runs" {
                    if let Json::Arr(runs) = v {
                        if let Json::Obj(fields) = &mut runs[1] {
                            fields.retain(|(rk, _)| rk != "path_warm_starts");
                        }
                    }
                }
            }
        }
        let err = validate_serve(&doc).unwrap_err();
        assert!(
            err.contains("run 1") && err.contains("path_warm_starts"),
            "{err}"
        );

        // Served totals must reconcile with queries_total.
        let err = validate_serve(&with_run_field(
            sample_serve_doc(),
            "classes",
            Json::Arr(vec![sample_serve_class("pagerank", 999.0)]),
        ))
        .unwrap_err();
        assert!(err.contains("sum to 999"), "{err}");

        // Quantiles must be ordered.
        let mut class = sample_serve_class("bfs", 1000.0);
        if let Json::Obj(pairs) = &mut class {
            for (k, v) in pairs.iter_mut() {
                if k == "p99_us" {
                    *v = Json::Num(10.0);
                }
            }
        }
        let err = validate_serve(&with_run_field(
            sample_serve_doc(),
            "classes",
            Json::Arr(vec![class]),
        ))
        .unwrap_err();
        assert!(err.contains("quantiles out of order"), "{err}");

        // A missing latency key is named in the error.
        let mut class = sample_serve_class("cc", 1000.0);
        if let Json::Obj(pairs) = &mut class {
            pairs.retain(|(k, _)| k != "p999_us");
        }
        let err = validate_serve(&with_run_field(
            sample_serve_doc(),
            "classes",
            Json::Arr(vec![class]),
        ))
        .unwrap_err();
        assert!(err.contains("p999_us"), "{err}");
    }

    #[test]
    fn chaos_validator_rejects_undetected_and_diverged_scenarios() {
        let mut doc = sample_chaos_doc();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "scenarios" {
                    if let Json::Arr(items) = v {
                        if let Json::Obj(fields) = &mut items[0] {
                            for (fk, fv) in fields.iter_mut() {
                                if fk == "detected" {
                                    *fv = Json::Num(0.0);
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = validate_chaos(&doc).unwrap_err();
        assert!(err.contains("never detected"), "{err}");

        let mut doc = sample_chaos_doc();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "scenarios" {
                    if let Json::Arr(items) = v {
                        if let Json::Obj(fields) = &mut items[0] {
                            for (fk, fv) in fields.iter_mut() {
                                if fk == "result_ok" {
                                    *fv = Json::Bool(false);
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = validate_chaos(&doc).unwrap_err();
        assert!(err.contains("diverged"), "{err}");

        let wrong_schema = Json::obj([
            ("schema", Json::Str("other/v9".into())),
            ("seed", Json::Num(1.0)),
        ]);
        assert!(validate_chaos(&wrong_schema)
            .unwrap_err()
            .contains("schema"));

        let missing_summary = Json::obj([
            ("schema", Json::Str(CHAOS_SCHEMA.into())),
            ("seed", Json::Num(1.0)),
            (
                "scenarios",
                sample_chaos_doc().get("scenarios").unwrap().clone(),
            ),
            (
                "overhead",
                sample_chaos_doc().get("overhead").unwrap().clone(),
            ),
        ]);
        assert!(validate_chaos(&missing_summary)
            .unwrap_err()
            .contains("summary"));
    }

    fn sample_outofcore_algo() -> Json {
        Json::obj([
            ("algo", Json::Str("pagerank-delta".into())),
            ("wall_secs", Json::Num(2.0)),
            ("events_processed", Json::Num(4000.0)),
            ("events_per_sec", Json::Num(2000.0)),
            ("edges_read", Json::Num(8000.0)),
            ("rowptr_bytes", Json::Num(48000.0)),
            ("edge_bytes", Json::Num(32000.0)),
            ("bytes_moved", Json::Num(80000.0)),
            ("bytes_per_edge", Json::Num(10.0)),
            ("turbo_wall_secs", Json::Num(0.5)),
            ("turbo_events_per_sec", Json::Num(8000.0)),
            ("turbo_max_abs_diff", Json::Num(0.0)),
            ("turbo_ok", Json::Bool(true)),
        ])
    }

    fn sample_outofcore_doc(budget_mb: f64) -> Json {
        Json::obj([
            ("schema", Json::Str(OUTOFCORE_SCHEMA.into())),
            ("seed", Json::Num(42.0)),
            ("edge_factor", Json::Num(8.0)),
            ("slice_vertices", Json::Num(65536.0)),
            ("budget_mb", Json::Num(budget_mb)),
            (
                "entries",
                Json::Arr(vec![Json::obj([
                    ("log2_vertices", Json::Num(20.0)),
                    ("vertices", Json::Num(1048576.0)),
                    ("edges", Json::Num(8388608.0)),
                    ("weighted", Json::Bool(true)),
                    ("container_bytes", Json::Num(75497728.0)),
                    ("build_secs", Json::Num(3.5)),
                    ("kernel_mapped", Json::Bool(true)),
                    ("resident_graph_bytes", Json::Num(142606344.0)),
                    ("mapped_state_bytes", Json::Num(8912896.0)),
                    ("algos", Json::Arr(vec![sample_outofcore_algo()])),
                ])]),
            ),
        ])
    }

    fn with_algo_field(mut doc: Json, key: &str, value: Json) -> Json {
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "entries" {
                    if let Json::Arr(entries) = v {
                        if let Json::Obj(fields) = &mut entries[0] {
                            for (fk, fv) in fields.iter_mut() {
                                if fk == "algos" {
                                    if let Json::Arr(algos) = fv {
                                        if let Json::Obj(af) = &mut algos[0] {
                                            for (ak, av) in af.iter_mut() {
                                                if ak == key {
                                                    *av = value.clone();
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        doc
    }

    fn with_entry_field(mut doc: Json, key: &str, value: Json) -> Json {
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "entries" {
                    if let Json::Arr(entries) = v {
                        if let Json::Obj(fields) = &mut entries[0] {
                            for (fk, fv) in fields.iter_mut() {
                                if fk == key {
                                    *fv = value.clone();
                                }
                            }
                        }
                    }
                }
            }
        }
        doc
    }

    #[test]
    fn outofcore_validator_accepts_complete_documents() {
        // No budget, and a budget the resident footprint exceeds while the
        // mapped working state fits.
        validate_outofcore(&sample_outofcore_doc(0.0)).unwrap();
        validate_outofcore(&sample_outofcore_doc(64.0)).unwrap();
    }

    #[test]
    fn outofcore_validator_rejects_inconsistent_documents() {
        let wrong_schema = Json::obj([
            ("schema", Json::Str("other/v9".into())),
            ("seed", Json::Num(1.0)),
        ]);
        assert!(validate_outofcore(&wrong_schema)
            .unwrap_err()
            .contains("schema"));

        // Traffic accounting must balance.
        let err = validate_outofcore(&with_algo_field(
            sample_outofcore_doc(0.0),
            "bytes_moved",
            Json::Num(80001.0),
        ))
        .unwrap_err();
        assert!(err.contains("rowptr_bytes + edge_bytes"), "{err}");

        // bytes_per_edge must be bytes_moved / edges_read.
        let err = validate_outofcore(&with_algo_field(
            sample_outofcore_doc(0.0),
            "bytes_per_edge",
            Json::Num(11.0),
        ))
        .unwrap_err();
        assert!(err.contains("bytes_moved / edges_read"), "{err}");

        // A turbo divergence must fail the document.
        let err = validate_outofcore(&with_algo_field(
            sample_outofcore_doc(0.0),
            "turbo_ok",
            Json::Bool(false),
        ))
        .unwrap_err();
        assert!(err.contains("turbo_ok is false"), "{err}");

        // Under a budget, the mapped working state must fit...
        let err = validate_outofcore(&with_entry_field(
            sample_outofcore_doc(64.0),
            "mapped_state_bytes",
            Json::Num(128.0 * 1024.0 * 1024.0),
        ))
        .unwrap_err();
        assert!(err.contains("exceeds the 64 MiB budget"), "{err}");

        // ...and the budget must actually exclude the resident path.
        let err = validate_outofcore(&sample_outofcore_doc(1024.0)).unwrap_err();
        assert!(err.contains("demonstrates nothing"), "{err}");

        // An entry that measured no algorithm is a dead entry.
        let err = validate_outofcore(&with_entry_field(
            sample_outofcore_doc(0.0),
            "algos",
            Json::Arr(vec![]),
        ))
        .unwrap_err();
        assert!(err.contains("\"algos\" is empty"), "{err}");
    }
}
