//! Shared command-line plumbing for the gp-bench binaries.
//!
//! Every binary used to hand-roll the same `--flag value` walking loop —
//! the same `--help`/`-h` detection, the same "flag X needs a value" and
//! "--seed takes an integer" messages, the same exit-code convention —
//! each with its own slightly drifted copy. [`Flags`] is that loop,
//! written once: binaries pull flags with [`Flags::next_flag`], fetch
//! typed values with [`Flags::parsed`], and hand their parse result to
//! [`finish`], which implements the convention uniformly:
//!
//! * `--help` / `-h` anywhere → print the usage text to stdout, exit 0
//! * any parse error → `error: <why>` plus the usage text on stderr, exit 2
//!
//! The parse functions stay pure (`Result<Option<T>, String>`, `Ok(None)`
//! meaning help) so unit tests can exercise them without spawning a
//! process; the spawn tests in `tests/cli.rs` check the process-level
//! contract end to end.

/// Walks `--flag value`-style arguments for a bench binary.
#[derive(Debug)]
pub struct Flags {
    args: std::vec::IntoIter<String>,
    help: bool,
}

impl Flags {
    /// Wraps an argument list (without the program name).
    pub fn new(args: impl IntoIterator<Item = String>) -> Self {
        Flags {
            args: args.into_iter().collect::<Vec<_>>().into_iter(),
            help: false,
        }
    }

    /// Wraps `std::env::args()` minus the program name.
    pub fn from_env() -> Self {
        Self::new(std::env::args().skip(1))
    }

    /// The next flag, or `None` at the end of the line — or at `--help` /
    /// `-h`, which sets [`help_requested`](Flags::help_requested) so the
    /// caller can return `Ok(None)`.
    pub fn next_flag(&mut self) -> Option<String> {
        let flag = self.args.next()?;
        if matches!(flag.as_str(), "--help" | "-h") {
            self.help = true;
            return None;
        }
        Some(flag)
    }

    /// Whether `--help`/`-h` stopped the walk.
    pub fn help_requested(&self) -> bool {
        self.help
    }

    /// The value following `flag`.
    ///
    /// # Errors
    ///
    /// "flag X needs a value" when the line ends first.
    pub fn value(&mut self, flag: &str) -> Result<String, String> {
        self.args
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))
    }

    /// The value following `flag`, parsed as `T`; `what` names the
    /// expected shape in the error ("an integer", "a number", ...).
    ///
    /// # Errors
    ///
    /// A missing-value or `"{flag} takes {what}, got {value}"` message.
    pub fn parsed<T: std::str::FromStr>(&mut self, flag: &str, what: &str) -> Result<T, String> {
        let v = self.value(flag)?;
        v.parse()
            .map_err(|_| format!("{flag} takes {what}, got {v:?}"))
    }

    /// The standard unknown-flag error.
    pub fn unknown(flag: &str) -> String {
        format!("unknown flag {flag}")
    }
}

/// Applies the shared exit-code convention to a parse result: returns the
/// configuration on success, prints `usage` and exits 0 on `Ok(None)`
/// (help), prints the error plus `usage` to stderr and exits 2 on `Err`.
pub fn finish<T>(result: Result<Option<T>, String>, usage: &str) -> T {
    match result {
        Ok(Some(cfg)) => cfg,
        Ok(None) => {
            println!("{usage}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{usage}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Flags {
        Flags::new(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn walks_flags_and_values_in_order() {
        let mut f = flags(&["--seed", "7", "--out", "x.json"]);
        assert_eq!(f.next_flag().as_deref(), Some("--seed"));
        assert_eq!(f.parsed::<u64>("--seed", "an integer").unwrap(), 7);
        assert_eq!(f.next_flag().as_deref(), Some("--out"));
        assert_eq!(f.value("--out").unwrap(), "x.json");
        assert_eq!(f.next_flag(), None);
        assert!(!f.help_requested());
    }

    #[test]
    fn help_stops_the_walk() {
        let mut f = flags(&["--seed", "3", "-h", "--never-seen"]);
        assert_eq!(f.next_flag().as_deref(), Some("--seed"));
        f.value("--seed").unwrap();
        assert_eq!(f.next_flag(), None);
        assert!(f.help_requested());
    }

    #[test]
    fn errors_match_the_historical_wording() {
        let mut f = flags(&["--seed"]);
        f.next_flag();
        assert_eq!(f.value("--seed").unwrap_err(), "flag --seed needs a value");

        let mut f = flags(&["--seed", "many"]);
        f.next_flag();
        assert_eq!(
            f.parsed::<u64>("--seed", "an integer").unwrap_err(),
            "--seed takes an integer, got \"many\""
        );

        assert_eq!(Flags::unknown("--frob"), "unknown flag --frob");
    }
}
