//! # gp-baselines — the two comparison systems of the evaluation
//!
//! The paper compares GraphPulse against:
//!
//! 1. **Ligra** (Shun & Blelloch, PPoPP'13), the state-of-the-art
//!    shared-memory software framework, run on a real 12-core CPU. The
//!    [`ligra`] module is a from-scratch reimplementation of its core:
//!    `VertexSubset` frontiers with sparse/dense representations and a
//!    direction-optimizing `edge_map` (push with compare-and-swap, pull
//!    with early exit, switching at |frontier edges| > |E|/20), running on
//!    real threads. Its performance is *measured* in wall-clock time, just
//!    as the paper measured Ligra on hardware.
//! 2. **Graphicionado** (Ham et al., MICRO'16), a pipelined
//!    bulk-synchronous vertex-centric accelerator. The [`graphicionado`]
//!    module models it at transaction level on the same `gp-mem` DRAM
//!    subsystem the GraphPulse model uses, with the same generosity the
//!    paper granted it: zero-cost active-set management and unlimited
//!    on-chip temporary storage (§VI-A).
//!
//! Both run the same five applications as the accelerator, validated
//! against `gp-algorithms`' golden references.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graphicionado;
pub mod ligra;
