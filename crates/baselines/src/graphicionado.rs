//! A Graphicionado-style BSP accelerator model (Ham et al., MICRO'16).
//!
//! Graphicionado is the hardware baseline of the paper's evaluation: a
//! pipelined vertex-centric accelerator executing bulk-synchronous
//! iterations. As in the paper (§VI-A), the model is generous to it:
//!
//! * active-vertex management is free,
//! * temporary destination updates live in unlimited on-chip memory,
//! * it gets the *same* DRAM subsystem as GraphPulse (4 × DDR3-17 GB/s).
//!
//! Per iteration the model streams, through the `gp-mem` DRAM timing
//! model: the active vertices' property lines, their edge-list lines, and
//! the changed vertices' write-back lines. Compute is pipelined at one edge
//! per cycle per stream (8 streams, like GraphPulse's 8×4 generation
//! streams ÷ 4 lanes); the iteration's latency is the slower of compute and
//! memory, plus a pipeline-drain barrier. Functionally it executes the same
//! [`DeltaAlgorithm`] BSP semantics as
//! [`gp_algorithms::engine::run_bsp`], so results validate against the
//! golden references.

use gp_algorithms::DeltaAlgorithm;
use gp_graph::{CsrGraph, VertexId};
use gp_mem::{line_base, DramConfig, MemRequest, MemStats, MemorySystem, TrafficClass, LINE_BYTES};
use gp_sim::Cycle;

/// Configuration of the Graphicionado model.
#[derive(Debug, Clone)]
pub struct GraphicionadoConfig {
    /// Parallel edge-processing streams (8 in the paper's comparison).
    pub streams: usize,
    /// Accelerator clock in GHz.
    pub clock_ghz: f64,
    /// Pipeline-drain overhead charged at every iteration barrier, cycles.
    pub barrier_overhead: u64,
    /// Fraction of the shorter of (compute, memory) hidden under the
    /// longer one. Real pipelines overlap the phases imperfectly — stream
    /// imbalance and channel contention leave a tail; 1.0 would be the
    /// ideal dataflow machine.
    pub overlap_efficiency: f64,
    /// Bytes per vertex property.
    pub vertex_bytes: u32,
    /// Bytes per edge record (doubled automatically on weighted graphs).
    pub edge_bytes: u32,
    /// DRAM model configuration (identical to GraphPulse's by default).
    pub dram: DramConfig,
    /// Safety cap on iterations.
    pub max_iterations: u64,
}

impl Default for GraphicionadoConfig {
    fn default() -> Self {
        GraphicionadoConfig {
            streams: 8,
            clock_ghz: 1.0,
            barrier_overhead: 64,
            overlap_efficiency: 0.7,
            vertex_bytes: 8,
            edge_bytes: 4,
            dram: DramConfig::paper(),
            max_iterations: 1_000_000,
        }
    }
}

/// Result of a Graphicionado run.
#[derive(Debug, Clone)]
pub struct GraphicionadoOutput {
    /// Final vertex values projected to `f64`.
    pub values: Vec<f64>,
    /// BSP iterations executed.
    pub iterations: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Simulated seconds at the configured clock.
    pub seconds: f64,
    /// Edges processed across all iterations.
    pub edges_processed: u64,
    /// Off-chip traffic statistics.
    pub memory: MemStats,
}

/// Runs `algo` on `graph` under the Graphicionado model.
///
/// # Panics
///
/// Panics if the DRAM configuration is invalid or the iteration cap is hit
/// (BSP rounds of the bundled algorithms always terminate).
pub fn run<A: DeltaAlgorithm>(
    graph: &CsrGraph,
    algo: &A,
    cfg: &GraphicionadoConfig,
) -> GraphicionadoOutput {
    let n = graph.num_vertices();
    let edge_bytes = if graph.is_weighted() {
        cfg.edge_bytes * 2
    } else {
        cfg.edge_bytes
    };
    let vertex_base = 0u64;
    let edge_base = {
        let end = vertex_base + n as u64 * u64::from(cfg.vertex_bytes);
        end.div_ceil(LINE_BYTES) * LINE_BYTES
    };
    let mut mem = MemorySystem::new(cfg.dram);
    let mut now = Cycle::ZERO;

    // Functional BSP state.
    let mut values: Vec<A::Value> = (0..n)
        .map(|v| algo.init_value(VertexId::from_index(v)))
        .collect();
    let mut current: Vec<Option<A::Delta>> = vec![None; n];
    for v in graph.vertices() {
        if let Some(d) = algo.initial_delta(v, graph) {
            current[v.index()] = Some(d);
        }
    }

    let mut iterations = 0u64;
    let mut edges_processed = 0u64;

    loop {
        let active: Vec<u32> = (0..n as u32)
            .filter(|&v| current[v as usize].is_some())
            .collect();
        if active.is_empty() || iterations >= cfg.max_iterations {
            break;
        }
        iterations += 1;

        // ---- functional phase (apply + scatter into on-chip temp) ----
        let mut next: Vec<Option<A::Delta>> = vec![None; n];
        let mut active_edges = 0u64;
        let mut changed: Vec<u32> = Vec::new();
        for &u in &active {
            let uid = VertexId::new(u);
            let delta = current[u as usize].take().expect("active has delta");
            let old = values[u as usize];
            let new = algo.reduce(old, delta);
            values[u as usize] = new;
            changed.push(u);
            if let Some(basis) = algo.propagation_basis(old, new) {
                let degree = graph.out_degree(uid);
                active_edges += u64::from(degree);
                for edge in graph.out_edges(uid) {
                    if let Some(d) = algo.propagate(basis, uid, degree, edge) {
                        let slot = &mut next[edge.other.index()];
                        *slot = Some(match slot {
                            Some(existing) => algo.coalesce(*existing, d),
                            None => d,
                        });
                    }
                }
            }
        }
        edges_processed += active_edges;
        current = next;

        // ---- timing phase: stream the iteration's off-chip traffic ----
        // Reads: active vertices' property lines + their edge-list lines;
        // writes: changed vertices' property lines.
        let mut requests: Vec<MemRequest> = Vec::new();
        push_vertex_lines(
            &mut requests,
            &active,
            vertex_base,
            cfg.vertex_bytes,
            TrafficClass::VertexRead,
        );
        let mut prev_line = u64::MAX;
        for &u in &active {
            let uid = VertexId::new(u);
            let degree = graph.out_degree(uid);
            if degree == 0 {
                continue;
            }
            let start = edge_base + graph.out_edge_base(uid) as u64 * u64::from(edge_bytes);
            let bytes = u64::from(degree) * u64::from(edge_bytes);
            for line in gp_mem::prefetch::lines_covering(start, bytes) {
                if line == prev_line {
                    continue; // adjacent lists share a line
                }
                prev_line = line;
                let useful = (start.max(line) + bytes.min(LINE_BYTES)).min(line + LINE_BYTES)
                    - start.max(line);
                requests.push(
                    MemRequest::read(line, LINE_BYTES as u32, TrafficClass::EdgeRead)
                        .with_useful_bytes((useful.clamp(1, LINE_BYTES)) as u32),
                );
            }
        }
        // Apply phase: committing the on-chip temp values to the property
        // array is a read-modify-write of every updated vertex (the
        // unlimited-temp grant covers the scatter side only).
        push_vertex_lines(
            &mut requests,
            &changed,
            vertex_base,
            cfg.vertex_bytes,
            TrafficClass::VertexRead,
        );
        push_vertex_lines(
            &mut requests,
            &changed,
            vertex_base,
            cfg.vertex_bytes,
            TrafficClass::VertexWrite,
        );

        let mem_start = now;
        let mut queue = requests.into_iter().peekable();
        let mut outstanding = 0usize;
        while queue.peek().is_some() || outstanding > 0 {
            while let Some(req) = queue.peek() {
                if mem.can_accept(req.addr()) {
                    let req = queue.next().expect("peeked");
                    mem.request(now, req).expect("can_accept checked");
                    outstanding += 1;
                } else {
                    break;
                }
            }
            mem.tick(now);
            while mem.pop_completion(now).is_some() {
                outstanding -= 1;
            }
            now = now.next();
        }
        let mem_cycles = now - mem_start;

        // The pipeline overlaps compute with the memory streams, but not
        // perfectly: a (1 - overlap_efficiency) tail of the shorter phase
        // remains exposed. The iteration then pays the barrier drain.
        let compute_cycles = active_edges.div_ceil(cfg.streams.max(1) as u64);
        let eta = cfg.overlap_efficiency.clamp(0.0, 1.0);
        let longer = compute_cycles.max(mem_cycles);
        let shorter = compute_cycles.min(mem_cycles);
        let charged = longer + ((1.0 - eta) * shorter as f64) as u64;
        now += charged - mem_cycles.min(charged);
        now += cfg.barrier_overhead;
    }

    assert!(
        iterations < cfg.max_iterations,
        "graphicionado hit the iteration cap"
    );
    GraphicionadoOutput {
        values: values.into_iter().map(|v| algo.value_to_f64(v)).collect(),
        iterations,
        cycles: now.get(),
        seconds: now.get() as f64 / (cfg.clock_ghz * 1e9),
        edges_processed,
        memory: mem.stats().clone(),
    }
}

/// Queues reads/writes for the property lines of `vertices` (deduplicated
/// per line, with per-line useful-byte accounting).
fn push_vertex_lines(
    requests: &mut Vec<MemRequest>,
    vertices: &[u32],
    vertex_base: u64,
    vertex_bytes: u32,
    class: TrafficClass,
) {
    let mut i = 0;
    while i < vertices.len() {
        let line = line_base(vertex_base + u64::from(vertices[i]) * u64::from(vertex_bytes));
        let mut on_line = 0u32;
        while i < vertices.len()
            && line_base(vertex_base + u64::from(vertices[i]) * u64::from(vertex_bytes)) == line
        {
            on_line += 1;
            i += 1;
        }
        let useful = (on_line * vertex_bytes).min(LINE_BYTES as u32);
        let req = if matches!(class, TrafficClass::VertexWrite) {
            MemRequest::write(line, LINE_BYTES as u32, class)
        } else {
            MemRequest::read(line, LINE_BYTES as u32, class)
        };
        requests.push(req.with_useful_bytes(useful));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_algorithms::{max_abs_diff, reference, Bfs, ConnectedComponents, PageRankDelta, Sssp};
    use gp_graph::generators::{erdos_renyi, rmat, RmatConfig, WeightMode};

    #[test]
    fn pagerank_matches_reference() {
        let g = rmat(&RmatConfig::graph500(256, 2_000), 3);
        let out = run(
            &g,
            &PageRankDelta::new(0.85, 1e-9),
            &GraphicionadoConfig::default(),
        );
        let golden = reference::pagerank(&g, 0.85, 1e-11);
        assert!(max_abs_diff(&out.values, &golden) < 1e-4);
        assert!(out.iterations > 3);
        assert!(out.cycles > 0);
        assert!(out.memory.total_bytes() > 0);
    }

    #[test]
    fn sssp_matches_dijkstra() {
        let g = erdos_renyi(200, 1_200, WeightMode::Uniform(1.0, 8.0), 5);
        let out = run(
            &g,
            &Sssp::new(VertexId::new(0)),
            &GraphicionadoConfig::default(),
        );
        let golden = reference::sssp_dijkstra(&g, VertexId::new(0));
        assert!(max_abs_diff(&out.values, &golden) < 1e-6);
    }

    #[test]
    fn bfs_and_cc_complete() {
        let g = erdos_renyi(150, 700, WeightMode::Unweighted, 8);
        let bfs = run(
            &g,
            &Bfs::new(VertexId::new(0)),
            &GraphicionadoConfig::default(),
        );
        assert!(max_abs_diff(&bfs.values, &reference::bfs_levels(&g, VertexId::new(0))) < 1e-9);
        let cc = run(
            &g,
            &ConnectedComponents::new(),
            &GraphicionadoConfig::default(),
        );
        assert!(max_abs_diff(&cc.values, &reference::cc_labels(&g)) < 1e-9);
    }

    #[test]
    fn imperfect_overlap_costs_time() {
        let g = rmat(&RmatConfig::graph500(256, 2_000), 4);
        let ideal = run(
            &g,
            &PageRankDelta::new(0.85, 1e-6),
            &GraphicionadoConfig {
                overlap_efficiency: 1.0,
                ..Default::default()
            },
        );
        let real = run(
            &g,
            &PageRankDelta::new(0.85, 1e-6),
            &GraphicionadoConfig {
                overlap_efficiency: 0.5,
                ..Default::default()
            },
        );
        assert!(real.cycles > ideal.cycles);
        assert_eq!(real.values, ideal.values);
    }

    #[test]
    fn more_streams_do_not_slow_it_down() {
        let g = rmat(&RmatConfig::graph500(256, 2_000), 4);
        let slow = run(
            &g,
            &PageRankDelta::new(0.85, 1e-6),
            &GraphicionadoConfig {
                streams: 1,
                ..Default::default()
            },
        );
        let fast = run(
            &g,
            &PageRankDelta::new(0.85, 1e-6),
            &GraphicionadoConfig {
                streams: 16,
                ..Default::default()
            },
        );
        assert!(fast.cycles <= slow.cycles);
    }

    #[test]
    fn empty_graph_finishes_instantly() {
        let g = gp_graph::GraphBuilder::new(0).build();
        let out = run(
            &g,
            &ConnectedComponents::new(),
            &GraphicionadoConfig::default(),
        );
        assert_eq!(out.iterations, 0);
        assert!(out.values.is_empty());
    }
}
