//! The five evaluation applications on the Ligra-style framework.

use std::time::Instant;

use gp_algorithms::AdsorptionParams;
use gp_graph::{CsrGraph, VertexId};

use super::atomic::{atomic_vec, snapshot};
use super::{edge_map, AtomicF64, EdgeOp, LigraConfig, LigraOutput, VertexSubset};

// ---- BFS ----

struct BfsOp<'a> {
    levels: &'a [AtomicF64],
    next_level: f64,
}

impl EdgeOp for BfsOp<'_> {
    fn update(&self, _src: VertexId, dst: VertexId, _w: f32) -> bool {
        if self.levels[dst.index()].load().is_infinite() {
            self.levels[dst.index()].store(self.next_level);
            true
        } else {
            false
        }
    }

    fn update_atomic(&self, _src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.levels[dst.index()].compare_and_set(f64::INFINITY, self.next_level)
    }

    fn cond(&self, dst: VertexId) -> bool {
        self.levels[dst.index()].load().is_infinite()
    }
}

/// Breadth-first search from `root`; returns levels (∞ when unreached).
pub fn bfs(graph: &CsrGraph, root: VertexId, cfg: &LigraConfig) -> LigraOutput {
    let n = graph.num_vertices();
    let start = Instant::now();
    let levels = atomic_vec((0..n).map(|i| {
        if i == root.index() {
            0.0
        } else {
            f64::INFINITY
        }
    }));
    let mut frontier = VertexSubset::single(n, root);
    let mut iterations = 0;
    while !frontier.is_empty() && iterations < cfg.max_iterations {
        iterations += 1;
        let op = BfsOp {
            levels: &levels,
            next_level: iterations as f64,
        };
        frontier = edge_map(graph, &frontier, &op, cfg);
    }
    LigraOutput {
        values: snapshot(&levels),
        iterations,
        elapsed: start.elapsed(),
    }
}

// ---- SSSP (Bellman–Ford with frontiers) ----

struct SsspOp<'a> {
    dist: &'a [AtomicF64],
}

impl EdgeOp for SsspOp<'_> {
    fn update(&self, src: VertexId, dst: VertexId, w: f32) -> bool {
        let cand = self.dist[src.index()].load() + f64::from(w);
        if cand < self.dist[dst.index()].load() {
            self.dist[dst.index()].store(cand);
            true
        } else {
            false
        }
    }

    fn update_atomic(&self, src: VertexId, dst: VertexId, w: f32) -> bool {
        let cand = self.dist[src.index()].load() + f64::from(w);
        self.dist[dst.index()].fetch_min(cand)
    }
}

/// Single-source shortest paths from `root` (frontier Bellman–Ford).
pub fn sssp(graph: &CsrGraph, root: VertexId, cfg: &LigraConfig) -> LigraOutput {
    let n = graph.num_vertices();
    let start = Instant::now();
    let dist = atomic_vec((0..n).map(|i| {
        if i == root.index() {
            0.0
        } else {
            f64::INFINITY
        }
    }));
    let mut frontier = VertexSubset::single(n, root);
    let mut iterations = 0;
    while !frontier.is_empty() && iterations < cfg.max_iterations {
        iterations += 1;
        frontier = edge_map(graph, &frontier, &SsspOp { dist: &dist }, cfg);
    }
    LigraOutput {
        values: snapshot(&dist),
        iterations,
        elapsed: start.elapsed(),
    }
}

// ---- Connected Components (max-label propagation) ----

struct CcOp<'a> {
    labels: &'a [AtomicF64],
}

impl EdgeOp for CcOp<'_> {
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        let l = self.labels[src.index()].load();
        if l > self.labels[dst.index()].load() {
            self.labels[dst.index()].store(l);
            true
        } else {
            false
        }
    }

    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        let l = self.labels[src.index()].load();
        self.labels[dst.index()].fetch_max(l)
    }
}

/// Connected components by max-label propagation (label = largest reaching
/// vertex id; component labels on symmetric graphs).
pub fn cc(graph: &CsrGraph, cfg: &LigraConfig) -> LigraOutput {
    let n = graph.num_vertices();
    let start = Instant::now();
    let labels = atomic_vec((0..n).map(|i| i as f64));
    let mut frontier = VertexSubset::all(n);
    let mut iterations = 0;
    while !frontier.is_empty() && iterations < cfg.max_iterations {
        iterations += 1;
        frontier = edge_map(graph, &frontier, &CcOp { labels: &labels }, cfg);
    }
    LigraOutput {
        values: snapshot(&labels),
        iterations,
        elapsed: start.elapsed(),
    }
}

// ---- PageRank-Delta ----

struct PrDeltaOp<'a> {
    delta: &'a [f64],
    next: &'a [AtomicF64],
    alpha: f64,
    graph: &'a CsrGraph,
}

impl PrDeltaOp<'_> {
    fn contribution(&self, src: VertexId) -> f64 {
        let deg = self.graph.out_degree(src);
        debug_assert!(deg > 0, "frontier vertices have out-edges");
        self.alpha * self.delta[src.index()] / f64::from(deg)
    }
}

impl EdgeOp for PrDeltaOp<'_> {
    fn update(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        // Dense direction: single-threaded per dst, but the cell type is
        // shared with the push direction, so go through the atomic anyway.
        self.next[dst.index()].fetch_add(self.contribution(src));
        true
    }

    fn update_atomic(&self, src: VertexId, dst: VertexId, _w: f32) -> bool {
        self.next[dst.index()].fetch_add(self.contribution(src));
        true
    }
}

/// Contribution-based PageRank (PageRankDelta), the variant the paper uses
/// for both its software baseline and the accelerator (§VI-A).
pub fn pagerank_delta(graph: &CsrGraph, alpha: f64, eps: f64, cfg: &LigraConfig) -> LigraOutput {
    let n = graph.num_vertices();
    let start = Instant::now();
    let mut p: Vec<f64> = vec![1.0 - alpha; n];
    let mut delta: Vec<f64> = vec![1.0 - alpha; n];
    let next = atomic_vec(std::iter::repeat_n(0.0, n));
    let mut frontier = VertexSubset::all(n);
    let mut iterations = 0;
    while !frontier.is_empty() && iterations < cfg.max_iterations {
        iterations += 1;
        let op = PrDeltaOp {
            delta: &delta,
            next: &next,
            alpha,
            graph,
        };
        let touched = edge_map(graph, &frontier, &op, cfg);
        // Vertex phase: apply received deltas, threshold the next frontier.
        let mut active = Vec::new();
        touched.for_each(|v| {
            let d = next[v.index()].load();
            next[v.index()].store(0.0);
            p[v.index()] += d;
            delta[v.index()] = d;
            if d.abs() > eps {
                active.push(v.get());
            }
        });
        frontier = VertexSubset::from_sparse(n, active);
    }
    LigraOutput {
        values: p,
        iterations,
        elapsed: start.elapsed(),
    }
}

// ---- Adsorption ----

struct AdsorptionOp<'a> {
    delta: &'a [f64],
    next: &'a [AtomicF64],
    params: &'a AdsorptionParams,
}

impl AdsorptionOp<'_> {
    fn contribution(&self, src: VertexId, w: f32) -> f64 {
        f64::from(self.params.alpha(src)) * f64::from(w) * self.delta[src.index()]
    }
}

impl EdgeOp for AdsorptionOp<'_> {
    fn update(&self, src: VertexId, dst: VertexId, w: f32) -> bool {
        self.next[dst.index()].fetch_add(self.contribution(src, w));
        true
    }

    fn update_atomic(&self, src: VertexId, dst: VertexId, w: f32) -> bool {
        self.next[dst.index()].fetch_add(self.contribution(src, w));
        true
    }
}

/// Adsorption label diffusion. Expects a graph whose inbound weights were
/// normalized with [`gp_algorithms::normalize_inbound`].
pub fn adsorption(
    graph: &CsrGraph,
    params: &AdsorptionParams,
    eps: f64,
    cfg: &LigraConfig,
) -> LigraOutput {
    let n = graph.num_vertices();
    let start = Instant::now();
    let mut p: Vec<f64> = (0..n)
        .map(|i| {
            let v = VertexId::from_index(i);
            f64::from(params.beta(v)) * f64::from(params.injection(v))
        })
        .collect();
    let mut delta: Vec<f64> = p.clone();
    let next = atomic_vec(std::iter::repeat_n(0.0, n));
    let mut frontier = VertexSubset::all(n);
    let mut iterations = 0;
    while !frontier.is_empty() && iterations < cfg.max_iterations {
        iterations += 1;
        let op = AdsorptionOp {
            delta: &delta,
            next: &next,
            params,
        };
        let touched = edge_map(graph, &frontier, &op, cfg);
        let mut active = Vec::new();
        touched.for_each(|v| {
            let d = next[v.index()].load();
            next[v.index()].store(0.0);
            p[v.index()] += d;
            delta[v.index()] = d;
            if d.abs() > eps {
                active.push(v.get());
            }
        });
        frontier = VertexSubset::from_sparse(n, active);
    }
    LigraOutput {
        values: p,
        iterations,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_algorithms::{max_abs_diff, normalize_inbound, reference};
    use gp_graph::generators::{erdos_renyi, rmat, watts_strogatz, RmatConfig, WeightMode};

    fn cfg() -> LigraConfig {
        LigraConfig {
            threads: 3,
            ..LigraConfig::default()
        }
    }

    #[test]
    fn bfs_matches_reference() {
        let g = watts_strogatz(200, 3, 0.2, WeightMode::Unweighted, 5);
        let out = bfs(&g, VertexId::new(0), &cfg());
        let golden = reference::bfs_levels(&g, VertexId::new(0));
        assert!(max_abs_diff(&out.values, &golden) < 1e-9);
        assert!(out.iterations > 1);
    }

    #[test]
    fn sssp_matches_dijkstra() {
        let g = erdos_renyi(250, 1_500, WeightMode::Uniform(1.0, 10.0), 6);
        let out = sssp(&g, VertexId::new(0), &cfg());
        let golden = reference::sssp_dijkstra(&g, VertexId::new(0));
        assert!(max_abs_diff(&out.values, &golden) < 1e-9);
    }

    #[test]
    fn cc_matches_label_propagation() {
        let g = rmat(&RmatConfig::graph500(256, 1_500), 8);
        let out = cc(&g, &cfg());
        let golden = reference::cc_labels(&g);
        assert!(max_abs_diff(&out.values, &golden) < 1e-9);
    }

    #[test]
    fn pagerank_delta_matches_power_iteration() {
        let g = erdos_renyi(300, 2_000, WeightMode::Unweighted, 7);
        let out = pagerank_delta(&g, 0.85, 1e-10, &cfg());
        let golden = reference::pagerank(&g, 0.85, 1e-12);
        assert!(max_abs_diff(&out.values, &golden) < 1e-4);
    }

    #[test]
    fn adsorption_matches_jacobi() {
        let raw = erdos_renyi(200, 1_200, WeightMode::Uniform(0.5, 2.0), 9);
        let g = normalize_inbound(&raw);
        let params = AdsorptionParams::random(200, 17);
        let out = adsorption(&g, &params, 1e-10, &cfg());
        let golden = reference::adsorption_jacobi(&g, &params, 1e-12);
        assert!(max_abs_diff(&out.values, &golden) < 1e-4);
    }

    #[test]
    fn bfs_on_disconnected_graph_leaves_infinities() {
        let mut b = gp_graph::GraphBuilder::new(4);
        b.add_edge(VertexId::new(0), VertexId::new(1), 1.0);
        let g = b.build();
        let out = bfs(&g, VertexId::new(0), &LigraConfig::sequential());
        assert_eq!(out.values[1], 1.0);
        assert!(out.values[2].is_infinite());
    }

    #[test]
    fn single_thread_and_multi_thread_agree() {
        let g = erdos_renyi(150, 900, WeightMode::Unweighted, 3);
        let a = pagerank_delta(&g, 0.85, 1e-9, &LigraConfig::sequential());
        let b = pagerank_delta(
            &g,
            0.85,
            1e-9,
            &LigraConfig {
                threads: 4,
                ..LigraConfig::default()
            },
        );
        assert!(max_abs_diff(&a.values, &b.values) < 1e-6);
    }
}
