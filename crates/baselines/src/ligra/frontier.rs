//! Frontier representation: Ligra's `VertexSubset`.

use gp_graph::VertexId;

/// A set of active vertices, stored sparsely (id list) or densely
/// (bitvector) — the representation Ligra flips between as the frontier
/// grows and shrinks.
#[derive(Debug, Clone)]
pub struct VertexSubset {
    n: usize,
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    Sparse(Vec<u32>),
    Dense { bits: Vec<bool>, count: usize },
}

impl VertexSubset {
    /// The empty frontier over an `n`-vertex graph.
    pub fn empty(n: usize) -> Self {
        VertexSubset {
            n,
            repr: Repr::Sparse(Vec::new()),
        }
    }

    /// A singleton frontier.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn single(n: usize, v: VertexId) -> Self {
        assert!(v.index() < n, "vertex out of range");
        VertexSubset {
            n,
            repr: Repr::Sparse(vec![v.get()]),
        }
    }

    /// The full frontier (all vertices active).
    pub fn all(n: usize) -> Self {
        VertexSubset {
            n,
            repr: Repr::Dense {
                bits: vec![true; n],
                count: n,
            },
        }
    }

    /// Builds a frontier from a sparse id list (deduplicated by caller).
    pub fn from_sparse(n: usize, ids: Vec<u32>) -> Self {
        debug_assert!(ids.iter().all(|&v| (v as usize) < n));
        VertexSubset {
            n,
            repr: Repr::Sparse(ids),
        }
    }

    /// Builds a frontier from a dense bitvector.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != n`.
    pub fn from_dense(n: usize, bits: Vec<bool>) -> Self {
        assert_eq!(bits.len(), n, "bitvector length mismatch");
        let count = bits.iter().filter(|b| **b).count();
        VertexSubset {
            n,
            repr: Repr::Dense { bits, count },
        }
    }

    /// Number of active vertices.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sparse(v) => v.len(),
            Repr::Dense { count, .. } => *count,
        }
    }

    /// Whether no vertex is active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The universe size.
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Whether the current representation is dense.
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense { .. })
    }

    /// Active ids as a sorted sparse list (converts if dense).
    pub fn to_sparse(&self) -> Vec<u32> {
        match &self.repr {
            Repr::Sparse(v) => {
                let mut v = v.clone();
                v.sort_unstable();
                v
            }
            Repr::Dense { bits, .. } => bits
                .iter()
                .enumerate()
                .filter_map(|(i, b)| b.then_some(i as u32))
                .collect(),
        }
    }

    /// Membership as a dense bitvector (converts if sparse).
    pub fn to_dense(&self) -> Vec<bool> {
        match &self.repr {
            Repr::Dense { bits, .. } => bits.clone(),
            Repr::Sparse(v) => {
                let mut bits = vec![false; self.n];
                for &id in v {
                    bits[id as usize] = true;
                }
                bits
            }
        }
    }

    /// Calls `f` for every active vertex (ascending order for dense,
    /// insertion order for sparse).
    pub fn for_each(&self, mut f: impl FnMut(VertexId)) {
        match &self.repr {
            Repr::Sparse(v) => {
                for &id in v {
                    f(VertexId::new(id));
                }
            }
            Repr::Dense { bits, .. } => {
                for (i, b) in bits.iter().enumerate() {
                    if *b {
                        f(VertexId::from_index(i));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representations_round_trip() {
        let s = VertexSubset::from_sparse(10, vec![3, 7, 1]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_dense());
        let d = VertexSubset::from_dense(10, s.to_dense());
        assert!(d.is_dense());
        assert_eq!(d.len(), 3);
        assert_eq!(d.to_sparse(), vec![1, 3, 7]);
    }

    #[test]
    fn all_and_empty() {
        let all = VertexSubset::all(5);
        assert_eq!(all.len(), 5);
        assert!(VertexSubset::empty(5).is_empty());
        assert_eq!(all.universe(), 5);
    }

    #[test]
    fn for_each_visits_members() {
        let s = VertexSubset::single(4, VertexId::new(2));
        let mut seen = Vec::new();
        s.for_each(|v| seen.push(v.get()));
        assert_eq!(seen, vec![2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_checks_bounds() {
        let _ = VertexSubset::single(2, VertexId::new(5));
    }
}
