//! Direction-optimizing `edge_map`.

use std::sync::atomic::{AtomicBool, Ordering};

use gp_graph::{CsrGraph, VertexId};

use super::{LigraConfig, VertexSubset};

/// Per-edge update callbacks, in the shape of Ligra's `EDGE_F`.
///
/// `update` is the non-atomic variant used by the pull (dense) direction —
/// only one thread touches a given destination; `update_atomic` is the
/// CAS-based variant for the push (sparse) direction; `cond` filters
/// destinations and provides the pull direction's early exit.
pub trait EdgeOp: Sync {
    /// Applies `src`'s contribution to `dst`; returns `true` if `dst`
    /// should enter the next frontier. Only called single-threaded per
    /// `dst` (pull direction).
    fn update(&self, src: VertexId, dst: VertexId, weight: f32) -> bool;

    /// Atomic variant for concurrent pushes to the same `dst`.
    fn update_atomic(&self, src: VertexId, dst: VertexId, weight: f32) -> bool;

    /// Whether `dst` still wants updates; when it turns false the pull
    /// direction stops scanning `dst`'s in-edges.
    fn cond(&self, _dst: VertexId) -> bool {
        true
    }
}

/// Applies `op` over every edge leaving `frontier`, returning the next
/// frontier — switching between push (sparse) and pull (dense) when the
/// frontier's out-edge count crosses `|E| / dense_threshold_div` (§II-A's
/// direction optimization, Ligra's signature feature).
pub fn edge_map(
    graph: &CsrGraph,
    frontier: &VertexSubset,
    op: &impl EdgeOp,
    cfg: &LigraConfig,
) -> VertexSubset {
    let n = graph.num_vertices();
    if frontier.is_empty() || n == 0 {
        return VertexSubset::empty(n);
    }
    let mut frontier_edges = 0usize;
    frontier.for_each(|v| frontier_edges += graph.out_degree(v) as usize);
    let work = frontier.len() + frontier_edges;
    // div == 0 disables the dense direction entirely (useful for tests and
    // ablations); Ligra's default divisor is 20.
    let threshold = graph
        .num_edges()
        .checked_div(cfg.dense_threshold_div)
        .unwrap_or(usize::MAX);
    if work > threshold {
        edge_map_dense(graph, frontier, op, cfg)
    } else {
        edge_map_sparse(graph, frontier, op, cfg)
    }
}

/// Pull direction: scan every destination's in-edges against a dense
/// frontier, with `cond` early exit.
fn edge_map_dense(
    graph: &CsrGraph,
    frontier: &VertexSubset,
    op: &impl EdgeOp,
    cfg: &LigraConfig,
) -> VertexSubset {
    let n = graph.num_vertices();
    let in_frontier = frontier.to_dense();
    let mut bits = vec![false; n];
    let threads = cfg.threads.max(1);
    let chunk = n.div_ceil(threads);
    if chunk == 0 {
        return VertexSubset::empty(n);
    }
    std::thread::scope(|s| {
        for (t, out) in bits.chunks_mut(chunk).enumerate() {
            let in_frontier = &in_frontier;
            s.spawn(move || {
                let base = t * chunk;
                for (i, slot) in out.iter_mut().enumerate() {
                    let dst = VertexId::from_index(base + i);
                    if !op.cond(dst) {
                        continue;
                    }
                    for e in graph.in_edges(dst) {
                        if in_frontier[e.other.index()] && op.update(e.other, dst, e.weight) {
                            *slot = true;
                        }
                        if !op.cond(dst) {
                            break; // early exit (e.g. BFS: already claimed)
                        }
                    }
                }
            });
        }
    });
    VertexSubset::from_dense(n, bits)
}

/// Push direction: walk the sparse frontier's out-edges with atomic
/// updates; next-frontier insertion deduplicated with a claim bitvector.
fn edge_map_sparse(
    graph: &CsrGraph,
    frontier: &VertexSubset,
    op: &impl EdgeOp,
    cfg: &LigraConfig,
) -> VertexSubset {
    let n = graph.num_vertices();
    let active = frontier.to_sparse();
    let claimed: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let threads = cfg.threads.max(1);
    let chunk = active.len().div_ceil(threads).max(1);
    let mut next: Vec<u32> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for part in active.chunks(chunk) {
            let claimed = &claimed;
            handles.push(s.spawn(move || {
                let mut local: Vec<u32> = Vec::new();
                for &u in part {
                    let u = VertexId::new(u);
                    for e in graph.out_edges(u) {
                        if op.cond(e.other)
                            && op.update_atomic(u, e.other, e.weight)
                            && !claimed[e.other.index()].swap(true, Ordering::AcqRel)
                        {
                            local.push(e.other.get());
                        }
                    }
                }
                local
            }));
        }
        for h in handles {
            next.extend(h.join().expect("worker panicked"));
        }
    });
    VertexSubset::from_sparse(n, next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ligra::atomic::{atomic_vec, snapshot};
    use crate::ligra::AtomicF64;
    use gp_graph::generators::{erdos_renyi, WeightMode};
    use gp_graph::GraphBuilder;

    /// Min-propagation op used to exercise both directions.
    struct MinOp<'a> {
        dist: &'a [AtomicF64],
    }

    impl EdgeOp for MinOp<'_> {
        fn update(&self, src: VertexId, dst: VertexId, w: f32) -> bool {
            let cand = self.dist[src.index()].load() + f64::from(w);
            if cand < self.dist[dst.index()].load() {
                self.dist[dst.index()].store(cand);
                true
            } else {
                false
            }
        }

        fn update_atomic(&self, src: VertexId, dst: VertexId, w: f32) -> bool {
            let cand = self.dist[src.index()].load() + f64::from(w);
            self.dist[dst.index()].fetch_min(cand)
        }
    }

    #[test]
    fn push_and_pull_agree() {
        let g = erdos_renyi(120, 700, WeightMode::Uniform(1.0, 5.0), 4);
        let n = g.num_vertices();
        let run = |div: usize| {
            // div=0 disables dense (always push); div=usize::MAX makes the
            // threshold zero (always pull).
            let cfg = LigraConfig {
                threads: 3,
                dense_threshold_div: div,
                max_iterations: 10_000,
            };
            let dist = atomic_vec((0..n).map(|i| if i == 0 { 0.0 } else { f64::INFINITY }));
            let mut frontier = VertexSubset::single(n, VertexId::new(0));
            while !frontier.is_empty() {
                frontier = edge_map(&g, &frontier, &MinOp { dist: &dist }, &cfg);
            }
            snapshot(&dist)
        };
        let push = run(0);
        let pull = run(usize::MAX);
        let golden = gp_algorithms::reference::sssp_dijkstra(&g, VertexId::new(0));
        assert!(gp_algorithms::max_abs_diff(&push, &golden) < 1e-9);
        assert!(gp_algorithms::max_abs_diff(&pull, &golden) < 1e-9);
    }

    #[test]
    fn empty_frontier_maps_to_empty() {
        let g = GraphBuilder::new(3).build();
        let dist = atomic_vec([0.0, 0.0, 0.0]);
        let out = edge_map(
            &g,
            &VertexSubset::empty(3),
            &MinOp { dist: &dist },
            &LigraConfig::sequential(),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn next_frontier_has_no_duplicates() {
        // Two sources both update the same destination; it must appear once.
        let mut b = GraphBuilder::new(3);
        b.add_edge(VertexId::new(0), VertexId::new(2), 1.0);
        b.add_edge(VertexId::new(1), VertexId::new(2), 2.0);
        let g = b.build();
        let dist = atomic_vec([0.0, 0.0, f64::INFINITY]);
        let cfg = LigraConfig {
            threads: 2,
            dense_threshold_div: 0, // force push
            max_iterations: 10,
        };
        let frontier = VertexSubset::from_sparse(3, vec![0, 1]);
        let next = edge_map(&g, &frontier, &MinOp { dist: &dist }, &cfg);
        assert_eq!(next.to_sparse(), vec![2]);
    }
}
