//! A Ligra-style direction-optimizing shared-memory graph framework.
//!
//! Reimplements the core of Ligra (Shun & Blelloch, PPoPP'13), the software
//! baseline of the paper's evaluation: frontiers ([`VertexSubset`]) that
//! switch between sparse and dense representations, and a
//! direction-optimizing [`edge_map`] that pushes (with compare-and-swap)
//! from sparse frontiers and pulls (with early exit) into dense ones,
//! switching when the frontier's out-edge count exceeds `|E| / 20`.
//!
//! The five applications of the evaluation live in [`apps`]. Runs are
//! measured in wall-clock time on real threads — exactly how the paper
//! measures its software baseline.
//!
//! # Examples
//!
//! ```
//! use gp_baselines::ligra::{apps, LigraConfig};
//! use gp_graph::generators::{erdos_renyi, WeightMode};
//! use gp_graph::VertexId;
//!
//! let g = erdos_renyi(500, 3_000, WeightMode::Unweighted, 1);
//! let out = apps::bfs(&g, VertexId::new(0), &LigraConfig::default());
//! assert_eq!(out.values.len(), 500);
//! ```

pub mod apps;
mod atomic;
mod edge_map;
mod frontier;

pub use atomic::AtomicF64;
pub use edge_map::{edge_map, EdgeOp};
pub use frontier::VertexSubset;

use std::time::Duration;

/// Configuration of the software framework.
#[derive(Debug, Clone)]
pub struct LigraConfig {
    /// Worker threads (defaults to the machine's available parallelism,
    /// matching the paper's 12-core software platform when run on one).
    pub threads: usize,
    /// Direction-optimization threshold divisor: switch to dense/pull when
    /// the frontier's edge count exceeds `|E| / dense_threshold_div`
    /// (Ligra's default is 20).
    pub dense_threshold_div: usize,
    /// Safety cap on iterations.
    pub max_iterations: u64,
}

impl Default for LigraConfig {
    fn default() -> Self {
        LigraConfig {
            threads: std::thread::available_parallelism().map_or(4, |p| p.get()),
            dense_threshold_div: 20,
            max_iterations: 1_000_000,
        }
    }
}

impl LigraConfig {
    /// A single-threaded configuration (deterministic timing in tests).
    pub fn sequential() -> Self {
        LigraConfig {
            threads: 1,
            ..Self::default()
        }
    }
}

/// Result of a software-framework run.
#[derive(Debug, Clone)]
pub struct LigraOutput {
    /// Final vertex values as `f64` (∞ for unreached).
    pub values: Vec<f64>,
    /// Iterations (edge_map rounds) executed.
    pub iterations: u64,
    /// Measured wall-clock time of the compute phase.
    pub elapsed: Duration,
}
