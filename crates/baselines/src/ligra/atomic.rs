//! Lock-free `f64` cells for the push-direction CAS updates.

use std::sync::atomic::{AtomicU64, Ordering};

/// An atomic `f64` built on `AtomicU64` bit transmutation (no `unsafe`).
///
/// Provides the three update shapes Ligra-style apps need: `store`/`load`,
/// monotonic `fetch_min`/`fetch_max` that report whether they won, and an
/// accumulating `fetch_add`.
#[derive(Debug)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// Creates a cell holding `v`.
    pub fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    /// Atomically loads the value.
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    /// Atomically stores `v`.
    #[inline]
    pub fn store(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Release);
    }

    /// Atomically lowers the cell to `min(current, v)`; returns `true` if
    /// the cell changed.
    pub fn fetch_min(&self, v: f64) -> bool {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            if f64::from_bits(cur) <= v {
                return false;
            }
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Atomically raises the cell to `max(current, v)`; returns `true` if
    /// the cell changed.
    pub fn fetch_max(&self, v: f64) -> bool {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            if f64::from_bits(cur) >= v {
                return false;
            }
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Atomically adds `v`.
    pub fn fetch_add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Atomically replaces `expected` with `v`; returns `true` on success.
    /// The comparison is on bit patterns, as Ligra's BFS CAS does.
    pub fn compare_and_set(&self, expected: f64, v: f64) -> bool {
        self.0
            .compare_exchange(
                expected.to_bits(),
                v.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }
}

/// Builds a vector of atomic cells from plain values.
pub(crate) fn atomic_vec(values: impl IntoIterator<Item = f64>) -> Vec<AtomicF64> {
    values.into_iter().map(AtomicF64::new).collect()
}

/// Snapshots atomic cells back into plain values.
pub(crate) fn snapshot(cells: &[AtomicF64]) -> Vec<f64> {
    cells.iter().map(AtomicF64::load).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_report_wins() {
        let a = AtomicF64::new(5.0);
        assert!(a.fetch_min(3.0));
        assert!(!a.fetch_min(4.0));
        assert_eq!(a.load(), 3.0);
        assert!(a.fetch_max(9.0));
        assert!(!a.fetch_max(1.0));
        assert_eq!(a.load(), 9.0);
    }

    #[test]
    fn add_accumulates_under_contention() {
        let a = AtomicF64::new(0.0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        a.fetch_add(1.0);
                    }
                });
            }
        });
        assert_eq!(a.load(), 4_000.0);
    }

    #[test]
    fn cas_only_first_wins() {
        let a = AtomicF64::new(f64::INFINITY);
        assert!(a.compare_and_set(f64::INFINITY, 1.0));
        assert!(!a.compare_and_set(f64::INFINITY, 2.0));
        assert_eq!(a.load(), 1.0);
    }

    #[test]
    fn min_with_infinity_initial() {
        let a = AtomicF64::new(f64::INFINITY);
        assert!(a.fetch_min(10.0));
        assert!(a.fetch_min(2.0));
        assert_eq!(a.load(), 2.0);
    }
}
