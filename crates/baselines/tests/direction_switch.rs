//! Direction-optimization and hardware-baseline coverage:
//!
//! * `edge_map` must pick push (sparse, `update_atomic`) or pull (dense,
//!   `update`) exactly at the documented `work > |E| / dense_threshold_div`
//!   boundary, including the `0` (never dense) and `usize::MAX` (always
//!   dense) extremes — observed by counting which callback fires;
//! * the Graphicionado BSP model must agree with the golden event-driven
//!   engine (`run_sequential`) on every bundled algorithm.

use std::sync::atomic::{AtomicUsize, Ordering};

use gp_algorithms::engine::run_sequential;
use gp_algorithms::{
    max_abs_diff, normalize_inbound, Adsorption, AdsorptionParams, Bfs, ConnectedComponents,
    PageRankDelta, Sssp,
};
use gp_baselines::graphicionado::{self, GraphicionadoConfig};
use gp_baselines::ligra::{edge_map, EdgeOp, LigraConfig, VertexSubset};
use gp_graph::generators::{erdos_renyi, WeightMode};
use gp_graph::{CsrGraph, VertexId};

/// Records which direction `edge_map` chose by counting the callback each
/// direction is specified to use.
#[derive(Default)]
struct CountingOp {
    /// `update` calls — only the dense (pull) direction makes them.
    pulls: AtomicUsize,
    /// `update_atomic` calls — only the sparse (push) direction makes them.
    pushes: AtomicUsize,
}

impl EdgeOp for CountingOp {
    fn update(&self, _src: VertexId, _dst: VertexId, _w: f32) -> bool {
        self.pulls.fetch_add(1, Ordering::Relaxed);
        false
    }

    fn update_atomic(&self, _src: VertexId, _dst: VertexId, _w: f32) -> bool {
        self.pushes.fetch_add(1, Ordering::Relaxed);
        false
    }
}

fn cfg(div: usize) -> LigraConfig {
    LigraConfig {
        threads: 2,
        dense_threshold_div: div,
        max_iterations: 100,
    }
}

/// A graph and a frontier whose `work = |frontier| + frontier out-edges`
/// is known, for probing the switch boundary.
fn fixture() -> (CsrGraph, VertexSubset, usize) {
    let g = erdos_renyi(40, 200, WeightMode::Unweighted, 9);
    let frontier = VertexSubset::from_sparse(g.num_vertices(), vec![0, 1, 2, 3]);
    let mut frontier_edges = 0usize;
    frontier.for_each(|v| frontier_edges += g.out_degree(v) as usize);
    (g, frontier, 4 + frontier_edges)
}

#[test]
fn div_zero_never_goes_dense() {
    let (g, frontier, _) = fixture();
    let op = CountingOp::default();
    edge_map(&g, &frontier, &op, &cfg(0));
    assert!(op.pushes.load(Ordering::Relaxed) > 0);
    assert_eq!(op.pulls.load(Ordering::Relaxed), 0);
}

#[test]
fn div_max_always_goes_dense() {
    let (g, frontier, _) = fixture();
    let op = CountingOp::default();
    edge_map(&g, &frontier, &op, &cfg(usize::MAX));
    assert!(op.pulls.load(Ordering::Relaxed) > 0);
    assert_eq!(op.pushes.load(Ordering::Relaxed), 0);
}

#[test]
fn switch_happens_exactly_at_the_work_threshold() {
    let (g, frontier, work) = fixture();
    let m = g.num_edges();
    assert!(work > 1 && work < m, "fixture must straddle the boundary");
    // Sweep every divisor: dense iff work > |E| / div (integer division),
    // mirroring the contract documented on `edge_map`.
    for div in 1..=m {
        let expect_dense = work > m / div;
        let op = CountingOp::default();
        edge_map(&g, &frontier, &op, &cfg(div));
        let pulls = op.pulls.load(Ordering::Relaxed);
        let pushes = op.pushes.load(Ordering::Relaxed);
        if expect_dense {
            assert!(pulls > 0 && pushes == 0, "div {div}: expected pull");
        } else {
            assert!(pushes > 0 && pulls == 0, "div {div}: expected push");
        }
    }
}

#[test]
fn graphicionado_matches_golden_engine_on_every_algorithm() {
    let cfg = GraphicionadoConfig::default();
    let root = VertexId::new(0);

    let unweighted = erdos_renyi(120, 600, WeightMode::Unweighted, 21);
    for (label, algo) in [
        ("bfs", &Bfs::new(root) as &dyn DynCheck),
        ("cc", &ConnectedComponents::new()),
        ("pr", &PageRankDelta::new(0.85, 1e-9)),
    ] {
        algo.check(&unweighted, &cfg, label);
    }

    let weighted = erdos_renyi(120, 600, WeightMode::Uniform(1.0, 6.0), 22);
    (&Sssp::new(root) as &dyn DynCheck).check(&weighted, &cfg, "sssp");

    let ads_graph = normalize_inbound(&erdos_renyi(90, 450, WeightMode::Uniform(0.5, 2.0), 23));
    let params = AdsorptionParams::random(ads_graph.num_vertices(), 0xAD5);
    (&Adsorption::new(params, 1e-9) as &dyn DynCheck).check(&ads_graph, &cfg, "ads");
}

/// Object-safe wrapper so one loop can cover algorithms of different
/// `Value`/`Delta` types.
trait DynCheck {
    fn check(&self, g: &CsrGraph, cfg: &GraphicionadoConfig, label: &str);
}

impl<A: gp_algorithms::DeltaAlgorithm> DynCheck for A {
    fn check(&self, g: &CsrGraph, cfg: &GraphicionadoConfig, label: &str) {
        let hw = graphicionado::run(g, self, cfg);
        let golden = run_sequential(self, g);
        let diff = max_abs_diff(&hw.values, &golden.values);
        // Accumulative algorithms stop at their threshold from different
        // directions; monotone ones agree exactly.
        assert!(diff < 1e-4, "{label}: max |diff| {diff:e}");
        assert!(hw.cycles > 0 && hw.memory.total_bytes() > 0, "{label}");
    }
}
