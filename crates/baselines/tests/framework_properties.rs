//! Property tests of the software baseline: results are independent of the
//! thread count and of the push/pull direction decision, and always match
//! the golden references.
//!
//! Randomized cases are driven by the workspace's deterministic
//! [`gp_graph::rng::StdRng`], so every run exercises the same inputs.

use gp_algorithms::{max_abs_diff, reference};
use gp_baselines::ligra::{apps, LigraConfig};
use gp_graph::generators::{erdos_renyi, WeightMode};
use gp_graph::rng::{Rng, StdRng};
use gp_graph::{CsrGraph, VertexId};

fn random_graph(rng: &mut StdRng) -> CsrGraph {
    let n = rng.gen_range(2..80usize);
    let seed = rng.next_u64();
    erdos_renyi(n, n * 4, WeightMode::Uniform(1.0, 7.0), seed)
}

fn random_div(rng: &mut StdRng) -> usize {
    [0usize, 20, usize::MAX][rng.gen_range(0..3usize)]
}

fn cfg(threads: usize, div: usize) -> LigraConfig {
    LigraConfig {
        threads,
        dense_threshold_div: div,
        max_iterations: 100_000,
    }
}

#[test]
fn bfs_invariant_to_threads_and_direction() {
    let mut rng = StdRng::seed_from_u64(0xF1);
    for _ in 0..16 {
        let g = random_graph(&mut rng);
        let threads = rng.gen_range(1..5usize);
        let div = random_div(&mut rng);
        let out = apps::bfs(&g, VertexId::new(0), &cfg(threads, div));
        let golden = reference::bfs_levels(&g, VertexId::new(0));
        assert!(max_abs_diff(&out.values, &golden) < 1e-9);
    }
}

#[test]
fn sssp_invariant_to_threads_and_direction() {
    let mut rng = StdRng::seed_from_u64(0xF2);
    for _ in 0..16 {
        let g = random_graph(&mut rng);
        let threads = rng.gen_range(1..5usize);
        let div = random_div(&mut rng);
        let out = apps::sssp(&g, VertexId::new(0), &cfg(threads, div));
        let golden = reference::sssp_dijkstra(&g, VertexId::new(0));
        assert!(max_abs_diff(&out.values, &golden) < 1e-9);
    }
}

#[test]
fn cc_invariant_to_threads() {
    let mut rng = StdRng::seed_from_u64(0xF3);
    for _ in 0..16 {
        let g = random_graph(&mut rng);
        let threads = rng.gen_range(1..5usize);
        let out = apps::cc(&g, &cfg(threads, 20));
        let golden = reference::cc_labels(&g);
        assert!(max_abs_diff(&out.values, &golden) < 1e-9);
    }
}

#[test]
fn pagerank_deterministic_modulo_float_reassociation() {
    let mut rng = StdRng::seed_from_u64(0xF4);
    for _ in 0..16 {
        let g = random_graph(&mut rng);
        let threads = rng.gen_range(1..5usize);
        let a = apps::pagerank_delta(&g, 0.85, 1e-10, &cfg(threads, 20));
        let golden = reference::pagerank(&g, 0.85, 1e-12);
        assert!(max_abs_diff(&a.values, &golden) < 1e-4);
    }
}
