//! Property tests of the software baseline: results are independent of the
//! thread count and of the push/pull direction decision, and always match
//! the golden references.

use proptest::prelude::*;

use gp_algorithms::{max_abs_diff, reference};
use gp_baselines::ligra::{apps, LigraConfig};
use gp_graph::generators::{erdos_renyi, WeightMode};
use gp_graph::{CsrGraph, VertexId};

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..80, 0u64..u64::MAX)
        .prop_map(|(n, seed)| erdos_renyi(n, n * 4, WeightMode::Uniform(1.0, 7.0), seed))
}

fn cfg(threads: usize, div: usize) -> LigraConfig {
    LigraConfig {
        threads,
        dense_threshold_div: div,
        max_iterations: 100_000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn bfs_invariant_to_threads_and_direction(
        g in arb_graph(),
        threads in 1usize..5,
        div in prop_oneof![Just(0usize), Just(20), Just(usize::MAX)],
    ) {
        let out = apps::bfs(&g, VertexId::new(0), &cfg(threads, div));
        let golden = reference::bfs_levels(&g, VertexId::new(0));
        prop_assert!(max_abs_diff(&out.values, &golden) < 1e-9);
    }

    #[test]
    fn sssp_invariant_to_threads_and_direction(
        g in arb_graph(),
        threads in 1usize..5,
        div in prop_oneof![Just(0usize), Just(20), Just(usize::MAX)],
    ) {
        let out = apps::sssp(&g, VertexId::new(0), &cfg(threads, div));
        let golden = reference::sssp_dijkstra(&g, VertexId::new(0));
        prop_assert!(max_abs_diff(&out.values, &golden) < 1e-9);
    }

    #[test]
    fn cc_invariant_to_threads(g in arb_graph(), threads in 1usize..5) {
        let out = apps::cc(&g, &cfg(threads, 20));
        let golden = reference::cc_labels(&g);
        prop_assert!(max_abs_diff(&out.values, &golden) < 1e-9);
    }

    #[test]
    fn pagerank_deterministic_modulo_float_reassociation(
        g in arb_graph(),
        threads in 1usize..5,
    ) {
        let a = apps::pagerank_delta(&g, 0.85, 1e-10, &cfg(threads, 20));
        let golden = reference::pagerank(&g, 0.85, 1e-12);
        prop_assert!(max_abs_diff(&a.values, &golden) < 1e-4);
    }
}
