//! Property tests for the delta-accumulative contract (§II-B of the paper):
//! the *reordering* property (commutative/associative reduce, distributive
//! propagate) and the *simplification* property (identity deltas are no-ops),
//! plus order-independence of the whole execution.
//!
//! Randomized cases are driven by the workspace's deterministic
//! [`gp_graph::rng::StdRng`], so every run exercises the same inputs.

use gp_algorithms::engine::run_sequential;
use gp_algorithms::{
    max_abs_diff, normalize_inbound, reference, Adsorption, AdsorptionParams, Bfs,
    ConnectedComponents, DeltaAlgorithm, PageRankDelta, Sssp,
};
use gp_graph::generators::{erdos_renyi, WeightMode};
use gp_graph::rng::{Rng, StdRng};
use gp_graph::{CsrGraph, EdgeRef, GraphBuilder, VertexId};

fn random_graph(rng: &mut StdRng) -> CsrGraph {
    // 2..40 vertices, up to 4n random edges.
    let n = rng.gen_range(2..40usize);
    let seed = rng.next_u64();
    erdos_renyi(n, n * 4, WeightMode::Uniform(1.0, 8.0), seed)
}

fn approx(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-9 * scale
}

// ---- reordering property: coalesce is commutative + associative ----

#[test]
fn pagerank_coalesce_commutative_associative() {
    let mut rng = StdRng::seed_from_u64(0xA1);
    let pr = PageRankDelta::new(0.85, 1e-4);
    for _ in 0..256 {
        let (a, b, c) = (
            rng.gen_range(-1e3..1e3f64),
            rng.gen_range(-1e3..1e3f64),
            rng.gen_range(-1e3..1e3f64),
        );
        assert!(approx(pr.coalesce(a, b), pr.coalesce(b, a)));
        assert!(approx(
            pr.coalesce(pr.coalesce(a, b), c),
            pr.coalesce(a, pr.coalesce(b, c))
        ));
    }
}

#[test]
fn sssp_coalesce_commutative_associative() {
    let mut rng = StdRng::seed_from_u64(0xA2);
    let s = Sssp::new(VertexId::new(0));
    for _ in 0..256 {
        let (a, b, c) = (
            rng.gen_range(0.0..1e6f64),
            rng.gen_range(0.0..1e6f64),
            rng.gen_range(0.0..1e6f64),
        );
        assert_eq!(s.coalesce(a, b), s.coalesce(b, a));
        assert_eq!(
            s.coalesce(s.coalesce(a, b), c),
            s.coalesce(a, s.coalesce(b, c))
        );
    }
}

#[test]
fn bfs_coalesce_commutative_associative() {
    let mut rng = StdRng::seed_from_u64(0xA3);
    let s = Bfs::new(VertexId::new(0));
    for _ in 0..256 {
        let (a, b, c) = (
            rng.next_u64() as u32,
            rng.next_u64() as u32,
            rng.next_u64() as u32,
        );
        assert_eq!(s.coalesce(a, b), s.coalesce(b, a));
        assert_eq!(
            s.coalesce(s.coalesce(a, b), c),
            s.coalesce(a, s.coalesce(b, c))
        );
    }
}

#[test]
fn cc_coalesce_commutative_associative() {
    let mut rng = StdRng::seed_from_u64(0xA4);
    let s = ConnectedComponents::new();
    for _ in 0..256 {
        let (a, b, c) = (
            rng.next_u64() as i64,
            rng.next_u64() as i64,
            rng.next_u64() as i64,
        );
        assert_eq!(s.coalesce(a, b), s.coalesce(b, a));
        assert_eq!(
            s.coalesce(s.coalesce(a, b), c),
            s.coalesce(a, s.coalesce(b, c))
        );
    }
}

// Propagate distributes over coalesce: g(x ⊕ y) == g(x) ⊕ g(y).
#[test]
fn pagerank_propagate_distributes() {
    let mut rng = StdRng::seed_from_u64(0xA5);
    let pr = PageRankDelta::new(0.85, 1e-4);
    for _ in 0..256 {
        let x = rng.gen_range(-1e3..1e3f64);
        let y = rng.gen_range(-1e3..1e3f64);
        let deg = rng.gen_range(1..64u32);
        let e = EdgeRef {
            other: VertexId::new(1),
            weight: 1.0,
        };
        let lhs = pr
            .propagate(pr.coalesce(x, y), VertexId::new(0), deg, e)
            .unwrap();
        let rhs = pr.coalesce(
            pr.propagate(x, VertexId::new(0), deg, e).unwrap(),
            pr.propagate(y, VertexId::new(0), deg, e).unwrap(),
        );
        assert!(approx(lhs, rhs));
    }
}

#[test]
fn sssp_propagate_distributes() {
    let mut rng = StdRng::seed_from_u64(0xA6);
    let s = Sssp::new(VertexId::new(0));
    for _ in 0..256 {
        let x = rng.gen_range(0.0..1e6f64);
        let y = rng.gen_range(0.0..1e6f64);
        let w = rng.gen_range(0.0f32..100.0);
        let e = EdgeRef {
            other: VertexId::new(1),
            weight: w,
        };
        let lhs = s
            .propagate(s.coalesce(x, y), VertexId::new(0), 1, e)
            .unwrap();
        let rhs = s.coalesce(
            s.propagate(x, VertexId::new(0), 1, e).unwrap(),
            s.propagate(y, VertexId::new(0), 1, e).unwrap(),
        );
        assert!(approx(lhs, rhs));
    }
}

// ---- simplification property: identity deltas are no-ops ----

#[test]
fn identities_are_noops() {
    let mut rng = StdRng::seed_from_u64(0xA7);
    for _ in 0..256 {
        let v = rng.gen_range(-1e6..1e6f64);
        let lvl = rng.next_u64() as u32;
        // CC's identity (-1, per Table II) is an identity on the reachable
        // state space: init value -1 and vertex-id labels >= 0.
        let label = (rng.next_u64() >> 1) as i64 - 1;
        let pr = PageRankDelta::new(0.85, 1e-4);
        assert_eq!(pr.reduce(v, pr.identity_delta()), v);
        let s = Sssp::new(VertexId::new(0));
        assert_eq!(s.reduce(v.abs(), s.identity_delta()), v.abs());
        let b = Bfs::new(VertexId::new(0));
        assert_eq!(b.reduce(lvl, b.identity_delta()), lvl);
        let c = ConnectedComponents::new();
        assert_eq!(c.reduce(label, c.identity_delta()), label);
    }
}

// ---- whole-execution equivalences on random graphs ----

#[test]
fn sequential_matches_dijkstra() {
    let mut rng = StdRng::seed_from_u64(0xB1);
    for _ in 0..24 {
        let g = random_graph(&mut rng);
        let root = VertexId::new(0);
        let out = run_sequential(&Sssp::new(root), &g);
        let golden = reference::sssp_dijkstra(&g, root);
        assert!(max_abs_diff(&out.values, &golden) < 1e-6);
    }
}

#[test]
fn sequential_matches_bfs() {
    let mut rng = StdRng::seed_from_u64(0xB2);
    for _ in 0..24 {
        let g = random_graph(&mut rng);
        let root = VertexId::new(1);
        let out = run_sequential(&Bfs::new(root), &g);
        let golden = reference::bfs_levels(&g, root);
        assert!(max_abs_diff(&out.values, &golden) < 1e-9);
    }
}

#[test]
fn sequential_matches_label_propagation() {
    let mut rng = StdRng::seed_from_u64(0xB3);
    for _ in 0..24 {
        let g = random_graph(&mut rng);
        let out = run_sequential(&ConnectedComponents::new(), &g);
        let golden = reference::cc_labels(&g);
        assert!(max_abs_diff(&out.values, &golden) < 1e-9);
    }
}

#[test]
fn sequential_matches_power_iteration() {
    let mut rng = StdRng::seed_from_u64(0xB4);
    for _ in 0..24 {
        let g = random_graph(&mut rng);
        let out = run_sequential(&PageRankDelta::new(0.85, 1e-11), &g);
        let golden = reference::pagerank(&g, 0.85, 1e-13);
        assert!(max_abs_diff(&out.values, &golden) < 1e-4);
    }
}

#[test]
fn sequential_matches_jacobi_adsorption() {
    let mut rng = StdRng::seed_from_u64(0xB5);
    for _ in 0..24 {
        let g = random_graph(&mut rng);
        let seed = rng.next_u64();
        let g = normalize_inbound(&g);
        let params = AdsorptionParams::random(g.num_vertices(), seed);
        let out = run_sequential(&Adsorption::new(params.clone(), 1e-11), &g);
        let golden = reference::adsorption_jacobi(&g, &params, 1e-13);
        assert!(max_abs_diff(&out.values, &golden) < 1e-4);
    }
}

// Event delivery order must not change results (asynchrony safety):
// the FIFO-async executor and the barrier-synchronous executor apply
// deltas in very different orders yet must reach the same fixpoint.
#[test]
fn cc_fixpoint_is_order_independent() {
    let mut rng = StdRng::seed_from_u64(0xB6);
    for _ in 0..24 {
        let n = rng.gen_range(3..30usize);
        let seed = rng.next_u64();
        let g = erdos_renyi(n, n * 3, WeightMode::Unweighted, seed);
        let asynchronous = run_sequential(&ConnectedComponents::new(), &g);
        let (synchronous, _) =
            gp_algorithms::engine::run_bsp(&ConnectedComponents::new(), &g, 10_000);
        assert_eq!(asynchronous.values, synchronous.values);
    }
}

#[test]
fn sssp_on_disconnected_graph_keeps_infinity() {
    let mut b = GraphBuilder::new(4);
    b.add_edge(VertexId::new(0), VertexId::new(1), 2.0);
    let g = b.build();
    let out = run_sequential(&Sssp::new(VertexId::new(0)), &g);
    assert_eq!(out.values[1], 2.0);
    assert!(out.values[2].is_infinite());
    assert!(out.values[3].is_infinite());
}
