//! Single-Source Shortest Paths in delta form.

use gp_graph::{EdgeRef, GraphView, VertexId};

use crate::DeltaAlgorithm;

/// SSSP (Table II): `propagate(δ) = E_ij + δ`, `reduce = min`,
/// `V_init = ∞`, `ΔV_init = 0` at the root and nothing elsewhere.
///
/// Asynchronous label-correcting shortest paths: a vertex re-propagates
/// whenever its tentative distance improves.
///
/// # Examples
///
/// ```
/// use gp_algorithms::{engine, Sssp};
/// use gp_graph::{GraphBuilder, VertexId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(VertexId::new(0), VertexId::new(1), 2.0);
/// b.add_edge(VertexId::new(1), VertexId::new(2), 3.0);
/// b.weighted(true);
/// let g = b.build();
/// let out = engine::run_sequential(&Sssp::new(VertexId::new(0)), &g);
/// assert_eq!(out.values, vec![0.0, 2.0, 5.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sssp {
    root: VertexId,
}

impl Sssp {
    /// SSSP from `root`.
    pub fn new(root: VertexId) -> Self {
        Sssp { root }
    }

    /// The source vertex.
    pub fn root(&self) -> VertexId {
        self.root
    }
}

impl DeltaAlgorithm for Sssp {
    type Value = f64;
    type Delta = f64;

    fn name(&self) -> &'static str {
        "sssp"
    }

    fn needs_weights(&self) -> bool {
        true
    }

    fn init_value(&self, _v: VertexId) -> f64 {
        f64::INFINITY
    }

    fn identity_delta(&self) -> f64 {
        f64::INFINITY
    }

    fn initial_delta(&self, v: VertexId, _graph: &dyn GraphView) -> Option<f64> {
        (v == self.root).then_some(0.0)
    }

    fn reduce(&self, value: f64, delta: f64) -> f64 {
        value.min(delta)
    }

    fn coalesce(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }

    fn propagation_basis(&self, old: f64, new: f64) -> Option<f64> {
        (new < old).then_some(new)
    }

    fn propagate(
        &self,
        basis: f64,
        _src: VertexId,
        _src_out_degree: u32,
        edge: EdgeRef,
    ) -> Option<f64> {
        Some(basis + edge.weight as f64)
    }

    fn progress(&self, old: f64, new: f64) -> f64 {
        if old.is_infinite() {
            1.0
        } else {
            (old - new).max(0.0)
        }
    }

    /// Smaller tentative distances first — Dijkstra's order, which settles
    /// vertices near the root before their longer alternatives arrive.
    fn urgency(&self, delta: f64) -> f64 {
        -delta
    }

    fn value_to_f64(&self, v: f64) -> f64 {
        v
    }
}

impl crate::IncrementalAlgorithm for Sssp {
    /// Positive weights make propagation strictly worse-making along any
    /// cycle, so the per-vertex support test is sound for deletions.
    fn strategy(&self) -> crate::SeedingStrategy {
        crate::SeedingStrategy::Monotone(crate::Invalidation::SupportTest)
    }

    fn basis_of(&self, value: f64) -> f64 {
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::CsrGraph;

    #[test]
    fn table_ii_semantics() {
        let s = Sssp::new(VertexId::new(3));
        assert_eq!(s.init_value(VertexId::new(0)), f64::INFINITY);
        assert_eq!(s.initial_delta(VertexId::new(3), &tiny()), Some(0.0));
        assert_eq!(s.initial_delta(VertexId::new(0), &tiny()), None);
        assert_eq!(s.reduce(5.0, 3.0), 3.0);
        assert_eq!(s.coalesce(7.0, 2.0), 2.0);
        let e = EdgeRef {
            other: VertexId::new(1),
            weight: 1.5,
        };
        assert_eq!(s.propagate(2.0, VertexId::new(0), 9, e), Some(3.5));
    }

    fn tiny() -> CsrGraph {
        let mut b = gp_graph::GraphBuilder::new(4);
        b.add_edge(VertexId::new(0), VertexId::new(1), 1.0);
        b.build()
    }

    #[test]
    fn only_improvements_propagate() {
        let s = Sssp::new(VertexId::new(0));
        assert_eq!(s.propagation_basis(10.0, 4.0), Some(4.0));
        assert_eq!(s.propagation_basis(4.0, 4.0), None);
        assert_eq!(s.propagation_basis(4.0, 9.0), None);
    }

    #[test]
    fn identity_is_noop() {
        let s = Sssp::new(VertexId::new(0));
        assert_eq!(s.reduce(3.0, s.identity_delta()), 3.0);
        assert_eq!(s.reduce(f64::INFINITY, s.identity_delta()), f64::INFINITY);
    }
}
