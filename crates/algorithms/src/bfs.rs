//! Breadth-First Search (level computation) in delta form.

use gp_graph::{EdgeRef, GraphView, VertexId};

use crate::DeltaAlgorithm;

/// The level assigned to unreachable vertices.
pub const UNREACHED: u32 = u32::MAX;

/// BFS levels: `propagate(δ) = δ + 1`, `reduce = min`, `V_init = ∞`,
/// `ΔV_init = 0` at the root.
///
/// Table II lists `propagate(δ) = 0` (pure reachability); we compute levels
/// instead — the standard accelerator-paper BFS, which subsumes
/// reachability and is verifiable against a golden BFS (see `DESIGN.md`
/// §3, substitution 5).
///
/// # Examples
///
/// ```
/// use gp_algorithms::{engine, Bfs};
/// use gp_graph::{GraphBuilder, VertexId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(VertexId::new(0), VertexId::new(1), 1.0);
/// b.add_edge(VertexId::new(1), VertexId::new(2), 1.0);
/// let g = b.build();
/// let out = engine::run_sequential(&Bfs::new(VertexId::new(0)), &g);
/// assert_eq!(out.values, vec![0.0, 1.0, 2.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bfs {
    root: VertexId,
}

impl Bfs {
    /// BFS from `root`.
    pub fn new(root: VertexId) -> Self {
        Bfs { root }
    }

    /// The source vertex.
    pub fn root(&self) -> VertexId {
        self.root
    }
}

impl DeltaAlgorithm for Bfs {
    type Value = u32;
    type Delta = u32;

    fn name(&self) -> &'static str {
        "bfs"
    }

    fn init_value(&self, _v: VertexId) -> u32 {
        UNREACHED
    }

    fn identity_delta(&self) -> u32 {
        UNREACHED
    }

    fn initial_delta(&self, v: VertexId, _graph: &dyn GraphView) -> Option<u32> {
        (v == self.root).then_some(0)
    }

    fn reduce(&self, value: u32, delta: u32) -> u32 {
        value.min(delta)
    }

    fn coalesce(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn propagation_basis(&self, old: u32, new: u32) -> Option<u32> {
        (new < old).then_some(new)
    }

    fn propagate(
        &self,
        basis: u32,
        _src: VertexId,
        _src_out_degree: u32,
        _edge: EdgeRef,
    ) -> Option<u32> {
        Some(basis.saturating_add(1))
    }

    fn progress(&self, old: u32, _new: u32) -> f64 {
        if old == UNREACHED {
            1.0
        } else {
            0.0
        }
    }

    /// Shallower frontiers first: breadth order, which settles each level
    /// before deeper tentative depths can circulate.
    fn urgency(&self, delta: u32) -> f64 {
        -f64::from(delta)
    }

    fn value_to_f64(&self, v: u32) -> f64 {
        if v == UNREACHED {
            f64::INFINITY
        } else {
            v as f64
        }
    }
}

impl crate::IncrementalAlgorithm for Bfs {
    /// Hop counts strictly grow along edges, so the support test is sound
    /// (a cycle cannot hold its own level up).
    fn strategy(&self) -> crate::SeedingStrategy {
        crate::SeedingStrategy::Monotone(crate::Invalidation::SupportTest)
    }

    fn basis_of(&self, value: u32) -> u32 {
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_semantics() {
        let b = Bfs::new(VertexId::new(0));
        assert_eq!(b.reduce(5, 2), 2);
        assert_eq!(b.coalesce(3, 7), 3);
        let e = EdgeRef {
            other: VertexId::new(1),
            weight: 1.0,
        };
        assert_eq!(b.propagate(4, VertexId::new(0), 1, e), Some(5));
        assert_eq!(b.propagation_basis(UNREACHED, 0), Some(0));
        assert_eq!(b.propagation_basis(2, 2), None);
    }

    #[test]
    fn unreached_projects_to_infinity() {
        let b = Bfs::new(VertexId::new(0));
        assert!(b.value_to_f64(UNREACHED).is_infinite());
        assert_eq!(b.value_to_f64(3), 3.0);
    }

    #[test]
    fn saturating_depth_never_wraps() {
        let b = Bfs::new(VertexId::new(0));
        let e = EdgeRef {
            other: VertexId::new(1),
            weight: 1.0,
        };
        assert_eq!(
            b.propagate(u32::MAX - 1, VertexId::new(0), 1, e),
            Some(u32::MAX)
        );
        assert_eq!(
            b.propagate(u32::MAX, VertexId::new(0), 1, e),
            Some(u32::MAX)
        );
    }
}
