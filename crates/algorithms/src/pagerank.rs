//! Incremental (delta-based) PageRank — "PageRankDelta" in the paper.

use std::sync::Arc;

use gp_graph::{EdgeRef, GraphView, VertexId};

use crate::DeltaAlgorithm;

/// Contribution-based PageRank (Table II, row *PR-Delta*).
///
/// * `propagate(δ) = α · δ / N(src)`
/// * `reduce = +`
/// * `V_init = 0`, `ΔV_init = 1 − α`
///
/// Converges to the *unnormalized* PageRank fixpoint
/// `v_j = (1 − α) + α · Σ_{i→j} v_i / N(i)`. A vertex stops propagating when
/// the applied change falls below `threshold`.
///
/// # Examples
///
/// ```
/// use gp_algorithms::{engine, PageRankDelta};
/// use gp_graph::generators::{erdos_renyi, WeightMode};
///
/// let g = erdos_renyi(50, 200, WeightMode::Unweighted, 7);
/// let out = engine::run_sequential(&PageRankDelta::new(0.85, 1e-8), &g);
/// assert!(out.values.iter().all(|r| *r >= 0.15 - 1e-6));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankDelta {
    alpha: f64,
    threshold: f64,
    /// Personalization mask: teleport mass is injected only at `true`
    /// vertices. `None` = classic (uniform) PageRank.
    sources: Option<Arc<Vec<bool>>>,
}

impl PageRankDelta {
    /// Creates PageRank with damping `alpha` and local propagation
    /// `threshold`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1` and `threshold >= 0`.
    pub fn new(alpha: f64, threshold: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&alpha) && alpha > 0.0,
            "alpha must be in (0,1)"
        );
        assert!(threshold >= 0.0, "threshold must be nonnegative");
        PageRankDelta {
            alpha,
            threshold,
            sources: None,
        }
    }

    /// Personalized PageRank: teleport mass `(1−α)` is injected only at
    /// `sources`, so ranks measure proximity to that seed set (random walks
    /// with restart). An easy extension of the paper's PR-Delta — only the
    /// initial events change.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`PageRankDelta::new`], or if any
    /// source index is `>= num_vertices`.
    pub fn personalized(
        alpha: f64,
        threshold: f64,
        num_vertices: usize,
        sources: &[VertexId],
    ) -> Self {
        let mut mask = vec![false; num_vertices];
        for s in sources {
            mask[s.index()] = true;
        }
        PageRankDelta {
            sources: Some(Arc::new(mask)),
            ..Self::new(alpha, threshold)
        }
    }

    /// The damping factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The local propagation threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl DeltaAlgorithm for PageRankDelta {
    type Value = f64;
    type Delta = f64;

    fn name(&self) -> &'static str {
        "pagerank-delta"
    }

    fn init_value(&self, _v: VertexId) -> f64 {
        0.0
    }

    fn identity_delta(&self) -> f64 {
        0.0
    }

    fn initial_delta(&self, v: VertexId, _graph: &dyn GraphView) -> Option<f64> {
        match &self.sources {
            Some(mask) if !mask[v.index()] => None,
            _ => Some(1.0 - self.alpha),
        }
    }

    fn reduce(&self, value: f64, delta: f64) -> f64 {
        value + delta
    }

    fn coalesce(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn propagation_basis(&self, old: f64, new: f64) -> Option<f64> {
        let delta = new - old;
        (delta.abs() > self.threshold).then_some(delta)
    }

    fn propagate(
        &self,
        basis: f64,
        _src: VertexId,
        src_out_degree: u32,
        _edge: EdgeRef,
    ) -> Option<f64> {
        if src_out_degree == 0 {
            return None;
        }
        Some(self.alpha * basis / src_out_degree as f64)
    }

    fn progress(&self, old: f64, new: f64) -> f64 {
        (new - old).abs()
    }

    fn global_threshold(&self) -> Option<f64> {
        // Pure-threshold termination is already handled locally; the global
        // accumulator provides the paper's optional safety net.
        None
    }

    /// Big residual-mass deltas first (§V): each carries more not-yet-spread
    /// rank, so draining them early compounds more work per event.
    fn urgency(&self, delta: f64) -> f64 {
        delta.abs()
    }

    fn value_to_f64(&self, v: f64) -> f64 {
        v
    }

    /// Rank mass is accumulated with `f64` additions, so backends differ by
    /// the sub-threshold residue each vertex may still be holding when the
    /// queue drains; the worst case grows with `threshold`, not machine
    /// epsilon.
    fn comparison_tolerance(&self) -> f64 {
        (self.threshold * 1e4).max(1e-9)
    }
}

impl crate::IncrementalAlgorithm for PageRankDelta {
    /// Rank mass is additive, so edge updates are repaired by retracting
    /// the shares sent under the old adjacency and granting them under the
    /// new one.
    fn strategy(&self) -> crate::SeedingStrategy {
        crate::SeedingStrategy::DeltaCorrection
    }

    /// A converged rank *is* the total mass the vertex has propagated
    /// (modulo sub-threshold residue).
    fn basis_of(&self, value: f64) -> f64 {
        value
    }

    fn negate(&self, delta: f64) -> f64 {
        -delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::CsrGraph;

    #[test]
    fn table_ii_semantics() {
        let pr = PageRankDelta::new(0.85, 1e-4);
        assert_eq!(pr.init_value(VertexId::new(0)), 0.0);
        assert_eq!(
            pr.initial_delta(VertexId::new(0), &tiny()),
            Some(0.15000000000000002)
        );
        assert_eq!(pr.reduce(1.0, 0.5), 1.5);
        assert_eq!(pr.coalesce(0.25, 0.25), 0.5);
        let e = EdgeRef {
            other: VertexId::new(1),
            weight: 1.0,
        };
        assert_eq!(pr.propagate(1.0, VertexId::new(0), 4, e), Some(0.85 / 4.0));
    }

    fn tiny() -> CsrGraph {
        let mut b = gp_graph::GraphBuilder::new(2);
        b.add_edge(VertexId::new(0), VertexId::new(1), 1.0);
        b.build()
    }

    #[test]
    fn below_threshold_stops_propagation() {
        let pr = PageRankDelta::new(0.85, 1e-3);
        assert!(pr.propagation_basis(1.0, 1.0 + 1e-4).is_none());
        assert!(pr.propagation_basis(1.0, 1.01).is_some());
    }

    #[test]
    fn dangling_source_emits_nothing() {
        let pr = PageRankDelta::new(0.85, 0.0);
        let e = EdgeRef {
            other: VertexId::new(1),
            weight: 1.0,
        };
        assert_eq!(pr.propagate(1.0, VertexId::new(0), 0, e), None);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        let _ = PageRankDelta::new(1.5, 0.0);
    }

    #[test]
    fn personalized_injects_only_at_sources() {
        let pr = PageRankDelta::personalized(0.85, 1e-6, 4, &[VertexId::new(2)]);
        let g = tiny();
        assert_eq!(pr.initial_delta(VertexId::new(0), &g), None);
        assert!(pr.initial_delta(VertexId::new(2), &g).is_some());
    }

    #[test]
    fn personalized_matches_reference() {
        use crate::engine::run_sequential;
        let g = gp_graph::generators::erdos_renyi(
            120,
            700,
            gp_graph::generators::WeightMode::Unweighted,
            5,
        );
        let sources = [VertexId::new(3), VertexId::new(40)];
        let pr = PageRankDelta::personalized(0.85, 1e-11, 120, &sources);
        let out = run_sequential(&pr, &g);
        let golden = crate::reference::personalized_pagerank(&g, 0.85, &sources, 1e-13);
        assert!(crate::max_abs_diff(&out.values, &golden) < 1e-5);
        // Mass concentrates at the seed set.
        assert!(out.values[3] > out.values[10] * 2.0);
    }

    #[test]
    fn identity_delta_is_noop() {
        let pr = PageRankDelta::new(0.85, 1e-4);
        assert_eq!(pr.reduce(2.5, pr.identity_delta()), 2.5);
    }
}
