//! Adsorption label propagation in delta form.

use std::sync::Arc;

use gp_graph::rng::{Rng, StdRng};

use gp_graph::{CsrGraph, EdgeRef, GraphBuilder, GraphView, VertexId};

use crate::DeltaAlgorithm;

/// Per-vertex Adsorption parameters.
///
/// Adsorption (Table II) computes
/// `v_j = β_j · I_j + Σ_{i→j} α_i · E_ij · v_i` — a damped, weighted label
/// diffusion. `α_i` is vertex `i`'s continue probability, `β_j` scales
/// vertex `j`'s injected label mass `I_j`.
///
/// The paper creates randomly weighted edges and normalizes inbound weights
/// per vertex (§VI-A); combined with `α < 1` this keeps the spectral radius
/// below one, so the iteration converges.
#[derive(Debug, Clone)]
pub struct AdsorptionParams {
    alpha: Arc<Vec<f32>>,
    beta: Arc<Vec<f32>>,
    injection: Arc<Vec<f32>>,
}

impl AdsorptionParams {
    /// Random parameters for an `n`-vertex graph, matching the paper's
    /// setup: `α ∈ [0.1, 0.9)`, `β ∈ [0.1, 1.0)`, `I ∈ [0, 1)`.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        AdsorptionParams {
            alpha: Arc::new((0..n).map(|_| rng.gen_range(0.1..0.9)).collect()),
            beta: Arc::new((0..n).map(|_| rng.gen_range(0.1..1.0)).collect()),
            injection: Arc::new((0..n).map(|_| rng.gen_range(0.0..1.0)).collect()),
        }
    }

    /// Explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any `α` falls outside `[0, 1)`.
    pub fn new(alpha: Vec<f32>, beta: Vec<f32>, injection: Vec<f32>) -> Self {
        assert_eq!(alpha.len(), beta.len());
        assert_eq!(alpha.len(), injection.len());
        assert!(
            alpha.iter().all(|a| (0.0..1.0).contains(a)),
            "alpha must be in [0,1) for convergence"
        );
        AdsorptionParams {
            alpha: Arc::new(alpha),
            beta: Arc::new(beta),
            injection: Arc::new(injection),
        }
    }

    /// Continue probability of vertex `v`.
    #[inline]
    pub fn alpha(&self, v: VertexId) -> f32 {
        self.alpha[v.index()]
    }

    /// Injection scale of vertex `v`.
    #[inline]
    pub fn beta(&self, v: VertexId) -> f32 {
        self.beta[v.index()]
    }

    /// Injected label mass of vertex `v`.
    #[inline]
    pub fn injection(&self, v: VertexId) -> f32 {
        self.injection[v.index()]
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.alpha.len()
    }

    /// Whether the parameter set is empty.
    pub fn is_empty(&self) -> bool {
        self.alpha.is_empty()
    }
}

/// Rebuilds `graph` with each vertex's *inbound* weights normalized to sum
/// to one, as the paper does before running Adsorption (§VI-A).
///
/// Unweighted input edges are treated as weight 1 before normalization.
pub fn normalize_inbound(graph: &CsrGraph) -> CsrGraph {
    let n = graph.num_vertices();
    let mut in_sums = vec![0.0f64; n];
    for v in graph.vertices() {
        for e in graph.out_edges(v) {
            in_sums[e.other.index()] += e.weight as f64;
        }
    }
    let mut b = GraphBuilder::new(n);
    b.weighted(true).dedup(false).drop_self_loops(false);
    for v in graph.vertices() {
        for e in graph.out_edges(v) {
            let sum = in_sums[e.other.index()];
            let w = if sum > 0.0 {
                (e.weight as f64 / sum) as f32
            } else {
                0.0
            };
            b.add_edge(v, e.other, w);
        }
    }
    b.build()
}

/// Adsorption (Table II): `propagate(δ) = α_i · E_ij · δ`, `reduce = +`,
/// `V_init = 0`, `ΔV_init = β_j · I_j`.
///
/// Run it on a graph whose inbound weights were normalized with
/// [`normalize_inbound`]; see [`AdsorptionParams`] for the convergence
/// argument.
#[derive(Debug, Clone)]
pub struct Adsorption {
    params: AdsorptionParams,
    threshold: f64,
}

impl Adsorption {
    /// Creates Adsorption with per-vertex `params` and local propagation
    /// `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative.
    pub fn new(params: AdsorptionParams, threshold: f64) -> Self {
        assert!(threshold >= 0.0, "threshold must be nonnegative");
        Adsorption { params, threshold }
    }

    /// The per-vertex parameters.
    pub fn params(&self) -> &AdsorptionParams {
        &self.params
    }
}

impl DeltaAlgorithm for Adsorption {
    type Value = f64;
    type Delta = f64;

    fn name(&self) -> &'static str {
        "adsorption"
    }

    fn needs_weights(&self) -> bool {
        true
    }

    fn init_value(&self, _v: VertexId) -> f64 {
        0.0
    }

    fn identity_delta(&self) -> f64 {
        0.0
    }

    fn initial_delta(&self, v: VertexId, _graph: &dyn GraphView) -> Option<f64> {
        Some(f64::from(self.params.beta(v)) * f64::from(self.params.injection(v)))
    }

    fn reduce(&self, value: f64, delta: f64) -> f64 {
        value + delta
    }

    fn coalesce(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn propagation_basis(&self, old: f64, new: f64) -> Option<f64> {
        let delta = new - old;
        (delta.abs() > self.threshold).then_some(delta)
    }

    fn propagate(
        &self,
        basis: f64,
        src: VertexId,
        _src_out_degree: u32,
        edge: EdgeRef,
    ) -> Option<f64> {
        Some(f64::from(self.params.alpha(src)) * f64::from(edge.weight) * basis)
    }

    fn progress(&self, old: f64, new: f64) -> f64 {
        (new - old).abs()
    }

    /// Big label-mass deltas first, like PageRank-Delta (§V).
    fn urgency(&self, delta: f64) -> f64 {
        delta.abs()
    }

    fn value_to_f64(&self, v: f64) -> f64 {
        v
    }

    /// Label mass accumulates like PageRank's rank mass: each vertex may
    /// retain up to `threshold` of unsent basis at termination, so backends
    /// legitimately differ by a multiple of it.
    fn comparison_tolerance(&self) -> f64 {
        (self.threshold * 1e4).max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::generators::{erdos_renyi, WeightMode};

    #[test]
    fn normalization_makes_inbound_sum_one() {
        let g = erdos_renyi(60, 300, WeightMode::Uniform(0.5, 3.0), 2);
        let norm = normalize_inbound(&g);
        for v in norm.vertices() {
            let sum: f64 = norm.in_edges(v).map(|e| e.weight as f64).sum();
            if norm.in_degree(v) > 0 {
                assert!((sum - 1.0).abs() < 1e-4, "vertex {v} inbound sum {sum}");
            }
        }
    }

    #[test]
    fn propagate_scales_by_alpha_and_weight() {
        let params = AdsorptionParams::new(vec![0.5, 0.5], vec![1.0, 1.0], vec![1.0, 1.0]);
        let ads = Adsorption::new(params, 0.0);
        let e = EdgeRef {
            other: VertexId::new(1),
            weight: 0.25,
        };
        assert_eq!(ads.propagate(2.0, VertexId::new(0), 3, e), Some(0.25));
    }

    #[test]
    fn initial_delta_is_beta_times_injection() {
        let params = AdsorptionParams::new(vec![0.5], vec![0.4], vec![0.5]);
        let ads = Adsorption::new(params, 0.0);
        let g = gp_graph::GraphBuilder::new(1).build();
        let d = ads.initial_delta(VertexId::new(0), &g).unwrap();
        assert!((d - 0.2).abs() < 1e-6);
    }

    #[test]
    fn random_params_deterministic() {
        let a = AdsorptionParams::random(16, 9);
        let b = AdsorptionParams::random(16, 9);
        for v in (0..16).map(VertexId::from_index) {
            assert_eq!(a.alpha(v), b.alpha(v));
            assert_eq!(a.beta(v), b.beta(v));
            assert_eq!(a.injection(v), b.injection(v));
        }
        assert_eq!(a.len(), 16);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "alpha must be")]
    fn alpha_of_one_rejected() {
        let _ = AdsorptionParams::new(vec![1.0], vec![1.0], vec![1.0]);
    }
}
