//! The delta-accumulative algorithm abstraction (paper §II-B, Table II).

use std::fmt;

use gp_graph::{EdgeRef, GraphView, VertexId};

/// A graph algorithm in delta-accumulative form.
///
/// The trait mirrors the paper's programming interface (§III-B): a *reduce*
/// operator applied both to vertex state and to coalescing in-queue events,
/// a *propagate* function producing per-edge contributions, initialization
/// values, and a local termination condition. Every execution backend in
/// this workspace — the sequential golden engine, the BSP engine, the
/// Ligra-style baseline, the Graphicionado model, and the GraphPulse
/// accelerator itself — runs any type implementing this trait.
///
/// # Contract (the two properties of §II-B)
///
/// * **Reordering**: [`coalesce`](DeltaAlgorithm::coalesce) must be
///   commutative and associative, and
///   [`propagate`](DeltaAlgorithm::propagate) must distribute over it.
///   Floating-point operators satisfy this only up to rounding; backends may
///   therefore produce results differing by small tolerances.
/// * **Simplification**: applying the
///   [`identity_delta`](DeltaAlgorithm::identity_delta) must leave vertex
///   state unchanged, so
///   a vertex whose value did not change conveys nothing to its neighbors.
///
/// These properties are what allow GraphPulse to coalesce in-flight events
/// and to process vertices asynchronously; they are checked for all five
/// bundled algorithms by property tests.
pub trait DeltaAlgorithm: Send + Sync {
    /// Per-vertex state.
    type Value: Copy + PartialEq + fmt::Debug + Send + Sync + 'static;
    /// Event payload.
    type Delta: Copy + fmt::Debug + Send + Sync + 'static;

    /// Short name used in reports ("pagerank-delta", "sssp", ...).
    fn name(&self) -> &'static str;

    /// Whether [`propagate`](DeltaAlgorithm::propagate) reads edge weights;
    /// drives per-edge traffic accounting in the timing models.
    fn needs_weights(&self) -> bool {
        false
    }

    /// Initial vertex state — the identity of the reduce operator, so the
    /// first arriving event fully determines the initial value (§III-A,
    /// *Initialization and Termination*).
    fn init_value(&self, v: VertexId) -> Self::Value;

    /// The delta that leaves any state unchanged under
    /// [`reduce`](DeltaAlgorithm::reduce) (e.g. `0` for sum, `+∞` for min).
    fn identity_delta(&self) -> Self::Delta;

    /// The initial event seeded into the queue for `v`, or `None` when the
    /// vertex starts inactive.
    ///
    /// Takes a [`GraphView`] trait object so the hook stays dispatchable
    /// from both the static CSR and the streaming overlay.
    fn initial_delta(&self, v: VertexId, graph: &dyn GraphView) -> Option<Self::Delta>;

    /// Applies a delta to a vertex state (`state ⊕ delta`).
    fn reduce(&self, value: Self::Value, delta: Self::Delta) -> Self::Value;

    /// Combines two in-flight deltas destined for the same vertex.
    ///
    /// For every Table II algorithm this is the same operator as
    /// [`reduce`](DeltaAlgorithm::reduce) restricted to deltas.
    fn coalesce(&self, a: Self::Delta, b: Self::Delta) -> Self::Delta;

    /// Local termination check (Algorithm 1, line 8): after a vertex moved
    /// from `old` to `new`, returns the outgoing propagation basis `Δu`, or
    /// `None` when the change is too small to propagate.
    fn propagation_basis(&self, old: Self::Value, new: Self::Value) -> Option<Self::Delta>;

    /// `g⟨i,j⟩`: converts the propagation basis into the delta sent along
    /// one out-edge. `None` means the identity (nothing is emitted).
    fn propagate(
        &self,
        basis: Self::Delta,
        src: VertexId,
        src_out_degree: u32,
        edge: EdgeRef,
    ) -> Option<Self::Delta>;

    /// Contribution of a state transition to the global progress
    /// accumulator (§IV-C, *Global Termination Condition*).
    fn progress(&self, _old: Self::Value, _new: Self::Value) -> f64 {
        0.0
    }

    /// Global termination threshold on the per-round progress sum; `None`
    /// terminates only when the event queue empties.
    fn global_threshold(&self) -> Option<f64> {
        None
    }

    /// Scheduling urgency of a pending (already-coalesced) delta: larger
    /// values ask to be drained sooner.
    ///
    /// Purely a performance hint for throughput backends that drain events
    /// in priority buckets (the paper's §V observation: processing large
    /// deltas first compounds more work per event and converges faster).
    /// The reordering property of §II-B guarantees any drain order reaches
    /// the same fixed point, so implementations are free to return a crude
    /// estimate — or keep the default constant, which degrades scheduling
    /// to arrival order. Must never return NaN.
    fn urgency(&self, _delta: Self::Delta) -> f64 {
        0.0
    }

    /// Projects a final vertex state to `f64` for reporting and comparison.
    fn value_to_f64(&self, v: Self::Value) -> f64;

    /// Absolute tolerance for comparing two backends' final values of this
    /// algorithm.
    ///
    /// The default `0.0` demands exact agreement after
    /// [`value_to_f64`](DeltaAlgorithm::value_to_f64) projection — correct
    /// for the monotone min/max algorithms whose fixed point is reached by
    /// an idempotent reduce regardless of event order. Accumulative
    /// floating-point algorithms (PageRank-Delta, Adsorption) override this
    /// with a small epsilon: §II-B's reordering property holds only up to
    /// rounding for `f64` sums, so different backends legitimately differ in
    /// the last bits.
    fn comparison_tolerance(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    // The trait itself is exercised by each implementation's tests and by
    // the crate-level property suite; here we only pin object safety for
    // the monomorphic helpers used in reports.
    use super::*;
    use crate::PageRankDelta;

    #[test]
    fn trait_is_usable_behind_a_reference() {
        fn takes_generic<A: DeltaAlgorithm>(a: &A) -> &'static str {
            a.name()
        }
        assert_eq!(
            takes_generic(&PageRankDelta::new(0.85, 1e-4)),
            "pagerank-delta"
        );
    }
}
