//! Software golden engines for the event-driven model.
//!
//! Two functional (un-timed) executors of [`DeltaAlgorithm`]s:
//!
//! * [`run_sequential`] — Algorithm 1 of the paper verbatim: a FIFO
//!   worklist with in-queue coalescing; one event in flight per vertex.
//!   This is the semantic yardstick every timing backend is validated
//!   against.
//! * [`run_bsp`] — synchronous (bulk-synchronous) rounds over deltas, i.e.
//!   the execution order a BSP accelerator such as Graphicionado imposes.
//!   Also reports per-round event counts, which back the Fig. 4 analysis.

use gp_graph::{GraphView, VertexId};

use crate::DeltaAlgorithm;

/// Result of a golden-engine run.
#[derive(Debug, Clone)]
pub struct EngineOutput {
    /// Final vertex values projected to `f64` via
    /// [`DeltaAlgorithm::value_to_f64`].
    pub values: Vec<f64>,
    /// Number of events popped from the worklist (after coalescing).
    pub events_processed: u64,
    /// Number of events generated (before coalescing).
    pub events_generated: u64,
    /// Rounds executed (BSP engine) or queue-generation sweeps (sequential).
    pub rounds: u64,
}

/// Runs `algo` on `graph` with the FIFO-worklist executor of Algorithm 1.
///
/// Events destined to a vertex that already has a pending event are
/// coalesced in place, exactly like the accelerator's in-place coalescing
/// queue, so at most one event per vertex is ever pending.
///
/// # Examples
///
/// ```
/// use gp_algorithms::{engine, ConnectedComponents};
/// use gp_graph::{GraphBuilder, VertexId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(VertexId::new(0), VertexId::new(2), 1.0);
/// b.symmetric(true);
/// let g = b.build();
/// let out = engine::run_sequential(&ConnectedComponents::new(), &g);
/// assert_eq!(out.values, vec![2.0, 1.0, 2.0]);
/// ```
pub fn run_sequential<A: DeltaAlgorithm, G: GraphView>(algo: &A, graph: &G) -> EngineOutput {
    let (mut values, seeds) = initial_state(algo, graph);
    run_sequential_seeded(algo, graph, &mut values, &seeds)
}

/// The init vertex states and [`initial_delta`](DeltaAlgorithm::initial_delta)
/// seed set of a cold start — the explicit-state inputs that make
/// [`run_sequential_seeded`] reproduce [`run_sequential`] exactly. Warm
/// starts (incremental recomputation) swap these for converged values and
/// a computed seed plan.
#[allow(clippy::type_complexity)]
pub fn initial_state<A: DeltaAlgorithm, G: GraphView>(
    algo: &A,
    graph: &G,
) -> (Vec<A::Value>, Vec<(VertexId, A::Delta)>) {
    let values = (0..graph.num_vertices())
        .map(|v| algo.init_value(VertexId::from_index(v)))
        .collect();
    let seeds = graph
        .vertex_ids()
        .filter_map(|v| algo.initial_delta(v, graph).map(|d| (v, d)))
        .collect();
    (values, seeds)
}

/// Runs `algo` from explicit state: `values` holds the warm-start vertex
/// states (updated in place), `seeds` the initial events. This is the
/// golden executor behind incremental recomputation — a full run is the
/// special case of init values plus the
/// [`initial_delta`](DeltaAlgorithm::initial_delta) seed set, which is
/// exactly how [`run_sequential`] is implemented.
///
/// Duplicate seeds for one vertex are coalesced in worklist order.
///
/// # Panics
///
/// Panics if `values.len() != graph.num_vertices()` or a seed vertex is out
/// of range.
pub fn run_sequential_seeded<A: DeltaAlgorithm, G: GraphView>(
    algo: &A,
    graph: &G,
    values: &mut [A::Value],
    seeds: &[(VertexId, A::Delta)],
) -> EngineOutput {
    let n = graph.num_vertices();
    assert_eq!(values.len(), n, "state length must match the vertex count");
    let mut pending: Vec<Option<A::Delta>> = vec![None; n];
    let mut worklist: std::collections::VecDeque<u32> = std::collections::VecDeque::new();

    let mut events_generated = 0u64;
    let mut events_processed = 0u64;

    for &(v, d) in seeds {
        events_generated += 1;
        let slot = &mut pending[v.index()];
        match slot {
            Some(existing) => *existing = algo.coalesce(*existing, d),
            None => {
                *slot = Some(d);
                worklist.push_back(v.get());
            }
        }
    }

    while let Some(u) = worklist.pop_front() {
        let u = VertexId::new(u);
        let delta = pending[u.index()]
            .take()
            .expect("worklist entry without delta");
        events_processed += 1;
        let old = values[u.index()];
        let new = algo.reduce(old, delta);
        values[u.index()] = new;
        if let Some(basis) = algo.propagation_basis(old, new) {
            let degree = graph.out_degree(u);
            for i in 0..degree {
                let edge = graph.out_edge(u, i);
                if let Some(d) = algo.propagate(basis, u, degree, edge) {
                    events_generated += 1;
                    let slot = &mut pending[edge.other.index()];
                    match slot {
                        Some(existing) => *existing = algo.coalesce(*existing, d),
                        None => {
                            *slot = Some(d);
                            worklist.push_back(edge.other.get());
                        }
                    }
                }
            }
        }
    }

    EngineOutput {
        values: values.iter().map(|&v| algo.value_to_f64(v)).collect(),
        events_processed,
        events_generated,
        rounds: 0,
    }
}

/// Per-round statistics from [`run_bsp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BspRound {
    /// Events generated during the round, before coalescing.
    pub produced: u64,
    /// Events remaining after coalescing (i.e. active vertices next round).
    pub coalesced: u64,
}

/// Runs `algo` with bulk-synchronous rounds: all pending deltas are applied
/// at a barrier, then all propagations of the round are coalesced into the
/// next round's delta set. Returns the output plus per-round counts —
/// the raw data behind Fig. 4 of the paper.
///
/// `max_rounds` bounds runaway configurations (returns early with partial
/// values if exceeded).
pub fn run_bsp<A: DeltaAlgorithm, G: GraphView>(
    algo: &A,
    graph: &G,
    max_rounds: u64,
) -> (EngineOutput, Vec<BspRound>) {
    let n = graph.num_vertices();
    let mut values: Vec<A::Value> = (0..n)
        .map(|v| algo.init_value(VertexId::from_index(v)))
        .collect();
    let mut current: Vec<Option<A::Delta>> = vec![None; n];
    let mut events_generated = 0u64;
    let mut events_processed = 0u64;
    let mut rounds_log = Vec::new();

    for v in graph.vertex_ids() {
        if let Some(d) = algo.initial_delta(v, graph) {
            current[v.index()] = Some(d);
            events_generated += 1;
        }
    }

    let mut rounds = 0u64;
    loop {
        if rounds >= max_rounds || current.iter().all(Option::is_none) {
            break;
        }
        rounds += 1;
        let mut next: Vec<Option<A::Delta>> = vec![None; n];
        let mut produced = 0u64;
        for u in 0..n {
            let Some(delta) = current[u].take() else {
                continue;
            };
            events_processed += 1;
            let uid = VertexId::from_index(u);
            let old = values[u];
            let new = algo.reduce(old, delta);
            values[u] = new;
            if let Some(basis) = algo.propagation_basis(old, new) {
                let degree = graph.out_degree(uid);
                for i in 0..degree {
                    let edge = graph.out_edge(uid, i);
                    if let Some(d) = algo.propagate(basis, uid, degree, edge) {
                        produced += 1;
                        events_generated += 1;
                        let slot = &mut next[edge.other.index()];
                        *slot = Some(match slot {
                            Some(existing) => algo.coalesce(*existing, d),
                            None => d,
                        });
                    }
                }
            }
        }
        let coalesced = next.iter().filter(|s| s.is_some()).count() as u64;
        rounds_log.push(BspRound {
            produced,
            coalesced,
        });
        current = next;
    }

    (
        EngineOutput {
            values: values.into_iter().map(|v| algo.value_to_f64(v)).collect(),
            events_processed,
            events_generated,
            rounds,
        },
        rounds_log,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bfs, ConnectedComponents, PageRankDelta, Sssp};
    use gp_graph::generators::{erdos_renyi, watts_strogatz, WeightMode};
    use gp_graph::GraphBuilder;

    #[test]
    fn sequential_and_bsp_agree_on_pagerank() {
        let g = erdos_renyi(200, 1_200, WeightMode::Unweighted, 3);
        let pr = PageRankDelta::new(0.85, 1e-9);
        let seq = run_sequential(&pr, &g);
        let (bsp, rounds) = run_bsp(&pr, &g, 10_000);
        assert!(crate::max_abs_diff(&seq.values, &bsp.values) < 1e-5);
        assert!(!rounds.is_empty());
    }

    #[test]
    fn bsp_round_log_shrinks_for_pagerank() {
        let g = erdos_renyi(300, 2_400, WeightMode::Unweighted, 5);
        let pr = PageRankDelta::new(0.85, 1e-4);
        let (_, rounds) = run_bsp(&pr, &g, 10_000);
        // Coalescing caps pending events at the vertex count.
        assert!(rounds.iter().all(|r| r.coalesced <= 300));
        // Convergence: the final rounds are smaller than the peak.
        let peak = rounds.iter().map(|r| r.produced).max().unwrap();
        assert!(rounds.last().unwrap().produced < peak);
    }

    #[test]
    fn sssp_matches_bfs_on_unit_weights() {
        let g = watts_strogatz(100, 3, 0.2, WeightMode::Unweighted, 8);
        let sssp = run_sequential(&Sssp::new(gp_graph::VertexId::new(0)), &g);
        let bfs = run_sequential(&Bfs::new(gp_graph::VertexId::new(0)), &g);
        assert!(crate::max_abs_diff(&sssp.values, &bfs.values) < 1e-9);
    }

    #[test]
    fn cc_handles_disconnected_graphs() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(gp_graph::VertexId::new(0), gp_graph::VertexId::new(1), 1.0);
        b.add_edge(gp_graph::VertexId::new(3), gp_graph::VertexId::new(4), 1.0);
        b.symmetric(true);
        let g = b.build();
        let out = run_sequential(&ConnectedComponents::new(), &g);
        assert_eq!(out.values, vec![1.0, 1.0, 2.0, 4.0, 4.0]);
    }

    #[test]
    fn empty_graph_terminates_immediately() {
        let g = GraphBuilder::new(0).build();
        let out = run_sequential(&PageRankDelta::new(0.85, 1e-4), &g);
        assert!(out.values.is_empty());
        assert_eq!(out.events_processed, 0);
    }

    #[test]
    fn bsp_respects_round_cap() {
        let g = erdos_renyi(50, 300, WeightMode::Unweighted, 1);
        let pr = PageRankDelta::new(0.85, 0.0); // never locally terminates
        let (out, rounds) = run_bsp(&pr, &g, 5);
        assert_eq!(out.rounds, 5);
        assert_eq!(rounds.len(), 5);
    }
}
