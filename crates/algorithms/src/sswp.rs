//! Single-Source Widest Path (maximum bottleneck capacity) in delta form.

use gp_graph::{EdgeRef, GraphView, VertexId};

use crate::DeltaAlgorithm;

/// SSWP: the widest-path (max-min) semiring, a delta-accumulative
/// algorithm beyond the paper's five (its §II-B framework admits any
/// reduce/propagate pair satisfying the reordering property, which
/// `max`/`min` does: `min(max(x,y),w) = max(min(x,w), min(y,w))`).
///
/// `reduce = max`, `propagate(δ) = min(δ, E_ij)`, `V_init = 0`,
/// `ΔV_init = ∞` at the root: each vertex converges to the largest
/// bottleneck capacity over all paths from the root.
///
/// # Examples
///
/// ```
/// use gp_algorithms::{engine, Sswp};
/// use gp_graph::{GraphBuilder, VertexId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(VertexId::new(0), VertexId::new(1), 5.0);
/// b.add_edge(VertexId::new(1), VertexId::new(2), 2.0);
/// b.weighted(true);
/// let out = engine::run_sequential(&Sswp::new(VertexId::new(0)), &b.build());
/// assert_eq!(out.values[2], 2.0); // bottleneck of the only path
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sswp {
    root: VertexId,
}

impl Sswp {
    /// Widest paths from `root`.
    pub fn new(root: VertexId) -> Self {
        Sswp { root }
    }

    /// The source vertex.
    pub fn root(&self) -> VertexId {
        self.root
    }
}

impl DeltaAlgorithm for Sswp {
    type Value = f64;
    type Delta = f64;

    fn name(&self) -> &'static str {
        "sswp"
    }

    fn needs_weights(&self) -> bool {
        true
    }

    fn init_value(&self, _v: VertexId) -> f64 {
        0.0
    }

    fn identity_delta(&self) -> f64 {
        0.0
    }

    fn initial_delta(&self, v: VertexId, _graph: &dyn GraphView) -> Option<f64> {
        (v == self.root).then_some(f64::INFINITY)
    }

    fn reduce(&self, value: f64, delta: f64) -> f64 {
        value.max(delta)
    }

    fn coalesce(&self, a: f64, b: f64) -> f64 {
        a.max(b)
    }

    fn propagation_basis(&self, old: f64, new: f64) -> Option<f64> {
        (new > old).then_some(new)
    }

    fn propagate(
        &self,
        basis: f64,
        _src: VertexId,
        _src_out_degree: u32,
        edge: EdgeRef,
    ) -> Option<f64> {
        Some(basis.min(f64::from(edge.weight)))
    }

    fn progress(&self, old: f64, new: f64) -> f64 {
        (new - old).max(0.0)
    }

    /// Wider tentative paths first — the max-propagation mirror of
    /// Dijkstra's order: narrower alternatives die before spreading.
    fn urgency(&self, delta: f64) -> f64 {
        delta
    }

    fn value_to_f64(&self, v: f64) -> f64 {
        v
    }
}

impl crate::IncrementalAlgorithm for Sswp {
    /// Width is min-capped, not strictly decreased, along edges, so equal
    /// widths around a cycle self-support — like CC, deletions need the
    /// reachability closure.
    fn strategy(&self) -> crate::SeedingStrategy {
        crate::SeedingStrategy::Monotone(crate::Invalidation::Reachability)
    }

    fn basis_of(&self, value: f64) -> f64 {
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_sequential;
    use crate::reference::sswp_widest;
    use gp_graph::generators::{erdos_renyi, WeightMode};

    #[test]
    fn semiring_laws() {
        let s = Sswp::new(VertexId::new(0));
        assert_eq!(s.reduce(3.0, 5.0), 5.0);
        assert_eq!(s.coalesce(2.0, 7.0), 7.0);
        let e = EdgeRef {
            other: VertexId::new(1),
            weight: 4.0,
        };
        assert_eq!(s.propagate(9.0, VertexId::new(0), 1, e), Some(4.0));
        assert_eq!(s.propagate(2.0, VertexId::new(0), 1, e), Some(2.0));
        assert_eq!(s.reduce(1.0, s.identity_delta()), 1.0);
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        let g = erdos_renyi(150, 900, WeightMode::Uniform(1.0, 10.0), 4);
        let root = VertexId::new(0);
        let out = run_sequential(&Sswp::new(root), &g);
        let golden = sswp_widest(&g, root);
        assert!(crate::max_abs_diff(&out.values, &golden) < 1e-6);
    }

    #[test]
    fn unreachable_vertices_stay_at_zero_capacity() {
        let mut b = gp_graph::GraphBuilder::new(3);
        b.add_edge(VertexId::new(0), VertexId::new(1), 3.0);
        b.weighted(true);
        let out = run_sequential(&Sswp::new(VertexId::new(0)), &b.build());
        assert!(out.values[0].is_infinite()); // root: unconstrained
        assert_eq!(out.values[1], 3.0);
        assert_eq!(out.values[2], 0.0);
    }
}
