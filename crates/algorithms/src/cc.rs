//! Connected Components via max-label propagation, in delta form.

use gp_graph::{EdgeRef, GraphView, VertexId};

use crate::DeltaAlgorithm;

/// Connected Components (Table II): `propagate(δ) = δ`, `reduce = max`,
/// `V_init = −1`, `ΔV_init = j` (each vertex seeds its own id).
///
/// At fixpoint every vertex holds the largest vertex id that reaches it
/// (including itself). On symmetric graphs that is the canonical label of
/// its (weakly) connected component, which is how the paper — and every
/// label-propagation CC — uses it.
///
/// # Examples
///
/// ```
/// use gp_algorithms::{engine, ConnectedComponents};
/// use gp_graph::{GraphBuilder, VertexId};
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(VertexId::new(0), VertexId::new(1), 1.0);
/// b.symmetric(true);
/// let g = b.build();
/// let out = engine::run_sequential(&ConnectedComponents::new(), &g);
/// assert_eq!(out.values, vec![1.0, 1.0, 2.0, 3.0]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectedComponents;

impl ConnectedComponents {
    /// Creates the algorithm.
    pub fn new() -> Self {
        ConnectedComponents
    }
}

impl DeltaAlgorithm for ConnectedComponents {
    type Value = i64;
    type Delta = i64;

    fn name(&self) -> &'static str {
        "connected-components"
    }

    fn init_value(&self, _v: VertexId) -> i64 {
        -1
    }

    fn identity_delta(&self) -> i64 {
        -1
    }

    fn initial_delta(&self, v: VertexId, _graph: &dyn GraphView) -> Option<i64> {
        Some(i64::from(v.get()))
    }

    fn reduce(&self, value: i64, delta: i64) -> i64 {
        value.max(delta)
    }

    fn coalesce(&self, a: i64, b: i64) -> i64 {
        a.max(b)
    }

    fn propagation_basis(&self, old: i64, new: i64) -> Option<i64> {
        (new > old).then_some(new)
    }

    fn propagate(
        &self,
        basis: i64,
        _src: VertexId,
        _src_out_degree: u32,
        _edge: EdgeRef,
    ) -> Option<i64> {
        Some(basis)
    }

    fn progress(&self, old: i64, new: i64) -> f64 {
        if new > old {
            1.0
        } else {
            0.0
        }
    }

    /// Larger labels first: only the component's eventual maximum survives,
    /// so spreading big labels early kills smaller waves before they spread.
    fn urgency(&self, delta: i64) -> f64 {
        delta as f64
    }

    fn value_to_f64(&self, v: i64) -> f64 {
        v as f64
    }
}

impl crate::IncrementalAlgorithm for ConnectedComponents {
    /// Labels pass through edges unchanged, so a cycle of equal labels
    /// self-supports and the support test would keep a stale component
    /// label alive; deletions need the full reachability closure.
    fn strategy(&self) -> crate::SeedingStrategy {
        crate::SeedingStrategy::Monotone(crate::Invalidation::Reachability)
    }

    fn basis_of(&self, value: i64) -> i64 {
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::CsrGraph;

    #[test]
    fn table_ii_semantics() {
        let cc = ConnectedComponents::new();
        assert_eq!(cc.init_value(VertexId::new(9)), -1);
        assert_eq!(cc.initial_delta(VertexId::new(9), &tiny()), Some(9));
        assert_eq!(cc.reduce(3, 7), 7);
        assert_eq!(cc.coalesce(5, 2), 5);
        let e = EdgeRef {
            other: VertexId::new(1),
            weight: 1.0,
        };
        assert_eq!(cc.propagate(6, VertexId::new(0), 2, e), Some(6));
    }

    fn tiny() -> CsrGraph {
        let mut b = gp_graph::GraphBuilder::new(10);
        b.add_edge(VertexId::new(0), VertexId::new(1), 1.0);
        b.build()
    }

    #[test]
    fn only_larger_labels_propagate() {
        let cc = ConnectedComponents::new();
        assert_eq!(cc.propagation_basis(-1, 4), Some(4));
        assert_eq!(cc.propagation_basis(4, 4), None);
    }

    #[test]
    fn identity_is_noop() {
        let cc = ConnectedComponents::new();
        assert_eq!(cc.reduce(0, cc.identity_delta()), 0);
        assert_eq!(cc.reduce(-1, cc.identity_delta()), -1);
    }
}
