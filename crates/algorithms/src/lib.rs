//! # gp-algorithms — delta-accumulative graph algorithms
//!
//! GraphPulse targets algorithms expressible in the delta-accumulative form
//! of §II-B: a vertex state `v`, an incremental update operator `⊕`
//! (*reduce*), and an edge-wise *propagate* function `g⟨i,j⟩` that converts a
//! vertex's change into contributions for its out-neighbors:
//!
//! ```text
//! v_j^k     = v_j^{k-1} ⊕ Δv_j^k
//! Δv_j^{k+1} = ⊕_i g⟨i,j⟩(Δv_i^k)
//! ```
//!
//! This crate defines the [`DeltaAlgorithm`] trait capturing that form, the
//! five applications of the paper's Table II ([`PageRankDelta`],
//! [`Adsorption`], [`Sssp`], [`Bfs`], [`ConnectedComponents`]), two software
//! *golden* engines ([`engine::run_sequential`] — Algorithm 1 with a FIFO
//! worklist, and [`engine::run_bsp`] — synchronous rounds), and classic
//! [`mod@reference`] implementations (power iteration, Dijkstra, level BFS,
//! label propagation, Jacobi) used to validate every execution backend in
//! the workspace.
//!
//! # Examples
//!
//! ```
//! use gp_algorithms::{engine, PageRankDelta};
//! use gp_graph::generators::{erdos_renyi, WeightMode};
//!
//! let g = erdos_renyi(100, 400, WeightMode::Unweighted, 1);
//! let pr = PageRankDelta::new(0.85, 1e-7);
//! let result = engine::run_sequential(&pr, &g);
//! let golden = gp_algorithms::reference::pagerank(&g, 0.85, 1e-9);
//! for (a, b) in result.values.iter().zip(&golden) {
//!     assert!((a - b).abs() < 1e-3);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adsorption;
mod bfs;
mod cc;
mod delta;
pub mod engine;
pub mod incremental;
mod pagerank;
pub mod reference;
mod solver;
mod sssp;
mod sswp;

pub use adsorption::{normalize_inbound, Adsorption, AdsorptionParams};
pub use bfs::Bfs;
pub use cc::ConnectedComponents;
pub use delta::DeltaAlgorithm;
pub use incremental::{
    incremental_seeds, IncrementalAlgorithm, Invalidation, SeedPlan, SeedingStrategy,
};
pub use pagerank::PageRankDelta;
pub use solver::{scale_for_convergence, LinearSolver};
pub use sssp::Sssp;
pub use sswp::Sswp;

/// Maximum absolute difference between two value vectors; `f64::INFINITY`
/// entries compare equal to each other.
///
/// Convenience for tests that compare a backend against a golden reference.
///
/// ```
/// let a = [1.0, f64::INFINITY];
/// let b = [1.0 + 1e-9, f64::INFINITY];
/// assert!(gp_algorithms::max_abs_diff(&a, &b) < 1e-6);
/// ```
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "value vector length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            if x.is_infinite() && y.is_infinite() && x.signum() == y.signum() {
                0.0
            } else {
                (x - y).abs()
            }
        })
        .fold(0.0, f64::max)
}
