//! Asynchronous linear-equation solving in delta form.
//!
//! The paper's §II-B cites "many Linear Equation Solvers" among the
//! delta-accumulative algorithms (after Maiter). This module solves
//! `x = b + W·x` — fixpoints of damped linear systems — where `W` is the
//! (weighted, inbound-view) adjacency operator: exactly the computation
//! behind PageRank, Katz centrality, and label diffusion, but with an
//! arbitrary right-hand side.

use std::sync::Arc;

use gp_graph::{CsrGraph, EdgeRef, GraphBuilder, GraphView, VertexId};

use crate::DeltaAlgorithm;

/// Solves `x = b + Wᵀ·x` asynchronously: `reduce = +`,
/// `propagate(δ) = w_ij · δ`, `V_init = 0`, `ΔV_init = b_j`.
///
/// Converges when the spectral radius of `W` is below one; use
/// [`scale_for_convergence`] to damp an arbitrary weighted graph.
///
/// # Examples
///
/// ```
/// use gp_algorithms::{engine, scale_for_convergence, LinearSolver};
/// use gp_graph::generators::{erdos_renyi, WeightMode};
///
/// let raw = erdos_renyi(50, 200, WeightMode::Uniform(0.5, 2.0), 1);
/// let w = scale_for_convergence(&raw, 0.7);
/// let b: Vec<f64> = (0..50).map(|i| 1.0 + i as f64 * 0.01).collect();
/// let solver = LinearSolver::new(b, 1e-10);
/// let x = engine::run_sequential(&solver, &w).values;
/// assert!(x.iter().all(|v| v.is_finite()));
/// ```
#[derive(Debug, Clone)]
pub struct LinearSolver {
    rhs: Arc<Vec<f64>>,
    threshold: f64,
}

impl LinearSolver {
    /// Creates a solver for right-hand side `rhs` with local propagation
    /// `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative.
    pub fn new(rhs: Vec<f64>, threshold: f64) -> Self {
        assert!(threshold >= 0.0, "threshold must be nonnegative");
        LinearSolver {
            rhs: Arc::new(rhs),
            threshold,
        }
    }

    /// The right-hand side vector `b`.
    pub fn rhs(&self) -> &[f64] {
        &self.rhs
    }
}

impl DeltaAlgorithm for LinearSolver {
    type Value = f64;
    type Delta = f64;

    fn name(&self) -> &'static str {
        "linear-solver"
    }

    fn needs_weights(&self) -> bool {
        true
    }

    fn init_value(&self, _v: VertexId) -> f64 {
        0.0
    }

    fn identity_delta(&self) -> f64 {
        0.0
    }

    fn initial_delta(&self, v: VertexId, _graph: &dyn GraphView) -> Option<f64> {
        let b = self.rhs.get(v.index()).copied().unwrap_or(0.0);
        (b != 0.0).then_some(b)
    }

    fn reduce(&self, value: f64, delta: f64) -> f64 {
        value + delta
    }

    fn coalesce(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn propagation_basis(&self, old: f64, new: f64) -> Option<f64> {
        let delta = new - old;
        (delta.abs() > self.threshold).then_some(delta)
    }

    fn propagate(
        &self,
        basis: f64,
        _src: VertexId,
        _src_out_degree: u32,
        edge: EdgeRef,
    ) -> Option<f64> {
        Some(f64::from(edge.weight) * basis)
    }

    fn progress(&self, old: f64, new: f64) -> f64 {
        (new - old).abs()
    }

    fn value_to_f64(&self, v: f64) -> f64 {
        v
    }
}

/// Rescales a weighted graph so the iteration `x ← b + Wᵀx` converges:
/// inbound weights are normalized per vertex and multiplied by
/// `damping` (`0 < damping < 1`), giving `‖W‖_∞ ≤ damping < 1`.
///
/// # Panics
///
/// Panics unless `0 < damping < 1`.
pub fn scale_for_convergence(graph: &CsrGraph, damping: f64) -> CsrGraph {
    assert!(
        damping > 0.0 && damping < 1.0,
        "damping must be in (0,1) for convergence"
    );
    let n = graph.num_vertices();
    let mut in_sums = vec![0.0f64; n];
    for v in graph.vertices() {
        for e in graph.out_edges(v) {
            in_sums[e.other.index()] += f64::from(e.weight);
        }
    }
    let mut b = GraphBuilder::new(n);
    b.weighted(true).dedup(false).drop_self_loops(false);
    for v in graph.vertices() {
        for e in graph.out_edges(v) {
            let sum = in_sums[e.other.index()];
            let w = if sum > 0.0 {
                (damping * f64::from(e.weight) / sum) as f32
            } else {
                0.0
            };
            b.add_edge(v, e.other, w);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_sequential;
    use gp_graph::generators::{erdos_renyi, WeightMode};

    /// Dense Jacobi reference for x = b + W^T x.
    fn jacobi(graph: &CsrGraph, b: &[f64], eps: f64) -> Vec<f64> {
        let n = graph.num_vertices();
        let mut x = b.to_vec();
        let mut next = vec![0.0f64; n];
        for _ in 0..100_000 {
            next.copy_from_slice(b);
            for v in graph.vertices() {
                for e in graph.out_edges(v) {
                    next[e.other.index()] += f64::from(e.weight) * x[v.index()];
                }
            }
            let change = x
                .iter()
                .zip(&next)
                .map(|(a, c)| (a - c).abs())
                .fold(0.0, f64::max);
            std::mem::swap(&mut x, &mut next);
            if change < eps {
                break;
            }
        }
        x
    }

    #[test]
    fn solves_damped_system_to_jacobi_fixpoint() {
        let raw = erdos_renyi(120, 700, WeightMode::Uniform(0.5, 3.0), 8);
        let w = scale_for_convergence(&raw, 0.8);
        let b: Vec<f64> = (0..120).map(|i| (i % 7) as f64 * 0.3 + 0.1).collect();
        let solver = LinearSolver::new(b.clone(), 1e-11);
        let out = run_sequential(&solver, &w);
        let golden = jacobi(&w, &b, 1e-13);
        assert!(crate::max_abs_diff(&out.values, &golden) < 1e-5);
    }

    #[test]
    fn zero_rhs_terminates_immediately() {
        let raw = erdos_renyi(20, 60, WeightMode::Uniform(0.5, 1.5), 1);
        let w = scale_for_convergence(&raw, 0.5);
        let solver = LinearSolver::new(vec![0.0; 20], 1e-9);
        let out = run_sequential(&solver, &w);
        assert_eq!(out.events_processed, 0);
        assert!(out.values.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn scaling_bounds_inbound_mass() {
        let raw = erdos_renyi(60, 300, WeightMode::Uniform(0.5, 4.0), 5);
        let w = scale_for_convergence(&raw, 0.6);
        for v in w.vertices() {
            let sum: f64 = w.in_edges(v).map(|e| f64::from(e.weight)).sum();
            assert!(sum <= 0.6 + 1e-4, "vertex {v} inbound mass {sum}");
        }
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn damping_of_one_rejected() {
        let g = erdos_renyi(4, 8, WeightMode::Unweighted, 0);
        let _ = scale_for_convergence(&g, 1.0);
    }
}
