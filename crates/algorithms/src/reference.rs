//! Classic (non-delta) golden reference implementations.
//!
//! Textbook algorithms — power iteration, Dijkstra, queue BFS, fixpoint
//! label propagation, Jacobi — used to validate every delta-form backend in
//! the workspace. They intentionally share *no* code with the engines they
//! check.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use gp_graph::{CsrGraph, VertexId};

use crate::AdsorptionParams;

/// Unnormalized PageRank by damped Jacobi iteration:
/// `v_j ← (1−α) + α · Σ_{i→j} v_i / N(i)` until the largest per-vertex
/// change drops below `epsilon`.
///
/// This is the fixpoint PR-Delta converges to (paper §II-B / Maiter).
///
/// # Panics
///
/// Panics unless `0 < alpha < 1`.
pub fn pagerank(graph: &CsrGraph, alpha: f64, epsilon: f64) -> Vec<f64> {
    assert!(
        (0.0..1.0).contains(&alpha) && alpha > 0.0,
        "alpha must be in (0,1)"
    );
    let n = graph.num_vertices();
    let mut ranks = vec![1.0 - alpha; n];
    let mut next = vec![0.0f64; n];
    let degrees: Vec<f64> = graph
        .vertices()
        .map(|v| graph.out_degree(v) as f64)
        .collect();
    for _ in 0..10_000 {
        for x in next.iter_mut() {
            *x = 1.0 - alpha;
        }
        for v in graph.vertices() {
            let share = if degrees[v.index()] > 0.0 {
                alpha * ranks[v.index()] / degrees[v.index()]
            } else {
                continue;
            };
            for d in graph.out_neighbors(v) {
                next[d.index()] += share;
            }
        }
        let max_change = ranks
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        std::mem::swap(&mut ranks, &mut next);
        if max_change < epsilon {
            break;
        }
    }
    ranks
}

/// Dijkstra's algorithm from `root`; unreachable vertices get `+∞`.
///
/// # Panics
///
/// Panics if `root` is out of range or a negative weight is encountered.
pub fn sssp_dijkstra(graph: &CsrGraph, root: VertexId) -> Vec<f64> {
    let n = graph.num_vertices();
    assert!(root.index() < n, "root out of range");
    let mut dist = vec![f64::INFINITY; n];
    dist[root.index()] = 0.0;
    // f64 keys via ordered bits (distances are nonnegative).
    let key = |d: f64| -> u64 { d.to_bits() };
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    heap.push(Reverse((key(0.0), root.get())));
    while let Some(Reverse((k, v))) = heap.pop() {
        let d = f64::from_bits(k);
        if d > dist[v as usize] {
            continue;
        }
        for e in graph.out_edges(VertexId::new(v)) {
            assert!(e.weight >= 0.0, "dijkstra requires nonnegative weights");
            let nd = d + e.weight as f64;
            if nd < dist[e.other.index()] {
                dist[e.other.index()] = nd;
                heap.push(Reverse((key(nd), e.other.get())));
            }
        }
    }
    dist
}

/// Level BFS from `root`; unreachable vertices get `+∞`.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn bfs_levels(graph: &CsrGraph, root: VertexId) -> Vec<f64> {
    let n = graph.num_vertices();
    assert!(root.index() < n, "root out of range");
    let mut level = vec![f64::INFINITY; n];
    level[root.index()] = 0.0;
    let mut q = VecDeque::new();
    q.push_back(root);
    while let Some(v) = q.pop_front() {
        let next = level[v.index()] + 1.0;
        for d in graph.out_neighbors(v) {
            if level[d.index()].is_infinite() {
                level[d.index()] = next;
                q.push_back(*d);
            }
        }
    }
    level
}

/// Widest (maximum-bottleneck) paths from `root` by a Dijkstra-style
/// best-first search on the max-min semiring; unreachable vertices get 0,
/// the root gets `+∞`.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn sswp_widest(graph: &CsrGraph, root: VertexId) -> Vec<f64> {
    let n = graph.num_vertices();
    assert!(root.index() < n, "root out of range");
    let mut cap = vec![0.0f64; n];
    cap[root.index()] = f64::INFINITY;
    // Max-heap keyed on capacity bits (nonnegative f64s order like u64s).
    let mut heap: BinaryHeap<(u64, u32)> = BinaryHeap::new();
    heap.push((f64::INFINITY.to_bits(), root.get()));
    while let Some((k, v)) = heap.pop() {
        let c = f64::from_bits(k);
        if c < cap[v as usize] {
            continue;
        }
        for e in graph.out_edges(VertexId::new(v)) {
            let nc = c.min(f64::from(e.weight));
            if nc > cap[e.other.index()] {
                cap[e.other.index()] = nc;
                heap.push((nc.to_bits(), e.other.get()));
            }
        }
    }
    cap
}

/// Personalized PageRank by damped Jacobi iteration: like [`pagerank`] but
/// teleport mass `(1−α)` is injected only at `sources`.
///
/// # Panics
///
/// Panics unless `0 < alpha < 1`.
pub fn personalized_pagerank(
    graph: &CsrGraph,
    alpha: f64,
    sources: &[VertexId],
    epsilon: f64,
) -> Vec<f64> {
    assert!(
        (0.0..1.0).contains(&alpha) && alpha > 0.0,
        "alpha must be in (0,1)"
    );
    let n = graph.num_vertices();
    let mut base = vec![0.0f64; n];
    for s in sources {
        base[s.index()] = 1.0 - alpha;
    }
    let mut ranks = base.clone();
    let mut next = vec![0.0f64; n];
    let degrees: Vec<f64> = graph
        .vertices()
        .map(|v| graph.out_degree(v) as f64)
        .collect();
    for _ in 0..100_000 {
        next.copy_from_slice(&base);
        for v in graph.vertices() {
            if degrees[v.index()] == 0.0 {
                continue;
            }
            let share = alpha * ranks[v.index()] / degrees[v.index()];
            for d in graph.out_neighbors(v) {
                next[d.index()] += share;
            }
        }
        let max_change = ranks
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        std::mem::swap(&mut ranks, &mut next);
        if max_change < epsilon {
            break;
        }
    }
    ranks
}

/// Max-label propagation to fixpoint: every vertex ends with the largest
/// vertex id that reaches it along directed paths (its own id included).
///
/// On symmetric graphs this labels weakly connected components.
pub fn cc_labels(graph: &CsrGraph) -> Vec<f64> {
    let n = graph.num_vertices();
    let mut label: Vec<i64> = (0..n as i64).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for v in graph.vertices() {
            let lv = label[v.index()];
            for d in graph.out_neighbors(v) {
                if lv > label[d.index()] {
                    label[d.index()] = lv;
                    changed = true;
                }
            }
        }
    }
    label.into_iter().map(|l| l as f64).collect()
}

/// Weakly connected components via union-find; returns the *representative
/// member count*, i.e. the number of components. Used to cross-check
/// [`cc_labels`] on symmetric graphs.
pub fn count_components_union_find(graph: &CsrGraph) -> usize {
    let n = graph.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for v in graph.vertices() {
        for d in graph.out_neighbors(v) {
            let a = find(&mut parent, v.get());
            let b = find(&mut parent, d.get());
            if a != b {
                parent[a as usize] = b;
            }
        }
    }
    (0..n as u32).filter(|&x| find(&mut parent, x) == x).count()
}

/// Adsorption by Jacobi iteration:
/// `v_j ← β_j·I_j + Σ_{i→j} α_i · E_ij · v_i` until the largest change
/// drops below `epsilon`. Expects inbound-normalized weights (see
/// [`crate::normalize_inbound`]).
pub fn adsorption_jacobi(graph: &CsrGraph, params: &AdsorptionParams, epsilon: f64) -> Vec<f64> {
    let n = graph.num_vertices();
    let base: Vec<f64> = (0..n)
        .map(|i| {
            let v = VertexId::from_index(i);
            f64::from(params.beta(v)) * f64::from(params.injection(v))
        })
        .collect();
    let mut values = base.clone();
    let mut next = vec![0.0f64; n];
    for _ in 0..100_000 {
        next.copy_from_slice(&base);
        for v in graph.vertices() {
            let a = f64::from(params.alpha(v));
            let contribution = a * values[v.index()];
            for e in graph.out_edges(v) {
                next[e.other.index()] += f64::from(e.weight) * contribution;
            }
        }
        let max_change = values
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        std::mem::swap(&mut values, &mut next);
        if max_change < epsilon {
            break;
        }
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_sequential;
    use crate::{normalize_inbound, Adsorption, Bfs, ConnectedComponents, PageRankDelta, Sssp};
    use gp_graph::generators::{erdos_renyi, grid_2d, rmat, RmatConfig, WeightMode};

    #[test]
    fn delta_pagerank_matches_power_iteration() {
        let g = rmat(&RmatConfig::graph500(256, 2_048), 4);
        let golden = pagerank(&g, 0.85, 1e-12);
        let out = run_sequential(&PageRankDelta::new(0.85, 1e-10), &g);
        assert!(crate::max_abs_diff(&golden, &out.values) < 1e-5);
    }

    #[test]
    fn delta_sssp_matches_dijkstra() {
        let g = erdos_renyi(300, 2_000, WeightMode::Uniform(1.0, 10.0), 6);
        let root = VertexId::new(0);
        let golden = sssp_dijkstra(&g, root);
        let out = run_sequential(&Sssp::new(root), &g);
        assert!(crate::max_abs_diff(&golden, &out.values) < 1e-6);
    }

    #[test]
    fn delta_bfs_matches_queue_bfs() {
        let g = grid_2d(20, 20, WeightMode::Unweighted, 0);
        let root = VertexId::new(5);
        let golden = bfs_levels(&g, root);
        let out = run_sequential(&Bfs::new(root), &g);
        assert!(crate::max_abs_diff(&golden, &out.values) < 1e-9);
    }

    #[test]
    fn delta_cc_matches_label_propagation() {
        let g = erdos_renyi(200, 500, WeightMode::Unweighted, 7);
        let golden = cc_labels(&g);
        let out = run_sequential(&ConnectedComponents::new(), &g);
        assert!(crate::max_abs_diff(&golden, &out.values) < 1e-9);
    }

    #[test]
    fn label_count_matches_union_find_on_symmetric_graphs() {
        let g = gp_graph::generators::watts_strogatz(150, 2, 0.3, WeightMode::Unweighted, 3);
        let labels = cc_labels(&g);
        let mut distinct: Vec<u64> = labels.iter().map(|l| *l as u64).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), count_components_union_find(&g));
    }

    #[test]
    fn delta_adsorption_matches_jacobi() {
        let raw = erdos_renyi(150, 900, WeightMode::Uniform(0.5, 2.0), 9);
        let g = normalize_inbound(&raw);
        let params = AdsorptionParams::random(150, 42);
        let golden = adsorption_jacobi(&g, &params, 1e-12);
        let out = run_sequential(&Adsorption::new(params.clone(), 1e-10), &g);
        assert!(crate::max_abs_diff(&golden, &out.values) < 1e-5);
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let mut b = gp_graph::GraphBuilder::new(3);
        b.add_edge(VertexId::new(0), VertexId::new(1), 1.0);
        let g = b.build();
        let d = sssp_dijkstra(&g, VertexId::new(0));
        assert!(d[2].is_infinite());
    }
}
