//! Incremental recomputation rules for streaming edge updates.
//!
//! Given an algorithm's *converged* state on a graph and a batch of edge
//! insertions/deletions, this module computes the **seed plan**: the
//! smallest set of state resets and initial events from which the normal
//! event-driven engines re-converge to the same values a from-scratch run
//! on the mutated graph would produce. This is the payoff of the
//! delta-accumulative form (§II-B): updates only perturb the affected
//! frontier, so re-convergence is seeded there instead of restarting.
//!
//! Two seeding strategies cover the Table II algorithms:
//!
//! * [`SeedingStrategy::DeltaCorrection`] (PageRank-Delta): reduce is
//!   invertible (`+`), so edge changes at a source `u` are repaired by
//!   *correction events* — for every pre-batch out-edge, retract the share
//!   `u` historically sent (`negate(propagate(...))` under the old degree),
//!   and for every post-batch out-edge, grant the share under the new
//!   degree. Targets whose net correction is non-zero become the dirty
//!   frontier.
//! * [`SeedingStrategy::Monotone`] (SSSP/BFS/CC/SSWP): reduce is a
//!   selection (`min`/`max`) with no inverse, so deletions may strand
//!   values that are no longer derivable. Stranded vertices are found by
//!   *invalidation* (see [`Invalidation`]), reset to their init value, and
//!   re-seeded from their surviving in-neighbors; insertions just seed the
//!   propagated contribution at the new target.
//!
//! The two invalidation modes differ in how they prove a value stranded:
//!
//! * [`Invalidation::SupportTest`] — Ramalingam–Reps-style: a suspect is
//!   kept only if no intact in-neighbor still *supports* its value
//!   (re-derives it exactly). Sound only when propagation is strictly
//!   worse-making along cycles (SSSP with positive weights, BFS), so a
//!   cycle cannot support itself.
//! * [`Invalidation::Reachability`] — conservative closure: everything
//!   flow-consistently reachable from a suspect is invalidated, without
//!   support checks. Required for CC and SSWP, where a cycle of equal
//!   values *can* self-support under pass-through / min-capped propagation
//!   and the support test would wrongly keep stale values alive.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use gp_graph::{AppliedBatch, EdgeRef, GraphView, VertexId};

use crate::engine::{run_sequential_seeded, EngineOutput};
use crate::DeltaAlgorithm;

/// How stranded values are detected after edge deletions (monotone
/// algorithms only). See the [module docs](self) for the soundness
/// argument behind each mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invalidation {
    /// Keep a suspect unless an intact in-neighbor re-derives its exact
    /// value. Requires strictly worse-making propagation along cycles.
    SupportTest,
    /// Invalidate the whole flow-consistent closure of the suspects.
    /// Conservative; sound for self-supporting-cycle algorithms.
    Reachability,
}

/// Per-algorithm rule for turning an [`AppliedBatch`] into seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedingStrategy {
    /// Invertible reduce: emit retract/grant correction events (PR-Delta).
    DeltaCorrection,
    /// Selective reduce: invalidate, reset, and re-seed from survivors.
    Monotone(Invalidation),
}

/// A [`DeltaAlgorithm`] that supports incremental recomputation.
///
/// The extra hooks recover, from a *converged* vertex value, what the
/// vertex has been telling its neighbors — which is what edge updates
/// perturb.
pub trait IncrementalAlgorithm: DeltaAlgorithm {
    /// Which seeding rule applies to this algorithm.
    fn strategy(&self) -> SeedingStrategy;

    /// The propagation basis corresponding to a converged `value`: the
    /// total a vertex holding `value` has propagated (delta-correction) or
    /// would propagate to support a neighbor (monotone). For every Table
    /// II algorithm this is the value itself.
    fn basis_of(&self, value: Self::Value) -> Self::Delta;

    /// Inverse of `delta` under [`coalesce`](DeltaAlgorithm::coalesce):
    /// `coalesce(d, negate(d))` must be the identity. Only invoked for
    /// [`SeedingStrategy::DeltaCorrection`]; the default (the identity
    /// delta) suits monotone algorithms, which never retract.
    fn negate(&self, _delta: Self::Delta) -> Self::Delta {
        self.identity_delta()
    }
}

/// Output of [`incremental_seeds`]: the events to inject and the vertices
/// whose state was reset, both sorted by vertex id (deterministic).
#[derive(Debug, Clone)]
pub struct SeedPlan<D> {
    /// One coalesced seed event per dirty vertex. Seeds that would not
    /// change the vertex's state are already filtered out.
    pub seeds: Vec<(VertexId, D)>,
    /// Vertices reset to their init value (monotone deletions only).
    pub invalidated: Vec<VertexId>,
}

impl<D> SeedPlan<D> {
    /// Number of distinct vertices receiving a seed event.
    pub fn dirty_vertices(&self) -> usize {
        self.seeds.len()
    }
}

/// Computes the seed plan for re-converging `values` after `batch`.
///
/// `graph` must be the **post-batch** topology (the overlay after
/// [`OverlayGraph::apply`](gp_graph::OverlayGraph::apply)); `values` the
/// state the algorithm had converged to **before** the batch. Invalidated
/// entries of `values` are reset in place; feed the result straight into
/// [`run_sequential_seeded`] (or the accelerator's seeded mode) to
/// re-converge.
///
/// # Panics
///
/// Panics if `values.len() != graph.num_vertices()`.
pub fn incremental_seeds<A: IncrementalAlgorithm, G: GraphView>(
    algo: &A,
    graph: &G,
    values: &mut [A::Value],
    batch: &AppliedBatch,
) -> SeedPlan<A::Delta> {
    assert_eq!(
        values.len(),
        graph.num_vertices(),
        "state length must match the vertex count"
    );
    match algo.strategy() {
        SeedingStrategy::DeltaCorrection => delta_correction_seeds(algo, graph, values, batch),
        SeedingStrategy::Monotone(inv) => monotone_seeds(algo, graph, values, batch, inv),
    }
}

/// Golden incremental re-convergence: seed plan + sequential seeded run.
/// The reference every accelerator-backed incremental path is validated
/// against (differentially, vs. a from-scratch run on the mutated graph).
pub fn rerun_incremental<A: IncrementalAlgorithm, G: GraphView>(
    algo: &A,
    graph: &G,
    values: &mut [A::Value],
    batch: &AppliedBatch,
) -> EngineOutput {
    let plan = incremental_seeds(algo, graph, values, batch);
    run_sequential_seeded(algo, graph, values, &plan.seeds)
}

fn coalesce_into<A: DeltaAlgorithm + ?Sized>(
    algo: &A,
    map: &mut BTreeMap<u32, A::Delta>,
    t: VertexId,
    d: A::Delta,
) {
    match map.entry(t.get()) {
        std::collections::btree_map::Entry::Occupied(mut e) => {
            let prev = *e.get();
            *e.get_mut() = algo.coalesce(prev, d);
        }
        std::collections::btree_map::Entry::Vacant(e) => {
            e.insert(d);
        }
    }
}

/// Drops seeds the reduce operator would ignore; what survives is exactly
/// the dirty frontier.
fn into_plan<A: DeltaAlgorithm>(
    algo: &A,
    values: &[A::Value],
    seeds: BTreeMap<u32, A::Delta>,
    invalidated: Vec<VertexId>,
) -> SeedPlan<A::Delta> {
    let seeds = seeds
        .into_iter()
        .map(|(t, d)| (VertexId::new(t), d))
        .filter(|&(t, d)| algo.reduce(values[t.index()], d) != values[t.index()])
        .collect();
    SeedPlan { seeds, invalidated }
}

fn delta_correction_seeds<A: IncrementalAlgorithm, G: GraphView>(
    algo: &A,
    graph: &G,
    values: &mut [A::Value],
    batch: &AppliedBatch,
) -> SeedPlan<A::Delta> {
    let mut seeds: BTreeMap<u32, A::Delta> = BTreeMap::new();
    for (u, old_edges) in &batch.old_out {
        let basis = algo.basis_of(values[u.index()]);
        // Retract what `u` sent under its old list and degree...
        let old_deg = old_edges.len() as u32;
        for &e in old_edges {
            if let Some(share) = algo.propagate(basis, *u, old_deg, e) {
                coalesce_into(algo, &mut seeds, e.other, algo.negate(share));
            }
        }
        // ...and grant what it sends under the new ones. Unchanged targets
        // still shift when the degree changes (the share is `α·v/deg`).
        let new_deg = graph.out_degree(*u);
        for i in 0..new_deg {
            let e = graph.out_edge(*u, i);
            if let Some(share) = algo.propagate(basis, *u, new_deg, e) {
                coalesce_into(algo, &mut seeds, e.other, share);
            }
        }
    }
    into_plan(algo, values, seeds, Vec::new())
}

/// Pre-batch out-degree of `u` (every effectively touched source has its
/// old list captured in the batch).
fn old_degree(batch: &AppliedBatch, u: VertexId) -> Option<u32> {
    batch
        .old_out
        .binary_search_by_key(&u.get(), |e| e.0.get())
        .ok()
        .map(|i| batch.old_out[i].1.len() as u32)
}

fn monotone_seeds<A: IncrementalAlgorithm, G: GraphView>(
    algo: &A,
    graph: &G,
    values: &mut [A::Value],
    batch: &AppliedBatch,
    invalidation: Invalidation,
) -> SeedPlan<A::Delta> {
    // 1. Suspects: a deleted edge (u, t) strands t only if the value u
    //    propagated along it reproduces t's current value.
    let mut suspects: BTreeSet<u32> = BTreeSet::new();
    for &(u, t, w) in &batch.deletes {
        if values[t.index()] == algo.init_value(t) {
            continue;
        }
        let old_deg = old_degree(batch, u).expect("deleted edge source has a captured old list");
        let edge = EdgeRef {
            other: t,
            weight: w,
        };
        if let Some(c) = algo.propagate(algo.basis_of(values[u.index()]), u, old_deg, edge) {
            if algo.reduce(algo.init_value(t), c) == values[t.index()] {
                suspects.insert(t.get());
            }
        }
    }

    // 2. Close the suspect set into the invalidated set.
    let invalid = match invalidation {
        Invalidation::SupportTest => support_test_closure(algo, graph, values, &suspects),
        Invalidation::Reachability => reachability_closure(algo, graph, values, &suspects),
    };

    // 3. Reset, then re-seed each invalidated vertex from its own initial
    //    delta and from intact in-neighbors (post-batch adjacency, so
    //    inserted edges into the region are covered here).
    for &t in &invalid {
        let t = VertexId::new(t);
        values[t.index()] = algo.init_value(t);
    }
    let mut seeds: BTreeMap<u32, A::Delta> = BTreeMap::new();
    for &t in &invalid {
        let t = VertexId::new(t);
        if let Some(d) = algo.initial_delta(t, graph) {
            coalesce_into(algo, &mut seeds, t, d);
        }
        for i in 0..graph.in_degree(t) {
            let e = graph.in_edge(t, i);
            let s = e.other;
            if invalid.contains(&s.get()) {
                continue;
            }
            let se = EdgeRef {
                other: t,
                weight: e.weight,
            };
            if let Some(c) =
                algo.propagate(algo.basis_of(values[s.index()]), s, graph.out_degree(s), se)
            {
                coalesce_into(algo, &mut seeds, t, c);
            }
        }
    }

    // 4. Insertions between intact vertices seed the propagated
    //    contribution directly. (An invalidated source re-propagates over
    //    all its out-edges when it re-converges; an invalidated target was
    //    already re-seeded over all its in-edges above.)
    for &(u, t, w) in &batch.inserts {
        if invalid.contains(&u.get()) || invalid.contains(&t.get()) {
            continue;
        }
        let edge = EdgeRef {
            other: t,
            weight: w,
        };
        if let Some(c) = algo.propagate(
            algo.basis_of(values[u.index()]),
            u,
            graph.out_degree(u),
            edge,
        ) {
            coalesce_into(algo, &mut seeds, t, c);
        }
    }

    let invalidated = invalid.into_iter().map(VertexId::new).collect();
    into_plan(algo, values, seeds, invalidated)
}

/// Whether some intact source (or the vertex's own initial delta) still
/// re-derives `values[t]` exactly.
fn is_supported<A: IncrementalAlgorithm, G: GraphView>(
    algo: &A,
    graph: &G,
    values: &[A::Value],
    invalid: &BTreeSet<u32>,
    t: VertexId,
) -> bool {
    let init = algo.init_value(t);
    if let Some(d) = algo.initial_delta(t, graph) {
        if algo.reduce(init, d) == values[t.index()] {
            return true;
        }
    }
    for i in 0..graph.in_degree(t) {
        let e = graph.in_edge(t, i);
        let s = e.other;
        if invalid.contains(&s.get()) {
            continue;
        }
        let se = EdgeRef {
            other: t,
            weight: e.weight,
        };
        if let Some(c) =
            algo.propagate(algo.basis_of(values[s.index()]), s, graph.out_degree(s), se)
        {
            if algo.reduce(init, c) == values[t.index()] {
                return true;
            }
        }
    }
    false
}

fn support_test_closure<A: IncrementalAlgorithm, G: GraphView>(
    algo: &A,
    graph: &G,
    values: &[A::Value],
    suspects: &BTreeSet<u32>,
) -> BTreeSet<u32> {
    let mut invalid: BTreeSet<u32> = BTreeSet::new();
    let mut queue: VecDeque<u32> = suspects.iter().copied().collect();
    let mut queued: BTreeSet<u32> = suspects.clone();
    while let Some(t) = queue.pop_front() {
        queued.remove(&t);
        if invalid.contains(&t) {
            continue;
        }
        let tid = VertexId::new(t);
        if is_supported(algo, graph, values, &invalid, tid) {
            continue;
        }
        invalid.insert(t);
        // Every flow-consistent out-neighbor may have leaned on t; re-check
        // it (a vertex cleared earlier can be re-suspected — each
        // invalidation re-examines its dependents, so the loop reaches the
        // greatest fixpoint of "supported").
        let deg = graph.out_degree(tid);
        let basis = algo.basis_of(values[tid.index()]);
        for i in 0..deg {
            let e = graph.out_edge(tid, i);
            let w = e.other;
            if invalid.contains(&w.get()) || values[w.index()] == algo.init_value(w) {
                continue;
            }
            if let Some(c) = algo.propagate(basis, tid, deg, e) {
                if algo.reduce(algo.init_value(w), c) == values[w.index()] && queued.insert(w.get())
                {
                    queue.push_back(w.get());
                }
            }
        }
    }
    invalid
}

fn reachability_closure<A: IncrementalAlgorithm, G: GraphView>(
    algo: &A,
    graph: &G,
    values: &[A::Value],
    suspects: &BTreeSet<u32>,
) -> BTreeSet<u32> {
    let mut invalid: BTreeSet<u32> = suspects.clone();
    let mut queue: VecDeque<u32> = suspects.iter().copied().collect();
    while let Some(t) = queue.pop_front() {
        let tid = VertexId::new(t);
        let deg = graph.out_degree(tid);
        let basis = algo.basis_of(values[tid.index()]);
        for i in 0..deg {
            let e = graph.out_edge(tid, i);
            let w = e.other;
            if invalid.contains(&w.get()) || values[w.index()] == algo.init_value(w) {
                continue;
            }
            if let Some(c) = algo.propagate(basis, tid, deg, e) {
                if algo.reduce(algo.init_value(w), c) == values[w.index()] {
                    invalid.insert(w.get());
                    queue.push_back(w.get());
                }
            }
        }
    }
    invalid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{initial_state, run_sequential};
    use crate::{Bfs, ConnectedComponents, PageRankDelta, Sssp, Sswp};
    use gp_graph::generators::{erdos_renyi, WeightMode};
    use gp_graph::rng::{Rng, StdRng};
    use gp_graph::{EdgeUpdate, OverlayGraph};

    fn random_batch(o: &OverlayGraph, rng: &mut StdRng, count: usize) -> Vec<EdgeUpdate> {
        let n = o.base().num_vertices() as u32;
        (0..count)
            .map(|_| {
                let src = VertexId::new(rng.gen_range(0..n));
                let dst = VertexId::new(rng.gen_range(0..n));
                if rng.gen_range(0..2u32) == 0 {
                    EdgeUpdate::Delete { src, dst }
                } else {
                    EdgeUpdate::Insert {
                        src,
                        dst,
                        weight: rng.gen_range(1.0..9.0f32),
                    }
                }
            })
            .collect()
    }

    /// Converge, mutate, re-converge incrementally; compare against a
    /// from-scratch run on the mutated graph.
    fn check<A: IncrementalAlgorithm>(algo: &A, weights: WeightMode, seed: u64, tol: f64) {
        let g = erdos_renyi(80, 400, weights, seed);
        let mut o = OverlayGraph::new(g);
        let (mut values, seeds) = initial_state(algo, &o);
        run_sequential_seeded(algo, &o, &mut values, &seeds);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        for round in 0..6 {
            let updates = random_batch(&o, &mut rng, 12);
            let batch = o.apply(&updates);
            let inc = rerun_incremental(algo, &o, &mut values, &batch);
            let scratch = run_sequential(algo, &o.to_csr());
            assert!(
                crate::max_abs_diff(&inc.values, &scratch.values) <= tol,
                "{} diverged at round {round}: {:e} > {tol:e}",
                algo.name(),
                crate::max_abs_diff(&inc.values, &scratch.values)
            );
        }
    }

    #[test]
    fn pagerank_incremental_matches_scratch() {
        check(
            &PageRankDelta::new(0.85, 1e-12),
            WeightMode::Unweighted,
            11,
            1e-6,
        );
    }

    #[test]
    fn sssp_incremental_matches_scratch() {
        check(
            &Sssp::new(VertexId::new(0)),
            WeightMode::Uniform(1.0, 10.0),
            12,
            0.0,
        );
    }

    #[test]
    fn bfs_incremental_matches_scratch() {
        check(&Bfs::new(VertexId::new(0)), WeightMode::Unweighted, 13, 0.0);
    }

    #[test]
    fn cc_incremental_matches_scratch() {
        check(&ConnectedComponents::new(), WeightMode::Unweighted, 14, 0.0);
    }

    #[test]
    fn sswp_incremental_matches_scratch() {
        check(
            &Sswp::new(VertexId::new(0)),
            WeightMode::Uniform(1.0, 10.0),
            15,
            0.0,
        );
    }

    #[test]
    fn empty_batch_seeds_nothing() {
        let g = erdos_renyi(30, 120, WeightMode::Unweighted, 3);
        let mut o = OverlayGraph::new(g);
        let algo = ConnectedComponents::new();
        let (mut values, seeds) = initial_state(&algo, &o);
        run_sequential_seeded(&algo, &o, &mut values, &seeds);
        let batch = o.apply(&[]);
        let plan = incremental_seeds(&algo, &o, &mut values, &batch);
        assert!(plan.seeds.is_empty());
        assert!(plan.invalidated.is_empty());
    }

    /// The textbook CC failure mode for support-test invalidation: a cycle
    /// of equal labels self-supports, so only the reachability closure
    /// tears the stale component label down. This pins the strategy choice.
    #[test]
    fn cc_component_split_drops_stale_labels() {
        // 0 -> 1 -> 2 -> 0 cycle fed by vertex 4 via 4 -> 0, plus an
        // isolated edge 3 -> 4 keeping 4's label alive.
        let mut b = gp_graph::GraphBuilder::new(5);
        b.symmetric(true);
        b.add_edge(VertexId::new(0), VertexId::new(1), 1.0);
        b.add_edge(VertexId::new(1), VertexId::new(2), 1.0);
        b.add_edge(VertexId::new(2), VertexId::new(0), 1.0);
        b.add_edge(VertexId::new(4), VertexId::new(0), 1.0);
        b.add_edge(VertexId::new(3), VertexId::new(4), 1.0);
        let mut o = OverlayGraph::new(b.build());
        let algo = ConnectedComponents::new();
        let (mut values, seeds) = initial_state(&algo, &o);
        run_sequential_seeded(&algo, &o, &mut values, &seeds);
        // One component: everybody carries label 4.
        assert!(values.iter().all(|&v| v == 4));
        // Cut the cycle off: delete both directions of 4 <-> 0.
        let batch = o.apply(&[
            EdgeUpdate::Delete {
                src: VertexId::new(4),
                dst: VertexId::new(0),
            },
            EdgeUpdate::Delete {
                src: VertexId::new(0),
                dst: VertexId::new(4),
            },
        ]);
        let inc = rerun_incremental(&algo, &o, &mut values, &batch);
        let scratch = run_sequential(&algo, &o.to_csr());
        assert_eq!(inc.values, scratch.values);
        assert_eq!(inc.values[..3], [2.0, 2.0, 2.0], "cycle must relabel");
    }
}
