//! The DDR3-style main-memory timing model.

use std::collections::VecDeque;

use gp_sim::{Cycle, EventWheel};

use crate::protocol::{IssueRecord, RowOutcome};
use crate::{DramConfig, MemRequest, ReqId, TrafficClass, LINE_BYTES};

/// Aggregate off-chip traffic statistics.
///
/// `accesses`/`bytes`/`useful_bytes` are indexed per [`TrafficClass`];
/// helpers expose totals. These counters are the raw data of Figs. 11
/// and 12.
#[derive(Debug, Default, Clone)]
pub struct MemStats {
    accesses: [u64; 6],
    bytes: [u64; 6],
    useful_bytes: [u64; 6],
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row activations on an idle (precharged) bank.
    pub row_misses: u64,
    /// Row conflicts (different row open: precharge + activate).
    pub row_conflicts: u64,
    /// Requests rejected because a channel queue was full.
    pub rejections: u64,
    /// Cycles any channel bus was transferring data (sum over channels).
    pub bus_busy_cycles: u64,
}

impl MemStats {
    /// Number of requests of `class` serviced.
    pub fn accesses(&self, class: TrafficClass) -> u64 {
        self.accesses[class.index()]
    }

    /// Bytes transferred for `class`.
    pub fn bytes(&self, class: TrafficClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Bytes the requesters actually consumed for `class`.
    pub fn useful_bytes(&self, class: TrafficClass) -> u64 {
        self.useful_bytes[class.index()]
    }

    /// Total off-chip accesses.
    pub fn total_accesses(&self) -> u64 {
        self.accesses.iter().sum()
    }

    /// Total bytes moved off-chip.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total useful bytes (Fig. 12 numerator).
    pub fn total_useful_bytes(&self) -> u64 {
        self.useful_bytes.iter().sum()
    }

    /// Fraction of transferred bytes that were consumed (Fig. 12).
    pub fn utilization(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            self.total_useful_bytes() as f64 / total as f64
        }
    }

    /// Row-buffer hit rate over all activations.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Accumulates `other` into `self` (used to fold per-shard memory
    /// systems into one report in the parallel runner).
    pub fn merge(&mut self, other: &MemStats) {
        for i in 0..self.accesses.len() {
            self.accesses[i] += other.accesses[i];
            self.bytes[i] += other.bytes[i];
            self.useful_bytes[i] += other.useful_bytes[i];
        }
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.rejections += other.rejections;
        self.bus_busy_cycles += other.bus_busy_cycles;
    }
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    ready_at: Cycle,
}

#[derive(Debug)]
struct Channel {
    queue: VecDeque<MemRequest>,
    banks: Vec<Bank>,
    bus_free_at: Cycle,
}

/// The multi-channel DRAM model.
///
/// Submit transactions with [`MemorySystem::request`], advance the model
/// with [`MemorySystem::tick`] once per cycle, and harvest finished
/// transactions with [`MemorySystem::pop_completion`]. Ordering between
/// requests to different banks/channels is not guaranteed (bank-level
/// parallelism); requests to the same bank complete in issue order.
///
/// See the crate-level example for the canonical polling loop.
#[derive(Debug)]
pub struct MemorySystem {
    config: DramConfig,
    channels: Vec<Channel>,
    completions: EventWheel<MemRequest>,
    ready: VecDeque<MemRequest>,
    stats: MemStats,
    next_id: u64,
    in_flight: usize,
    trace: Option<Vec<IssueRecord>>,
}

impl MemorySystem {
    /// Creates a memory system from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`DramConfig::validate`].
    pub fn new(config: DramConfig) -> Self {
        config.validate().expect("invalid DRAM configuration");
        let channels = (0..config.channels)
            .map(|_| Channel {
                queue: VecDeque::with_capacity(config.queue_depth),
                banks: vec![
                    Bank {
                        open_row: None,
                        ready_at: Cycle::ZERO,
                    };
                    config.banks_per_channel
                ],
                bus_free_at: Cycle::ZERO,
            })
            .collect();
        MemorySystem {
            config,
            channels,
            completions: EventWheel::new(),
            ready: VecDeque::new(),
            stats: MemStats::default(),
            next_id: 0,
            in_flight: 0,
            trace: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Starts recording one [`IssueRecord`] per issued transaction
    /// (a debug hook for [`crate::check_protocol`]). Off by default; the
    /// trace grows unbounded while enabled, so reserve it for bounded
    /// verification workloads.
    pub fn enable_trace(&mut self) {
        self.trace.get_or_insert_with(Vec::new);
    }

    /// Takes the accumulated command trace, leaving recording enabled.
    pub fn take_trace(&mut self) -> Vec<IssueRecord> {
        self.trace.as_mut().map(std::mem::take).unwrap_or_default()
    }

    fn channel_of(&self, addr: u64) -> usize {
        ((addr / LINE_BYTES) % self.config.channels as u64) as usize
    }

    /// Submits a request; returns its assigned id.
    ///
    /// # Errors
    ///
    /// Hands the request back when the target channel's queue is full
    /// (backpressure) — retry on a later cycle.
    pub fn request(&mut self, _now: Cycle, mut req: MemRequest) -> Result<ReqId, MemRequest> {
        let ch = self.channel_of(req.addr());
        if self.channels[ch].queue.len() >= self.config.queue_depth {
            self.stats.rejections += 1;
            return Err(req);
        }
        req.id = ReqId(self.next_id);
        self.next_id += 1;
        self.in_flight += 1;
        let id = req.id;
        self.channels[ch].queue.push_back(req);
        Ok(id)
    }

    /// Whether the channel that would serve `addr` can accept a request.
    pub fn can_accept(&self, addr: u64) -> bool {
        let ch = self.channel_of(addr);
        self.channels[ch].queue.len() < self.config.queue_depth
    }

    /// Advances the model one cycle: each channel may issue one queued
    /// request (FR-FCFS within a bounded window) and due completions become
    /// available to [`MemorySystem::pop_completion`].
    pub fn tick(&mut self, now: Cycle) {
        for ch_idx in 0..self.channels.len() {
            self.issue_one(ch_idx, now);
        }
        while let Some(req) = self.completions.pop_due(now) {
            self.ready.push_back(req);
        }
    }

    fn issue_one(&mut self, ch_idx: usize, now: Cycle) {
        // Select within the scheduler window: prefer the first row hit on a
        // ready bank, otherwise the oldest request whose bank is ready.
        let (row_bytes, banks_per_channel, window) = (
            self.config.row_bytes,
            self.config.banks_per_channel as u64,
            self.config.sched_window,
        );
        let ch = &mut self.channels[ch_idx];
        if ch.bus_free_at > now {
            return;
        }
        let mut pick: Option<usize> = None;
        let mut fallback: Option<usize> = None;
        for (i, req) in ch.queue.iter().take(window).enumerate() {
            let row = req.addr() / row_bytes;
            let bank = (row % banks_per_channel) as usize;
            if ch.banks[bank].ready_at > now {
                continue;
            }
            if ch.banks[bank].open_row == Some(row) {
                pick = Some(i);
                break;
            }
            if fallback.is_none() {
                fallback = Some(i);
            }
        }
        let Some(i) = pick.or(fallback) else { return };
        let req = ch.queue.remove(i).expect("scheduler window within queue");
        let row = req.addr() / row_bytes;
        let bank_idx = (row % banks_per_channel) as usize;
        let bank = &mut ch.banks[bank_idx];

        let outcome = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                RowOutcome::Hit
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                RowOutcome::Conflict
            }
            None => {
                self.stats.row_misses += 1;
                RowOutcome::Miss
            }
        };
        let access_lat = outcome.access_latency(&self.config);
        let burst = (f64::from(req.bytes()) / self.config.bytes_per_cycle).ceil() as u64;
        let burst = burst.max(1);
        let done = now + access_lat + burst;
        bank.open_row = Some(row);
        // Column accesses to an open row pipeline at burst rate (tCCD);
        // only activation/precharge occupies the bank beyond the transfer.
        bank.ready_at = now + (access_lat - self.config.t_cas) + burst;
        ch.bus_free_at = now + burst; // data bus occupied for the burst
        self.stats.bus_busy_cycles += burst;
        if let Some(trace) = &mut self.trace {
            trace.push(IssueRecord {
                at: now.get(),
                channel: ch_idx,
                bank: bank_idx,
                row,
                outcome,
                burst,
            });
        }

        let idx = req.class().index();
        self.stats.accesses[idx] += 1;
        self.stats.bytes[idx] += u64::from(req.bytes());
        self.stats.useful_bytes[idx] += u64::from(req.useful_bytes());

        self.completions.schedule(done, req);
    }

    /// Pops one finished request, if any completed by `now`.
    pub fn pop_completion(&mut self, _now: Cycle) -> Option<MemRequest> {
        let req = self.ready.pop_front();
        if req.is_some() {
            self.in_flight -= 1;
        }
        req
    }

    /// Number of submitted requests not yet popped.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Whether queues, banks, and completion buffers are all drained.
    pub fn is_idle(&self) -> bool {
        self.in_flight == 0
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The earliest cycle at which new activity can occur (for fast-forward
    /// loops); `Cycle::NEVER` when idle.
    pub fn next_event(&self) -> Cycle {
        if self.channels.iter().any(|c| !c.queue.is_empty()) || !self.ready.is_empty() {
            Cycle::ZERO
        } else {
            self.completions.next_due()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_complete(
        mem: &mut MemorySystem,
        start: Cycle,
        count: usize,
    ) -> Vec<(Cycle, MemRequest)> {
        let mut done = Vec::new();
        let mut now = start;
        for _ in 0..1_000_000 {
            mem.tick(now);
            while let Some(r) = mem.pop_completion(now) {
                done.push((now, r));
            }
            if done.len() >= count {
                break;
            }
            now = now.next();
        }
        assert_eq!(done.len(), count, "requests did not complete");
        done
    }

    #[test]
    fn single_read_latency_is_miss_latency_plus_burst() {
        let cfg = DramConfig::single_channel();
        let mut mem = MemorySystem::new(cfg);
        mem.request(Cycle::ZERO, MemRequest::read(0, 64, TrafficClass::Other))
            .unwrap();
        let done = run_until_complete(&mut mem, Cycle::ZERO, 1);
        // t_rcd + t_cas + ceil(64/17) = 14 + 14 + 4 = 32
        assert_eq!(done[0].0, Cycle::new(32));
        assert_eq!(mem.stats().row_misses, 1);
        assert!(mem.is_idle());
    }

    #[test]
    fn row_hits_are_faster_than_conflicts() {
        let cfg = DramConfig::single_channel();
        // Same row twice.
        let mut mem = MemorySystem::new(cfg);
        mem.request(Cycle::ZERO, MemRequest::read(0, 64, TrafficClass::Other))
            .unwrap();
        mem.request(Cycle::ZERO, MemRequest::read(64, 64, TrafficClass::Other))
            .unwrap();
        let done_hit = run_until_complete(&mut mem, Cycle::ZERO, 2);
        assert_eq!(mem.stats().row_hits, 1);

        // Two different rows on the same bank: row id differs by
        // banks_per_channel rows.
        let cfg = DramConfig::single_channel();
        let stride = cfg.row_bytes * cfg.banks_per_channel as u64;
        let mut mem2 = MemorySystem::new(cfg);
        mem2.request(Cycle::ZERO, MemRequest::read(0, 64, TrafficClass::Other))
            .unwrap();
        mem2.request(
            Cycle::ZERO,
            MemRequest::read(stride, 64, TrafficClass::Other),
        )
        .unwrap();
        let done_conflict = run_until_complete(&mut mem2, Cycle::ZERO, 2);
        assert_eq!(mem2.stats().row_conflicts, 1);
        assert!(done_conflict[1].0 > done_hit[1].0);
    }

    #[test]
    fn channels_serve_in_parallel() {
        let cfg = DramConfig::paper();
        let mut mem = MemorySystem::new(cfg);
        // Four requests, one per channel (line interleaving).
        for ch in 0..4u64 {
            mem.request(
                Cycle::ZERO,
                MemRequest::read(ch * LINE_BYTES, 64, TrafficClass::Other),
            )
            .unwrap();
        }
        let done = run_until_complete(&mut mem, Cycle::ZERO, 4);
        // All finish at the same cycle as a single request would.
        assert!(done.iter().all(|(t, _)| *t == Cycle::new(32)));
    }

    #[test]
    fn same_channel_requests_serialize_on_the_bus() {
        let cfg = DramConfig::single_channel();
        let mut mem = MemorySystem::new(cfg);
        mem.request(Cycle::ZERO, MemRequest::read(0, 64, TrafficClass::Other))
            .unwrap();
        mem.request(Cycle::ZERO, MemRequest::read(64, 64, TrafficClass::Other))
            .unwrap();
        let done = run_until_complete(&mut mem, Cycle::ZERO, 2);
        assert!(
            done[1].0 > done[0].0,
            "second transfer must wait for the bus"
        );
    }

    #[test]
    fn backpressure_rejects_when_queue_full() {
        let mut cfg = DramConfig::single_channel();
        cfg.queue_depth = 2;
        let mut mem = MemorySystem::new(cfg);
        assert!(mem.can_accept(0));
        mem.request(Cycle::ZERO, MemRequest::read(0, 64, TrafficClass::Other))
            .unwrap();
        mem.request(Cycle::ZERO, MemRequest::read(64, 64, TrafficClass::Other))
            .unwrap();
        assert!(!mem.can_accept(128));
        let err = mem.request(Cycle::ZERO, MemRequest::read(128, 64, TrafficClass::Other));
        assert!(err.is_err());
        assert_eq!(mem.stats().rejections, 1);
    }

    #[test]
    fn stats_track_classes_and_utilization() {
        let mut mem = MemorySystem::new(DramConfig::single_channel());
        mem.request(
            Cycle::ZERO,
            MemRequest::read(0, 64, TrafficClass::VertexRead).with_useful_bytes(8),
        )
        .unwrap();
        mem.request(
            Cycle::ZERO,
            MemRequest::read(64, 64, TrafficClass::EdgeRead),
        )
        .unwrap();
        run_until_complete(&mut mem, Cycle::ZERO, 2);
        let s = mem.stats();
        assert_eq!(s.accesses(TrafficClass::VertexRead), 1);
        assert_eq!(s.bytes(TrafficClass::VertexRead), 64);
        assert_eq!(s.useful_bytes(TrafficClass::VertexRead), 8);
        assert_eq!(s.total_bytes(), 128);
        assert!((s.utilization() - 72.0 / 128.0).abs() < 1e-12);
        assert_eq!(s.total_accesses(), 2);
    }

    #[test]
    fn command_trace_of_a_real_run_is_protocol_legal() {
        let mut mem = MemorySystem::new(DramConfig::paper());
        mem.enable_trace();
        let mut now = Cycle::ZERO;
        let mut pending = 0usize;
        for i in 0..300u64 {
            // A mix of strides hitting every channel/bank with hits,
            // misses, and conflicts.
            let addr = (i * 72) ^ ((i % 7) * 65_536);
            if mem
                .request(now, MemRequest::read(addr, 48, TrafficClass::Other))
                .is_ok()
            {
                pending += 1;
            }
            mem.tick(now);
            while mem.pop_completion(now).is_some() {
                pending -= 1;
            }
            now = now.next();
        }
        for _ in 0..100_000 {
            if pending == 0 {
                break;
            }
            mem.tick(now);
            while mem.pop_completion(now).is_some() {
                pending -= 1;
            }
            now = now.next();
        }
        assert_eq!(pending, 0);
        let trace = mem.take_trace();
        assert!(!trace.is_empty());
        crate::check_protocol(mem.config(), &trace).unwrap();
        // Trace outcomes reconcile with the stats counters.
        let hits = trace
            .iter()
            .filter(|r| r.outcome == RowOutcome::Hit)
            .count() as u64;
        assert_eq!(hits, mem.stats().row_hits);
    }

    #[test]
    fn no_request_is_lost_or_duplicated() {
        let mut mem = MemorySystem::new(DramConfig::paper());
        let mut submitted = Vec::new();
        let mut now = Cycle::ZERO;
        let mut completed = Vec::new();
        for i in 0..200u64 {
            // Submit in bursts; respect backpressure.
            let req = MemRequest::read(i * 24, 24, TrafficClass::Other);
            if let Ok(id) = mem.request(now, req) {
                submitted.push(id);
            }
            mem.tick(now);
            while let Some(r) = mem.pop_completion(now) {
                completed.push(r.id());
            }
            now = now.next();
        }
        for _ in 0..100_000 {
            mem.tick(now);
            while let Some(r) = mem.pop_completion(now) {
                completed.push(r.id());
            }
            if mem.is_idle() {
                break;
            }
            now = now.next();
        }
        completed.sort();
        let mut expected = submitted.clone();
        expected.sort();
        assert_eq!(completed, expected);
    }
}
