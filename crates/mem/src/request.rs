//! Memory request descriptors.

/// Unique identifier of an in-flight memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub(crate) u64);

impl ReqId {
    /// The raw id.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// What a memory request is fetching, for per-class traffic accounting.
///
/// The paper's Figs. 11–14 break off-chip traffic down by purpose; the
/// simulators tag every request so the harness can regenerate those
/// breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Vertex property read.
    VertexRead,
    /// Vertex property write-back.
    VertexWrite,
    /// CSR edge-list read.
    EdgeRead,
    /// Inter-slice event spill to off-chip buffers (§IV-F).
    EventSpill,
    /// Inter-slice event fill from off-chip buffers (§IV-F).
    EventFill,
    /// Anything else.
    Other,
}

impl TrafficClass {
    /// All classes, for iteration in reports.
    pub const ALL: [TrafficClass; 6] = [
        TrafficClass::VertexRead,
        TrafficClass::VertexWrite,
        TrafficClass::EdgeRead,
        TrafficClass::EventSpill,
        TrafficClass::EventFill,
        TrafficClass::Other,
    ];

    pub(crate) fn index(self) -> usize {
        match self {
            TrafficClass::VertexRead => 0,
            TrafficClass::VertexWrite => 1,
            TrafficClass::EdgeRead => 2,
            TrafficClass::EventSpill => 3,
            TrafficClass::EventFill => 4,
            TrafficClass::Other => 5,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::VertexRead => "vertex-read",
            TrafficClass::VertexWrite => "vertex-write",
            TrafficClass::EdgeRead => "edge-read",
            TrafficClass::EventSpill => "event-spill",
            TrafficClass::EventFill => "event-fill",
            TrafficClass::Other => "other",
        }
    }
}

/// One off-chip memory transaction.
///
/// `useful_bytes` records how many of the transferred bytes the requester
/// will actually consume (e.g. an 8-byte vertex property out of a 64-byte
/// burst) and feeds the Fig. 12 utilization metric. It defaults to the full
/// transfer size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemRequest {
    pub(crate) id: ReqId,
    addr: u64,
    bytes: u32,
    useful_bytes: u32,
    write: bool,
    class: TrafficClass,
}

impl MemRequest {
    /// A read of `bytes` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn read(addr: u64, bytes: u32, class: TrafficClass) -> Self {
        assert!(bytes > 0, "zero-byte memory request");
        MemRequest {
            id: ReqId(0),
            addr,
            bytes,
            useful_bytes: bytes,
            write: false,
            class,
        }
    }

    /// A write of `bytes` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn write(addr: u64, bytes: u32, class: TrafficClass) -> Self {
        MemRequest {
            write: true,
            ..Self::read(addr, bytes, class)
        }
    }

    /// Overrides the number of bytes the requester will consume.
    ///
    /// # Panics
    ///
    /// Panics if `useful > self.bytes()`.
    pub fn with_useful_bytes(mut self, useful: u32) -> Self {
        assert!(useful <= self.bytes, "useful bytes exceed transfer size");
        self.useful_bytes = useful;
        self
    }

    /// Request id (assigned by the memory system on submission).
    pub fn id(&self) -> ReqId {
        self.id
    }

    /// Start address.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Transfer size in bytes.
    pub fn bytes(&self) -> u32 {
        self.bytes
    }

    /// Bytes the requester consumes.
    pub fn useful_bytes(&self) -> u32 {
        self.useful_bytes
    }

    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        self.write
    }

    /// Traffic class tag.
    pub fn class(&self) -> TrafficClass {
        self.class
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_direction() {
        let r = MemRequest::read(0x100, 64, TrafficClass::VertexRead);
        assert!(!r.is_write());
        let w = MemRequest::write(0x100, 8, TrafficClass::VertexWrite);
        assert!(w.is_write());
        assert_eq!(w.bytes(), 8);
        assert_eq!(w.useful_bytes(), 8);
    }

    #[test]
    fn useful_bytes_clamped() {
        let r = MemRequest::read(0, 64, TrafficClass::EdgeRead).with_useful_bytes(12);
        assert_eq!(r.useful_bytes(), 12);
    }

    #[test]
    #[should_panic(expected = "useful bytes exceed")]
    fn oversized_useful_rejected() {
        let _ = MemRequest::read(0, 8, TrafficClass::Other).with_useful_bytes(9);
    }

    #[test]
    fn class_indices_are_distinct() {
        let mut idx: Vec<usize> = TrafficClass::ALL.iter().map(|c| c.index()).collect();
        idx.dedup();
        assert_eq!(idx.len(), 6);
    }
}
