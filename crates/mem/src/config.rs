//! DRAM timing/geometry configuration.

/// Geometry and timing of the modeled DRAM, in accelerator clock cycles.
///
/// Latency parameters follow DDR3-1600 (CL-RCD-RP ≈ 11-11-11 at 800 MHz,
/// i.e. ~14 ns each) converted to a 1 GHz accelerator clock. The paper's
/// configuration (Table III) is four channels of 17 GB/s each —
/// [`DramConfig::paper`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Number of independent channels.
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Row-buffer size per bank in bytes.
    pub row_bytes: u64,
    /// Column access latency (row-buffer hit), cycles.
    pub t_cas: u64,
    /// Row activation latency, cycles.
    pub t_rcd: u64,
    /// Precharge latency, cycles.
    pub t_rp: u64,
    /// Peak data-bus throughput per channel, bytes per accelerator cycle.
    /// 17 GB/s at 1 GHz = 17 B/cycle.
    pub bytes_per_cycle: f64,
    /// Depth of each channel's request queue (backpressure beyond this).
    pub queue_depth: usize,
    /// How many queued requests the scheduler scans for a row hit
    /// (FR-FCFS window).
    pub sched_window: usize,
}

impl DramConfig {
    /// The paper's memory subsystem: 4 × DDR3 channels, 17 GB/s each
    /// (Table III), 8 banks, 8 KB rows, DDR3-1600 latencies at 1 GHz.
    pub fn paper() -> Self {
        DramConfig {
            channels: 4,
            banks_per_channel: 8,
            row_bytes: 8 * 1024,
            t_cas: 14,
            t_rcd: 14,
            t_rp: 14,
            bytes_per_cycle: 17.0,
            queue_depth: 64,
            sched_window: 8,
        }
    }

    /// A single-channel configuration for focused unit tests.
    pub fn single_channel() -> Self {
        DramConfig {
            channels: 1,
            ..Self::paper()
        }
    }

    /// Validates parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 {
            return Err("channels must be nonzero".into());
        }
        if self.banks_per_channel == 0 {
            return Err("banks_per_channel must be nonzero".into());
        }
        if !self.row_bytes.is_power_of_two() {
            return Err("row_bytes must be a power of two".into());
        }
        if self.bytes_per_cycle <= 0.0 {
            return Err("bytes_per_cycle must be positive".into());
        }
        if self.queue_depth == 0 || self.sched_window == 0 {
            return Err("queue depth and scheduler window must be nonzero".into());
        }
        Ok(())
    }

    /// Aggregate peak bandwidth in bytes per cycle across all channels.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle * self.channels as f64
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table_iii() {
        let c = DramConfig::paper();
        assert_eq!(c.channels, 4);
        assert!((c.peak_bytes_per_cycle() - 68.0).abs() < 1e-9);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = DramConfig::paper();
        c.channels = 0;
        assert!(c.validate().is_err());
        let mut c = DramConfig::paper();
        c.row_bytes = 3000;
        assert!(c.validate().is_err());
        let mut c = DramConfig::paper();
        c.bytes_per_cycle = 0.0;
        assert!(c.validate().is_err());
    }
}
