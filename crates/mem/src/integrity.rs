//! Memory-integrity primitives for the vertex-property store.
//!
//! The execution backends keep per-vertex state in a dense array — the
//! software stand-in for the accelerator's vertex-property memory. This
//! module treats that array as an unreliable memory device (the Dann et
//! al. access-pattern studies motivate stressing it deliberately) and
//! provides the pieces a detection/recovery plane needs:
//!
//! * [`Storable`] — a bits-level codec for the word types the bundled
//!   algorithms store (`f64`, `u32`, `i64`, `u64`), so checksums and fault
//!   injection operate on the stored representation, not on semantics;
//! * [`ShadowChecksum`] — an order-independent, incrementally-maintained
//!   checksum over the value array, kept per fixed-size *region* of
//!   vertices (the ECC-page analog). A write that bypasses the legitimate
//!   apply path (a bit upset) makes the recomputed region digest disagree
//!   with the shadow, which both detects the corruption and localizes it
//!   to a region — the unit of poisoned-region quarantine;
//! * [`BitUpset`] — a deterministic, seed-derived single-bit fault at the
//!   memory-model boundary.

use crate::LINE_BYTES;

/// Fibonacci-hashing multiplier used to decorrelate slot indices.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// `splitmix64` finalizer: a fast, well-mixed 64-bit permutation.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// A vertex-property word as the memory system stores it: a fixed-width
/// bit pattern. Implemented for every `Value` type the bundled algorithms
/// use, so integrity checking and fault injection stay generic over the
/// [`DeltaAlgorithm`](https://docs.rs/gp-algorithms) family without
/// touching algorithm semantics.
pub trait Storable: Copy {
    /// The stored representation, widened to 64 bits.
    fn to_bits64(self) -> u64;
    /// Rebuilds the word from its stored representation.
    ///
    /// For types narrower than 64 bits the upper bits are discarded —
    /// exactly what a narrower physical word would do.
    fn from_bits64(bits: u64) -> Self;
    /// Number of meaningful bits in the stored representation (the
    /// flippable window for fault injection).
    const BITS: u32;
}

impl Storable for f64 {
    fn to_bits64(self) -> u64 {
        self.to_bits()
    }
    fn from_bits64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
    const BITS: u32 = 64;
}

impl Storable for u64 {
    fn to_bits64(self) -> u64 {
        self
    }
    fn from_bits64(bits: u64) -> Self {
        bits
    }
    const BITS: u32 = 64;
}

impl Storable for u32 {
    fn to_bits64(self) -> u64 {
        u64::from(self)
    }
    fn from_bits64(bits: u64) -> Self {
        bits as u32
    }
    const BITS: u32 = 32;
}

impl Storable for i64 {
    fn to_bits64(self) -> u64 {
        self as u64
    }
    fn from_bits64(bits: u64) -> Self {
        bits as i64
    }
    const BITS: u32 = 64;
}

/// Contribution of slot `index` holding `bits` to its region digest.
/// Mixing the index in makes swapped values detectable; the wrapping-sum
/// combination below keeps the digest order-independent and incrementally
/// updatable.
#[must_use]
pub fn slot_digest(index: usize, bits: u64) -> u64 {
    mix64(bits ^ (index as u64).wrapping_mul(GOLDEN))
}

/// Recomputes the digest of one region of the value array from scratch.
#[must_use]
pub fn region_digest<V: Storable>(values: &[V], region: usize, region_len: usize) -> u64 {
    let start = region * region_len;
    let end = (start + region_len).min(values.len());
    values[start..end]
        .iter()
        .enumerate()
        .fold(0u64, |sum, (i, v)| {
            sum.wrapping_add(slot_digest(start + i, v.to_bits64()))
        })
}

/// An incrementally-maintained shadow checksum over a value array, kept
/// per region of `region_len` consecutive vertices.
///
/// The legitimate write path calls [`ShadowChecksum::record_write`] for
/// every update; a periodic *scrub* ([`ShadowChecksum::scrub`]) recomputes
/// every region digest from the array and compares. Any write that
/// bypassed `record_write` — a bit upset, a stray store — shows up as a
/// digest mismatch localized to its region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowChecksum {
    region_len: usize,
    sums: Vec<u64>,
}

impl ShadowChecksum {
    /// Builds the shadow for `values`, `region_len` vertices per region.
    ///
    /// # Panics
    ///
    /// Panics if `region_len == 0`.
    #[must_use]
    pub fn new<V: Storable>(values: &[V], region_len: usize) -> Self {
        assert!(region_len > 0, "region length must be positive");
        let regions = values.len().div_ceil(region_len).max(1);
        let sums = (0..regions)
            .map(|r| region_digest(values, r, region_len))
            .collect();
        ShadowChecksum { region_len, sums }
    }

    /// Vertices per region.
    #[must_use]
    pub fn region_len(&self) -> usize {
        self.region_len
    }

    /// Number of regions tracked.
    #[must_use]
    pub fn regions(&self) -> usize {
        self.sums.len()
    }

    /// The region a vertex index belongs to.
    #[must_use]
    pub fn region_of(&self, index: usize) -> usize {
        index / self.region_len
    }

    /// Records a legitimate write: slot `index` moved from `old` to `new`.
    pub fn record_write<V: Storable>(&mut self, index: usize, old: V, new: V) {
        let r = self.region_of(index);
        let sum = &mut self.sums[r];
        *sum = sum
            .wrapping_sub(slot_digest(index, old.to_bits64()))
            .wrapping_add(slot_digest(index, new.to_bits64()));
    }

    /// Recomputes every region digest from `values` and compares against
    /// the shadow.
    ///
    /// # Errors
    ///
    /// Returns the first corrupted region as `(region, message)`; the
    /// message names the region, its vertex range, and both digests.
    pub fn scrub<V: Storable>(&self, values: &[V]) -> Result<(), (usize, String)> {
        for (r, &want) in self.sums.iter().enumerate() {
            let got = region_digest(values, r, self.region_len);
            if got != want {
                let start = r * self.region_len;
                let end = (start + self.region_len).min(values.len());
                return Err((
                    r,
                    format!(
                        "memory scrub failed in region {r} (vertices {start}..{end}): \
                         stored digest {got:#018x} != shadow {want:#018x} — a write \
                         bypassed the apply path"
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// Flips bit `bit` of a stored word.
#[must_use]
pub fn flip_bit<V: Storable>(v: V, bit: u32) -> V {
    V::from_bits64(v.to_bits64() ^ (1u64 << (bit % V::BITS)))
}

/// A deterministic single-bit upset: seed-derived target slot and bit.
///
/// Models an uncorrected DRAM/SRAM fault at the memory-model boundary —
/// the victim is a position in the stored array (a physical location), not
/// an algorithmic entity, which is why the derivation uses the array
/// length and a seed only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitUpset {
    /// Victim slot index.
    pub index: usize,
    /// Bit position within the stored word.
    pub bit: u32,
}

impl BitUpset {
    /// Derives the victim location for an array of `len` words.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` — an empty memory has no faultable location.
    #[must_use]
    pub fn from_seed(seed: u64, len: usize) -> BitUpset {
        assert!(len > 0, "cannot target an empty array");
        let h = mix64(seed);
        BitUpset {
            index: (h % len as u64) as usize,
            // Keep to the low half of the word so the flip stays within
            // every supported width and corrupts value bits (not just the
            // f64 sign/exponent, which can round-trip to the same f64).
            bit: (mix64(h) % 31) as u32,
        }
    }

    /// Applies the upset in place.
    pub fn apply<V: Storable>(&self, values: &mut [V]) {
        let v = &mut values[self.index % values.len().max(1)];
        *v = flip_bit(*v, self.bit);
    }
}

/// Bytes of traffic one full checkpoint of `len` words costs, assuming
/// word-sized stores rounded up to transfer granules — the metric the
/// chaos bench reports as fault-free checkpoint overhead.
#[must_use]
pub fn checkpoint_bytes(len: usize) -> u64 {
    ((len as u64) * 8).div_ceil(LINE_BYTES) * LINE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_tracks_legitimate_writes() {
        let mut values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut shadow = ShadowChecksum::new(&values, 8);
        assert_eq!(shadow.regions(), 13);
        for i in [0usize, 7, 8, 99] {
            let old = values[i];
            let new = old * 3.5 + 1.0;
            values[i] = new;
            shadow.record_write(i, old, new);
        }
        shadow.scrub(&values).unwrap();
    }

    #[test]
    fn scrub_catches_and_localizes_a_bypassing_write() {
        let mut values: Vec<f64> = (0..64).map(|i| i as f64 + 0.25).collect();
        let shadow = ShadowChecksum::new(&values, 8);
        values[42] = f64::from_bits(values[42].to_bits() ^ 1); // bypasses record_write
        let (region, msg) = shadow.scrub(&values).unwrap_err();
        assert_eq!(region, 42 / 8);
        assert!(msg.contains("region 5"), "{msg}");
        assert!(msg.contains("vertices 40..48"), "{msg}");
        assert!(msg.contains("bypassed the apply path"), "{msg}");
    }

    #[test]
    fn scrub_catches_swapped_equal_values() {
        // Index mixing: swapping two different slots' contents within one
        // region is detected even though the multiset of values is equal.
        let mut values: Vec<u32> = vec![5, 9, 5, 9];
        let shadow = ShadowChecksum::new(&values, 4);
        values.swap(0, 1);
        assert!(shadow.scrub(&values).is_err());
    }

    #[test]
    fn bit_upset_is_deterministic_and_detected_for_every_width() {
        fn check<V: Storable + PartialEq + std::fmt::Debug>(mk: impl Fn(u64) -> V) {
            let mut values: Vec<V> = (0..33u64).map(mk).collect();
            let pristine = values.clone();
            let upset = BitUpset::from_seed(7, values.len());
            assert_eq!(upset, BitUpset::from_seed(7, values.len()));
            upset.apply(&mut values);
            assert_ne!(values[upset.index], pristine[upset.index]);
            let shadow = ShadowChecksum::new(&pristine, 8);
            let (region, _) = shadow.scrub(&values).unwrap_err();
            assert_eq!(region, upset.index / 8);
            // Flipping the same bit again restores the word.
            values[upset.index] = flip_bit(values[upset.index], upset.bit);
            shadow.scrub(&values).unwrap();
        }
        check(|i| i as f64 * 1.5);
        check(|i| i as u32 * 3);
        check(|i| i as i64 - 16);
        check(|i| i * 11);
    }

    #[test]
    fn checkpoint_bytes_rounds_to_lines() {
        assert_eq!(checkpoint_bytes(0), 0);
        assert_eq!(checkpoint_bytes(1), LINE_BYTES);
        assert_eq!(checkpoint_bytes(8), LINE_BYTES);
        assert_eq!(checkpoint_bytes(9), 2 * LINE_BYTES);
    }
}
