//! # gp-mem — memory-hierarchy timing models
//!
//! Substrate crate replacing DRAMSim2 in the GraphPulse reproduction.
//! Everything is a deterministic, cycle-stepped model built on `gp-sim`:
//!
//! * [`MemorySystem`] — a DDR3-style main memory: multiple channels, banks
//!   with open-row (row-buffer) state, hit/miss/conflict timing, a shared
//!   per-channel data bus, bounded request queues with backpressure, and
//!   per-traffic-class byte accounting (including *useful* bytes for the
//!   paper's Fig. 12 utilization analysis),
//! * [`Cache`] — a set-associative LRU cache model (the edge cache of §V),
//! * [`Scratchpad`] — a small keyed buffer (the vertex-property scratchpad
//!   that the prefetcher fills, §V),
//! * [`prefetch`] — address helpers and the N-block edge prefetcher.
//!
//! The paper's configuration (Table III) is 4 × DDR3 channels at 17 GB/s;
//! [`DramConfig::paper`] reproduces it for a 1 GHz accelerator clock.
//!
//! # Examples
//!
//! ```
//! use gp_mem::{DramConfig, MemRequest, MemorySystem, TrafficClass};
//! use gp_sim::Cycle;
//!
//! let mut mem = MemorySystem::new(DramConfig::paper());
//! let id = mem
//!     .request(Cycle::ZERO, MemRequest::read(0x40, 64, TrafficClass::EdgeRead))
//!     .unwrap();
//! let mut now = Cycle::ZERO;
//! loop {
//!     mem.tick(now);
//!     if let Some(done) = mem.pop_completion(now) {
//!         assert_eq!(done.id(), id);
//!         break;
//!     }
//!     now = now.next();
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod dram;
pub mod integrity;
pub mod prefetch;
pub mod protocol;
mod request;
mod scratchpad;

pub use cache::{Cache, CacheConfig};
pub use config::DramConfig;
pub use dram::{MemStats, MemorySystem};
pub use integrity::{BitUpset, ShadowChecksum, Storable};
pub use protocol::{check_protocol, IssueRecord, RowOutcome};
pub use request::{MemRequest, ReqId, TrafficClass};
pub use scratchpad::Scratchpad;

/// Size of an off-chip transfer granule (DRAM burst / cache line) in bytes.
pub const LINE_BYTES: u64 = 64;

/// Rounds `addr` down to its line base.
#[inline]
pub fn line_base(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}
