//! Keyed scratchpad buffer model.

/// A bounded, explicitly managed on-chip buffer keyed by `u64` (the
/// prefetcher's vertex-property scratchpad of §V).
///
/// Unlike a cache there is no eviction policy: the owner inserts what it
/// prefetched and clears entries it consumed. Insertion beyond capacity is
/// rejected so the owner must exercise backpressure, as the hardware would.
///
/// # Examples
///
/// ```
/// use gp_mem::Scratchpad;
///
/// let mut pad = Scratchpad::new(2);
/// assert!(pad.insert(7));
/// assert!(pad.insert(8));
/// assert!(!pad.insert(9)); // full
/// assert!(pad.take(7));
/// assert!(pad.insert(9));
/// ```
#[derive(Debug, Clone)]
pub struct Scratchpad {
    entries: Vec<u64>,
    capacity: usize,
    peak: usize,
}

impl Scratchpad {
    /// Creates a scratchpad holding at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "scratchpad capacity must be nonzero");
        Scratchpad {
            entries: Vec::with_capacity(capacity),
            capacity,
            peak: 0,
        }
    }

    /// Inserts `key`; returns `false` (rejecting it) when full. Duplicate
    /// inserts succeed without consuming extra space.
    pub fn insert(&mut self, key: u64) -> bool {
        if self.entries.contains(&key) {
            return true;
        }
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.push(key);
        self.peak = self.peak.max(self.entries.len());
        true
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains(&key)
    }

    /// Removes `key`; returns whether it was present.
    pub fn take(&mut self, key: u64) -> bool {
        if let Some(pos) = self.entries.iter().position(|&k| k == key) {
            self.entries.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Removes everything (slice swap / round rollover).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the scratchpad holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether an insert of a new key would be rejected.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// High-water mark of occupancy (for sizing reports).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_insert_is_free() {
        let mut pad = Scratchpad::new(1);
        assert!(pad.insert(4));
        assert!(pad.insert(4));
        assert_eq!(pad.len(), 1);
        assert!(pad.is_full());
    }

    #[test]
    fn take_frees_space() {
        let mut pad = Scratchpad::new(1);
        pad.insert(1);
        assert!(!pad.insert(2));
        assert!(pad.take(1));
        assert!(!pad.take(1));
        assert!(pad.insert(2));
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut pad = Scratchpad::new(4);
        pad.insert(1);
        pad.insert(2);
        pad.insert(3);
        pad.take(1);
        pad.take(2);
        assert_eq!(pad.len(), 1);
        assert_eq!(pad.peak(), 3);
    }

    #[test]
    fn clear_empties() {
        let mut pad = Scratchpad::new(2);
        pad.insert(1);
        pad.clear();
        assert!(pad.is_empty());
        assert!(!pad.contains(1));
    }
}
