//! Prefetch address generation.
//!
//! Two pieces of §V of the paper live here: the line-granular address math
//! used by the vertex-property block prefetcher, and the degree-hinted
//! N-block stream prefetcher that feeds the edge cache of the generation
//! units.

use crate::{line_base, LINE_BYTES};

/// The line addresses covering the byte range `[addr, addr + bytes)`.
///
/// Used by the block prefetcher: when a queue row is drained, the vertex
/// properties of its (consecutive) vertices are fetched as whole lines so a
/// DRAM page is streamed with large, sequential bursts (§V).
///
/// ```
/// let lines: Vec<u64> = gp_mem::prefetch::lines_covering(100, 100).collect();
/// assert_eq!(lines, vec![64, 128, 192]);
/// ```
pub fn lines_covering(addr: u64, bytes: u64) -> impl Iterator<Item = u64> {
    let first = line_base(addr);
    let last = if bytes == 0 {
        first
    } else {
        line_base(addr + bytes - 1)
    };
    (first..=last).step_by(LINE_BYTES as usize)
}

/// Degree-hinted N-block stream prefetcher for edge lists (§V).
///
/// When a generation stream starts reading a vertex's edge list, the
/// prefetcher is armed with the list's byte extent (known exactly from the
/// CSR offsets — the "degree hint" of the paper) and issues up to
/// `depth` line fetches ahead of the consumer, never beyond the list's end
/// "to avoid unnecessary memory traffic for low degree vertices".
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    depth: u64,
    /// Next line to prefetch.
    next_line: u64,
    /// One past the last line of the armed stream.
    end_line: u64,
    /// Lines handed out but not yet consumed.
    outstanding: u64,
}

impl StreamPrefetcher {
    /// Creates an idle prefetcher that runs `depth` lines ahead.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: u64) -> Self {
        assert!(depth > 0, "prefetch depth must be nonzero");
        StreamPrefetcher {
            depth,
            next_line: 0,
            end_line: 0,
            outstanding: 0,
        }
    }

    /// Arms the prefetcher for the byte range `[addr, addr + bytes)`.
    pub fn arm(&mut self, addr: u64, bytes: u64) {
        self.next_line = line_base(addr);
        self.end_line = if bytes == 0 {
            self.next_line
        } else {
            line_base(addr + bytes - 1) + LINE_BYTES
        };
        self.outstanding = 0;
    }

    /// The next line address to fetch, if the prefetcher wants one.
    pub fn next_fetch(&mut self) -> Option<u64> {
        if self.next_line < self.end_line && self.outstanding < self.depth {
            let line = self.next_line;
            self.next_line += LINE_BYTES;
            self.outstanding += 1;
            Some(line)
        } else {
            None
        }
    }

    /// Tells the prefetcher one fetched line was consumed, freeing a slot.
    pub fn consumed(&mut self) {
        self.outstanding = self.outstanding.saturating_sub(1);
    }

    /// Whether every line of the armed stream has been issued.
    pub fn exhausted(&self) -> bool {
        self.next_line >= self.end_line
    }

    /// The configured lookahead depth.
    pub fn depth(&self) -> u64 {
        self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covering_handles_alignment() {
        let v: Vec<u64> = lines_covering(0, 64).collect();
        assert_eq!(v, vec![0]);
        let v: Vec<u64> = lines_covering(63, 2).collect();
        assert_eq!(v, vec![0, 64]);
        let v: Vec<u64> = lines_covering(128, 0).collect();
        assert_eq!(v, vec![128]);
    }

    #[test]
    fn stream_respects_depth_and_end() {
        let mut p = StreamPrefetcher::new(2);
        p.arm(0, 256); // 4 lines
        assert_eq!(p.next_fetch(), Some(0));
        assert_eq!(p.next_fetch(), Some(64));
        assert_eq!(p.next_fetch(), None); // depth reached
        p.consumed();
        assert_eq!(p.next_fetch(), Some(128));
        p.consumed();
        p.consumed();
        assert_eq!(p.next_fetch(), Some(192));
        assert!(p.exhausted());
        p.consumed();
        assert_eq!(p.next_fetch(), None); // stream done
    }

    #[test]
    fn low_degree_vertex_fetches_one_line() {
        let mut p = StreamPrefetcher::new(4);
        p.arm(96, 8); // tiny edge list inside one line
        assert_eq!(p.next_fetch(), Some(64));
        assert_eq!(p.next_fetch(), None);
        assert!(p.exhausted());
    }

    #[test]
    fn rearming_resets_state() {
        let mut p = StreamPrefetcher::new(1);
        p.arm(0, 64);
        assert_eq!(p.next_fetch(), Some(0));
        p.arm(1024, 64);
        assert_eq!(p.next_fetch(), Some(1024));
    }
}
