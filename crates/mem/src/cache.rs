//! Set-associative cache timing/content model.

use crate::LINE_BYTES;

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// A small edge cache like the one in the generation units (§V):
    /// capacity = `sets × ways × 64 B`.
    pub fn edge_cache() -> Self {
        // 32 KiB: 128 sets × 4 ways × 64 B.
        CacheConfig { sets: 128, ways: 4 }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.sets * self.ways) as u64 * LINE_BYTES
    }
}

/// A set-associative LRU cache over 64-byte lines.
///
/// Purely a hit/miss model: it tracks which line addresses are resident,
/// not data contents (the simulators are functional elsewhere). Misses are
/// *not* automatically filled — call [`Cache::fill`] when the corresponding
/// memory transfer completes, which models non-blocking fills faithfully.
///
/// # Examples
///
/// ```
/// use gp_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { sets: 2, ways: 1 });
/// assert!(!c.probe(0x0));
/// c.fill(0x0);
/// assert!(c.probe(0x0));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `lines[set]` holds up to `ways` tags in LRU order (front = MRU).
    lines: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a nonzero power of two or `ways` is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.sets.is_power_of_two() && config.sets > 0,
            "sets must be a nonzero power of two"
        );
        assert!(config.ways > 0, "ways must be nonzero");
        Cache {
            config,
            lines: vec![Vec::with_capacity(config.ways); config.sets],
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / LINE_BYTES) as usize) & (self.config.sets - 1)
    }

    fn tag_of(addr: u64) -> u64 {
        addr / LINE_BYTES
    }

    /// Looks up the line containing `addr`, updating LRU state and hit/miss
    /// counters. Returns `true` on hit.
    pub fn probe(&mut self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = Self::tag_of(addr);
        let ways = &mut self.lines[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            let t = ways.remove(pos);
            ways.insert(0, t);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Checks residency without touching LRU state or counters.
    pub fn contains(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        self.lines[set].contains(&Self::tag_of(addr))
    }

    /// Installs the line containing `addr` as MRU, evicting the LRU way if
    /// the set is full. Idempotent for resident lines.
    pub fn fill(&mut self, addr: u64) {
        let set = self.set_of(addr);
        let tag = Self::tag_of(addr);
        let ways = &mut self.lines[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            let t = ways.remove(pos);
            ways.insert(0, t);
            return;
        }
        if ways.len() == self.config.ways {
            ways.pop();
        }
        ways.insert(0, tag);
    }

    /// Empties the cache (slice swap).
    pub fn clear(&mut self) {
        for set in &mut self.lines {
            set.clear();
        }
    }

    /// Hits recorded by [`Cache::probe`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded by [`Cache::probe`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all probes.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Validates structural invariants (a debug hook for verification
    /// harnesses): every set holds at most `ways` tags, no set holds a
    /// duplicate tag, and every resident tag actually indexes its set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (set, ways) in self.lines.iter().enumerate() {
            if ways.len() > self.config.ways {
                return Err(format!(
                    "set {set} holds {} tags but associativity is {}",
                    ways.len(),
                    self.config.ways
                ));
            }
            for (i, &tag) in ways.iter().enumerate() {
                if ways[..i].contains(&tag) {
                    return Err(format!("set {set} holds tag {tag:#x} twice"));
                }
                if (tag as usize) & (self.config.sets - 1) != set {
                    return Err(format!("tag {tag:#x} resident in wrong set {set}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_oldest() {
        let mut c = Cache::new(CacheConfig { sets: 1, ways: 2 });
        c.fill(0);
        c.fill(64);
        c.fill(128); // evicts line 0
        assert!(!c.contains(0));
        assert!(c.contains(64));
        assert!(c.contains(128));
    }

    #[test]
    fn probe_updates_recency() {
        let mut c = Cache::new(CacheConfig { sets: 1, ways: 2 });
        c.fill(0);
        c.fill(64);
        assert!(c.probe(0)); // line 0 becomes MRU
        c.fill(128); // evicts line 64
        assert!(c.contains(0));
        assert!(!c.contains(64));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = Cache::new(CacheConfig { sets: 2, ways: 1 });
        c.fill(0); // set 0
        c.fill(64); // set 1
        assert!(c.contains(0) && c.contains(64));
        c.fill(128); // set 0 again, evicts line 0
        assert!(!c.contains(0));
        assert!(c.contains(64));
    }

    #[test]
    fn within_line_offsets_hit() {
        let mut c = Cache::new(CacheConfig::edge_cache());
        c.fill(0x1000);
        assert!(c.probe(0x1004));
        assert!(c.probe(0x103F));
        assert!(!c.probe(0x1040));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clear_empties_everything() {
        let mut c = Cache::new(CacheConfig { sets: 2, ways: 2 });
        c.fill(0);
        c.fill(64);
        c.clear();
        assert!(!c.contains(0));
        assert!(!c.contains(64));
    }

    #[test]
    fn invariants_hold_after_mixed_traffic() {
        let mut c = Cache::new(CacheConfig { sets: 4, ways: 2 });
        for i in 0..64u64 {
            c.fill(i * 40);
            c.probe(i * 24);
        }
        c.check_invariants().unwrap();
        c.clear();
        c.check_invariants().unwrap();
    }

    #[test]
    fn fill_is_idempotent() {
        let mut c = Cache::new(CacheConfig { sets: 1, ways: 2 });
        c.fill(0);
        c.fill(0);
        c.fill(64);
        assert!(c.contains(0) && c.contains(64));
    }
}
