//! DRAM command-issue tracing and protocol-legality checking.
//!
//! [`MemorySystem`](crate::MemorySystem) can record one [`IssueRecord`] per
//! issued transaction (see
//! [`MemorySystem::enable_trace`](crate::MemorySystem::enable_trace)).
//! [`check_protocol`] then replays the
//! trace against an *independent* model of the DDR timing rules and reports
//! the first violation, making scheduler bugs (issuing to a busy bank,
//! overlapping bus bursts, mislabeled row-buffer outcomes) observable from
//! the outside. Verification harnesses use it as a debug hook after fuzzed
//! workloads.

use crate::DramConfig;

/// Row-buffer outcome of one issued transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// Target row already open (column access only: tCAS).
    Hit,
    /// Bank precharged, row activated (tRCD + tCAS).
    Miss,
    /// Different row open: precharge then activate (tRP + tRCD + tCAS).
    Conflict,
}

impl RowOutcome {
    /// The access latency this outcome implies under `cfg`.
    pub fn access_latency(self, cfg: &DramConfig) -> u64 {
        match self {
            RowOutcome::Hit => cfg.t_cas,
            RowOutcome::Miss => cfg.t_rcd + cfg.t_cas,
            RowOutcome::Conflict => cfg.t_rp + cfg.t_rcd + cfg.t_cas,
        }
    }
}

/// One issued DRAM transaction, as recorded by the memory system's
/// command trace.
#[derive(Debug, Clone, Copy)]
pub struct IssueRecord {
    /// Cycle the command was issued at.
    pub at: u64,
    /// Channel index.
    pub channel: usize,
    /// Bank index within the channel.
    pub bank: usize,
    /// DRAM row addressed.
    pub row: u64,
    /// Row-buffer outcome the scheduler claimed.
    pub outcome: RowOutcome,
    /// Data-bus burst length in cycles.
    pub burst: u64,
}

#[derive(Clone, Copy)]
struct BankState {
    open_row: Option<u64>,
    ready_at: u64,
}

/// Replays `trace` against the DDR timing rules of `cfg` and returns the
/// first violation found.
///
/// Checked per record, with bank/bus state re-derived from scratch:
///
/// 1. the channel data bus must be free (`at >= prev_at + prev_burst`);
/// 2. the target bank must have finished its previous activate/precharge
///    (`at >= ready_at`, where `ready_at` advances by
///    `access_latency - tCAS + burst` — column accesses to an open row
///    pipeline at burst rate);
/// 3. the recorded [`RowOutcome`] must match the row-buffer state implied
///    by the trace prefix (tRCD/tCAS/tRP ordering; tRAS is not modeled
///    separately by [`DramConfig`] — activate-to-precharge spacing is
///    subsumed by the conservative `ready_at` rule);
/// 4. burst lengths must be nonzero and rows/banks in range.
///
/// Records must appear in issue order per channel (the memory system
/// appends them in tick order, which guarantees this).
///
/// # Errors
///
/// Returns a description of the first violated rule, naming the offending
/// record index.
pub fn check_protocol(cfg: &DramConfig, trace: &[IssueRecord]) -> Result<(), String> {
    let mut bus_free: Vec<u64> = vec![0; cfg.channels];
    let mut banks: Vec<Vec<BankState>> = vec![
        vec![
            BankState {
                open_row: None,
                ready_at: 0
            };
            cfg.banks_per_channel
        ];
        cfg.channels
    ];
    let mut last_at: Vec<u64> = vec![0; cfg.channels];

    for (i, r) in trace.iter().enumerate() {
        if r.channel >= cfg.channels {
            return Err(format!("record {i}: channel {} out of range", r.channel));
        }
        if r.bank >= cfg.banks_per_channel {
            return Err(format!("record {i}: bank {} out of range", r.bank));
        }
        if r.burst == 0 {
            return Err(format!("record {i}: zero-length burst"));
        }
        if (r.row % cfg.banks_per_channel as u64) as usize != r.bank {
            return Err(format!(
                "record {i}: row {} does not map to bank {}",
                r.row, r.bank
            ));
        }
        if r.at < last_at[r.channel] {
            return Err(format!(
                "record {i}: channel {} trace not in issue order ({} after {})",
                r.channel, r.at, last_at[r.channel]
            ));
        }
        last_at[r.channel] = r.at;
        if r.at < bus_free[r.channel] {
            return Err(format!(
                "record {i}: issued at {} while channel {} bus busy until {}",
                r.at, r.channel, bus_free[r.channel]
            ));
        }
        let bank = &mut banks[r.channel][r.bank];
        if r.at < bank.ready_at {
            return Err(format!(
                "record {i}: issued at {} while bank {}.{} busy until {}",
                r.at, r.channel, r.bank, bank.ready_at
            ));
        }
        let expected = match bank.open_row {
            Some(open) if open == r.row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Miss,
        };
        if expected != r.outcome {
            return Err(format!(
                "record {i}: outcome {:?} but row-buffer state implies {expected:?}",
                r.outcome
            ));
        }
        let access_lat = r.outcome.access_latency(cfg);
        bank.open_row = Some(r.row);
        bank.ready_at = r.at + (access_lat - cfg.t_cas) + r.burst;
        bus_free[r.channel] = r.at + r.burst;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::single_channel()
    }

    fn rec(at: u64, row: u64, outcome: RowOutcome, burst: u64) -> IssueRecord {
        IssueRecord {
            at,
            channel: 0,
            bank: (row % cfg().banks_per_channel as u64) as usize,
            row,
            outcome,
            burst,
        }
    }

    #[test]
    fn legal_hit_sequence_passes() {
        let c = cfg();
        // Miss at 0 holds the bank until (tRCD) + burst = 18; a hit to the
        // now-open row is legal from there.
        let trace = [
            rec(0, 0, RowOutcome::Miss, 4),
            rec(18, 0, RowOutcome::Hit, 4),
        ];
        check_protocol(&c, &trace).unwrap();
    }

    #[test]
    fn overlapping_bursts_are_caught() {
        let c = cfg();
        let trace = [
            rec(0, 0, RowOutcome::Miss, 4),
            rec(2, 0, RowOutcome::Hit, 4),
        ];
        let err = check_protocol(&c, &trace).unwrap_err();
        assert!(err.contains("bus busy"), "{err}");
    }

    #[test]
    fn busy_bank_is_caught() {
        let c = cfg();
        // Second access to the same bank's other row before the first
        // activation completes: bank busy until 14 + 4 = 18, bus free at 4.
        let other_row = c.banks_per_channel as u64; // same bank 0
        let trace = [
            rec(0, 0, RowOutcome::Miss, 4),
            rec(5, other_row, RowOutcome::Conflict, 4),
        ];
        let err = check_protocol(&c, &trace).unwrap_err();
        assert!(err.contains("bank"), "{err}");
    }

    #[test]
    fn mislabeled_outcome_is_caught() {
        let c = cfg();
        let trace = [rec(0, 0, RowOutcome::Hit, 4)];
        let err = check_protocol(&c, &trace).unwrap_err();
        assert!(err.contains("implies Miss"), "{err}");
    }

    #[test]
    fn wrong_bank_mapping_is_caught() {
        let c = cfg();
        let mut r = rec(0, 1, RowOutcome::Miss, 4);
        r.bank = 0; // row 1 maps to bank 1
        let err = check_protocol(&c, &[r]).unwrap_err();
        assert!(err.contains("does not map"), "{err}");
    }
}
