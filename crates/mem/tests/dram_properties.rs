//! Property tests of the DRAM timing model: conservation (every accepted
//! request completes exactly once), latency bounds, bandwidth ceilings, and
//! same-bank ordering, under random address streams.
//!
//! Randomized cases are driven by the workspace's deterministic
//! [`gp_sim::rng::StdRng`], so every run exercises the same inputs.

use gp_mem::{DramConfig, MemRequest, MemStats, MemorySystem, TrafficClass, LINE_BYTES};
use gp_sim::rng::{Rng, StdRng};
use gp_sim::Cycle;

/// Drives `addrs` through a fresh memory system; returns
/// `(completion order, final cycle, stats)`.
fn drive(cfg: DramConfig, addrs: &[u64]) -> (Vec<u64>, u64, MemStats) {
    let mut mem = MemorySystem::new(cfg);
    let mut now = Cycle::ZERO;
    let mut next = 0usize;
    let mut done: Vec<u64> = Vec::new();
    let mut ids = Vec::new();
    let mut guard = 0u64;
    while done.len() < addrs.len() {
        while next < addrs.len() && mem.can_accept(addrs[next]) {
            let id = mem
                .request(now, MemRequest::read(addrs[next], 64, TrafficClass::Other))
                .expect("accepted");
            ids.push(id);
            next += 1;
        }
        mem.tick(now);
        while let Some(req) = mem.pop_completion(now) {
            done.push(req.addr());
        }
        now = now.next();
        guard += 1;
        assert!(guard < 10_000_000, "dram model livelocked");
    }
    assert!(mem.is_idle());
    (done, now.get(), mem.stats().clone())
}

#[test]
fn every_request_completes_exactly_once() {
    let mut rng = StdRng::seed_from_u64(0xD7A1);
    for case in 0..32 {
        let addrs: Vec<u64> = (0..rng.gen_range(1..200usize))
            .map(|_| rng.gen_range(0..1u64 << 24) & !(LINE_BYTES - 1))
            .collect();
        let (done, _, stats) = drive(DramConfig::paper(), &addrs);
        let mut expect = addrs.clone();
        let mut got = done.clone();
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(expect, got, "case {case}");
        assert_eq!(stats.total_accesses(), addrs.len() as u64);
        assert_eq!(stats.total_bytes(), addrs.len() as u64 * 64);
    }
}

#[test]
fn latency_is_bounded_below_by_a_hit_and_burst() {
    let mut rng = StdRng::seed_from_u64(0xD7A2);
    for _ in 0..32 {
        let addr = rng.gen_range(0..1u64 << 20) & !(LINE_BYTES - 1);
        let cfg = DramConfig::paper();
        let (_, cycles, _) = drive(cfg, &[addr]);
        let burst = (64.0 / cfg.bytes_per_cycle).ceil() as u64;
        // Single cold read: exactly activation + CAS + burst (+1 because
        // the driver advances the clock once more after harvesting).
        assert_eq!(cycles, cfg.t_rcd + cfg.t_cas + burst + 1);
    }
}

#[test]
fn bandwidth_never_exceeds_the_configured_peak() {
    let mut rng = StdRng::seed_from_u64(0xD7A3);
    for _ in 0..32 {
        // Perfectly sequential stream: the fastest possible pattern.
        let n = rng.gen_range(16..256usize);
        let addrs: Vec<u64> = (0..n as u64).map(|i| i * LINE_BYTES).collect();
        let cfg = DramConfig::paper();
        let (_, cycles, _) = drive(cfg, &addrs);
        let bytes = (n as f64) * 64.0;
        let peak = cfg.peak_bytes_per_cycle();
        assert!(
            bytes / cycles as f64 <= peak + 1e-9,
            "modeled bandwidth {} exceeds peak {}",
            bytes / cycles as f64,
            peak
        );
    }
}

#[test]
fn per_channel_bandwidth_never_exceeds_peak() {
    // Hammer a single channel: all lines in one row of channel 0. The
    // per-channel data bus must cap throughput at `bytes_per_cycle`.
    let cfg = DramConfig::single_channel();
    let lines_per_row = (cfg.row_bytes / LINE_BYTES).max(1);
    let addrs: Vec<u64> = (0..256u64)
        .map(|i| (i % lines_per_row) * LINE_BYTES)
        .collect();
    let (_, cycles, stats) = drive(cfg, &addrs);
    let bytes = stats.total_bytes() as f64;
    assert!(
        bytes / cycles as f64 <= cfg.bytes_per_cycle + 1e-9,
        "single channel moved {} B/cycle, bus peak is {}",
        bytes / cycles as f64,
        cfg.bytes_per_cycle
    );
}

#[test]
fn row_conflicts_never_beat_row_hits() {
    let mut rng = StdRng::seed_from_u64(0xD7A4);
    for case in 0..32 {
        let seed = rng.gen_range(0..1000u64);
        let cfg = DramConfig::single_channel();
        // Hits: repeated same-row lines. Conflicts: same-bank different rows.
        let hits: Vec<u64> = (0..64u64).map(|i| (i % 8) * LINE_BYTES).collect();
        let stride = cfg.row_bytes * cfg.banks_per_channel as u64;
        let conflicts: Vec<u64> = (0..64u64).map(|i| ((i + seed) % 8) * stride).collect();
        let (_, t_hits, s_hits) = drive(cfg, &hits);
        let (_, t_conf, s_conf) = drive(cfg, &conflicts);
        assert!(t_hits <= t_conf, "case {case}");
        assert!(s_hits.row_hit_rate() > s_conf.row_hit_rate(), "case {case}");
    }
}

#[test]
fn row_hit_latency_strictly_below_row_miss_latency() {
    // Second access to an open row (hit: tCAS + burst) must be strictly
    // faster than reopening a precharged bank (miss: tRP + tRCD + tCAS).
    let cfg = DramConfig::single_channel();
    let same_row = vec![0u64, LINE_BYTES];
    let (_, t_hit_pair, s_hit) = drive(cfg, &same_row);
    let stride = cfg.row_bytes * cfg.banks_per_channel as u64;
    let other_row = vec![0u64, stride];
    let (_, t_miss_pair, s_miss) = drive(cfg, &other_row);
    assert!(
        t_hit_pair < t_miss_pair,
        "row hit pair took {t_hit_pair} cycles, conflict pair {t_miss_pair}"
    );
    assert!(s_hit.row_hit_rate() > s_miss.row_hit_rate());
}

#[test]
fn trcd_tcas_trp_ordering_is_respected() {
    let cfg = DramConfig::single_channel();
    let burst = (64.0 / cfg.bytes_per_cycle).ceil() as u64;
    // Cold activate: data can only arrive after tRCD (activate) + tCAS
    // (column access) + burst; one extra driver cycle to harvest.
    let (_, cold, _) = drive(cfg, &[0]);
    assert!(cold >= cfg.t_rcd + cfg.t_cas + burst);
    // Row conflict in one bank: the second access pays tRP (precharge) and
    // its own tRCD + tCAS after the first activation. The model lets the
    // precharge overlap the first access's CAS/burst (column accesses
    // pipeline), so the bank-serial floor is ACT1 -> PRE -> ACT2 -> CAS2
    // -> burst2, not the fully serial sum of both chains.
    let stride = cfg.row_bytes * cfg.banks_per_channel as u64;
    let (_, conflict, _) = drive(cfg, &[0, stride]);
    assert!(
        conflict >= cfg.t_rcd + cfg.t_rp + cfg.t_rcd + cfg.t_cas + burst,
        "conflict pair finished in {conflict} cycles, below the tRCD+tRP+tRCD+tCAS floor"
    );
    // The precharge penalty itself must be visible relative to a cold read.
    assert!(
        conflict >= cold + cfg.t_rp,
        "conflict pair ({conflict}) does not show the tRP penalty over a cold read ({cold})"
    );
    // And a same-row pair must not pay activation twice.
    let (_, hit, _) = drive(cfg, &[0, LINE_BYTES]);
    assert!(hit < conflict);
}

#[test]
fn same_row_requests_complete_in_issue_order() {
    let mut rng = StdRng::seed_from_u64(0xD7A5);
    for case in 0..32 {
        // FR-FCFS may reorder different rows of a bank (preferring hits),
        // but accesses to one open row must stay FIFO.
        let cfg = DramConfig::single_channel();
        let addrs: Vec<u64> = (0..rng.gen_range(2..50usize))
            .map(|_| rng.gen_range(0..16u64) * LINE_BYTES)
            .collect();
        let (done, _, _) = drive(cfg, &addrs);
        assert_eq!(done, addrs, "case {case}");
    }
}

#[test]
fn utilization_is_a_weighted_average() {
    let mut mem = MemorySystem::new(DramConfig::single_channel());
    mem.request(
        Cycle::ZERO,
        MemRequest::read(0, 64, TrafficClass::VertexRead).with_useful_bytes(16),
    )
    .unwrap();
    mem.request(
        Cycle::ZERO,
        MemRequest::read(64, 64, TrafficClass::EdgeRead).with_useful_bytes(64),
    )
    .unwrap();
    let mut now = Cycle::ZERO;
    let mut done = 0;
    while done < 2 {
        mem.tick(now);
        while mem.pop_completion(now).is_some() {
            done += 1;
        }
        now = now.next();
    }
    assert!((mem.stats().utilization() - 80.0 / 128.0).abs() < 1e-12);
}
