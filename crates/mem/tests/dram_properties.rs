//! Property tests of the DRAM timing model: conservation (every accepted
//! request completes exactly once), latency bounds, bandwidth ceilings, and
//! same-bank ordering, under random address streams.

use proptest::prelude::*;

use gp_mem::{DramConfig, MemRequest, MemStats, MemorySystem, TrafficClass, LINE_BYTES};
use gp_sim::Cycle;

/// Drives `addrs` through a fresh memory system; returns
/// `(completion order, final cycle, stats)`.
fn drive(cfg: DramConfig, addrs: &[u64]) -> (Vec<u64>, u64, MemStats) {
    let mut mem = MemorySystem::new(cfg);
    let mut now = Cycle::ZERO;
    let mut next = 0usize;
    let mut done: Vec<u64> = Vec::new();
    let mut ids = Vec::new();
    let mut guard = 0u64;
    while done.len() < addrs.len() {
        while next < addrs.len() && mem.can_accept(addrs[next]) {
            let id = mem
                .request(now, MemRequest::read(addrs[next], 64, TrafficClass::Other))
                .expect("accepted");
            ids.push(id);
            next += 1;
        }
        mem.tick(now);
        while let Some(req) = mem.pop_completion(now) {
            done.push(req.addr());
        }
        now = now.next();
        guard += 1;
        assert!(guard < 10_000_000, "dram model livelocked");
    }
    assert!(mem.is_idle());
    (done, now.get(), mem.stats().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_request_completes_exactly_once(
        raw in proptest::collection::vec(0u64..1 << 24, 1..200),
    ) {
        let addrs: Vec<u64> = raw.iter().map(|a| a & !(LINE_BYTES - 1)).collect();
        let (done, _, stats) = drive(DramConfig::paper(), &addrs);
        let mut expect = addrs.clone();
        let mut got = done.clone();
        expect.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(expect, got);
        prop_assert_eq!(stats.total_accesses(), addrs.len() as u64);
        prop_assert_eq!(stats.total_bytes(), addrs.len() as u64 * 64);
    }

    #[test]
    fn latency_is_bounded_below_by_a_hit_and_burst(
        addr in (0u64..1 << 20).prop_map(|a| a & !(LINE_BYTES - 1)),
    ) {
        let cfg = DramConfig::paper();
        let (_, cycles, _) = drive(cfg, &[addr]);
        let burst = (64.0 / cfg.bytes_per_cycle).ceil() as u64;
        // Single cold read: exactly activation + CAS + burst (+1 because
        // the driver advances the clock once more after harvesting).
        prop_assert_eq!(cycles, cfg.t_rcd + cfg.t_cas + burst + 1);
    }

    #[test]
    fn bandwidth_never_exceeds_the_configured_peak(
        n in 16usize..256,
    ) {
        // Perfectly sequential stream: the fastest possible pattern.
        let addrs: Vec<u64> = (0..n as u64).map(|i| i * LINE_BYTES).collect();
        let cfg = DramConfig::paper();
        let (_, cycles, _) = drive(cfg, &addrs);
        let bytes = (n as f64) * 64.0;
        let peak = cfg.peak_bytes_per_cycle();
        prop_assert!(
            bytes / cycles as f64 <= peak + 1e-9,
            "modeled bandwidth {} exceeds peak {}",
            bytes / cycles as f64,
            peak
        );
    }

    #[test]
    fn row_conflicts_never_beat_row_hits(seed in 0u64..1000) {
        let cfg = DramConfig::single_channel();
        // Hits: repeated same-row lines. Conflicts: same-bank different rows.
        let hits: Vec<u64> = (0..64u64).map(|i| (i % 8) * LINE_BYTES).collect();
        let stride = cfg.row_bytes * cfg.banks_per_channel as u64;
        let conflicts: Vec<u64> = (0..64u64).map(|i| ((i + seed) % 8) * stride).collect();
        let (_, t_hits, s_hits) = drive(cfg, &hits);
        let (_, t_conf, s_conf) = drive(cfg, &conflicts);
        prop_assert!(t_hits <= t_conf);
        prop_assert!(s_hits.row_hit_rate() > s_conf.row_hit_rate());
    }

    #[test]
    fn same_row_requests_complete_in_issue_order(
        cols in proptest::collection::vec(0u64..16, 2..50),
    ) {
        // FR-FCFS may reorder different rows of a bank (preferring hits),
        // but accesses to one open row must stay FIFO.
        let cfg = DramConfig::single_channel();
        let addrs: Vec<u64> = cols.iter().map(|c| c * LINE_BYTES).collect();
        let (done, _, _) = drive(cfg, &addrs);
        prop_assert_eq!(done, addrs);
    }
}

#[test]
fn utilization_is_a_weighted_average() {
    let mut mem = MemorySystem::new(DramConfig::single_channel());
    mem.request(
        Cycle::ZERO,
        MemRequest::read(0, 64, TrafficClass::VertexRead).with_useful_bytes(16),
    )
    .unwrap();
    mem.request(
        Cycle::ZERO,
        MemRequest::read(64, 64, TrafficClass::EdgeRead).with_useful_bytes(64),
    )
    .unwrap();
    let mut now = Cycle::ZERO;
    let mut done = 0;
    while done < 2 {
        mem.tick(now);
        while mem.pop_completion(now).is_some() {
            done += 1;
        }
        now = now.next();
    }
    assert!((mem.stats().utilization() - 80.0 / 128.0).abs() < 1e-12);
}
