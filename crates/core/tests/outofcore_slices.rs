//! The cycle-level accelerator and its slice-swapping machinery running
//! *unmodified* over a disk-resident graph: every backend in this crate is
//! generic over `GraphView`, so a [`MappedCsr`] opened from an on-disk
//! container must produce bit-identical outcomes to the same machine over
//! the resident [`CsrGraph`] — including when the queue is undersized and
//! the §IV-F slicing path does the work.

use std::fs;
use std::path::PathBuf;

use gp_algorithms::{Bfs, ConnectedComponents, DeltaAlgorithm, PageRankDelta, Sssp};
use gp_graph::container::write_container;
use gp_graph::generators::{rmat, RmatConfig, WeightMode};
use gp_graph::partition::Partition;
use gp_graph::{CsrGraph, GraphView, MappedCsr};
use gp_mem::integrity::Storable;
use graphpulse_core::{AcceleratorConfig, GraphPulse, QueueConfig};

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("gp-core-ooc-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        fs::remove_dir_all(&self.0).ok();
    }
}

fn fixture(scratch: &Scratch, weighted: bool) -> (CsrGraph, MappedCsr) {
    let wm = if weighted {
        WeightMode::Uniform(0.5, 4.0)
    } else {
        WeightMode::Unweighted
    };
    let cfg = RmatConfig::graph500(512, 2048).with_weights(wm);
    let g = rmat(&cfg, 21);
    let path = scratch.0.join(format!("fixture-{weighted}.gpc"));
    write_container(&g, &path, 64).unwrap();
    (g, MappedCsr::open_verified(&path).unwrap())
}

/// A machine whose queue holds far fewer vertices than the graph, forcing
/// the multi-slice execution path.
fn sliced_machine() -> GraphPulse {
    let mut cfg = AcceleratorConfig::small_test();
    cfg.queue = QueueConfig {
        bins: 2,
        rows: 16,
        cols: 4,
    }; // 128 slots for 512 vertices => >= 4 slices
    cfg.input_buffer = cfg.input_buffer.max(cfg.queue.cols);
    GraphPulse::new(cfg)
}

fn assert_same_outcome<A>(algo: &A, resident: &CsrGraph, mapped: &MappedCsr)
where
    A: DeltaAlgorithm,
    A::Value: Storable,
{
    let gp = sliced_machine();
    let on_ram = gp.run(resident, algo).unwrap();
    let on_disk = gp.run(mapped, algo).unwrap();
    assert!(
        on_disk.report.slices >= 2,
        "queue was meant to force slicing, got {} slice(s)",
        on_disk.report.slices
    );
    assert_eq!(on_disk.report.slices, on_ram.report.slices);
    assert_eq!(on_disk.report.cycles, on_ram.report.cycles);
    assert_eq!(
        on_disk.report.events_processed,
        on_ram.report.events_processed
    );
    assert_eq!(
        on_disk.report.events_generated,
        on_ram.report.events_generated
    );
    let ram_bits: Vec<u64> = on_ram.values.iter().map(|v| v.to_bits()).collect();
    let disk_bits: Vec<u64> = on_disk.values.iter().map(|v| v.to_bits()).collect();
    assert_eq!(disk_bits, ram_bits, "values diverged over the mapping");

    // Shard-parallel engine over the mapping (needs MappedCsr: Sync).
    let par_ram = gp.run_parallel(resident, algo).unwrap();
    let par_disk = gp.run_parallel(mapped, algo).unwrap();
    let pram: Vec<u64> = par_ram.values.iter().map(|v| v.to_bits()).collect();
    let pdisk: Vec<u64> = par_disk.values.iter().map(|v| v.to_bits()).collect();
    assert_eq!(pdisk, pram, "parallel values diverged over the mapping");
    assert_eq!(par_disk.report.cycles, par_ram.report.cycles);
    assert_eq!(par_disk.epochs, par_ram.epochs);
}

#[test]
fn sliced_accelerator_is_bit_identical_on_mapped_unweighted_graph() {
    let scratch = Scratch::new("unweighted");
    let (g, mapped) = fixture(&scratch, false);
    assert_same_outcome(&PageRankDelta::new(0.85, 1e-7), &g, &mapped);
    assert_same_outcome(&Bfs::new(gp_graph::VertexId::new(0)), &g, &mapped);
    assert_same_outcome(&ConnectedComponents::new(), &g, &mapped);
}

#[test]
fn sliced_accelerator_is_bit_identical_on_mapped_weighted_graph() {
    let scratch = Scratch::new("weighted");
    let (g, mapped) = fixture(&scratch, true);
    assert_same_outcome(&Sssp::new(gp_graph::VertexId::new(0)), &g, &mapped);
}

#[test]
fn partition_machinery_agrees_with_the_stored_slice_index() {
    let scratch = Scratch::new("partition");
    let (g, mapped) = fixture(&scratch, false);
    // The container was written with a 64-vertex slice cap; the partition
    // machinery over the *mapped* view must reproduce the stored index,
    // and both must tile the vertex and edge spaces.
    let part = Partition::contiguous(&mapped, 64);
    let stored = mapped.slice_extents();
    assert_eq!(part.len(), stored.len());
    let mut edge_total = 0u64;
    for (p, s) in part.slices().iter().zip(stored) {
        assert_eq!(u64::from(p.start.get()), s.start);
        assert_eq!(u64::from(p.end.get()), s.end);
        edge_total += s.edge_end - s.edge_start;
    }
    assert_eq!(edge_total as usize, g.num_edges());
    assert_eq!(GraphView::num_edges(&mapped), g.num_edges());
}
