//! Model-based property tests of the coalescing event queue: a random
//! sequence of timed insertions and drains must behave exactly like a
//! reference map-of-pending-deltas, regardless of hazards, stalls, and
//! sweep position.
//!
//! The queue internals are crate-private, so the model is driven through
//! the public machine: we compare the accelerator's *functional* outcome
//! and event accounting against the sequential golden engine on adversarial
//! graph shapes that stress specific queue behaviors.
//!
//! Randomized cases are driven by the workspace's deterministic
//! [`gp_graph::rng::StdRng`], so every run exercises the same inputs.

use gp_algorithms::engine::run_sequential;
use gp_algorithms::{max_abs_diff, ConnectedComponents, PageRankDelta, Sssp};
use gp_graph::generators::{barabasi_albert, erdos_renyi, WeightMode};
use gp_graph::rng::{Rng, StdRng};
use gp_graph::{CsrGraph, GraphBuilder, VertexId};
use graphpulse_core::{AcceleratorConfig, GraphPulse, QueueConfig};

/// Machines whose queue geometry is adversarial: single-column rows (every
/// event its own drain), single bin (maximum insertion contention), wide
/// rows, or tiny total capacity (forced slicing).
fn queue_shapes() -> Vec<QueueConfig> {
    vec![
        QueueConfig {
            bins: 1,
            rows: 256,
            cols: 1,
        },
        QueueConfig {
            bins: 1,
            rows: 16,
            cols: 16,
        },
        QueueConfig {
            bins: 8,
            rows: 32,
            cols: 1,
        },
        QueueConfig {
            bins: 2,
            rows: 2,
            cols: 8,
        }, // 32 slots: heavy slicing
    ]
}

fn machine(queue: QueueConfig) -> GraphPulse {
    let mut cfg = AcceleratorConfig::small_test();
    cfg.queue = queue;
    cfg.input_buffer = cfg.input_buffer.max(queue.cols);
    GraphPulse::new(cfg)
}

/// A star graph: one hub pointing at all spokes and back — the worst case
/// for same-slot coalescing contention.
fn star(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(VertexId::new(0), VertexId::from_index(i), 1.0);
        b.add_edge(VertexId::from_index(i), VertexId::new(0), 1.0);
    }
    b.build()
}

#[test]
fn star_graph_coalesces_into_the_hub_slot() {
    for queue in queue_shapes() {
        let g = star(40);
        let out = machine(queue)
            .run(&g, &PageRankDelta::new(0.85, 1e-8))
            .expect("run");
        let golden = run_sequential(&PageRankDelta::new(0.85, 1e-8), &g);
        assert!(
            max_abs_diff(&out.values, &golden.values) < 1e-3,
            "queue {queue:?} diverged"
        );
        // All spoke->hub events inside one round coalesce into one slot.
        assert!(
            out.report.events_coalesced > 0,
            "queue {queue:?} never coalesced"
        );
    }
}

#[test]
fn chain_graph_survives_single_column_rows() {
    // A long path: exactly one event in flight at a time; sweeps must not
    // skip or double-deliver it.
    let n = 200;
    let mut b = GraphBuilder::new(n);
    for i in 0..n - 1 {
        b.add_edge(VertexId::from_index(i), VertexId::from_index(i + 1), 1.0);
    }
    let g = b.build();
    for queue in queue_shapes() {
        let out = machine(queue)
            .run(&g, &Sssp::new(VertexId::new(0)))
            .expect("run");
        let golden = gp_algorithms::reference::sssp_dijkstra(&g, VertexId::new(0));
        assert!(max_abs_diff(&out.values, &golden) < 1e-9, "queue {queue:?}");
        // One event per vertex, no coalescing opportunities on a path.
        assert_eq!(out.report.events_coalesced, 0, "queue {queue:?}");
        assert_eq!(out.report.events_processed, n as u64, "queue {queue:?}");
    }
}

#[test]
fn random_graphs_agree_across_queue_shapes() {
    let mut rng = StdRng::seed_from_u64(0xE1);
    for _ in 0..10 {
        let n = rng.gen_range(4..50usize);
        let seed = rng.next_u64();
        let shape = rng.gen_range(0..4usize);
        let g = erdos_renyi(n, n * 3, WeightMode::Unweighted, seed);
        let queue = queue_shapes()[shape];
        let algo = ConnectedComponents::new();
        let out = machine(queue).run(&g, &algo).expect("run");
        let golden = run_sequential(&algo, &g);
        assert!(max_abs_diff(&out.values, &golden.values) < 1e-9);
        assert_eq!(
            out.report.events_generated,
            out.report.events_processed + out.report.events_coalesced
        );
    }
}

#[test]
fn event_conservation_check_passes_strict_on_single_machines() {
    for queue in queue_shapes() {
        let g = erdos_renyi(60, 240, WeightMode::Uniform(1.0, 4.0), 0x11);
        let algo = Sssp::new(VertexId::new(0));
        let out = machine(queue).run(&g, &algo).expect("run");
        out.report
            .check_event_conservation(true)
            .expect("sequential/sliced runs balance exactly");
    }
}

#[test]
fn hub_heavy_graphs_agree_across_queue_shapes() {
    let mut rng = StdRng::seed_from_u64(0xE2);
    for _ in 0..10 {
        let n = rng.gen_range(6..40usize);
        let seed = rng.next_u64();
        let shape = rng.gen_range(0..4usize);
        let g = barabasi_albert(n, 2, WeightMode::Unweighted, seed);
        let queue = queue_shapes()[shape];
        let algo = PageRankDelta::new(0.85, 1e-8);
        let out = machine(queue).run(&g, &algo).expect("run");
        let golden = run_sequential(&algo, &g);
        assert!(max_abs_diff(&out.values, &golden.values) < 1e-3);
    }
}
