//! Failure injection and degenerate configurations: single-entry buffers,
//! one-processor machines, starved DRAM queues, and the cycle-limit error
//! path. The machine must either finish correctly or fail *explicitly* —
//! never deadlock or return wrong values.

use gp_algorithms::engine::run_sequential;
use gp_algorithms::{max_abs_diff, ConnectedComponents, PageRankDelta};
use gp_graph::generators::{erdos_renyi, rmat, RmatConfig, WeightMode};
use graphpulse_core::{AcceleratorConfig, GraphPulse, QueueConfig, RunError};

fn base() -> AcceleratorConfig {
    let mut cfg = AcceleratorConfig::small_test();
    cfg.queue = QueueConfig {
        bins: 4,
        rows: 32,
        cols: 8,
    };
    cfg
}

#[test]
fn cycle_limit_is_reported_not_hung() {
    let g = erdos_renyi(100, 600, WeightMode::Unweighted, 1);
    let mut cfg = base();
    cfg.max_cycles = 100; // far too few
    let err = GraphPulse::new(cfg)
        .run(&g, &PageRankDelta::new(0.85, 1e-7))
        .unwrap_err();
    assert_eq!(err, RunError::CycleLimit(100));
    assert!(err.to_string().contains("100"));
}

#[test]
fn single_entry_buffers_still_make_progress() {
    let g = erdos_renyi(80, 400, WeightMode::Unweighted, 7);
    let algo = ConnectedComponents::new();
    let golden = run_sequential(&algo, &g);
    let mut cfg = base();
    cfg.bin_input_depth = 1;
    cfg.gen_buffer = 1;
    cfg.input_buffer = cfg.queue.cols; // minimum legal
    let out = GraphPulse::new(cfg)
        .run(&g, &algo)
        .expect("must not deadlock");
    assert!(max_abs_diff(&out.values, &golden.values) < 1e-9);
}

#[test]
fn one_processor_one_stream_one_port() {
    let g = rmat(&RmatConfig::graph500(128, 512), 3);
    let algo = PageRankDelta::new(0.85, 1e-6);
    let golden = run_sequential(&algo, &g);
    let mut cfg = base();
    cfg.processors = 1;
    cfg.gen_streams = 1;
    cfg.crossbar_ports = 1;
    let out = GraphPulse::new(cfg).run(&g, &algo).expect("run");
    assert!(max_abs_diff(&out.values, &golden.values) < 1e-3);
}

#[test]
fn starved_dram_queues_only_slow_things_down() {
    let g = erdos_renyi(100, 500, WeightMode::Unweighted, 4);
    let algo = PageRankDelta::new(0.85, 1e-6);
    let fast = GraphPulse::new(base()).run(&g, &algo).expect("fast run");
    let mut cfg = base();
    cfg.dram.queue_depth = 1;
    cfg.dram.sched_window = 1;
    let slow = GraphPulse::new(cfg).run(&g, &algo).expect("slow run");
    assert!(max_abs_diff(&fast.values, &slow.values) < 1e-6);
    // Backpressure manifests as issue stalls (all requesters gate on
    // `can_accept`), visible as a strictly slower run.
    assert!(slow.report.cycles > fast.report.cycles);
}

#[test]
fn deep_coalescer_preserves_results() {
    let g = rmat(&RmatConfig::graph500(256, 1_024), 8);
    let algo = ConnectedComponents::new();
    let golden = run_sequential(&algo, &g);
    let mut cfg = base();
    cfg.coalescer_depth = 16; // long hazard window
    let out = GraphPulse::new(cfg).run(&g, &algo).expect("run");
    assert!(max_abs_diff(&out.values, &golden.values) < 1e-9);
}

#[test]
fn pathological_slice_count_still_converges() {
    // 32-slot queue on a 300-vertex graph: 10 slices, many swap cycles.
    let g = erdos_renyi(300, 1_200, WeightMode::Unweighted, 5);
    let algo = ConnectedComponents::new();
    let golden = run_sequential(&algo, &g);
    let mut cfg = base();
    cfg.queue = QueueConfig {
        bins: 2,
        rows: 2,
        cols: 8,
    };
    let out = GraphPulse::new(cfg).run(&g, &algo).expect("run");
    assert_eq!(out.report.slices, 10);
    assert!(out.report.slice_activations >= 10);
    assert!(max_abs_diff(&out.values, &golden.values) < 1e-9);
}
