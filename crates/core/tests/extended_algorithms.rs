//! The accelerator runs the extended algorithm family too: SSWP (max-min
//! semiring), the asynchronous linear-equation solver, and personalized
//! PageRank — all beyond the paper's five apps, all validated against
//! their classic references.

use gp_algorithms::{
    max_abs_diff, reference, scale_for_convergence, LinearSolver, PageRankDelta, Sswp,
};
use gp_graph::generators::{erdos_renyi, WeightMode};
use gp_graph::VertexId;
use graphpulse_core::{AcceleratorConfig, GraphPulse, QueueConfig};

fn accel() -> GraphPulse {
    let mut cfg = AcceleratorConfig::small_test();
    cfg.queue = QueueConfig {
        bins: 4,
        rows: 32,
        cols: 8,
    };
    GraphPulse::new(cfg)
}

#[test]
fn sswp_matches_widest_path_reference() {
    let g = erdos_renyi(180, 1_100, WeightMode::Uniform(1.0, 10.0), 6);
    let root = VertexId::new(0);
    let out = accel().run(&g, &Sswp::new(root)).expect("run");
    let golden = reference::sswp_widest(&g, root);
    assert!(max_abs_diff(&out.values, &golden) < 1e-6);
    // max-coalescing applies here exactly as for CC.
    assert!(out.report.events_generated > 0);
}

#[test]
fn linear_solver_matches_jacobi_on_the_accelerator() {
    let raw = erdos_renyi(150, 900, WeightMode::Uniform(0.5, 3.0), 2);
    let w = scale_for_convergence(&raw, 0.75);
    let b: Vec<f64> = (0..150).map(|i| 0.2 + (i % 5) as f64 * 0.15).collect();
    let solver = LinearSolver::new(b.clone(), 1e-10);
    let out = accel().run(&w, &solver).expect("run");
    // Compare against the sequential golden engine (itself validated
    // against dense Jacobi in the algorithms crate).
    let golden = gp_algorithms::engine::run_sequential(&solver, &w);
    assert!(max_abs_diff(&out.values, &golden.values) < 1e-5);
}

#[test]
fn personalized_pagerank_on_the_accelerator() {
    let g = erdos_renyi(200, 1_200, WeightMode::Unweighted, 9);
    let sources = [VertexId::new(7)];
    let pr = PageRankDelta::personalized(0.85, 1e-9, 200, &sources);
    let out = accel().run(&g, &pr).expect("run");
    let golden = reference::personalized_pagerank(&g, 0.85, &sources, 1e-12);
    assert!(max_abs_diff(&out.values, &golden) < 1e-4);
    // Only the seed receives an initial event; everything else flows from it.
    let max = out.values.iter().cloned().fold(0.0f64, f64::max);
    assert_eq!(out.values[7], max, "seed vertex must dominate");
}

#[test]
fn sswp_survives_slicing() {
    let g = erdos_renyi(300, 1_800, WeightMode::Uniform(1.0, 8.0), 3);
    let mut cfg = AcceleratorConfig::small_test();
    cfg.queue = QueueConfig {
        bins: 4,
        rows: 4,
        cols: 8,
    }; // 128 slots → slices
    let out = GraphPulse::new(cfg)
        .run(&g, &Sswp::new(VertexId::new(0)))
        .expect("run");
    assert!(out.report.slices > 1);
    let golden = reference::sswp_widest(&g, VertexId::new(0));
    assert!(max_abs_diff(&out.values, &golden) < 1e-6);
}
