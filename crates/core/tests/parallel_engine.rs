//! Tests of the shard-parallel execution engine: bit-determinism across
//! worker counts (the engine's core guarantee) and differential
//! equivalence against the golden reference solvers on seeded random
//! graphs.

use gp_algorithms::{max_abs_diff, reference, Bfs, ConnectedComponents, PageRankDelta, Sssp};
use gp_graph::generators::{erdos_renyi, rmat, RmatConfig, WeightMode};
use gp_graph::rng::{Rng, StdRng};
use gp_graph::{CsrGraph, VertexId};
use graphpulse_core::{AcceleratorConfig, GraphPulse, ParallelOutcome, QueueConfig};

/// A small machine whose queue holds 64 vertices per slice, so even tiny
/// graphs split into several shards.
fn sharded_config(workers: usize) -> AcceleratorConfig {
    let mut cfg = AcceleratorConfig::small_test();
    cfg.queue = QueueConfig {
        bins: 2,
        rows: 4,
        cols: 8,
    }; // 64 slots
    cfg.input_buffer = 16;
    cfg.parallel.workers = workers;
    cfg.parallel.epoch_cycles = 64;
    cfg
}

fn run_workers(
    graph: &CsrGraph,
    workers: usize,
    run: impl Fn(&GraphPulse, &CsrGraph) -> ParallelOutcome,
) -> ParallelOutcome {
    let accel = GraphPulse::new(sharded_config(workers));
    run(&accel, graph)
}

/// Exact bit-comparison of two parallel outcomes.
fn assert_bit_identical(a: &ParallelOutcome, b: &ParallelOutcome) {
    let abits: Vec<u64> = a.values.iter().map(|v| v.to_bits()).collect();
    let bbits: Vec<u64> = b.values.iter().map(|v| v.to_bits()).collect();
    assert_eq!(abits, bbits, "vertex values differ between worker counts");
    assert_eq!(a.report.cycles, b.report.cycles, "cycle counts differ");
    assert_eq!(a.report.rounds, b.report.rounds);
    assert_eq!(a.report.events_processed, b.report.events_processed);
    assert_eq!(a.report.events_generated, b.report.events_generated);
    assert_eq!(a.report.events_coalesced, b.report.events_coalesced);
    assert_eq!(a.report.events_spilled, b.report.events_spilled);
    assert_eq!(a.stats, b.stats, "stat registries differ");
    assert_eq!(a.epochs, b.epochs);
    assert_eq!(a.shards, b.shards);
    assert_eq!(a.shard_ticks, b.shard_ticks, "per-shard work differs");
}

#[test]
fn determinism_across_1_2_4_workers() {
    let g = rmat(&RmatConfig::graph500(512, 4_096), 77);
    let algo = PageRankDelta::new(0.85, 1e-6);
    let outs: Vec<ParallelOutcome> = [1usize, 2, 4]
        .iter()
        .map(|&w| run_workers(&g, w, |a, g| a.run_parallel(g, &algo).expect("run")))
        .collect();
    assert!(outs[0].shards > 1, "test graph must span multiple shards");
    assert!(
        outs[0].report.events_spilled > 0,
        "expected cross-shard events"
    );
    assert_bit_identical(&outs[0], &outs[1]);
    assert_bit_identical(&outs[0], &outs[2]);
}

#[test]
fn determinism_holds_for_exact_algorithms_too() {
    let g = erdos_renyi(400, 2_400, WeightMode::Uniform(1.0, 9.0), 13);
    let algo = Sssp::new(VertexId::new(0));
    let a = run_workers(&g, 1, |a, g| a.run_parallel(g, &algo).expect("run"));
    let b = run_workers(&g, 4, |a, g| a.run_parallel(g, &algo).expect("run"));
    assert_bit_identical(&a, &b);
}

#[test]
fn parallel_pagerank_matches_reference_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(0xA1);
    for case in 0..6 {
        let n = rng.gen_range(64..400usize);
        let seed = rng.next_u64();
        let g = if case % 2 == 0 {
            rmat(&RmatConfig::graph500(n, n * 6), seed)
        } else {
            erdos_renyi(n, n * 6, WeightMode::Unweighted, seed)
        };
        let algo = PageRankDelta::new(0.85, 1e-9);
        let out = run_workers(&g, 3, |a, g| a.run_parallel(g, &algo).expect("run"));
        let golden = reference::pagerank(&g, 0.85, 1e-12);
        assert!(
            max_abs_diff(&out.values, &golden) < 1e-4,
            "case {case}: parallel PageRank diverged from reference"
        );
    }
}

#[test]
fn parallel_sssp_matches_dijkstra_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(0xA2);
    for case in 0..6 {
        let n = rng.gen_range(64..300usize);
        let seed = rng.next_u64();
        let g = erdos_renyi(n, n * 5, WeightMode::Uniform(1.0, 9.0), seed);
        let algo = Sssp::new(VertexId::new(0));
        let out = run_workers(&g, 2, |a, g| a.run_parallel(g, &algo).expect("run"));
        let golden = reference::sssp_dijkstra(&g, VertexId::new(0));
        assert!(
            max_abs_diff(&out.values, &golden) < 1e-6,
            "case {case}: parallel SSSP diverged from Dijkstra"
        );
    }
}

#[test]
fn parallel_bfs_matches_reference_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(0xA3);
    for case in 0..6 {
        let n = rng.gen_range(64..300usize);
        let seed = rng.next_u64();
        let g = rmat(&RmatConfig::graph500(n, n * 4), seed);
        let algo = Bfs::new(VertexId::new(0));
        let out = run_workers(&g, 4, |a, g| a.run_parallel(g, &algo).expect("run"));
        let golden = reference::bfs_levels(&g, VertexId::new(0));
        assert!(
            max_abs_diff(&out.values, &golden) < 1e-9,
            "case {case}: parallel BFS diverged from reference"
        );
    }
}

#[test]
fn parallel_cc_matches_reference_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(0xA4);
    for case in 0..6 {
        let n = rng.gen_range(64..300usize);
        let seed = rng.next_u64();
        let g = erdos_renyi(n, n * 4, WeightMode::Unweighted, seed);
        let algo = ConnectedComponents::new();
        let out = run_workers(&g, 2, |a, g| a.run_parallel(g, &algo).expect("run"));
        let golden = reference::cc_labels(&g);
        assert!(
            max_abs_diff(&out.values, &golden) < 1e-9,
            "case {case}: parallel CC diverged from reference"
        );
    }
}

#[test]
fn parallel_matches_sequential_engine_functionally() {
    let g = rmat(&RmatConfig::graph500(256, 2_048), 5);
    let algo = PageRankDelta::new(0.85, 1e-8);
    let par = run_workers(&g, 4, |a, g| a.run_parallel(g, &algo).expect("run"));
    let seq = GraphPulse::new(sharded_config(1))
        .run(&g, &algo)
        .expect("run");
    assert!(max_abs_diff(&par.values, &seq.values) < 1e-4);
}

#[test]
fn single_shard_graph_runs_in_parallel_mode() {
    let g = erdos_renyi(48, 200, WeightMode::Unweighted, 9);
    let mut cfg = AcceleratorConfig::small_test();
    cfg.parallel.workers = 4; // more workers than shards: clamped
    let out = GraphPulse::new(cfg)
        .run_parallel(&g, &PageRankDelta::new(0.85, 1e-7))
        .expect("run");
    assert_eq!(out.shards, 1);
    let golden = reference::pagerank(&g, 0.85, 1e-12);
    assert!(max_abs_diff(&out.values, &golden) < 1e-4);
}

#[test]
fn empty_graph_parallel_run_terminates() {
    let g = gp_graph::GraphBuilder::new(0).build();
    let out = GraphPulse::new(AcceleratorConfig::small_test())
        .run_parallel(&g, &PageRankDelta::new(0.85, 1e-4))
        .expect("run");
    assert!(out.values.is_empty());
    assert_eq!(out.shards, 0);
}

#[test]
fn forced_shard_count_is_respected() {
    let g = erdos_renyi(256, 1_500, WeightMode::Unweighted, 21);
    let mut cfg = AcceleratorConfig::small_test();
    cfg.parallel.shards = 8;
    cfg.parallel.workers = 2;
    let out = GraphPulse::new(cfg)
        .run_parallel(&g, &PageRankDelta::new(0.85, 1e-7))
        .expect("run");
    assert_eq!(out.shards, 8);
}

#[test]
fn oversubscribed_forced_shards_are_rejected() {
    let g = erdos_renyi(256, 1_500, WeightMode::Unweighted, 21);
    let mut cfg = AcceleratorConfig::small_test();
    cfg.queue = QueueConfig {
        bins: 1,
        rows: 1,
        cols: 4,
    }; // 4 slots
    cfg.input_buffer = 4;
    cfg.parallel.shards = 2; // 128 vertices per slice >> 4 slots
    let err = GraphPulse::new(cfg)
        .run_parallel(&g, &PageRankDelta::new(0.85, 1e-7))
        .unwrap_err();
    assert!(matches!(err, graphpulse_core::RunError::InvalidConfig(_)));
}

#[test]
fn stats_registry_snapshot_matches_report_counters() {
    let g = rmat(&RmatConfig::graph500(256, 2_048), 31);
    let algo = PageRankDelta::new(0.85, 1e-6);
    let out = run_workers(&g, 2, |a, g| a.run_parallel(g, &algo).expect("run"));
    let lookup = |name: &str| {
        out.stats
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(lookup("events_processed"), out.report.events_processed);
    assert_eq!(lookup("events_generated"), out.report.events_generated);
    assert_eq!(lookup("events_coalesced"), out.report.events_coalesced);
    assert_eq!(lookup("events_exchanged"), out.report.events_spilled);
}
