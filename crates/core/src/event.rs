//! Hardware events: the unit of computation (§III-A).

use gp_graph::VertexId;

/// Statistics metadata carried by an event.
///
/// `depth_min`/`depth_max` tag the range of *virtual iteration* depths of
/// the contributions folded into this event: a freshly generated event has
/// `depth_min == depth_max == parent depth + 1`, and coalescing widens the
/// range. The spread (`lookahead`) is the paper's Fig. 8 metric — how many
/// iterations of synchronous execution one coalesced event compounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventMeta {
    /// Smallest virtual-iteration depth folded into the event.
    pub depth_min: u32,
    /// Largest virtual-iteration depth folded into the event.
    pub depth_max: u32,
}

impl EventMeta {
    /// Metadata of a fresh (un-coalesced) event at `depth`.
    pub fn at_depth(depth: u32) -> Self {
        EventMeta {
            depth_min: depth,
            depth_max: depth,
        }
    }

    /// Metadata after coalescing two events.
    pub fn merge(self, other: EventMeta) -> Self {
        EventMeta {
            depth_min: self.depth_min.min(other.depth_min),
            depth_max: self.depth_max.max(other.depth_max),
        }
    }

    /// Iteration spread compounded into the event (Fig. 8's "lookahead").
    pub fn lookahead(self) -> u32 {
        self.depth_max - self.depth_min
    }
}

/// A lightweight message carrying a delta to a destination vertex
/// (destination id + payload, 8 bytes in hardware; the metadata is
/// simulation-only bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event<D> {
    /// Destination vertex (global id).
    pub target: VertexId,
    /// The delta payload.
    pub delta: D,
    /// Simulation-only statistics tags.
    pub meta: EventMeta,
}

impl<D> Event<D> {
    /// Creates a fresh event at virtual-iteration `depth`.
    pub fn new(target: VertexId, delta: D, depth: u32) -> Self {
        Event {
            target,
            delta,
            meta: EventMeta::at_depth(depth),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_widens_depth_range() {
        let a = EventMeta::at_depth(3);
        let b = EventMeta::at_depth(10);
        let m = a.merge(b);
        assert_eq!(m.depth_min, 3);
        assert_eq!(m.depth_max, 10);
        assert_eq!(m.lookahead(), 7);
        assert_eq!(a.lookahead(), 0);
    }

    #[test]
    fn merge_is_commutative() {
        let a = EventMeta {
            depth_min: 2,
            depth_max: 5,
        };
        let b = EventMeta {
            depth_min: 4,
            depth_max: 9,
        };
        assert_eq!(a.merge(b), b.merge(a));
    }

    #[test]
    fn fresh_event_carries_depth() {
        let e = Event::new(VertexId::new(7), 1.5f64, 4);
        assert_eq!(e.target, VertexId::new(7));
        assert_eq!(e.meta.depth_min, 4);
    }
}
