//! Accelerator configuration (Table III and §V parameters).

use gp_mem::{CacheConfig, DramConfig};

/// Geometry of the in-place coalescing event queue (§IV-D).
///
/// A vertex's slice-local index `l` maps to a slot in column-bin-row order:
/// `col = l % cols`, `bin = (l / cols) % bins`, `row = l / (cols·bins)` —
/// consecutive vertices share a row (drained together, preserving spatial
/// locality for the prefetcher) while consecutive rows spread across bins
/// (spreading graph clusters over bins, §IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Independent bins, each with its own insertion pipeline.
    pub bins: usize,
    /// Rows per bin (on-chip RAM block granularity; 4096 in the paper).
    pub rows: usize,
    /// Slots per row ("wide rows so that many events can be read in one
    /// cycle").
    pub cols: usize,
}

impl QueueConfig {
    /// Total vertex capacity of the queue (slots).
    pub fn capacity(&self) -> usize {
        self.bins * self.rows * self.cols
    }

    /// The paper's 64 MB queue at 8-byte events: 64 bins × 4096 rows ×
    /// 32 columns ≈ 8.4 M slots.
    pub fn paper() -> Self {
        QueueConfig {
            bins: 64,
            rows: 4096,
            cols: 32,
        }
    }
}

/// Parameters of the shard-parallel execution engine
/// ([`GraphPulse::run_parallel`](crate::GraphPulse::run_parallel)).
///
/// The graph is partitioned into *shards* (one resident slice each, with
/// its own event queue and memory model); shards run independently for
/// `epoch_cycles` simulated cycles and exchange cross-shard events at the
/// epoch barrier in a deterministic merge order. The shard structure is
/// derived from the configuration and graph only — **never** from
/// `workers` — so any worker count produces bit-identical vertex values,
/// cycle counts, and statistics; `workers` only controls how many OS
/// threads step the shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads stepping the shards (affects wall-clock only).
    pub workers: usize,
    /// Simulated cycles per epoch between event-exchange barriers.
    pub epoch_cycles: u64,
    /// Shard-count override: `0` derives the count from the queue
    /// capacity (one shard per slice), `k > 0` forces `k` contiguous
    /// shards regardless of queue size.
    pub shards: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: 1,
            epoch_cycles: 1024,
            shards: 0,
        }
    }
}

impl ParallelConfig {
    /// Validates parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("need at least one worker thread".into());
        }
        if self.epoch_cycles == 0 {
            return Err("epoch length must be nonzero".into());
        }
        Ok(())
    }
}

/// Order in which the scheduler drains queue bins within a round.
///
/// The paper drains round-robin but notes "other application-informed
/// policies are possible" (§IV-C); `OccupancyFirst` is one such policy:
/// visit the fullest bins first, which front-loads dense blocks and feeds
/// the prefetcher longer sequential runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Fixed bin order 0..N every round (the paper's default).
    #[default]
    RoundRobin,
    /// Bins sorted by descending occupancy at the start of each round.
    OccupancyFirst,
}

/// Full accelerator configuration.
///
/// Presets: [`AcceleratorConfig::optimized`] (the paper's
/// "GraphPulse+Optimizations": 8 processors × 4 generation streams with
/// prefetching), [`AcceleratorConfig::baseline`] ("GraphPulse-Baseline":
/// 256 processors, demand memory access, single generation stream), and
/// [`AcceleratorConfig::small_test`] (a tiny machine for fast unit tests).
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    /// Accelerator clock in GHz (1.0 in Table III).
    pub clock_ghz: f64,
    /// Number of event processors.
    pub processors: usize,
    /// Generation streams per processor (share one edge cache per unit).
    pub gen_streams: usize,
    /// Event queue geometry.
    pub queue: QueueConfig,
    /// Depth of the coalescer pipeline (4-stage FPA in the paper).
    pub coalescer_depth: u64,
    /// Entries in each bin's network-side input FIFO.
    pub bin_input_depth: usize,
    /// Entries in each processor's input buffer.
    pub input_buffer: usize,
    /// Entries in each processor's generation buffer.
    pub gen_buffer: usize,
    /// Crossbar ports shared by the generation streams.
    pub crossbar_ports: usize,
    /// Vertex-property scratchpad capacity in 64-byte lines per processor.
    pub scratchpad_lines: usize,
    /// Whether the vertex scratchpad prefetcher is enabled (§V).
    pub prefetch: bool,
    /// Edge prefetch lookahead N (N-block prefetching, §V).
    pub edge_prefetch_depth: u64,
    /// Edge cache geometry per generation unit.
    pub edge_cache: CacheConfig,
    /// Event-processor apply-pipeline depth, cycles.
    pub process_latency: u64,
    /// Bytes per vertex property in memory.
    pub vertex_bytes: u32,
    /// Bytes per edge record in memory (4 unweighted, 8 weighted).
    pub edge_bytes: u32,
    /// Bytes per event when spilled off-chip.
    pub event_bytes: u32,
    /// DRAM model configuration.
    pub dram: DramConfig,
    /// Bin drain order within a round.
    pub scheduling: SchedulingPolicy,
    /// Hard safety cap on simulated cycles.
    pub max_cycles: u64,
    /// Shard-parallel runner parameters (ignored by
    /// [`GraphPulse::run`](crate::GraphPulse::run)).
    pub parallel: ParallelConfig,
}

impl AcceleratorConfig {
    /// The paper's optimized configuration (Table III + §V): 8 processors
    /// at 1 GHz, 4 generation streams each, prefetching, 64 MB queue,
    /// 4 × DDR3-17 GB/s.
    pub fn optimized() -> Self {
        AcceleratorConfig {
            clock_ghz: 1.0,
            processors: 8,
            gen_streams: 4,
            queue: QueueConfig::paper(),
            coalescer_depth: 4,
            bin_input_depth: 8,
            input_buffer: 64,
            gen_buffer: 16,
            crossbar_ports: 16,
            scratchpad_lines: 16, // 1 KB per processor at 64-byte lines
            prefetch: true,
            edge_prefetch_depth: 4,
            edge_cache: CacheConfig::edge_cache(),
            process_latency: 4,
            vertex_bytes: 8,
            edge_bytes: 4,
            event_bytes: 8,
            dram: DramConfig::paper(),
            scheduling: SchedulingPolicy::RoundRobin,
            max_cycles: u64::MAX / 2,
            parallel: ParallelConfig::default(),
        }
    }

    /// The paper's unoptimized baseline: 256 processors, demand vertex
    /// reads (no scratchpad prefetch), one generation stream per processor,
    /// minimal edge cache.
    pub fn baseline() -> Self {
        AcceleratorConfig {
            processors: 256,
            gen_streams: 1,
            prefetch: false,
            input_buffer: QueueConfig::paper().cols,
            edge_cache: CacheConfig { sets: 1, ways: 2 },
            edge_prefetch_depth: 1,
            ..Self::optimized()
        }
    }

    /// A small machine for unit tests: 2 processors, tiny queue
    /// (1024-vertex capacity), fast to simulate in debug builds.
    pub fn small_test() -> Self {
        AcceleratorConfig {
            processors: 2,
            gen_streams: 2,
            queue: QueueConfig {
                bins: 4,
                rows: 32,
                cols: 8,
            },
            crossbar_ports: 4,
            max_cycles: 200_000_000,
            ..Self::optimized()
        }
    }

    /// Validates parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.clock_ghz <= 0.0 {
            return Err("clock must be positive".into());
        }
        if self.processors == 0 || self.gen_streams == 0 {
            return Err("need at least one processor and one stream".into());
        }
        if self.queue.bins == 0 || self.queue.rows == 0 || self.queue.cols == 0 {
            return Err("queue dimensions must be nonzero".into());
        }
        if self.coalescer_depth == 0 || self.process_latency == 0 {
            return Err("pipeline depths must be nonzero".into());
        }
        if self.crossbar_ports == 0 {
            return Err("need at least one crossbar port".into());
        }
        if self.input_buffer < self.queue.cols {
            return Err(format!(
                "input buffer ({}) must hold at least one drained row ({} events)",
                self.input_buffer, self.queue.cols
            ));
        }
        if self.vertex_bytes == 0 || self.edge_bytes == 0 || self.event_bytes == 0 {
            return Err("record sizes must be nonzero".into());
        }
        self.parallel.validate()?;
        self.dram.validate()
    }

    /// Simulated seconds for `cycles` at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9)
    }

    /// Total generation streams across the machine.
    pub fn total_streams(&self) -> usize {
        self.processors * self.gen_streams
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::optimized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        AcceleratorConfig::optimized().validate().unwrap();
        AcceleratorConfig::baseline().validate().unwrap();
        AcceleratorConfig::small_test().validate().unwrap();
    }

    #[test]
    fn paper_queue_capacity_is_millions_of_slots() {
        assert_eq!(QueueConfig::paper().capacity(), 64 * 4096 * 32);
    }

    #[test]
    fn baseline_differs_from_optimized_as_in_the_paper() {
        let opt = AcceleratorConfig::optimized();
        let base = AcceleratorConfig::baseline();
        assert_eq!(opt.processors, 8);
        assert_eq!(base.processors, 256);
        assert!(opt.prefetch && !base.prefetch);
        assert_eq!(base.gen_streams, 1);
    }

    #[test]
    fn validation_catches_tiny_input_buffer() {
        let mut c = AcceleratorConfig::small_test();
        c.input_buffer = 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn seconds_conversion_uses_clock() {
        let c = AcceleratorConfig::optimized();
        assert!((c.cycles_to_seconds(2_000_000_000) - 2.0).abs() < 1e-12);
    }
}
