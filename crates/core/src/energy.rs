//! Energy and area model (Table V of the paper).
//!
//! The paper synthesizes its RTL at 28 nm (logic + network) and models the
//! 64 MB queue memory with CACTI 7 at 22 nm. We reproduce the same
//! *structure*: static power per component instance, dynamic energy per
//! access integrated from simulation counters, and fixed area figures. The
//! per-access energies below are calibrated so that the paper's
//! PageRank-on-LiveJournal activity levels land near Table V's dynamic
//! numbers; they are documented constants, not measurements.

/// Per-access energies (nanojoules) and static power (milliwatts) for each
/// accelerator component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Static power of one queue bin (mW). Table V lists 116 mW static per
    /// bin × 64 bins ≈ the ~9 W the paper quotes for the queue memory.
    pub queue_static_mw_per_bin: f64,
    /// Energy per queue slot read or write (nJ) — eDRAM macro access.
    pub queue_access_nj: f64,
    /// Energy per coalescer pipeline operation (nJ) — FP add.
    pub coalesce_op_nj: f64,
    /// Static power of one scratchpad (mW). Table V: 0.35 mW each.
    pub scratchpad_static_mw: f64,
    /// Energy per scratchpad access (nJ).
    pub scratchpad_access_nj: f64,
    /// Static power of the whole network (mW). Table V: 51.3 mW.
    pub network_static_mw: f64,
    /// Energy per event traversal of the crossbar (nJ).
    pub network_flit_nj: f64,
    /// Energy per event-processor operation (apply + bookkeeping), nJ.
    pub proc_op_nj: f64,
    /// Area of the queue memory, mm² (Table V: 190 mm²).
    pub queue_area_mm2: f64,
    /// Area of the scratchpads, mm² (Table V: 0.21 mm²).
    pub scratchpad_area_mm2: f64,
    /// Area of the network, mm² (Table V: 3.10 mm²).
    pub network_area_mm2: f64,
    /// Area of the processing logic, mm² (Table V: 0.44 mm²).
    pub processing_area_mm2: f64,
}

impl EnergyModel {
    /// Constants calibrated against Table V (22 nm eDRAM queue, 28 nm
    /// logic, 1 GHz).
    pub fn paper() -> Self {
        EnergyModel {
            queue_static_mw_per_bin: 116.0,
            queue_access_nj: 0.05,
            coalesce_op_nj: 0.004,
            scratchpad_static_mw: 0.35,
            scratchpad_access_nj: 0.002,
            network_static_mw: 51.3,
            network_flit_nj: 0.003,
            proc_op_nj: 0.005,
            queue_area_mm2: 190.0,
            scratchpad_area_mm2: 0.21,
            network_area_mm2: 3.10,
            processing_area_mm2: 0.44,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// Activity counters fed into the model by the machine.
#[derive(Debug, Default, Clone, Copy)]
pub struct ActivityCounters {
    /// Queue slot reads (insert probes + drains).
    pub queue_reads: u64,
    /// Queue slot writes (inserts + coalesced updates).
    pub queue_writes: u64,
    /// Coalescer pipeline operations.
    pub coalesce_ops: u64,
    /// Scratchpad reads + writes.
    pub scratchpad_accesses: u64,
    /// Crossbar traversals.
    pub network_flits: u64,
    /// Processor apply operations.
    pub proc_ops: u64,
}

/// Per-component power/area rows, Table V style.
#[derive(Debug, Clone)]
pub struct EnergyReport {
    /// `(component, count, static mW, dynamic mW, total mW, area mm²)` rows.
    pub rows: Vec<ComponentPower>,
    /// Total average power in mW.
    pub total_mw: f64,
    /// Total energy in mJ over the run.
    pub total_mj: f64,
    /// Total area in mm².
    pub total_area_mm2: f64,
    /// Run duration in seconds the averages refer to.
    pub seconds: f64,
}

/// One row of the Table V style breakdown.
#[derive(Debug, Clone)]
pub struct ComponentPower {
    /// Component name.
    pub component: &'static str,
    /// Instance count.
    pub count: usize,
    /// Static power, mW (all instances).
    pub static_mw: f64,
    /// Dynamic power, mW (all instances, averaged over the run).
    pub dynamic_mw: f64,
    /// Area, mm² (all instances).
    pub area_mm2: f64,
}

impl ComponentPower {
    /// Static + dynamic power, mW.
    pub fn total_mw(&self) -> f64 {
        self.static_mw + self.dynamic_mw
    }
}

impl EnergyReport {
    /// Builds the report from activity counters over `seconds` of simulated
    /// time on a machine with `bins` queue bins and `processors` cores.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not positive.
    pub fn from_activity(
        model: &EnergyModel,
        activity: &ActivityCounters,
        seconds: f64,
        bins: usize,
        processors: usize,
    ) -> Self {
        assert!(seconds > 0.0, "run duration must be positive");
        let nj_to_mw = |nj: f64| nj * 1e-9 / seconds * 1e3; // nJ total → mW average

        let queue_dynamic = nj_to_mw(
            (activity.queue_reads + activity.queue_writes) as f64 * model.queue_access_nj
                + activity.coalesce_ops as f64 * model.coalesce_op_nj,
        );
        let scratch_dynamic =
            nj_to_mw(activity.scratchpad_accesses as f64 * model.scratchpad_access_nj);
        let network_dynamic = nj_to_mw(activity.network_flits as f64 * model.network_flit_nj);
        let proc_dynamic = nj_to_mw(activity.proc_ops as f64 * model.proc_op_nj);

        let rows = vec![
            ComponentPower {
                component: "Queue",
                count: bins,
                static_mw: model.queue_static_mw_per_bin * bins as f64,
                dynamic_mw: queue_dynamic,
                area_mm2: model.queue_area_mm2 * bins as f64 / 64.0,
            },
            ComponentPower {
                component: "Scratchpad",
                count: processors,
                static_mw: model.scratchpad_static_mw * processors as f64,
                dynamic_mw: scratch_dynamic,
                area_mm2: model.scratchpad_area_mm2 * processors as f64 / 8.0,
            },
            ComponentPower {
                component: "Network",
                count: 1,
                static_mw: model.network_static_mw,
                dynamic_mw: network_dynamic,
                area_mm2: model.network_area_mm2,
            },
            ComponentPower {
                component: "Processing Logic",
                count: processors,
                static_mw: 0.0,
                dynamic_mw: proc_dynamic,
                area_mm2: model.processing_area_mm2,
            },
        ];
        let total_mw: f64 = rows.iter().map(ComponentPower::total_mw).sum();
        let total_area_mm2: f64 = rows.iter().map(|r| r.area_mm2).sum();
        EnergyReport {
            rows,
            total_mw,
            total_mj: total_mw * seconds, // mW × s = mJ
            total_area_mm2,
            seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> EnergyReport {
        let activity = ActivityCounters {
            queue_reads: 1_000_000,
            queue_writes: 1_000_000,
            coalesce_ops: 500_000,
            scratchpad_accesses: 2_000_000,
            network_flits: 1_500_000,
            proc_ops: 1_000_000,
        };
        EnergyReport::from_activity(&EnergyModel::paper(), &activity, 0.01, 64, 8)
    }

    #[test]
    fn queue_dominates_power_as_in_table_v() {
        let r = sample_report();
        let queue = &r.rows[0];
        assert_eq!(queue.component, "Queue");
        for other in &r.rows[1..] {
            assert!(queue.total_mw() > other.total_mw());
        }
    }

    #[test]
    fn totals_are_sums() {
        let r = sample_report();
        let sum: f64 = r.rows.iter().map(ComponentPower::total_mw).sum();
        assert!((r.total_mw - sum).abs() < 1e-9);
        assert!((r.total_mj - r.total_mw * 0.01).abs() < 1e-9);
        assert!(r.total_area_mm2 > 190.0);
    }

    #[test]
    fn dynamic_power_scales_with_activity() {
        let low = ActivityCounters::default();
        let r_low = EnergyReport::from_activity(&EnergyModel::paper(), &low, 0.01, 64, 8);
        let r_high = sample_report();
        assert!(r_high.total_mw > r_low.total_mw);
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn zero_duration_rejected() {
        let _ = EnergyReport::from_activity(
            &EnergyModel::paper(),
            &ActivityCounters::default(),
            0.0,
            64,
            8,
        );
    }
}
