//! Event processors (§IV-E, optimized per §V).
//!
//! A processor owns an input buffer of scheduled events, a vertex-property
//! scratchpad filled by the block prefetcher, an apply pipeline, and a
//! small retry queue for vertex write-backs. The heavier orchestration
//! (memory issue, functional value updates, hand-off to generation) lives
//! in [`machine`](crate::machine) because it needs the shared memory system
//! and the algorithm; this module keeps the per-processor state machine and
//! its local invariants.

use std::collections::VecDeque;

use gp_mem::{line_base, Scratchpad};
use gp_sim::stats::StateTimeline;
use gp_sim::{Cycle, Pipeline};

use crate::generation::GenTask;
use crate::metrics::PROC_STATES;
use crate::Event;

/// Index of the processor states in the Fig. 14 timeline.
pub(crate) const ST_VERTEX_READ: usize = 0;
pub(crate) const ST_PROCESS: usize = 1;
pub(crate) const ST_STALL: usize = 2;
pub(crate) const ST_IDLE: usize = 3;

/// A scheduled event waiting in the processor's input buffer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ProcToken<D> {
    pub event: Event<D>,
    /// Cycle the event entered the input buffer.
    pub arrived: Cycle,
    /// Line address of the target vertex's property.
    pub line: u64,
    /// Whether a demand read has already been issued (baseline mode).
    pub demand_issued: bool,
}

/// An apply operation travelling through the processor pipeline.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ApplyOp<D> {
    pub event: Event<D>,
    /// Cycle the apply was issued (vertex data became available).
    pub issued: Cycle,
}

/// One event processor.
#[derive(Debug)]
pub(crate) struct Processor<D> {
    pub input: VecDeque<ProcToken<D>>,
    input_cap: usize,
    pub scratch: Scratchpad,
    /// Vertex lines requested from memory but not yet arrived.
    pub pending_lines: Vec<u64>,
    pub pipeline: Pipeline<ApplyOp<D>>,
    /// A generation task that found the generation buffer full.
    pub stalled: Option<GenTask<D>>,
    /// Write-combining buffer: updated vertices in a drained block are
    /// consecutive, so their write-backs merge into sequential line writes
    /// (the paper's Fig. 5 "SEQ WRITE" behavior). `(line, bytes)`.
    pub write_combine: Option<(u64, u32)>,
    /// Combined vertex write-backs rejected by the memory system:
    /// `(line, bytes)` pairs awaiting retry.
    pub write_retry: VecDeque<(u64, u32)>,
    pub timeline: StateTimeline,
}

impl<D: Copy> Processor<D> {
    pub(crate) fn new(input_cap: usize, scratchpad_lines: usize, process_latency: u64) -> Self {
        Processor {
            input: VecDeque::with_capacity(input_cap),
            input_cap,
            scratch: Scratchpad::new(scratchpad_lines),
            pending_lines: Vec::new(),
            pipeline: Pipeline::new(process_latency),
            stalled: None,
            write_combine: None,
            write_retry: VecDeque::new(),
            timeline: StateTimeline::new(&PROC_STATES),
        }
    }

    /// Free input-buffer slots.
    pub(crate) fn free_input(&self) -> usize {
        self.input_cap - self.input.len()
    }

    /// Accepts a drained event block from the scheduler.
    ///
    /// # Panics
    ///
    /// Panics on overflow; the scheduler checks [`Processor::free_input`].
    pub(crate) fn push_token(&mut self, token: ProcToken<D>) {
        assert!(self.input.len() < self.input_cap, "input buffer overflow");
        self.input.push_back(token);
    }

    /// A requested vertex line arrived from memory.
    pub(crate) fn line_arrived(&mut self, line: u64) {
        self.pending_lines.retain(|&l| l != line);
        let inserted = self.scratch.insert(line);
        debug_assert!(inserted, "scratchpad overflow on fill");
    }

    /// Whether the head event's vertex data is resident.
    pub(crate) fn head_ready(&self) -> bool {
        self.input
            .front()
            .is_some_and(|t| self.scratch.contains(t.line))
    }

    /// Pops the head token once its data is ready, releasing its scratchpad
    /// line when no other buffered event shares it.
    pub(crate) fn pop_ready(&mut self) -> Option<ProcToken<D>> {
        if !self.head_ready() {
            return None;
        }
        let token = self.input.pop_front().expect("head exists");
        if !self.input.iter().any(|t| t.line == token.line) {
            self.scratch.take(token.line);
        }
        Some(token)
    }

    /// The next vertex line the prefetcher should request: the first
    /// buffered event whose line is neither resident nor pending, provided
    /// the scratchpad can still track it. Returns `(line, events_on_line)`.
    pub(crate) fn next_prefetch(&self) -> Option<(u64, u32)> {
        if self.scratch.len() + self.pending_lines.len() >= self.scratch.capacity() {
            return None;
        }
        for t in &self.input {
            if !self.scratch.contains(t.line) && !self.pending_lines.contains(&t.line) {
                let count = self.input.iter().filter(|x| x.line == t.line).count() as u32;
                return Some((t.line, count));
            }
        }
        None
    }

    /// The head token's line if a demand read is still needed (baseline
    /// mode, no prefetcher).
    pub(crate) fn next_demand(&mut self) -> Option<u64> {
        let t = self.input.front_mut()?;
        if t.demand_issued || self.scratch.contains(t.line) {
            return None;
        }
        t.demand_issued = true;
        Some(t.line)
    }

    /// Records a vertex write-back in the write-combining buffer; returns a
    /// completed `(line, bytes)` burst to issue when the line changes.
    pub(crate) fn combine_write(&mut self, line: u64, bytes: u32) -> Option<(u64, u32)> {
        match self.write_combine {
            Some((cur, acc)) if cur == line => {
                self.write_combine = Some((cur, (acc + bytes).min(crate::machine::LINE_BYTES_U32)));
                None
            }
            other => {
                self.write_combine = Some((line, bytes));
                other
            }
        }
    }

    /// Whether the processor holds no work at all.
    pub(crate) fn is_quiescent(&self) -> bool {
        self.input.is_empty()
            && self.pipeline.is_empty()
            && self.stalled.is_none()
            && self.pending_lines.is_empty()
            && self.write_retry.is_empty()
            && self.write_combine.is_none()
    }

    /// Resets transient state for a slice swap.
    pub(crate) fn reset_for_swap(&mut self) {
        debug_assert!(self.is_quiescent(), "swap while busy");
        self.scratch.clear();
    }
}

/// Line address of vertex `v`'s property record.
pub(crate) fn vertex_line(vertex_base: u64, vertex_bytes: u32, v: u32) -> u64 {
    line_base(vertex_base + u64::from(v) * u64::from(vertex_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::VertexId;

    fn token(v: u32, line: u64) -> ProcToken<f64> {
        ProcToken {
            event: Event::new(VertexId::new(v), 1.0, 0),
            arrived: Cycle::ZERO,
            line,
            demand_issued: false,
        }
    }

    #[test]
    fn head_waits_for_its_line() {
        let mut p: Processor<f64> = Processor::new(4, 4, 2);
        p.push_token(token(1, 64));
        assert!(!p.head_ready());
        assert!(p.pop_ready().is_none());
        p.line_arrived(64);
        assert!(p.head_ready());
        let t = p.pop_ready().unwrap();
        assert_eq!(t.event.target, VertexId::new(1));
        assert!(!p.scratch.contains(64), "line released after last user");
    }

    #[test]
    fn shared_line_released_only_after_last_user() {
        let mut p: Processor<f64> = Processor::new(4, 4, 2);
        p.push_token(token(1, 64));
        p.push_token(token(2, 64));
        p.line_arrived(64);
        p.pop_ready().unwrap();
        assert!(p.scratch.contains(64), "second event still needs the line");
        p.pop_ready().unwrap();
        assert!(!p.scratch.contains(64));
    }

    #[test]
    fn prefetch_counts_events_per_line_and_respects_capacity() {
        let mut p: Processor<f64> = Processor::new(8, 2, 2);
        p.push_token(token(1, 0));
        p.push_token(token(2, 0));
        p.push_token(token(3, 64));
        p.push_token(token(4, 128));
        assert_eq!(p.next_prefetch(), Some((0, 2)));
        p.pending_lines.push(0);
        assert_eq!(p.next_prefetch(), Some((64, 1)));
        p.pending_lines.push(64);
        // Scratchpad capacity (2) fully committed to pending lines.
        assert_eq!(p.next_prefetch(), None);
    }

    #[test]
    fn demand_issue_fires_once() {
        let mut p: Processor<f64> = Processor::new(4, 4, 2);
        p.push_token(token(1, 64));
        assert_eq!(p.next_demand(), Some(64));
        assert_eq!(p.next_demand(), None);
        p.line_arrived(64);
        assert_eq!(p.next_demand(), None);
    }

    #[test]
    fn quiescence_tracks_all_buffers() {
        let mut p: Processor<f64> = Processor::new(4, 4, 2);
        assert!(p.is_quiescent());
        p.push_token(token(1, 64));
        assert!(!p.is_quiescent());
        p.line_arrived(64);
        p.pop_ready().unwrap();
        assert!(p.is_quiescent());
        p.write_retry.push_back((8, 8));
        assert!(!p.is_quiescent());
        p.write_retry.pop_front();
        assert!(p.is_quiescent());
        assert_eq!(p.combine_write(0, 8), None);
        assert_eq!(p.combine_write(0, 8), None); // same line merges
        assert_eq!(p.combine_write(64, 8), Some((0, 16))); // line change flushes
        assert!(!p.is_quiescent());
    }

    #[test]
    fn vertex_line_math() {
        assert_eq!(vertex_line(0, 8, 0), 0);
        assert_eq!(vertex_line(0, 8, 7), 0);
        assert_eq!(vertex_line(0, 8, 8), 64);
        assert_eq!(vertex_line(128, 8, 0), 128);
    }
}
