//! The in-place coalescing event queue (§IV-D).

use std::collections::VecDeque;

use gp_algorithms::DeltaAlgorithm;
use gp_sim::{Cycle, Pipeline};

use crate::{Event, QueueConfig};

/// Where a slice-local vertex index lives inside the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SlotAddr {
    pub bin: usize,
    pub row: usize,
    pub col: usize,
}

/// Column-bin-row mapping (§IV-D): consecutive vertices fill a row's
/// columns, consecutive rows spread across bins.
///
/// Wait — the paper maps "in column-bin-row order so that clusters in the
/// graph are likely to spread over multiple bins" while §IV-B wants blocks
/// of nearby vertices in the same bin row for drain locality. Filling the
/// columns of one row first, then moving to the next *bin* (same row
/// index), satisfies both: a drained row is a block of `cols` consecutive
/// vertices, and consecutive blocks land in different bins.
pub(crate) fn slot_of(local_index: usize, cfg: &QueueConfig) -> SlotAddr {
    let col = local_index % cfg.cols;
    let bin = (local_index / cfg.cols) % cfg.bins;
    let row = local_index / (cfg.cols * cfg.bins);
    SlotAddr { bin, row, col }
}

/// First slice-local vertex index of `row` in `bin` (the drained block's
/// base vertex).
pub(crate) fn row_base_index(bin: usize, row: usize, cfg: &QueueConfig) -> usize {
    (row * cfg.bins + bin) * cfg.cols
}

/// Outcome of offering an event to a bin's insertion port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum InsertOutcome {
    /// Stored into an empty slot.
    Inserted,
    /// Combined with an event already in the slot.
    Coalesced,
}

/// One direct-mapped, coalescing queue bin.
///
/// Timing model: one insertion may *initiate* per cycle; the
/// read–combine–write occupies a `coalescer_depth`-stage pipeline, and a
/// second insertion touching the same row stalls until the first retires
/// (structural hazard on the row's RAM block). Draining reads one whole row
/// per cycle, sweeping row indices upward once per scheduler round;
/// insertions to a bin stall during its drain cycles (§IV-D).
#[derive(Debug)]
pub(crate) struct Bin<D> {
    rows: usize,
    cols: usize,
    slots: Vec<Option<Event<D>>>,
    row_counts: Vec<u16>,
    occupancy: usize,
    /// Network-side input FIFO.
    input: VecDeque<(SlotAddr, Event<D>)>,
    input_cap: usize,
    /// Rows with an in-flight insertion (hazard window).
    inflight: Pipeline<usize>,
    /// Next row the drain sweep will consider this round.
    sweep: usize,
    /// Cycle in which the scheduler last drained this bin (insertion is
    /// stalled for that cycle, §IV-D).
    drained_at: Option<Cycle>,
}

impl<D: Copy> Bin<D> {
    pub(crate) fn new(cfg: &QueueConfig, input_cap: usize, coalescer_depth: u64) -> Self {
        Bin {
            rows: cfg.rows,
            cols: cfg.cols,
            slots: vec![None; cfg.rows * cfg.cols],
            row_counts: vec![0; cfg.rows],
            occupancy: 0,
            input: VecDeque::with_capacity(input_cap),
            input_cap,
            inflight: Pipeline::new(coalescer_depth),
            sweep: 0,
            drained_at: None,
        }
    }

    /// Whether the network can hand this bin another event.
    pub(crate) fn can_accept(&self) -> bool {
        self.input.len() < self.input_cap
    }

    /// Queues an event at the insertion port.
    ///
    /// # Panics
    ///
    /// Panics if the input FIFO is full; gate with [`Bin::can_accept`].
    pub(crate) fn accept(&mut self, slot: SlotAddr, ev: Event<D>) {
        assert!(self.can_accept(), "bin input fifo overflow");
        self.input.push_back((slot, ev));
    }

    /// Directly installs an event, bypassing the timing pipeline — used for
    /// host-side initial-event loading and slice swap-in (the paper loads
    /// initial events from the host, §III-B, and swap-in uses the bins'
    /// parallel insertion units, §IV-F).
    pub(crate) fn install<A>(&mut self, algo: &A, slot: SlotAddr, ev: Event<D>) -> InsertOutcome
    where
        A: DeltaAlgorithm<Delta = D>,
    {
        self.write_slot(algo, slot, ev)
    }

    fn write_slot<A>(&mut self, algo: &A, slot: SlotAddr, ev: Event<D>) -> InsertOutcome
    where
        A: DeltaAlgorithm<Delta = D>,
    {
        let idx = slot.row * self.cols + slot.col;
        match &mut self.slots[idx] {
            Some(existing) => {
                debug_assert_eq!(existing.target, ev.target, "slot aliasing");
                existing.delta = algo.coalesce(existing.delta, ev.delta);
                existing.meta = existing.meta.merge(ev.meta);
                InsertOutcome::Coalesced
            }
            empty @ None => {
                *empty = Some(ev);
                self.row_counts[slot.row] += 1;
                self.occupancy += 1;
                InsertOutcome::Inserted
            }
        }
    }

    /// One cycle of the insertion port. Returns the outcome if an event was
    /// consumed from the input FIFO.
    pub(crate) fn tick_insert<A>(&mut self, now: Cycle, algo: &A) -> Option<InsertOutcome>
    where
        A: DeltaAlgorithm<Delta = D>,
    {
        while self.inflight.retire(now).is_some() {}
        if self.drained_at == Some(now) {
            return None;
        }
        if !self.inflight.can_issue(now) {
            return None;
        }
        let (slot, _) = self.input.front()?;
        let row = slot.row;
        if self.inflight.iter().any(|r| *r == row) {
            return None; // same-row hazard: stall until the write retires
        }
        let (slot, ev) = self.input.pop_front().expect("checked front");
        self.inflight.issue(now, row);
        Some(self.write_slot(algo, slot, ev))
    }

    /// The next occupied row the sweep would drain, if any — `(row, count)`.
    pub(crate) fn peek_drain(&self) -> Option<(usize, usize)> {
        // Skip rows the coalescer is still writing (read-write hazard).
        (self.sweep..self.rows).find_map(|r| {
            if self.row_counts[r] == 0 {
                None
            } else if self.inflight.iter().any(|ir| *ir == r) {
                Some((r, 0)) // present but busy: caller must retry
            } else {
                Some((r, self.row_counts[r] as usize))
            }
        })
    }

    /// Drains one row (the one [`Bin::peek_drain`] reported), returning its
    /// events in column order. Marks the bin busy for insertion this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `row` is empty (callers drain only peeked rows).
    pub(crate) fn drain_row(&mut self, row: usize, now: Cycle) -> Vec<Event<D>> {
        assert!(self.row_counts[row] > 0, "draining an empty row");
        let mut out = Vec::with_capacity(self.row_counts[row] as usize);
        for col in 0..self.cols {
            if let Some(ev) = self.slots[row * self.cols + col].take() {
                out.push(ev);
            }
        }
        self.occupancy -= out.len();
        self.row_counts[row] = 0;
        self.sweep = row + 1;
        self.drained_at = Some(now);
        out
    }

    /// Resets the drain sweep for a new scheduler round.
    pub(crate) fn reset_sweep(&mut self) {
        self.sweep = 0;
    }

    /// Unique pending events stored in the bin.
    pub(crate) fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Whether the input FIFO and the insertion pipeline are both empty.
    pub(crate) fn is_quiescent(&self) -> bool {
        self.input.is_empty() && self.inflight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_algorithms::PageRankDelta;
    use gp_graph::VertexId;

    fn cfg() -> QueueConfig {
        QueueConfig {
            bins: 2,
            rows: 4,
            cols: 4,
        }
    }

    #[test]
    fn mapping_is_column_bin_row_and_bijective() {
        let c = cfg();
        let mut seen = std::collections::HashSet::new();
        for l in 0..c.capacity() {
            let s = slot_of(l, &c);
            assert!(s.bin < c.bins && s.row < c.rows && s.col < c.cols);
            assert!(seen.insert((s.bin, s.row, s.col)), "collision at {l}");
        }
        // Consecutive vertices share a row until the columns run out...
        assert_eq!(
            slot_of(0, &c),
            SlotAddr {
                bin: 0,
                row: 0,
                col: 0
            }
        );
        assert_eq!(
            slot_of(3, &c),
            SlotAddr {
                bin: 0,
                row: 0,
                col: 3
            }
        );
        // ...then move to the next bin, same row.
        assert_eq!(
            slot_of(4, &c),
            SlotAddr {
                bin: 1,
                row: 0,
                col: 0
            }
        );
        // ...and only then to the next row.
        assert_eq!(
            slot_of(8, &c),
            SlotAddr {
                bin: 0,
                row: 1,
                col: 0
            }
        );
        // row_base_index inverts the mapping for whole rows.
        assert_eq!(row_base_index(1, 0, &c), 4);
        assert_eq!(row_base_index(0, 1, &c), 8);
    }

    #[test]
    fn insert_then_coalesce() {
        let pr = PageRankDelta::new(0.85, 0.0);
        let mut bin: Bin<f64> = Bin::new(&cfg(), 8, 4);
        let slot = SlotAddr {
            bin: 0,
            row: 0,
            col: 0,
        };
        bin.accept(slot, Event::new(VertexId::new(0), 1.0, 0));
        bin.accept(slot, Event::new(VertexId::new(0), 2.0, 5));

        let mut now = Cycle::ZERO;
        assert_eq!(bin.tick_insert(now, &pr), Some(InsertOutcome::Inserted));
        // Second event to the same row stalls until the pipeline retires.
        now = now.next();
        assert_eq!(bin.tick_insert(now, &pr), None);
        for _ in 0..4 {
            now = now.next();
        }
        assert_eq!(bin.tick_insert(now, &pr), Some(InsertOutcome::Coalesced));
        assert_eq!(bin.occupancy(), 1);

        let evs = bin.drain_row(0, now);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].delta, 3.0);
        assert_eq!(evs[0].meta.lookahead(), 5);
        assert_eq!(bin.occupancy(), 0);
    }

    #[test]
    fn different_rows_insert_back_to_back() {
        let pr = PageRankDelta::new(0.85, 0.0);
        let mut bin: Bin<f64> = Bin::new(&cfg(), 8, 4);
        bin.accept(
            SlotAddr {
                bin: 0,
                row: 0,
                col: 0,
            },
            Event::new(VertexId::new(0), 1.0, 0),
        );
        bin.accept(
            SlotAddr {
                bin: 0,
                row: 1,
                col: 0,
            },
            Event::new(VertexId::new(8), 1.0, 0),
        );
        assert!(bin.tick_insert(Cycle::new(0), &pr).is_some());
        assert!(bin.tick_insert(Cycle::new(1), &pr).is_some());
        assert_eq!(bin.occupancy(), 2);
    }

    #[test]
    fn sweep_visits_each_row_once_per_round() {
        let pr = PageRankDelta::new(0.85, 0.0);
        let mut bin: Bin<f64> = Bin::new(&cfg(), 8, 1);
        for (i, row) in [0usize, 2].iter().enumerate() {
            bin.accept(
                SlotAddr {
                    bin: 0,
                    row: *row,
                    col: 0,
                },
                Event::new(VertexId::new(i as u32), 1.0, 0),
            );
            bin.tick_insert(Cycle::new(i as u64), &pr);
        }
        assert_eq!(bin.peek_drain().map(|(r, _)| r), Some(0));
        bin.drain_row(0, Cycle::new(4));
        assert_eq!(bin.peek_drain().map(|(r, _)| r), Some(2));
        bin.drain_row(2, Cycle::new(5));
        assert_eq!(bin.peek_drain(), None);
        // An event inserted behind the sweep waits for the next round.
        bin.accept(
            SlotAddr {
                bin: 0,
                row: 1,
                col: 1,
            },
            Event::new(VertexId::new(9), 1.0, 0),
        );
        bin.tick_insert(Cycle::new(10), &pr);
        assert_eq!(bin.peek_drain(), None);
        bin.reset_sweep();
        assert_eq!(bin.peek_drain().map(|(r, _)| r), Some(1));
    }

    #[test]
    fn drain_blocks_insert_same_cycle() {
        let pr = PageRankDelta::new(0.85, 0.0);
        let mut bin: Bin<f64> = Bin::new(&cfg(), 8, 1);
        bin.accept(
            SlotAddr {
                bin: 0,
                row: 0,
                col: 0,
            },
            Event::new(VertexId::new(0), 1.0, 0),
        );
        bin.tick_insert(Cycle::new(0), &pr);
        bin.accept(
            SlotAddr {
                bin: 0,
                row: 3,
                col: 0,
            },
            Event::new(VertexId::new(1), 1.0, 0),
        );
        bin.drain_row(0, Cycle::new(5));
        assert_eq!(bin.tick_insert(Cycle::new(5), &pr), None); // stalled by drain
        assert!(bin.tick_insert(Cycle::new(6), &pr).is_some());
    }

    /// Randomized queue geometries for the property tests below, skewed
    /// toward degenerate shapes (single bin, single column, single row).
    fn random_configs(rng: &mut gp_graph::rng::StdRng, n: usize) -> Vec<QueueConfig> {
        use gp_graph::rng::Rng;
        let mut cfgs = vec![
            QueueConfig {
                bins: 1,
                rows: 1,
                cols: 1,
            },
            QueueConfig {
                bins: 1,
                rows: 7,
                cols: 3,
            },
            QueueConfig {
                bins: 5,
                rows: 1,
                cols: 2,
            },
            QueueConfig {
                bins: 3,
                rows: 4,
                cols: 1,
            },
        ];
        for _ in 0..n {
            cfgs.push(QueueConfig {
                bins: rng.gen_range(1..9usize),
                rows: rng.gen_range(1..17usize),
                cols: rng.gen_range(1..9usize),
            });
        }
        cfgs
    }

    #[test]
    fn property_slot_of_round_trips_through_row_base_index() {
        let mut rng = gp_graph::rng::StdRng::seed_from_u64(0x51);
        for (case, c) in random_configs(&mut rng, 24).into_iter().enumerate() {
            for l in 0..c.capacity() {
                let s = slot_of(l, &c);
                let base = row_base_index(s.bin, s.row, &c);
                assert_eq!(
                    base + s.col,
                    l,
                    "case {case}: row base + column must reconstruct the index"
                );
                assert!(
                    base <= l && l < base + c.cols,
                    "case {case}: index outside its row"
                );
            }
        }
    }

    #[test]
    fn property_no_two_local_indices_share_a_slot() {
        let mut rng = gp_graph::rng::StdRng::seed_from_u64(0x52);
        for (case, c) in random_configs(&mut rng, 24).into_iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for l in 0..c.capacity() {
                let s = slot_of(l, &c);
                assert!(s.bin < c.bins && s.row < c.rows && s.col < c.cols);
                assert!(
                    seen.insert((s.bin, s.row, s.col)),
                    "case {case}: local indices {l} and an earlier one share a slot"
                );
            }
            assert_eq!(seen.len(), c.capacity());
        }
    }

    #[test]
    fn property_drained_row_is_a_block_of_consecutive_vertices() {
        use gp_graph::rng::Rng;
        let pr = PageRankDelta::new(0.85, 0.0);
        let mut rng = gp_graph::rng::StdRng::seed_from_u64(0x53);
        for (case, c) in random_configs(&mut rng, 12).into_iter().enumerate() {
            // Install every local index of a random subset of the capacity.
            let mut bins: Vec<Bin<f64>> = (0..c.bins).map(|_| Bin::new(&c, 8, 1)).collect();
            for l in 0..c.capacity() {
                if rng.gen_bool(0.7) {
                    let s = slot_of(l, &c);
                    bins[s.bin].install(&pr, s, Event::new(VertexId::new(l as u32), 1.0, 0));
                }
            }
            for (b, bin) in bins.iter_mut().enumerate() {
                let mut now = Cycle::ZERO;
                while let Some((row, count)) = bin.peek_drain() {
                    assert!(count > 0, "install path leaves no busy rows");
                    let evs = bin.drain_row(row, now);
                    now = now.next();
                    let base = row_base_index(b, row, &c);
                    // Drained events are `cols` consecutive vertices of the
                    // row's block, in ascending column order.
                    let targets: Vec<usize> = evs.iter().map(|e| e.target.index()).collect();
                    let mut sorted = targets.clone();
                    sorted.sort_unstable();
                    assert_eq!(targets, sorted, "case {case}: drain out of column order");
                    for t in &targets {
                        assert!(
                            *t >= base && *t < base + c.cols,
                            "case {case}: vertex {t} outside block [{base}, {})",
                            base + c.cols
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn quiescence_reflects_buffers() {
        let pr = PageRankDelta::new(0.85, 0.0);
        let mut bin: Bin<f64> = Bin::new(&cfg(), 8, 2);
        assert!(bin.is_quiescent());
        bin.accept(
            SlotAddr {
                bin: 0,
                row: 0,
                col: 0,
            },
            Event::new(VertexId::new(0), 1.0, 0),
        );
        assert!(!bin.is_quiescent());
        bin.tick_insert(Cycle::new(0), &pr);
        assert!(!bin.is_quiescent()); // still in the coalescer pipeline
        bin.tick_insert(Cycle::new(3), &pr); // retires the write
        assert!(bin.is_quiescent());
    }
}
