//! The event-collection crossbar (§IV-E).
//!
//! Generation streams share crossbar ports in groups; each port forwards at
//! most one event per cycle, and each destination bin accepts at most one
//! event per cycle. The network is unidirectional and events are fixed
//! size, the two properties the paper leans on to keep it simple.

use std::collections::VecDeque;

use crate::Event;

/// Where a routed event is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Route {
    /// A bin of the resident slice (slot address precomputed by the sender).
    Bin {
        /// Destination bin index.
        bin: usize,
        /// Row within the bin.
        row: usize,
        /// Column within the row.
        col: usize,
    },
    /// An inactive slice's off-chip spill buffer (§IV-F).
    Spill {
        /// Destination slice index.
        slice: usize,
    },
}

/// A routed event waiting in a port FIFO.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Flit<D> {
    pub route: Route,
    pub event: Event<D>,
}

/// The P-port collection crossbar.
#[derive(Debug)]
pub(crate) struct Crossbar<D> {
    ports: Vec<VecDeque<Flit<D>>>,
    port_cap: usize,
    /// Rotating arbitration offset for fairness.
    rr: usize,
    pub(crate) flits_sent: u64,
}

impl<D: Copy> Crossbar<D> {
    pub(crate) fn new(ports: usize, port_cap: usize) -> Self {
        assert!(
            ports > 0 && port_cap > 0,
            "crossbar needs ports and buffers"
        );
        Crossbar {
            ports: vec![VecDeque::new(); ports],
            port_cap,
            rr: 0,
            flits_sent: 0,
        }
    }

    /// Whether `port` can take another flit this cycle.
    pub(crate) fn can_send(&self, port: usize) -> bool {
        self.ports[port].len() < self.port_cap
    }

    /// Enqueues a flit at `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port buffer is full; gate with [`Crossbar::can_send`].
    pub(crate) fn send(&mut self, port: usize, flit: Flit<D>) {
        assert!(self.can_send(port), "crossbar port overflow");
        self.ports[port].push_back(flit);
        self.flits_sent += 1;
    }

    /// One cycle of delivery: every port may forward its head flit if the
    /// destination accepts (one event per bin per cycle; spills always
    /// accept). `bin_accepts[b]` reports whether bin `b` has input space at
    /// the start of the cycle; `deliver` consumes forwarded flits.
    ///
    /// Rotating port priority keeps arbitration fair.
    pub(crate) fn tick(&mut self, bin_accepts: &[bool], mut deliver: impl FnMut(Flit<D>)) {
        let n = self.ports.len();
        let mut bin_taken = vec![false; bin_accepts.len()];
        for i in 0..n {
            let p = (self.rr + i) % n;
            let Some(head) = self.ports[p].front() else {
                continue;
            };
            match head.route {
                Route::Bin { bin, .. } => {
                    if !bin_taken[bin] && bin_accepts[bin] {
                        bin_taken[bin] = true;
                        let flit = self.ports[p].pop_front().expect("checked head");
                        deliver(flit);
                    }
                }
                Route::Spill { .. } => {
                    let flit = self.ports[p].pop_front().expect("checked head");
                    deliver(flit);
                }
            }
        }
        self.rr = (self.rr + 1) % n;
    }

    /// Whether every port buffer is empty.
    pub(crate) fn is_empty(&self) -> bool {
        self.ports.iter().all(VecDeque::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::VertexId;

    fn flit(bin: usize, v: u32) -> Flit<f64> {
        Flit {
            route: Route::Bin {
                bin,
                row: 0,
                col: 0,
            },
            event: Event::new(VertexId::new(v), 1.0, 0),
        }
    }

    #[test]
    fn one_event_per_bin_per_cycle() {
        let mut xb: Crossbar<f64> = Crossbar::new(2, 4);
        xb.send(0, flit(0, 1));
        xb.send(1, flit(0, 2)); // same destination bin
        let mut delivered = Vec::new();
        xb.tick(&[true], |f| delivered.push(f.event.target));
        assert_eq!(delivered.len(), 1);
        xb.tick(&[true], |f| delivered.push(f.event.target));
        assert_eq!(delivered.len(), 2);
        assert!(xb.is_empty());
    }

    #[test]
    fn different_bins_deliver_in_parallel() {
        let mut xb: Crossbar<f64> = Crossbar::new(2, 4);
        xb.send(0, flit(0, 1));
        xb.send(1, flit(1, 2));
        let mut delivered = 0;
        xb.tick(&[true, true], |_| delivered += 1);
        assert_eq!(delivered, 2);
    }

    #[test]
    fn backpressured_bin_blocks_head_of_line() {
        let mut xb: Crossbar<f64> = Crossbar::new(1, 4);
        xb.send(0, flit(0, 1));
        xb.send(0, flit(1, 2));
        let mut delivered = Vec::new();
        // Bin 0 rejects; head-of-line blocks the flit for bin 1 too.
        xb.tick(&[false, true], |f| delivered.push(f.event.target));
        assert!(delivered.is_empty());
        xb.tick(&[true, true], |f| delivered.push(f.event.target));
        assert_eq!(delivered, vec![VertexId::new(1)]);
    }

    #[test]
    fn spills_always_deliver() {
        let mut xb: Crossbar<f64> = Crossbar::new(1, 4);
        xb.send(
            0,
            Flit {
                route: Route::Spill { slice: 2 },
                event: Event::new(VertexId::new(9), 1.0, 0),
            },
        );
        let mut got = None;
        xb.tick(&[false], |f| got = Some(f.route));
        assert_eq!(got, Some(Route::Spill { slice: 2 }));
    }

    #[test]
    fn port_capacity_enforced() {
        let mut xb: Crossbar<f64> = Crossbar::new(1, 1);
        assert!(xb.can_send(0));
        xb.send(0, flit(0, 1));
        assert!(!xb.can_send(0));
        assert_eq!(xb.flits_sent, 1);
    }
}
