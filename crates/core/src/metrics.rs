//! Execution metrics backing every figure of the evaluation.

use gp_mem::MemStats;
use gp_sim::stats::{Average, StateTimeline};

use crate::EnergyReport;

/// Lookahead-degree buckets exactly as Fig. 8 of the paper:
/// `0, <100, <200, <300, <400, >400`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LookaheadBuckets {
    /// Events with zero lookahead (never coalesced across iterations).
    pub zero: u64,
    /// Lookahead in `1..100`.
    pub lt100: u64,
    /// Lookahead in `100..200`.
    pub lt200: u64,
    /// Lookahead in `200..300`.
    pub lt300: u64,
    /// Lookahead in `300..400`.
    pub lt400: u64,
    /// Lookahead `>= 400`.
    pub ge400: u64,
}

impl LookaheadBuckets {
    /// Records one event's lookahead.
    pub fn record(&mut self, lookahead: u32) {
        match lookahead {
            0 => self.zero += 1,
            1..=99 => self.lt100 += 1,
            100..=199 => self.lt200 += 1,
            200..=299 => self.lt300 += 1,
            300..=399 => self.lt400 += 1,
            _ => self.ge400 += 1,
        }
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.zero + self.lt100 + self.lt200 + self.lt300 + self.lt400 + self.ge400
    }

    /// Rows as `(label, count)` pairs in Fig. 8 order.
    pub fn rows(&self) -> [(&'static str, u64); 6] {
        [
            ("0", self.zero),
            ("<100", self.lt100),
            ("<200", self.lt200),
            ("<300", self.lt300),
            ("<400", self.lt400),
            (">400", self.ge400),
        ]
    }
}

/// Per-round counters (Figs. 4 and 8).
#[derive(Debug, Default, Clone)]
pub struct RoundMetrics {
    /// Scheduler round number (one pass over all bins).
    pub round: u64,
    /// Events generated during the round, before coalescing.
    pub produced: u64,
    /// Events merged into an existing queue slot during the round.
    pub coalesced_away: u64,
    /// Events drained from the queue (issued to processors).
    pub drained: u64,
    /// Queue occupancy (pending unique events) at the end of the round.
    pub remaining: u64,
    /// Lookahead distribution of the events drained this round.
    pub lookahead: LookaheadBuckets,
}

/// Mean cycles an event spends in each execution stage, in the
/// chronological order of the paper's Fig. 13.
#[derive(Debug, Default, Clone)]
pub struct StageAverages {
    /// Waiting in the processor input buffer for vertex data (Vtx Mem).
    pub vtx_mem: Average,
    /// In the apply pipeline (Process).
    pub process: Average,
    /// Waiting in the generation buffer for a free stream (Gen-Buffer).
    pub gen_buffer: Average,
    /// Stalled on edge-list memory during generation (Edge Mem).
    pub edge_mem: Average,
    /// Actively producing/routing outgoing events (Generate).
    pub generate: Average,
}

impl StageAverages {
    /// Accumulates another machine's stage samples (parallel-run merge).
    pub fn merge(&mut self, other: &StageAverages) {
        self.vtx_mem.merge(&other.vtx_mem);
        self.process.merge(&other.process);
        self.gen_buffer.merge(&other.gen_buffer);
        self.edge_mem.merge(&other.edge_mem);
        self.generate.merge(&other.generate);
    }

    /// `(label, mean_cycles)` rows, chronological (bottom-to-top in Fig. 13).
    pub fn rows(&self) -> [(&'static str, f64); 5] {
        [
            ("Vtx Mem", self.vtx_mem.mean()),
            ("Process", self.process.mean()),
            ("Gen-Buffer", self.gen_buffer.mean()),
            ("Edge Mem", self.edge_mem.mean()),
            ("Generate", self.generate.mean()),
        ]
    }
}

/// Names of processor states tracked for Fig. 14 (left bars).
pub const PROC_STATES: [&str; 4] = ["vertex-read", "process", "stalling", "idle"];
/// Names of generation-stream states tracked for Fig. 14 (right bars).
pub const GEN_STATES: [&str; 4] = ["edge-read", "generate", "stalling", "idle"];

/// Everything measured during one accelerator run.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Simulated wall-clock seconds at the configured frequency.
    pub seconds: f64,
    /// Scheduler rounds executed.
    pub rounds: u64,
    /// Graph slices the run used (1 = no partitioning).
    pub slices: u64,
    /// Slice activations (swap-ins), including the first.
    pub slice_activations: u64,
    /// Events processed (drained and applied).
    pub events_processed: u64,
    /// Events generated, before coalescing.
    pub events_generated: u64,
    /// Events eliminated by in-queue coalescing.
    pub events_coalesced: u64,
    /// Events spilled off-chip to other slices.
    pub events_spilled: u64,
    /// Per-round counters (Figs. 4, 8).
    pub rounds_log: Vec<RoundMetrics>,
    /// Per-event stage latencies (Fig. 13).
    pub stages: StageAverages,
    /// Aggregated processor state timeline (Fig. 14 left).
    pub proc_timeline: StateTimeline,
    /// Aggregated generation-stream state timeline (Fig. 14 right).
    pub gen_timeline: StateTimeline,
    /// Off-chip memory statistics (Figs. 11, 12).
    pub memory: MemStats,
    /// Edge cache hits/misses across generation units.
    pub edge_cache_hits: u64,
    /// Edge cache misses across generation units.
    pub edge_cache_misses: u64,
    /// Energy/area estimate (Table V).
    pub energy: EnergyReport,
}

impl ExecutionReport {
    /// A zeroed report carrying only the four event counters — for
    /// synthesizing [`ExecutionReport::check_event_conservation`] checks
    /// over externally-maintained counters (the chaos plane's per-epoch
    /// watchdog does this).
    pub fn from_event_counters(
        generated: u64,
        processed: u64,
        coalesced: u64,
        spilled: u64,
    ) -> ExecutionReport {
        ExecutionReport {
            cycles: 0,
            seconds: 0.0,
            rounds: 0,
            slices: 1,
            slice_activations: 1,
            events_processed: processed,
            events_generated: generated,
            events_coalesced: coalesced,
            events_spilled: spilled,
            rounds_log: Vec::new(),
            stages: StageAverages::default(),
            proc_timeline: StateTimeline::new(&PROC_STATES),
            gen_timeline: StateTimeline::new(&GEN_STATES),
            memory: MemStats::default(),
            edge_cache_hits: 0,
            edge_cache_misses: 0,
            energy: EnergyReport::from_activity(
                &crate::EnergyModel::paper(),
                &crate::energy::ActivityCounters::default(),
                1.0,
                1,
                1,
            ),
        }
    }

    /// Fraction of generated events that were eliminated by coalescing
    /// (the paper reports >90% for PageRank on LiveJournal).
    pub fn coalesce_rate(&self) -> f64 {
        if self.events_generated == 0 {
            0.0
        } else {
            self.events_coalesced as f64 / self.events_generated as f64
        }
    }

    /// Event-conservation debug check: every generated event must be
    /// accounted for as processed, coalesced away, or spilled off-chip.
    ///
    /// For a single machine (sequential and sliced runs) the accounting is
    /// exact — spilled events re-enter the queue on a later slice pass and
    /// are eventually processed or coalesced, so pass `strict = true` and
    /// require `generated == processed + coalesced`. A merged shard-parallel
    /// report coalesces cross-shard events inside per-shard outboxes without
    /// incrementing `events_coalesced`, so there pass `strict = false`,
    /// which only requires the deficit to stay within `events_spilled`.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated balance equation.
    pub fn check_event_conservation(&self, strict: bool) -> Result<(), String> {
        let absorbed = self.events_processed + self.events_coalesced;
        if absorbed > self.events_generated {
            return Err(format!(
                "absorbed more events than generated: processed {} + coalesced {} > generated {}",
                self.events_processed, self.events_coalesced, self.events_generated
            ));
        }
        let deficit = self.events_generated - absorbed;
        if strict && deficit != 0 {
            return Err(format!(
                "event conservation violated: generated {} != processed {} + coalesced {} \
                 (deficit {deficit})",
                self.events_generated, self.events_processed, self.events_coalesced
            ));
        }
        if deficit > self.events_spilled {
            return Err(format!(
                "event deficit {deficit} exceeds spilled count {} \
                 (generated {}, processed {}, coalesced {})",
                self.events_spilled,
                self.events_generated,
                self.events_processed,
                self.events_coalesced
            ));
        }
        Ok(())
    }

    /// Aggregate lookahead distribution over all rounds.
    pub fn total_lookahead(&self) -> LookaheadBuckets {
        let mut total = LookaheadBuckets::default();
        for r in &self.rounds_log {
            total.zero += r.lookahead.zero;
            total.lt100 += r.lookahead.lt100;
            total.lt200 += r.lookahead.lt200;
            total.lt300 += r.lookahead.lt300;
            total.lt400 += r.lookahead.lt400;
            total.ge400 += r.lookahead.ge400;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(
        generated: u64,
        processed: u64,
        coalesced: u64,
        spilled: u64,
    ) -> ExecutionReport {
        ExecutionReport::from_event_counters(generated, processed, coalesced, spilled)
    }

    #[test]
    fn conservation_accepts_balanced_counters() {
        report_with(10, 6, 4, 0)
            .check_event_conservation(true)
            .unwrap();
        report_with(10, 6, 4, 0)
            .check_event_conservation(false)
            .unwrap();
        // Bounded mode tolerates a deficit covered by spills.
        report_with(10, 5, 3, 2)
            .check_event_conservation(false)
            .unwrap();
    }

    #[test]
    fn strict_conservation_fires_on_a_deficit() {
        // A dropped event: generated but neither processed nor coalesced.
        let err = report_with(10, 5, 4, 0)
            .check_event_conservation(true)
            .unwrap_err();
        assert!(err.contains("event conservation violated"), "{err}");
        assert!(err.contains("deficit 1"), "{err}");
        assert!(err.contains("generated 10"), "{err}");
    }

    #[test]
    fn conservation_fires_on_surplus_in_both_modes() {
        // A duplicated event: absorbed without ever being generated.
        for strict in [true, false] {
            let err = report_with(10, 7, 4, 0)
                .check_event_conservation(strict)
                .unwrap_err();
            assert!(err.contains("absorbed more events than generated"), "{err}");
            assert!(
                err.contains("processed 7 + coalesced 4 > generated 10"),
                "{err}"
            );
        }
    }

    #[test]
    fn bounded_conservation_fires_when_deficit_exceeds_spills() {
        let err = report_with(10, 4, 3, 2)
            .check_event_conservation(false)
            .unwrap_err();
        assert!(
            err.contains("event deficit 3 exceeds spilled count 2"),
            "{err}"
        );
    }

    #[test]
    fn lookahead_bucket_boundaries_match_fig8() {
        let mut b = LookaheadBuckets::default();
        for v in [0, 1, 99, 100, 199, 200, 299, 300, 399, 400, 10_000] {
            b.record(v);
        }
        assert_eq!(b.zero, 1);
        assert_eq!(b.lt100, 2);
        assert_eq!(b.lt200, 2);
        assert_eq!(b.lt300, 2);
        assert_eq!(b.lt400, 2);
        assert_eq!(b.ge400, 2);
        assert_eq!(b.total(), 11);
    }

    #[test]
    fn bucket_rows_are_ordered() {
        let b = LookaheadBuckets::default();
        let labels: Vec<_> = b.rows().iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, vec!["0", "<100", "<200", "<300", "<400", ">400"]);
    }

    #[test]
    fn stage_rows_follow_fig13_order() {
        let s = StageAverages::default();
        let labels: Vec<_> = s.rows().iter().map(|(l, _)| *l).collect();
        assert_eq!(
            labels,
            vec!["Vtx Mem", "Process", "Gen-Buffer", "Edge Mem", "Generate"]
        );
    }
}
