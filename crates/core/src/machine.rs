//! The assembled accelerator: scheduler, datapath wiring, slicing, and the
//! public [`GraphPulse`] entry point.

use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;

use gp_algorithms::DeltaAlgorithm;
use gp_graph::partition::Partition;
use gp_graph::{GraphView, VertexId};
use gp_mem::{line_base, MemRequest, MemStats, MemorySystem, TrafficClass, LINE_BYTES};
use gp_sim::stats::{ShardStats, StateTimeline};
use gp_sim::Cycle;

use crate::energy::{ActivityCounters, EnergyModel, EnergyReport};
use crate::generation::{
    ActiveGen, GenTask, GenUnit, GT_EDGE_READ, GT_GENERATE, GT_IDLE, GT_STALL,
};
use crate::metrics::{ExecutionReport, RoundMetrics, StageAverages, GEN_STATES, PROC_STATES};
use crate::network::{Crossbar, Flit, Route};
use crate::processor::{
    vertex_line, ApplyOp, ProcToken, Processor, ST_IDLE, ST_PROCESS, ST_STALL, ST_VERTEX_READ,
};
use crate::queue::{row_base_index, slot_of, Bin, InsertOutcome, SlotAddr};
use crate::{AcceleratorConfig, Event, SchedulingPolicy};

/// Result of an accelerator run: final vertex values plus the full
/// measurement report.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Final vertex values projected to `f64`.
    pub values: Vec<f64>,
    /// Everything measured during the run.
    pub report: ExecutionReport,
}

/// Errors from [`GraphPulse::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The configuration failed validation; carries the reason.
    InvalidConfig(String),
    /// The simulation exceeded the configured cycle safety cap.
    CycleLimit(u64),
    /// The convergence watchdog fired: the parallel engine crossed its
    /// epoch-barrier budget without reaching a fixed point (a stalled or
    /// skewed shard is the canonical cause). Carries the budget.
    EpochBudget(u64),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvalidConfig(why) => write!(f, "invalid accelerator configuration: {why}"),
            RunError::CycleLimit(cap) => write!(f, "simulation exceeded {cap} cycles"),
            RunError::EpochBudget(cap) => write!(
                f,
                "convergence watchdog: no fixed point within {cap} epoch barriers \
                 (stalled or skewed shard suspected)"
            ),
        }
    }
}

impl Error for RunError {}

/// The GraphPulse accelerator.
///
/// Owns a configuration; [`GraphPulse::run`] simulates the machine
/// cycle-by-cycle on a graph + algorithm pair and returns the final vertex
/// values together with an [`ExecutionReport`]. See the crate-level example.
#[derive(Debug, Clone, Default)]
pub struct GraphPulse {
    config: AcceleratorConfig,
}

impl GraphPulse {
    /// Creates an accelerator with `config`.
    pub fn new(config: AcceleratorConfig) -> Self {
        GraphPulse { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Runs `algo` on `graph` to completion.
    ///
    /// Graphs with more vertices than the event queue's capacity are
    /// automatically partitioned into slices (§IV-F).
    ///
    /// # Errors
    ///
    /// [`RunError::InvalidConfig`] if the configuration is inconsistent,
    /// [`RunError::CycleLimit`] if the simulation exceeds
    /// `config.max_cycles`.
    pub fn run<A: DeltaAlgorithm, G: GraphView>(
        &self,
        graph: &G,
        algo: &A,
    ) -> Result<Outcome, RunError> {
        self.config.validate().map_err(RunError::InvalidConfig)?;
        let mut machine = Machine::new(&self.config, graph, algo);
        machine.seed_initial_events();
        machine.run_to_completion()?;
        Ok(machine.into_outcome())
    }

    /// Runs `algo` from explicit warm-start state: `values` holds the
    /// per-vertex states to resume from and `seeds` the events injected
    /// into the queue instead of the cold-start
    /// [`initial_delta`](gp_algorithms::DeltaAlgorithm::initial_delta)
    /// sweep. This is the accelerator-model backend for incremental
    /// recomputation over streaming graph updates: a full run is the
    /// special case of init values plus the initial-delta seed set.
    ///
    /// Returns typed values (not the `f64` projection) so a stream of
    /// update batches can be re-fed without lossy round-trips.
    ///
    /// # Errors
    ///
    /// Same as [`GraphPulse::run`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != graph.num_vertices()` or a seed vertex
    /// is out of range.
    pub fn run_seeded<A: DeltaAlgorithm, G: GraphView>(
        &self,
        graph: &G,
        algo: &A,
        values: Vec<A::Value>,
        seeds: &[(VertexId, A::Delta)],
    ) -> Result<SeededOutcome<A::Value>, RunError> {
        self.config.validate().map_err(RunError::InvalidConfig)?;
        let mut machine = Machine::new(&self.config, graph, algo);
        machine.set_values(values);
        machine.seed_events(seeds);
        machine.run_to_completion()?;
        let (values, report) = machine.into_typed();
        Ok(SeededOutcome { values, report })
    }
}

/// Result of a warm-start ([`GraphPulse::run_seeded`]) run: typed vertex
/// values plus the full measurement report.
#[derive(Debug, Clone)]
pub struct SeededOutcome<V> {
    /// Final typed vertex values.
    pub values: Vec<V>,
    /// Everything measured during the run.
    pub report: ExecutionReport,
}

/// Where a memory completion must be routed.
enum MemTarget<D> {
    VertexLine { proc: usize, line: u64 },
    EdgeLine { unit: usize, line: u64 },
    VertexWriteAck,
    SpillWrite,
    FillChunk { events: Vec<Event<D>> },
}

/// A cross-shard event awaiting exchange at the next epoch barrier, tagged
/// for the deterministic `(cycle, source shard, sequence)` merge order.
pub(crate) struct OutEvent<D> {
    /// Cycle at which the generating shard emitted the event.
    pub(crate) cycle: u64,
    /// Emission sequence number within the generating shard (monotone).
    pub(crate) seq: u64,
    /// The event itself.
    pub(crate) event: Event<D>,
}

/// Everything a shard contributes to the merged parallel report.
pub(crate) struct ShardPartial<V> {
    pub(crate) start: usize,
    pub(crate) values: Vec<V>,
    pub(crate) cycles: u64,
    pub(crate) rounds: u64,
    pub(crate) activations: u64,
    pub(crate) events_processed: u64,
    pub(crate) events_generated: u64,
    pub(crate) events_coalesced: u64,
    pub(crate) events_exchanged: u64,
    pub(crate) ticks: u64,
    pub(crate) rounds_log: Vec<RoundMetrics>,
    pub(crate) stages: StageAverages,
    pub(crate) proc_timeline: StateTimeline,
    pub(crate) gen_timeline: StateTimeline,
    pub(crate) memory: MemStats,
    pub(crate) cache_hits: u64,
    pub(crate) cache_misses: u64,
    pub(crate) activity: ActivityCounters,
}

enum Phase<D> {
    /// Sweeping bins and dispatching rows to processors.
    Drain,
    /// End-of-round barrier: waiting for every unit to go idle.
    Quiesce,
    /// Streaming a swapped-in slice's events from off-chip (§IV-F).
    Fill {
        queue: VecDeque<Event<D>>,
        outstanding: usize,
    },
    Done,
}

pub(crate) struct Machine<'a, A: DeltaAlgorithm, G: GraphView> {
    cfg: &'a AcceleratorConfig,
    algo: &'a A,
    graph: &'a G,
    edge_bytes: u32,
    vertex_base: u64,
    edge_base: u64,
    spill_base: u64,
    spill_bump: u64,

    partition: Partition,
    active_slice: usize,
    values: Vec<A::Value>,

    mem: MemorySystem,
    pending_mem: HashMap<u64, MemTarget<A::Delta>>,
    bins: Vec<Bin<A::Delta>>,
    xbar: Crossbar<A::Delta>,
    procs: Vec<Processor<A::Delta>>,
    units: Vec<GenUnit<A::Delta>>,
    spill: Vec<VecDeque<Event<A::Delta>>>,
    spill_pending_bytes: u64,

    /// Shard mode: the active slice is permanently resident; events for
    /// other slices go to `outbox` for the epoch-barrier exchange instead
    /// of the off-chip spill path.
    shard_mode: bool,
    outbox: Vec<Vec<OutEvent<A::Delta>>>,
    /// Per-destination map from target vertex to its outbox entry, so
    /// cross-shard events coalesce at the sender exactly as the queue
    /// would coalesce them at the receiver (the merge is commutative, so
    /// the receiver's state is unchanged while the exchange volume drops
    /// from O(events) to O(touched vertices) per epoch).
    outbox_index: Vec<HashMap<u32, usize>>,
    out_seq: u64,
    stats_baseline: [u64; 5],

    phase: Phase<A::Delta>,
    /// Bin visit order for the current round (identity under round-robin).
    bin_order: Vec<usize>,
    current_bin: usize,
    dispatch_rr: usize,
    round: u64,
    slice_activations: u64,
    progress_accum: f64,

    now: Cycle,
    current_round: RoundMetrics,
    rounds_log: Vec<RoundMetrics>,
    stages: StageAverages,
    activity: ActivityCounters,
    events_processed: u64,
    events_generated: u64,
    events_coalesced: u64,
    events_spilled: u64,
    /// Ticks actually executed (shard-mode diagnostics).
    ticks: u64,
}

impl<'a, A: DeltaAlgorithm, G: GraphView> Machine<'a, A, G> {
    fn new(cfg: &'a AcceleratorConfig, graph: &'a G, algo: &'a A) -> Self {
        let partition = Partition::contiguous(graph, cfg.queue.capacity().max(1));
        Self::with_partition(cfg, graph, algo, partition, 0, false)
    }

    /// Builds the shard-parallel variant: slice `shard` of `partition` is
    /// permanently resident and cross-slice events are exchanged at epoch
    /// barriers rather than spilled.
    pub(crate) fn new_shard(
        cfg: &'a AcceleratorConfig,
        graph: &'a G,
        algo: &'a A,
        partition: Partition,
        shard: usize,
    ) -> Self {
        Self::with_partition(cfg, graph, algo, partition, shard, true)
    }

    fn with_partition(
        cfg: &'a AcceleratorConfig,
        graph: &'a G,
        algo: &'a A,
        partition: Partition,
        active_slice: usize,
        shard_mode: bool,
    ) -> Self {
        let n = graph.num_vertices();
        let edge_bytes = if graph.is_weighted() {
            cfg.edge_bytes * 2
        } else {
            cfg.edge_bytes
        };
        let vertex_base = 0u64;
        let edge_base = align_up(vertex_base + n as u64 * u64::from(cfg.vertex_bytes));
        let spill_base = align_up(edge_base + graph.edge_span() as u64 * u64::from(edge_bytes));

        let bins = (0..cfg.queue.bins)
            .map(|_| Bin::new(&cfg.queue, cfg.bin_input_depth, cfg.coalescer_depth))
            .collect();
        let procs = (0..cfg.processors)
            .map(|_| Processor::new(cfg.input_buffer, cfg.scratchpad_lines, cfg.process_latency))
            .collect();
        let units = (0..cfg.processors)
            .map(|p| {
                GenUnit::new(
                    cfg.gen_streams,
                    cfg.gen_buffer,
                    cfg.edge_cache,
                    p * cfg.gen_streams,
                    cfg.crossbar_ports,
                )
            })
            .collect();
        let spill = vec![VecDeque::new(); partition.len().max(1)];
        let outbox: Vec<Vec<OutEvent<A::Delta>>> = if shard_mode {
            (0..partition.len()).map(|_| Vec::new()).collect()
        } else {
            Vec::new()
        };
        let outbox_index = (0..outbox.len()).map(|_| HashMap::new()).collect();

        Machine {
            cfg,
            algo,
            graph,
            edge_bytes,
            vertex_base,
            edge_base,
            spill_base,
            spill_bump: 0,
            partition,
            active_slice,
            values: (0..n)
                .map(|v| algo.init_value(VertexId::from_index(v)))
                .collect(),
            mem: MemorySystem::new(cfg.dram),
            pending_mem: HashMap::new(),
            bins,
            xbar: Crossbar::new(cfg.crossbar_ports, 4),
            procs,
            units,
            spill,
            spill_pending_bytes: 0,
            shard_mode,
            outbox,
            outbox_index,
            out_seq: 0,
            stats_baseline: [0; 5],
            phase: Phase::Drain,
            bin_order: (0..cfg.queue.bins).collect(),
            current_bin: 0,
            dispatch_rr: 0,
            round: 0,
            slice_activations: 1,
            progress_accum: 0.0,
            now: Cycle::ZERO,
            current_round: RoundMetrics::default(),
            rounds_log: Vec::new(),
            stages: StageAverages::default(),
            activity: ActivityCounters::default(),
            events_processed: 0,
            events_generated: 0,
            events_coalesced: 0,
            events_spilled: 0,
            ticks: 0,
        }
    }

    // ---- address helpers ----

    fn edge_addr(&self, v: VertexId, edge_index: u32) -> u64 {
        self.edge_base
            + (self.graph.out_edge_base(v) as u64 + u64::from(edge_index))
                * u64::from(self.edge_bytes)
    }

    fn next_spill_addr(&mut self) -> u64 {
        let addr = self.spill_base + self.spill_bump * LINE_BYTES;
        self.spill_bump += 1;
        addr
    }

    fn route_of(&self, ev: &Event<A::Delta>) -> Route {
        let slice = self.partition.slice_of(ev.target);
        if slice == self.active_slice {
            let local = self.partition.slices()[slice].local_index(ev.target);
            let SlotAddr { bin, row, col } = slot_of(local, &self.cfg.queue);
            Route::Bin { bin, row, col }
        } else {
            Route::Spill { slice }
        }
    }

    // ---- setup ----

    fn seed_initial_events(&mut self) {
        if self.partition.is_empty() {
            self.phase = Phase::Done;
            return;
        }
        for v in self.graph.vertex_ids() {
            let Some(delta) = self.algo.initial_delta(v, self.graph) else {
                continue;
            };
            let ev = Event::new(v, delta, 0);
            self.events_generated += 1;
            let slice = self.partition.slice_of(v);
            if slice == self.active_slice {
                self.install_resident(ev);
            } else {
                self.spill[slice].push_back(ev);
            }
        }
        if self.total_occupancy() == 0 {
            // Active slice got nothing: behave like an empty first round.
            self.phase = Phase::Quiesce;
        }
    }

    /// Installs warm-start vertex state, replacing the init values.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the vertex count.
    pub(crate) fn set_values(&mut self, values: Vec<A::Value>) {
        assert_eq!(
            values.len(),
            self.graph.num_vertices(),
            "warm-start state length must match the vertex count"
        );
        self.values = values;
    }

    /// Injects explicit warm-start events instead of the cold-start
    /// initial-delta sweep. In shard mode each shard receives the full
    /// seed list and installs only the events targeting its resident
    /// slice, so the union across shards covers the seed set exactly
    /// once; in sliced single-machine mode, events for swapped-out
    /// slices go to their spill queues like any cross-slice event.
    pub(crate) fn seed_events(&mut self, seeds: &[(VertexId, A::Delta)]) {
        if self.partition.is_empty() {
            self.phase = Phase::Done;
            return;
        }
        for &(v, delta) in seeds {
            let slice = self.partition.slice_of(v);
            if slice == self.active_slice {
                self.events_generated += 1;
                self.install_resident(Event::new(v, delta, 0));
            } else if !self.shard_mode {
                self.events_generated += 1;
                self.spill[slice].push_back(Event::new(v, delta, 0));
            }
        }
        if self.total_occupancy() == 0 {
            self.phase = Phase::Quiesce;
        }
    }

    /// Seeds the initial deltas of this shard's own slice (every shard
    /// seeds exactly its resident vertices, so the union covers the graph).
    pub(crate) fn seed_shard_events(&mut self) {
        debug_assert!(self.shard_mode);
        let slice = self.partition.slices()[self.active_slice];
        for vi in slice.start.get()..slice.end.get() {
            let v = VertexId::new(vi);
            let Some(delta) = self.algo.initial_delta(v, self.graph) else {
                continue;
            };
            self.events_generated += 1;
            self.install_resident(Event::new(v, delta, 0));
        }
        if self.total_occupancy() == 0 {
            self.phase = Phase::Quiesce;
        }
    }

    /// Functionally installs an event into the resident queue (host load or
    /// swap-in path; uses the bins' parallel insertion units).
    fn install_resident(&mut self, ev: Event<A::Delta>) {
        let slice = &self.partition.slices()[self.active_slice];
        let local = slice.local_index(ev.target);
        let addr = slot_of(local, &self.cfg.queue);
        self.activity.queue_writes += 1;
        match self.bins[addr.bin].install(self.algo, addr, ev) {
            InsertOutcome::Coalesced => {
                self.events_coalesced += 1;
                self.current_round.coalesced_away += 1;
                self.activity.coalesce_ops += 1;
            }
            InsertOutcome::Inserted => {}
        }
    }

    fn total_occupancy(&self) -> usize {
        self.bins.iter().map(Bin::occupancy).sum()
    }

    /// Recomputes the bin visit order for the next round per the
    /// configured scheduling policy (§IV-C).
    fn refresh_bin_order(&mut self) {
        if self.cfg.scheduling == SchedulingPolicy::OccupancyFirst {
            let occupancy: Vec<usize> = self.bins.iter().map(Bin::occupancy).collect();
            // Stable sort from the identity order keeps ties deterministic.
            self.bin_order = (0..self.bins.len()).collect();
            self.bin_order
                .sort_by_key(|&b| std::cmp::Reverse(occupancy[b]));
        }
    }

    // ---- main loop ----

    fn run_to_completion(&mut self) -> Result<(), RunError> {
        while !matches!(self.phase, Phase::Done) {
            if self.now.get() >= self.cfg.max_cycles {
                return Err(RunError::CycleLimit(self.cfg.max_cycles));
            }
            self.tick();
        }
        Ok(())
    }

    // ---- shard-mode lifecycle (epoch-barrier parallel engine) ----

    /// Advances the shard until it parks (runs dry) or reaches the epoch
    /// boundary at `epoch_end`.
    pub(crate) fn run_epoch(&mut self, epoch_end: Cycle) -> Result<(), RunError> {
        debug_assert!(self.shard_mode);
        while !matches!(self.phase, Phase::Done) && self.now.get() < epoch_end.get() {
            if self.now.get() >= self.cfg.max_cycles {
                return Err(RunError::CycleLimit(self.cfg.max_cycles));
            }
            self.tick();
            self.ticks += 1;
        }
        Ok(())
    }

    /// One-line load summary for the `GP_PARALLEL_TRACE` diagnostics.
    pub(crate) fn trace_summary(&self) -> String {
        format!(
            "ticks {} processed {} generated {} now {}",
            self.ticks,
            self.events_processed,
            self.events_generated,
            self.now.get()
        )
    }

    /// Whether the shard has run dry (no resident events, all units idle).
    pub(crate) fn parked(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }

    /// Delivers the epoch-barrier inbox (already merged in deterministic
    /// order by the driver) at barrier time `at`, reviving the shard if it
    /// was parked.
    pub(crate) fn deliver(&mut self, at: Cycle, events: impl IntoIterator<Item = Event<A::Delta>>) {
        debug_assert!(self.shard_mode);
        if self.parked() {
            self.now = at;
            self.slice_activations += 1;
            for bin in &mut self.bins {
                bin.reset_sweep();
            }
            self.refresh_bin_order();
            self.current_bin = 0;
            self.phase = Phase::Drain;
        }
        for ev in events {
            self.install_resident(ev);
        }
    }

    /// Takes the per-destination outboxes accumulated this epoch.
    pub(crate) fn take_outboxes(&mut self) -> Vec<Vec<OutEvent<A::Delta>>> {
        for index in &mut self.outbox_index {
            index.clear();
        }
        let empty = (0..self.outbox.len()).map(|_| Vec::new()).collect();
        std::mem::replace(&mut self.outbox, empty)
    }

    /// Counter deltas since the previous barrier, as a worker-local bundle
    /// for the thread-safe registry merge.
    pub(crate) fn drain_epoch_stats(&mut self) -> ShardStats {
        let totals = [
            self.events_processed,
            self.events_generated,
            self.events_coalesced,
            self.events_spilled,
            self.round,
        ];
        let mut s = ShardStats::new();
        const KEYS: [&str; 5] = [
            "events_processed",
            "events_generated",
            "events_coalesced",
            "events_exchanged",
            "rounds",
        ];
        for (i, key) in KEYS.into_iter().enumerate() {
            s.add(key, totals[i] - self.stats_baseline[i]);
        }
        self.stats_baseline = totals;
        s
    }

    /// Tears the shard down into its contribution to the merged report.
    pub(crate) fn into_shard_partial(self) -> ShardPartial<A::Value> {
        let slice = self.partition.slices()[self.active_slice];
        let (start, end) = (slice.start.get() as usize, slice.end.get() as usize);
        let mut proc_timeline = StateTimeline::new(&PROC_STATES);
        for p in &self.procs {
            proc_timeline.merge(&p.timeline);
        }
        let mut gen_timeline = StateTimeline::new(&GEN_STATES);
        let mut cache_hits = 0;
        let mut cache_misses = 0;
        for u in &self.units {
            cache_hits += u.cache.hits();
            cache_misses += u.cache.misses();
            for s in &u.streams {
                gen_timeline.merge(&s.timeline);
            }
        }
        ShardPartial {
            start,
            values: self.values[start..end].to_vec(),
            cycles: self.now.get(),
            rounds: self.round,
            activations: self.slice_activations,
            events_processed: self.events_processed,
            events_generated: self.events_generated,
            events_coalesced: self.events_coalesced,
            events_exchanged: self.events_spilled,
            ticks: self.ticks,
            rounds_log: self.rounds_log,
            stages: self.stages,
            proc_timeline,
            gen_timeline,
            memory: self.mem.stats().clone(),
            cache_hits,
            cache_misses,
            activity: self.activity,
        }
    }

    fn tick(&mut self) {
        let now = self.now;
        self.mem.tick(now);
        self.route_completions();
        self.tick_spill_writes();
        self.tick_scheduler();
        self.tick_processors();
        self.tick_generation();
        self.tick_network();
        self.tick_bins();
        self.now = now.next();
    }

    fn route_completions(&mut self) {
        while let Some(req) = self.mem.pop_completion(self.now) {
            match self.pending_mem.remove(&req.id().get()) {
                Some(MemTarget::VertexLine { proc, line }) => {
                    self.procs[proc].line_arrived(line);
                    self.activity.scratchpad_accesses += 1;
                }
                Some(MemTarget::EdgeLine { unit, line }) => {
                    self.units[unit].line_arrived(line);
                }
                Some(MemTarget::FillChunk { events }) => {
                    for ev in events {
                        self.install_resident(ev);
                    }
                    if let Phase::Fill { outstanding, .. } = &mut self.phase {
                        *outstanding -= 1;
                    }
                }
                Some(MemTarget::VertexWriteAck) | Some(MemTarget::SpillWrite) => {}
                None => unreachable!("completion for unknown request"),
            }
        }
    }

    fn tick_spill_writes(&mut self) {
        while self.spill_pending_bytes >= LINE_BYTES {
            let addr = self.spill_base + self.spill_bump * LINE_BYTES;
            if !self.mem.can_accept(addr) {
                break;
            }
            let addr = self.next_spill_addr();
            let req = MemRequest::write(addr, LINE_BYTES as u32, TrafficClass::EventSpill);
            let id = self.mem.request(self.now, req).expect("can_accept checked");
            self.pending_mem.insert(id.get(), MemTarget::SpillWrite);
            self.spill_pending_bytes -= LINE_BYTES;
        }
    }

    /// Flushes a sub-line remainder of spilled events (slice end).
    fn flush_spill_remainder(&mut self) {
        if self.spill_pending_bytes == 0 {
            return;
        }
        let bytes = self.spill_pending_bytes as u32;
        self.spill_pending_bytes = 0;
        let addr = self.next_spill_addr();
        let req = MemRequest::write(addr, bytes, TrafficClass::EventSpill);
        match self.mem.request(self.now, req) {
            Ok(id) => {
                self.pending_mem.insert(id.get(), MemTarget::SpillWrite);
            }
            Err(_) => {
                // Retry next cycle via the normal spill path.
                self.spill_pending_bytes = u64::from(bytes);
            }
        }
    }

    // ---- scheduler ----

    fn tick_scheduler(&mut self) {
        match &mut self.phase {
            Phase::Drain => self.tick_drain(),
            Phase::Quiesce => self.tick_quiesce(),
            Phase::Fill { .. } => self.tick_fill(),
            Phase::Done => {}
        }
    }

    fn tick_drain(&mut self) {
        loop {
            if self.current_bin >= self.bins.len() {
                self.phase = Phase::Quiesce;
                return;
            }
            let bin_idx = self.bin_order[self.current_bin];
            match self.bins[bin_idx].peek_drain() {
                None => {
                    // Bin exhausted for this round; checking the next one
                    // costs no extra drain slot (priority encoder).
                    self.current_bin += 1;
                }
                Some((_, 0)) => return, // row busy in the coalescer: retry next cycle
                Some((row, count)) => {
                    let Some(target) = self.pick_processor(count) else {
                        return; // all input buffers too full: stall
                    };
                    let events = self.bins[bin_idx].drain_row(row, self.now);
                    self.activity.queue_reads += 1;
                    let base_local = row_base_index(bin_idx, row, &self.cfg.queue);
                    debug_assert!(events.iter().all(|e| {
                        let local =
                            self.partition.slices()[self.active_slice].local_index(e.target);
                        local >= base_local && local < base_local + self.cfg.queue.cols
                    }));
                    for ev in events {
                        self.current_round.drained += 1;
                        self.current_round.lookahead.record(ev.meta.lookahead());
                        let line =
                            vertex_line(self.vertex_base, self.cfg.vertex_bytes, ev.target.get());
                        self.procs[target].push_token(ProcToken {
                            event: ev,
                            arrived: self.now,
                            line,
                            demand_issued: false,
                        });
                    }
                    self.dispatch_rr = target + 1;
                    return; // one row per cycle
                }
            }
        }
    }

    fn pick_processor(&self, needed: usize) -> Option<usize> {
        let n = self.procs.len();
        (0..n)
            .map(|i| (self.dispatch_rr + i) % n)
            .find(|&p| self.procs[p].free_input() >= needed)
    }

    fn is_quiescent(&self) -> bool {
        self.pending_mem.is_empty()
            && self.mem.is_idle()
            && self.xbar.is_empty()
            && self.bins.iter().all(Bin::is_quiescent)
            && self.procs.iter().all(Processor::is_quiescent)
            && self.units.iter().all(GenUnit::is_quiescent)
    }

    fn tick_quiesce(&mut self) {
        if !self.is_quiescent() {
            return;
        }
        // End of round.
        let remaining = self.total_occupancy() as u64;
        let mut metrics = std::mem::take(&mut self.current_round);
        metrics.round = self.round;
        metrics.remaining = remaining;
        self.rounds_log.push(metrics);

        let round_progress = self.progress_accum;
        self.progress_accum = 0.0;
        self.round += 1;

        if let Some(threshold) = self.algo.global_threshold() {
            if round_progress < threshold && remaining > 0 {
                self.phase = Phase::Done;
                return;
            }
        }

        if remaining == 0 {
            if self.shard_mode {
                // Shards never swap slices: park until the epoch barrier
                // delivers new events (or the whole run terminates).
                self.phase = Phase::Done;
                return;
            }
            self.flush_spill_remainder();
            if let Some(next) = self.next_slice_with_work() {
                self.start_slice_swap(next);
            } else if self.spill_pending_bytes == 0 && self.pending_mem.is_empty() {
                self.phase = Phase::Done;
            }
            // else: wait for the remainder flush to drain, then re-check.
            return;
        }

        for bin in &mut self.bins {
            bin.reset_sweep();
        }
        self.refresh_bin_order();
        self.current_bin = 0;
        self.phase = Phase::Drain;
    }

    fn next_slice_with_work(&self) -> Option<usize> {
        let k = self.spill.len();
        (1..=k)
            .map(|i| (self.active_slice + i) % k)
            .find(|&s| !self.spill[s].is_empty())
    }

    fn start_slice_swap(&mut self, next: usize) {
        self.active_slice = next;
        self.slice_activations += 1;
        for p in &mut self.procs {
            p.reset_for_swap();
        }
        for u in &mut self.units {
            u.reset_for_swap();
        }
        for bin in &mut self.bins {
            bin.reset_sweep();
        }
        self.current_bin = 0;
        let queue = std::mem::take(&mut self.spill[next]);
        self.phase = Phase::Fill {
            queue,
            outstanding: 0,
        };
    }

    fn tick_fill(&mut self) {
        let events_per_chunk = (LINE_BYTES / u64::from(self.cfg.event_bytes)).max(1) as usize;
        // Issue up to one chunk read per channel per cycle.
        for _ in 0..self.cfg.dram.channels {
            let Phase::Fill { queue, outstanding } = &mut self.phase else {
                return;
            };
            if queue.is_empty() {
                if *outstanding == 0 && self.pending_mem.is_empty() && self.mem.is_idle() {
                    // Swap-in complete: resume normal rounds.
                    self.refresh_bin_order();
                    self.phase = Phase::Drain;
                }
                return;
            }
            let addr = self.spill_base + self.spill_bump * LINE_BYTES;
            if !self.mem.can_accept(addr) {
                return;
            }
            let take = queue.len().min(events_per_chunk);
            let events: Vec<_> = queue.drain(..take).collect();
            let bytes = (take as u32) * self.cfg.event_bytes;
            *outstanding += 1;
            let addr = self.next_spill_addr();
            let req = MemRequest::read(addr, bytes, TrafficClass::EventFill);
            let id = self.mem.request(self.now, req).expect("can_accept checked");
            self.pending_mem
                .insert(id.get(), MemTarget::FillChunk { events });
        }
    }

    // ---- processors ----

    fn tick_processors(&mut self) {
        for p in 0..self.procs.len() {
            self.tick_processor(p);
        }
    }

    fn tick_processor(&mut self, p: usize) {
        let now = self.now;
        let mut state = ST_IDLE;

        // 1. Retry a stalled generation hand-off.
        if let Some(task) = self.procs[p].stalled.take() {
            if self.units[p].has_space() {
                let task = GenTask {
                    queued_at: now,
                    ..task
                };
                self.units[p].push_task(task);
            } else {
                self.procs[p].stalled = Some(task);
                state = ST_STALL;
            }
        }

        // 2. Retire the apply pipeline (blocked while a hand-off is stalled).
        if self.procs[p].stalled.is_none() {
            if let Some(op) = self.procs[p].pipeline.retire(now) {
                self.apply_op(p, op);
                state = ST_PROCESS;
            }
        }

        // 3. Issue the next ready event into the apply pipeline.
        if self.procs[p].pipeline.can_issue(now) {
            if let Some(token) = self.procs[p].pop_ready() {
                self.stages.vtx_mem.record((now - token.arrived) as f64);
                self.activity.scratchpad_accesses += 1;
                self.procs[p].pipeline.issue(
                    now,
                    ApplyOp {
                        event: token.event,
                        issued: now,
                    },
                );
                state = ST_PROCESS;
            }
        }

        // 4. Vertex-line fetches: block prefetch or baseline demand reads.
        let fetch = if self.cfg.prefetch {
            self.procs[p].next_prefetch()
        } else {
            self.procs[p].next_demand().map(|line| (line, 1))
        };
        if let Some((line, events_on_line)) = fetch {
            if self.mem.can_accept(line) {
                let useful = (events_on_line * self.cfg.vertex_bytes).min(LINE_BYTES as u32);
                let req = MemRequest::read(line, LINE_BYTES as u32, TrafficClass::VertexRead)
                    .with_useful_bytes(useful);
                let id = self.mem.request(now, req).expect("can_accept checked");
                self.pending_mem
                    .insert(id.get(), MemTarget::VertexLine { proc: p, line });
                self.procs[p].pending_lines.push(line);
            } else if !self.cfg.prefetch {
                // The demand flag was consumed; put it back for a retry.
                if let Some(t) = self.procs[p].input.front_mut() {
                    t.demand_issued = false;
                }
            }
        }

        // 5. Retry rejected vertex write-backs, and flush the
        //    write-combining buffer once the processor runs out of work.
        if let Some(&(line, bytes)) = self.procs[p].write_retry.front() {
            if self.mem.can_accept(line) {
                self.procs[p].write_retry.pop_front();
                self.issue_vertex_write(p, line, bytes);
            }
        }
        if self.procs[p].input.is_empty() && self.procs[p].pipeline.is_empty() {
            if let Some((line, bytes)) = self.procs[p].write_combine.take() {
                self.issue_vertex_write(p, line, bytes);
            }
        }

        // 6. State accounting (Fig. 14 left bars).
        if state == ST_IDLE && !self.procs[p].input.is_empty() {
            state = ST_VERTEX_READ; // waiting on vertex data
        }
        self.procs[p].timeline.add(state, 1);
    }

    /// Issues (or queues for retry) one combined vertex write-back burst.
    fn issue_vertex_write(&mut self, p: usize, line: u64, bytes: u32) {
        if self.mem.can_accept(line) {
            let req = MemRequest::write(line, bytes, TrafficClass::VertexWrite);
            let id = self.mem.request(self.now, req).expect("can_accept checked");
            self.pending_mem.insert(id.get(), MemTarget::VertexWriteAck);
        } else {
            self.procs[p].write_retry.push_back((line, bytes));
        }
    }

    fn apply_op(&mut self, p: usize, op: ApplyOp<A::Delta>) {
        let now = self.now;
        let v = op.event.target;
        let old = self.values[v.index()];
        let new = self.algo.reduce(old, op.event.delta);
        self.values[v.index()] = new;
        self.events_processed += 1;
        self.activity.proc_ops += 1;
        // The apply pipeline itself is fixed-latency; any extra time before
        // retirement is back-pressure from a full generation buffer, which
        // belongs to the Gen-Buffer stage (Fig. 13 attribution).
        self.stages.process.record(self.cfg.process_latency as f64);
        let stall = (now - op.issued).saturating_sub(self.cfg.process_latency);
        if stall > 0 {
            self.stages.gen_buffer.record(stall as f64);
        }
        self.progress_accum += self.algo.progress(old, new);

        // Write the updated property back through the write-combining
        // buffer: block scheduling processes consecutive vertices
        // back-to-back, so write-backs merge into sequential line writes
        // (Fig. 5 "SEQ WRITE").
        let line = vertex_line(self.vertex_base, self.cfg.vertex_bytes, v.get());
        if let Some((flush_line, bytes)) = self.procs[p].combine_write(line, self.cfg.vertex_bytes)
        {
            self.issue_vertex_write(p, flush_line, bytes);
        }

        // Local termination check (Algorithm 1 line 8).
        if let Some(basis) = self.algo.propagation_basis(old, new) {
            let degree = self.graph.out_degree(v);
            if degree > 0 {
                let task = GenTask {
                    vertex: v,
                    basis,
                    degree,
                    depth: op.event.meta.depth_max + 1,
                    queued_at: now,
                };
                if self.units[p].has_space() {
                    self.units[p].push_task(task);
                } else {
                    self.procs[p].stalled = Some(task);
                }
            }
        }
    }

    // ---- generation ----

    fn tick_generation(&mut self) {
        for u in 0..self.units.len() {
            for s in 0..self.units[u].streams.len() {
                self.tick_stream(u, s);
            }
        }
    }

    fn tick_stream(&mut self, u: usize, s: usize) {
        let now = self.now;

        // Pull a task if idle.
        if self.units[u].streams[s].active.is_none() && self.units[u].streams[s].pending.is_none() {
            if let Some(task) = self.units[u].buffer.pop_front() {
                self.stages.gen_buffer.record((now - task.queued_at) as f64);
                self.units[u].streams[s].active = Some(ActiveGen {
                    task,
                    next_edge: 0,
                    edge_wait: 0,
                    gen_cycles: 0,
                });
            }
        }

        // Flush a port-stalled event first.
        if let Some(flit) = self.units[u].streams[s].pending.take() {
            let state;
            let port = self.units[u].streams[s].port;
            if self.xbar.can_send(port) {
                self.xbar.send(port, flit);
                self.activity.network_flits += 1;
                if let Some(active) = &mut self.units[u].streams[s].active {
                    active.gen_cycles += 1;
                }
                state = GT_GENERATE;
            } else {
                self.units[u].streams[s].pending = Some(flit);
                state = GT_STALL;
            }
            self.units[u].streams[s].timeline.add(state, 1);
            return;
        }

        let Some(active) = &self.units[u].streams[s].active else {
            self.units[u].streams[s].timeline.add(GT_IDLE, 1);
            return;
        };
        let vertex = active.task.vertex;
        let degree = active.task.degree;
        let next_edge = active.next_edge;

        // The task may already be complete if its final event was
        // port-stalled and flushed on an earlier cycle.
        if next_edge >= degree {
            let active = self.units[u].streams[s].active.take().expect("active");
            self.stages.edge_mem.record(active.edge_wait as f64);
            self.stages.generate.record(active.gen_cycles as f64);
            self.units[u].streams[s].timeline.add(GT_IDLE, 1);
            return;
        }

        // Edge prefetch: keep up to N lines ahead in flight (§V).
        self.issue_edge_prefetch(u, vertex, next_edge, degree);

        // Consume one edge per cycle if its line is resident.
        let addr = self.edge_addr(vertex, next_edge);
        let line = line_base(addr);
        let state;
        if self.units[u].cache.contains(line) {
            self.units[u].cache.probe(line); // counts the hit, updates LRU
            let edge = self.graph.out_edge(vertex, next_edge);
            let active = self.units[u].streams[s].active.as_mut().expect("active");
            active.next_edge += 1;
            active.gen_cycles += 1;
            let basis = active.task.basis;
            let depth = active.task.depth;
            state = GT_GENERATE;
            if let Some(delta) = self.algo.propagate(basis, vertex, degree, edge) {
                let ev = Event::new(edge.other, delta, depth);
                self.events_generated += 1;
                self.current_round.produced += 1;
                let flit = Flit {
                    route: self.route_of(&ev),
                    event: ev,
                };
                let port = self.units[u].streams[s].port;
                if self.xbar.can_send(port) {
                    self.xbar.send(port, flit);
                    self.activity.network_flits += 1;
                } else {
                    self.units[u].streams[s].pending = Some(flit);
                }
            }
        } else {
            let active = self.units[u].streams[s].active.as_mut().expect("active");
            active.edge_wait += 1;
            state = GT_EDGE_READ;
        }

        // Task finished?
        let finished = {
            let stream = &self.units[u].streams[s];
            stream.pending.is_none()
                && stream
                    .active
                    .as_ref()
                    .is_some_and(|a| a.next_edge >= a.degree_of_task())
        };
        if finished {
            let active = self.units[u].streams[s].active.take().expect("active");
            self.stages.edge_mem.record(active.edge_wait as f64);
            self.stages.generate.record(active.gen_cycles as f64);
        }
        self.units[u].streams[s].timeline.add(state, 1);
    }

    fn issue_edge_prefetch(&mut self, u: usize, vertex: VertexId, next_edge: u32, degree: u32) {
        if next_edge >= degree {
            return;
        }
        let first_line = line_base(self.edge_addr(vertex, next_edge));
        let last_line = line_base(self.edge_addr(vertex, degree - 1));
        let window_end = (first_line
            + (self.cfg.edge_prefetch_depth.saturating_sub(1)) * LINE_BYTES)
            .min(last_line);
        let mut line = first_line;
        while line <= window_end {
            if !self.units[u].cache.contains(line) && !self.units[u].pending_lines.contains(&line) {
                if self.mem.can_accept(line) {
                    self.units[u].cache.probe(line); // counts the miss
                    let list_end = self.edge_addr(vertex, degree - 1) + u64::from(self.edge_bytes);
                    let useful = (list_end.min(line + LINE_BYTES)
                        - line.max(self.edge_addr(vertex, 0)))
                    .min(LINE_BYTES) as u32;
                    let req = MemRequest::read(line, LINE_BYTES as u32, TrafficClass::EdgeRead)
                        .with_useful_bytes(useful.max(1).min(LINE_BYTES as u32));
                    let id = self.mem.request(self.now, req).expect("can_accept checked");
                    self.pending_mem
                        .insert(id.get(), MemTarget::EdgeLine { unit: u, line });
                    self.units[u].pending_lines.push(line);
                }
                return; // at most one issue (or blocked wait) per cycle
            }
            line += LINE_BYTES;
        }
    }

    // ---- network & bins ----

    fn tick_network(&mut self) {
        let accepts: Vec<bool> = self.bins.iter().map(Bin::can_accept).collect();
        let now = self.now.get();
        let Machine {
            xbar,
            bins,
            spill,
            events_spilled,
            spill_pending_bytes,
            cfg,
            algo,
            shard_mode,
            outbox,
            outbox_index,
            out_seq,
            ..
        } = self;
        xbar.tick(&accepts, |flit| match flit.route {
            Route::Bin { bin, row, col } => {
                bins[bin].accept(SlotAddr { bin, row, col }, flit.event);
            }
            Route::Spill { slice } => {
                *events_spilled += 1;
                if *shard_mode {
                    match outbox_index[slice].entry(flit.event.target.get()) {
                        std::collections::hash_map::Entry::Occupied(at) => {
                            let existing = &mut outbox[slice][*at.get()].event;
                            existing.delta = algo.coalesce(existing.delta, flit.event.delta);
                            existing.meta = existing.meta.merge(flit.event.meta);
                        }
                        std::collections::hash_map::Entry::Vacant(at) => {
                            at.insert(outbox[slice].len());
                            outbox[slice].push(OutEvent {
                                cycle: now,
                                seq: *out_seq,
                                event: flit.event,
                            });
                            *out_seq += 1;
                        }
                    }
                } else {
                    spill[slice].push_back(flit.event);
                    *spill_pending_bytes += u64::from(cfg.event_bytes);
                }
            }
        });
    }

    fn tick_bins(&mut self) {
        for bin in &mut self.bins {
            if let Some(outcome) = bin.tick_insert(self.now, self.algo) {
                self.activity.queue_reads += 1; // slot probe
                self.activity.queue_writes += 1; // slot write
                if outcome == InsertOutcome::Coalesced {
                    self.events_coalesced += 1;
                    self.current_round.coalesced_away += 1;
                    self.activity.coalesce_ops += 1;
                }
            }
        }
    }

    // ---- teardown ----

    fn into_outcome(self) -> Outcome {
        let algo = self.algo;
        let (values, report) = self.into_typed();
        Outcome {
            values: values.iter().map(|v| algo.value_to_f64(*v)).collect(),
            report,
        }
    }

    /// Tears the machine down into its typed vertex values plus the
    /// execution report — the warm-start path keeps values typed so they
    /// can seed the next incremental batch without an `f64` round-trip.
    fn into_typed(self) -> (Vec<A::Value>, ExecutionReport) {
        let cycles = self.now.get();
        let seconds = self.cfg.cycles_to_seconds(cycles.max(1));
        let mut proc_timeline = StateTimeline::new(&PROC_STATES);
        for p in &self.procs {
            proc_timeline.merge(&p.timeline);
        }
        let mut gen_timeline = StateTimeline::new(&GEN_STATES);
        let mut cache_hits = 0;
        let mut cache_misses = 0;
        for u in &self.units {
            cache_hits += u.cache.hits();
            cache_misses += u.cache.misses();
            for s in &u.streams {
                gen_timeline.merge(&s.timeline);
            }
        }
        let energy = EnergyReport::from_activity(
            &EnergyModel::paper(),
            &self.activity,
            seconds,
            self.cfg.queue.bins,
            self.cfg.processors,
        );
        let report = ExecutionReport {
            cycles,
            seconds,
            rounds: self.round,
            slices: self.partition.len().max(1) as u64,
            slice_activations: self.slice_activations,
            events_processed: self.events_processed,
            events_generated: self.events_generated,
            events_coalesced: self.events_coalesced,
            events_spilled: self.events_spilled,
            rounds_log: self.rounds_log,
            stages: self.stages,
            proc_timeline,
            gen_timeline,
            memory: self.mem.stats().clone(),
            edge_cache_hits: cache_hits,
            edge_cache_misses: cache_misses,
            energy,
        };
        (self.values, report)
    }
}

impl<D> ActiveGen<D> {
    fn degree_of_task(&self) -> u32 {
        self.task.degree
    }
}

/// `LINE_BYTES` as `u32` for the write-combining cap.
pub(crate) const LINE_BYTES_U32: u32 = LINE_BYTES as u32;

fn align_up(addr: u64) -> u64 {
    addr.div_ceil(LINE_BYTES) * LINE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_algorithms::engine::run_sequential;
    use gp_algorithms::{max_abs_diff, Bfs, ConnectedComponents, PageRankDelta, Sssp};
    use gp_graph::generators::{erdos_renyi, grid_2d, rmat, RmatConfig, WeightMode};
    use gp_graph::CsrGraph;

    fn small_graph() -> CsrGraph {
        erdos_renyi(200, 1_000, WeightMode::Unweighted, 11)
    }

    #[test]
    fn pagerank_matches_golden_engine() {
        let g = small_graph();
        let algo = PageRankDelta::new(0.85, 1e-7);
        let accel = GraphPulse::new(AcceleratorConfig::small_test());
        let out = accel.run(&g, &algo).unwrap();
        let golden = run_sequential(&algo, &g);
        assert!(
            max_abs_diff(&out.values, &golden.values) < 1e-3,
            "accelerator diverged from golden engine"
        );
        assert!(out.report.cycles > 0);
        assert!(out.report.events_processed > 0);
    }

    #[test]
    fn sssp_exact_match() {
        let g = erdos_renyi(150, 900, WeightMode::Uniform(1.0, 9.0), 3);
        let algo = Sssp::new(VertexId::new(0));
        let accel = GraphPulse::new(AcceleratorConfig::small_test());
        let out = accel.run(&g, &algo).unwrap();
        let golden = gp_algorithms::reference::sssp_dijkstra(&g, VertexId::new(0));
        assert!(max_abs_diff(&out.values, &golden) < 1e-6);
    }

    #[test]
    fn bfs_on_grid() {
        let g = grid_2d(12, 12, WeightMode::Unweighted, 0);
        let algo = Bfs::new(VertexId::new(0));
        let out = GraphPulse::new(AcceleratorConfig::small_test())
            .run(&g, &algo)
            .unwrap();
        let golden = gp_algorithms::reference::bfs_levels(&g, VertexId::new(0));
        assert!(max_abs_diff(&out.values, &golden) < 1e-9);
    }

    #[test]
    fn cc_on_skewed_graph() {
        let g = rmat(&RmatConfig::graph500(256, 1_024), 7);
        let algo = ConnectedComponents::new();
        let out = GraphPulse::new(AcceleratorConfig::small_test())
            .run(&g, &algo)
            .unwrap();
        let golden = gp_algorithms::reference::cc_labels(&g);
        assert!(max_abs_diff(&out.values, &golden) < 1e-9);
    }

    #[test]
    fn sliced_run_matches_unsliced() {
        // Capacity 128 vertices per slice forces 2+ slices on 200 vertices.
        let g = small_graph();
        let algo = PageRankDelta::new(0.85, 1e-7);
        let mut cfg = AcceleratorConfig::small_test();
        cfg.queue = crate::QueueConfig {
            bins: 4,
            rows: 4,
            cols: 8,
        }; // 128 slots
        let out = GraphPulse::new(cfg).run(&g, &algo).unwrap();
        assert!(out.report.slices >= 2);
        assert!(out.report.events_spilled > 0);
        assert!(out.report.slice_activations > out.report.slices);
        let golden = run_sequential(&algo, &g);
        assert!(max_abs_diff(&out.values, &golden.values) < 1e-3);
    }

    #[test]
    fn baseline_config_matches_too() {
        let g = erdos_renyi(100, 500, WeightMode::Unweighted, 5);
        let algo = PageRankDelta::new(0.85, 1e-6);
        let mut cfg = AcceleratorConfig::baseline();
        cfg.processors = 8; // keep the debug-build test fast
        cfg.queue = crate::QueueConfig {
            bins: 4,
            rows: 32,
            cols: 8,
        };
        cfg.crossbar_ports = 4;
        let out = GraphPulse::new(cfg).run(&g, &algo).unwrap();
        let golden = run_sequential(&algo, &g);
        assert!(max_abs_diff(&out.values, &golden.values) < 1e-3);
    }

    #[test]
    fn coalescing_eliminates_events_on_skewed_graphs() {
        let g = rmat(&RmatConfig::graph500(512, 4_096), 9);
        let algo = PageRankDelta::new(0.85, 1e-5);
        let out = GraphPulse::new(AcceleratorConfig::small_test())
            .run(&g, &algo)
            .unwrap();
        assert!(
            out.report.coalesce_rate() > 0.3,
            "expected significant coalescing, got {}",
            out.report.coalesce_rate()
        );
        // Conservation: processed + coalesced + still-queued(0) = generated.
        assert_eq!(
            out.report.events_processed + out.report.events_coalesced,
            out.report.events_generated
        );
    }

    #[test]
    fn empty_graph_terminates() {
        let g = gp_graph::GraphBuilder::new(0).build();
        let algo = PageRankDelta::new(0.85, 1e-4);
        let out = GraphPulse::new(AcceleratorConfig::small_test())
            .run(&g, &algo)
            .unwrap();
        assert!(out.values.is_empty());
    }

    #[test]
    fn invalid_config_is_reported() {
        let mut cfg = AcceleratorConfig::small_test();
        cfg.processors = 0;
        let g = small_graph();
        let err = GraphPulse::new(cfg)
            .run(&g, &PageRankDelta::new(0.85, 1e-4))
            .unwrap_err();
        assert!(matches!(err, RunError::InvalidConfig(_)));
    }

    #[test]
    fn report_timelines_cover_all_cycles() {
        let g = erdos_renyi(100, 400, WeightMode::Unweighted, 2);
        let algo = PageRankDelta::new(0.85, 1e-5);
        let cfg = AcceleratorConfig::small_test();
        let procs = cfg.processors as u64;
        let streams = cfg.total_streams() as u64;
        let out = GraphPulse::new(cfg).run(&g, &algo).unwrap();
        assert_eq!(out.report.proc_timeline.total(), out.report.cycles * procs);
        assert_eq!(out.report.gen_timeline.total(), out.report.cycles * streams);
    }
}

#[cfg(test)]
mod scheduling_tests {
    use super::*;
    use crate::SchedulingPolicy;
    use gp_algorithms::engine::run_sequential;
    use gp_algorithms::{max_abs_diff, PageRankDelta};
    use gp_graph::generators::{rmat, RmatConfig};

    #[test]
    fn occupancy_first_scheduling_is_functionally_identical() {
        let g = rmat(&RmatConfig::graph500(256, 2_048), 5);
        let algo = PageRankDelta::new(0.85, 1e-7);
        let golden = run_sequential(&algo, &g);

        let mut cfg = AcceleratorConfig::small_test();
        cfg.scheduling = SchedulingPolicy::OccupancyFirst;
        let out = GraphPulse::new(cfg).run(&g, &algo).unwrap();
        assert!(max_abs_diff(&out.values, &golden.values) < 1e-3);

        let rr = GraphPulse::new(AcceleratorConfig::small_test())
            .run(&g, &algo)
            .unwrap();
        assert!(max_abs_diff(&out.values, &rr.values) < 1e-6);
        // The policies take different paths: cycle counts may differ, but
        // the amount of useful work is conserved up to coalescing luck.
        assert!(out.report.events_processed > 0);
    }
}
