//! Shard-parallel execution engine with deterministic epoch-barrier
//! event exchange.
//!
//! The graph is partitioned into contiguous *shards* with
//! [`Partition::contiguous`]; each shard owns one permanently resident
//! slice together with its own event queue, processors, generation units,
//! and DRAM model — exactly the sequential machine, minus slice
//! swapping. Shards advance independently for
//! [`ParallelConfig::epoch_cycles`](crate::ParallelConfig) simulated
//! cycles, then meet at a barrier where cross-shard events are exchanged
//! through per-shard inboxes.
//!
//! # Determinism
//!
//! Two properties make the engine bit-deterministic for **any** worker
//! count:
//!
//! 1. The shard structure is derived only from the configuration and the
//!    graph (queue capacity, or the explicit
//!    [`ParallelConfig::shards`](crate::ParallelConfig) override) — never
//!    from `workers`. A worker is just an OS thread stepping a disjoint
//!    subset of shards between barriers; each shard's simulation is a
//!    pure function of its inputs.
//! 2. Inbox merge order is canonical: every outgoing event is tagged with
//!    its emission `(cycle, seq)` by the sender, and each inbox is sorted
//!    by `(cycle, source shard, seq)` before delivery.
//!
//! Consequently final vertex values, total cycles, and every statistic
//! are identical for 1, 2, 4, ... workers; threads only change wall-clock
//! time.

use std::sync::Mutex;

use gp_algorithms::DeltaAlgorithm;
use gp_graph::partition::Partition;
use gp_graph::{GraphView, VertexId};
use gp_sim::stats::StatsRegistry;
use gp_sim::Cycle;

use crate::energy::{ActivityCounters, EnergyModel, EnergyReport};
use crate::machine::Machine;
use crate::metrics::{ExecutionReport, RoundMetrics, StageAverages};
use crate::metrics::{GEN_STATES, PROC_STATES};
use crate::{GraphPulse, RunError};
use gp_sim::stats::StateTimeline;

/// Deterministic disturbance-and-watchdog plan for the shard-parallel
/// engine, used by the chaos plane (`gp-chaos`).
///
/// The stall models a shard whose egress link is down: at each barrier the
/// victim's outgoing events are diverted into a carry buffer instead of
/// the inboxes, for `epochs` consecutive barriers, then flushed. Held
/// events keep their original `(cycle, source shard, seq)` tags and the
/// canonical inbox sort runs on delivery, so a run that survives the
/// stall stays bit-deterministic for any worker count. The termination
/// check refuses to declare convergence while the carry buffer is
/// non-empty — a stall can therefore never produce a silently wrong fixed
/// point; it either delays convergence or trips the epoch-budget
/// watchdog ([`RunError::EpochBudget`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelChaos {
    /// Stall injection: `(victim shard, barriers held)`. The victim index
    /// is taken modulo the shard count. `None` injects nothing.
    pub stall: Option<(usize, u64)>,
    /// Convergence watchdog: maximum number of epoch barriers before the
    /// run is aborted with [`RunError::EpochBudget`]. `None` disables it.
    pub epoch_budget: Option<u64>,
}

/// Result of a parallel run: the merged [`Outcome`](crate::Outcome) fields
/// plus the barrier-merged counter registry.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// Final vertex values projected to `f64` (bit-identical across worker
    /// counts).
    pub values: Vec<f64>,
    /// Merged measurement report; `cycles` is the slowest shard's clock.
    pub report: ExecutionReport,
    /// Snapshot of the epoch-merged [`StatsRegistry`] in name order.
    pub stats: Vec<(&'static str, u64)>,
    /// Number of epoch barriers executed.
    pub epochs: u64,
    /// Number of shards the graph was split into.
    pub shards: usize,
    /// Simulation ticks each shard actually executed (its share of the
    /// parallel work). Like every other field this is identical for any
    /// worker count, so `sum / max-per-worker-chunk` is a host-independent
    /// measure of the speedup a sufficiently parallel machine realizes.
    pub shard_ticks: Vec<u64>,
}

/// Result of a warm-start parallel run
/// ([`GraphPulse::run_parallel_seeded`]): the [`ParallelOutcome`] fields
/// with vertex values kept in the algorithm's typed representation so a
/// stream of update batches can be re-fed without lossy `f64` round-trips.
/// Carries the same bit-determinism guarantee across worker counts.
#[derive(Debug, Clone)]
pub struct ParallelSeededOutcome<V> {
    /// Final typed vertex values (bit-identical across worker counts).
    pub values: Vec<V>,
    /// Merged measurement report; `cycles` is the slowest shard's clock.
    pub report: ExecutionReport,
    /// Snapshot of the epoch-merged [`StatsRegistry`] in name order.
    pub stats: Vec<(&'static str, u64)>,
    /// Number of epoch barriers executed.
    pub epochs: u64,
    /// Number of shards the graph was split into.
    pub shards: usize,
    /// Simulation ticks each shard executed.
    pub shard_ticks: Vec<u64>,
}

impl GraphPulse {
    /// Runs `algo` on `graph` with the shard-parallel engine.
    ///
    /// See the module docs of [`crate::parallel`] for the execution model
    /// and the determinism guarantee. `config.parallel.workers` only sets
    /// the thread count; results are bit-identical for any value.
    ///
    /// # Errors
    ///
    /// [`RunError::InvalidConfig`] if the configuration is inconsistent or
    /// a forced shard count would overflow the event queue;
    /// [`RunError::CycleLimit`] if any shard exceeds `config.max_cycles`.
    pub fn run_parallel<A: DeltaAlgorithm, G: GraphView + Sync>(
        &self,
        graph: &G,
        algo: &A,
    ) -> Result<ParallelOutcome, RunError> {
        self.run_parallel_chaos(graph, algo, ParallelChaos::default())
    }

    /// Runs `algo` on `graph` with the shard-parallel engine under a
    /// [`ParallelChaos`] plan (stall injection and/or epoch-budget
    /// watchdog). [`GraphPulse::run_parallel`] is this with the default
    /// (empty) plan.
    ///
    /// # Errors
    ///
    /// Same as [`GraphPulse::run_parallel`], plus
    /// [`RunError::EpochBudget`] when the watchdog fires.
    pub fn run_parallel_chaos<A: DeltaAlgorithm, G: GraphView + Sync>(
        &self,
        graph: &G,
        algo: &A,
        chaos: ParallelChaos,
    ) -> Result<ParallelOutcome, RunError> {
        let out = self.run_parallel_inner(graph, algo, None, chaos)?;
        Ok(ParallelOutcome {
            values: out.values.iter().map(|&v| algo.value_to_f64(v)).collect(),
            report: out.report,
            stats: out.stats,
            epochs: out.epochs,
            shards: out.shards,
            shard_ticks: out.shard_ticks,
        })
    }

    /// Runs `algo` from explicit warm-start state with the shard-parallel
    /// engine: `values` holds the per-vertex states to resume from and
    /// `seeds` the events injected instead of the cold-start initial-delta
    /// sweep. Every shard receives the full seed list and installs only
    /// its resident vertices' events, so the seeding — like the epoch
    /// exchange — is independent of the worker count and the determinism
    /// guarantee of [`crate::parallel`] carries over unchanged to
    /// incremental recomputation.
    ///
    /// # Errors
    ///
    /// Same as [`GraphPulse::run_parallel`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != graph.num_vertices()` or a seed vertex
    /// is out of range.
    pub fn run_parallel_seeded<A: DeltaAlgorithm, G: GraphView + Sync>(
        &self,
        graph: &G,
        algo: &A,
        values: Vec<A::Value>,
        seeds: &[(VertexId, A::Delta)],
    ) -> Result<ParallelSeededOutcome<A::Value>, RunError> {
        self.run_parallel_inner(graph, algo, Some((values, seeds)), ParallelChaos::default())
    }

    /// Shared driver behind the cold-start and warm-start parallel paths;
    /// `seed` selects between the per-shard initial-delta sweep (`None`)
    /// and explicit warm-start state.
    #[allow(clippy::type_complexity)]
    fn run_parallel_inner<A: DeltaAlgorithm, G: GraphView + Sync>(
        &self,
        graph: &G,
        algo: &A,
        seed: Option<(Vec<A::Value>, &[(VertexId, A::Delta)])>,
        chaos: ParallelChaos,
    ) -> Result<ParallelSeededOutcome<A::Value>, RunError> {
        let cfg = self.config();
        cfg.validate().map_err(RunError::InvalidConfig)?;
        let pc = cfg.parallel;

        let queue_capacity = cfg.queue.capacity().max(1);
        let per_slice = if pc.shards > 0 {
            let forced = graph.num_vertices().div_ceil(pc.shards).max(1);
            if forced > queue_capacity {
                return Err(RunError::InvalidConfig(format!(
                    "{} shards put {forced} vertices in a slice, above the \
                     queue capacity of {queue_capacity}",
                    pc.shards
                )));
            }
            forced
        } else {
            queue_capacity
        };
        let partition = Partition::contiguous(graph, per_slice);
        let shard_count = partition.len();
        if shard_count == 0 {
            // Empty graph (zero vertices): the sequential path already
            // handles it, and there are no typed values to carry.
            let out = self.run(graph, algo)?;
            debug_assert!(out.values.is_empty());
            return Ok(ParallelSeededOutcome {
                values: Vec::new(),
                report: out.report,
                stats: Vec::new(),
                epochs: 0,
                shards: 0,
                shard_ticks: Vec::new(),
            });
        }

        let mut machines: Vec<Machine<'_, A, G>> = (0..shard_count)
            .map(|s| Machine::new_shard(cfg, graph, algo, partition.clone(), s))
            .collect();
        match &seed {
            None => {
                for m in &mut machines {
                    m.seed_shard_events();
                }
            }
            Some((values, seeds)) => {
                for m in &mut machines {
                    m.set_values(values.clone());
                    m.seed_events(seeds);
                }
            }
        }

        let registry = StatsRegistry::new();
        let workers = pc.workers.clamp(1, shard_count);
        let chunk = shard_count.div_ceil(workers);
        let mut epochs = 0u64;
        let mut barrier = 0u64;

        let trace = std::env::var("GP_PARALLEL_TRACE").is_ok();
        let mut t_run = std::time::Duration::ZERO;
        let mut t_gather = std::time::Duration::ZERO;
        let mut t_deliver = std::time::Duration::ZERO;
        let mut total_exchanged = 0usize;

        // Chaos plan state: the stalled shard's diverted events (with
        // their original canonical tags) and the barriers left to hold.
        let stall_shard = chaos.stall.map(|(s, _)| s % shard_count);
        let mut stall_left = chaos.stall.map_or(0, |(_, epochs)| epochs);
        let mut carry: Vec<(usize, u64, usize, u64, _)> = Vec::new();

        loop {
            barrier = barrier.saturating_add(pc.epoch_cycles);
            epochs += 1;
            if let Some(budget) = chaos.epoch_budget {
                if epochs > budget {
                    return Err(RunError::EpochBudget(budget));
                }
            }
            let epoch_end = Cycle::new(barrier);
            let t0 = std::time::Instant::now();

            // Run every shard up to the barrier; workers step disjoint
            // chunks, so no shard state is shared between threads.
            let first_err: Mutex<Option<RunError>> = Mutex::new(None);
            std::thread::scope(|scope| {
                for chunk_machines in machines.chunks_mut(chunk) {
                    let first_err = &first_err;
                    scope.spawn(move || {
                        for m in chunk_machines {
                            if let Err(e) = m.run_epoch(epoch_end) {
                                let mut slot = first_err.lock().expect("error slot poisoned");
                                slot.get_or_insert(e);
                                return;
                            }
                        }
                    });
                }
            });
            if let Some(e) = first_err.into_inner().expect("error slot poisoned") {
                return Err(e);
            }
            t_run += t0.elapsed();
            let t0 = std::time::Instant::now();

            // Sharded counters merge into the thread-safe registry at the
            // barrier (order-independent: counter addition commutes).
            for m in &mut machines {
                registry.absorb(m.drain_epoch_stats());
            }

            // Exchange: gather every shard's outboxes into per-destination
            // inboxes tagged (cycle, source shard, seq).
            let mut inboxes: Vec<Vec<(u64, usize, u64, _)>> =
                (0..shard_count).map(|_| Vec::new()).collect();
            for (src, m) in machines.iter_mut().enumerate() {
                for (dst, out) in m.take_outboxes().into_iter().enumerate() {
                    for oe in out {
                        if stall_left > 0 && Some(src) == stall_shard {
                            carry.push((dst, oe.cycle, src, oe.seq, oe.event));
                        } else {
                            inboxes[dst].push((oe.cycle, src, oe.seq, oe.event));
                        }
                    }
                }
            }
            if stall_left > 0 {
                stall_left -= 1;
                if stall_left == 0 {
                    // Stall window over: the victim's egress floods out.
                    // Original tags survive, so the canonical sort below
                    // restores a worker-count-independent delivery order.
                    for (dst, cycle, src, seq, ev) in carry.drain(..) {
                        inboxes[dst].push((cycle, src, seq, ev));
                    }
                }
            }
            let exchanged: usize = inboxes.iter().map(Vec::len).sum();
            t_gather += t0.elapsed();
            total_exchanged += exchanged;
            if exchanged == 0 && carry.is_empty() && machines.iter().all(Machine::parked) {
                break;
            }
            let t0 = std::time::Instant::now();

            // Deliver in the canonical order so insertion (and therefore
            // coalescing) is identical for every worker count. Destinations
            // are independent, so workers sort + install disjoint chunks.
            std::thread::scope(|scope| {
                for (chunk_machines, chunk_inboxes) in
                    machines.chunks_mut(chunk).zip(inboxes.chunks_mut(chunk))
                {
                    scope.spawn(move || {
                        for (m, inbox) in chunk_machines.iter_mut().zip(chunk_inboxes) {
                            if inbox.is_empty() {
                                continue;
                            }
                            inbox.sort_by_key(|&(cycle, src, seq, _)| (cycle, src, seq));
                            m.deliver(epoch_end, inbox.drain(..).map(|(_, _, _, ev)| ev));
                        }
                    });
                }
            });
            t_deliver += t0.elapsed();
        }
        if trace {
            eprintln!(
                "[parallel trace] run {:.0}ms gather {:.0}ms deliver {:.0}ms exchanged {}",
                t_run.as_secs_f64() * 1e3,
                t_gather.as_secs_f64() * 1e3,
                t_deliver.as_secs_f64() * 1e3,
                total_exchanged
            );
            for (s, m) in machines.iter().enumerate() {
                eprintln!("[parallel trace] shard {s}: {}", m.trace_summary());
            }
        }
        for m in &mut machines {
            registry.absorb(m.drain_epoch_stats());
        }

        Ok(self.merge_outcome(graph, machines, registry, epochs, shard_count))
    }

    fn merge_outcome<A: DeltaAlgorithm, G: GraphView>(
        &self,
        graph: &G,
        machines: Vec<Machine<'_, A, G>>,
        registry: StatsRegistry,
        epochs: u64,
        shards: usize,
    ) -> ParallelSeededOutcome<A::Value> {
        let cfg = self.config();
        let mut values: Vec<A::Value> = Vec::with_capacity(graph.num_vertices());
        let mut cycles = 0u64;
        let mut rounds = 0u64;
        let mut activations = 0u64;
        let mut processed = 0u64;
        let mut generated = 0u64;
        let mut coalesced = 0u64;
        let mut exchanged = 0u64;
        let mut rounds_log: Vec<RoundMetrics> = Vec::new();
        let mut stages = StageAverages::default();
        let mut proc_timeline = StateTimeline::new(&PROC_STATES);
        let mut gen_timeline = StateTimeline::new(&GEN_STATES);
        let mut memory = gp_mem::MemStats::default();
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        let mut activity = ActivityCounters::default();
        let mut shard_ticks = Vec::with_capacity(shards);

        for machine in machines {
            let part = machine.into_shard_partial();
            shard_ticks.push(part.ticks);
            // Shards are contiguous and visited in order, so their value
            // slices concatenate to the full typed vector.
            debug_assert_eq!(part.start, values.len());
            values.extend(part.values);
            cycles = cycles.max(part.cycles);
            rounds = rounds.max(part.rounds);
            activations += part.activations;
            processed += part.events_processed;
            generated += part.events_generated;
            coalesced += part.events_coalesced;
            exchanged += part.events_exchanged;
            // Align per-shard round logs by round index so aggregate
            // invariants (e.g. lookahead totals) keep holding.
            if rounds_log.len() < part.rounds_log.len() {
                rounds_log.resize_with(part.rounds_log.len(), RoundMetrics::default);
            }
            for (i, r) in part.rounds_log.into_iter().enumerate() {
                let dst = &mut rounds_log[i];
                dst.round = i as u64;
                dst.produced += r.produced;
                dst.coalesced_away += r.coalesced_away;
                dst.drained += r.drained;
                dst.remaining += r.remaining;
                dst.lookahead.zero += r.lookahead.zero;
                dst.lookahead.lt100 += r.lookahead.lt100;
                dst.lookahead.lt200 += r.lookahead.lt200;
                dst.lookahead.lt300 += r.lookahead.lt300;
                dst.lookahead.lt400 += r.lookahead.lt400;
                dst.lookahead.ge400 += r.lookahead.ge400;
            }
            stages.merge(&part.stages);
            proc_timeline.merge(&part.proc_timeline);
            gen_timeline.merge(&part.gen_timeline);
            memory.merge(&part.memory);
            cache_hits += part.cache_hits;
            cache_misses += part.cache_misses;
            activity.queue_reads += part.activity.queue_reads;
            activity.queue_writes += part.activity.queue_writes;
            activity.coalesce_ops += part.activity.coalesce_ops;
            activity.scratchpad_accesses += part.activity.scratchpad_accesses;
            activity.network_flits += part.activity.network_flits;
            activity.proc_ops += part.activity.proc_ops;
        }

        let seconds = cfg.cycles_to_seconds(cycles.max(1));
        let energy = EnergyReport::from_activity(
            &EnergyModel::paper(),
            &activity,
            seconds,
            cfg.queue.bins,
            cfg.processors,
        );
        let report = ExecutionReport {
            cycles,
            seconds,
            rounds,
            slices: shards as u64,
            slice_activations: activations,
            events_processed: processed,
            events_generated: generated,
            events_coalesced: coalesced,
            events_spilled: exchanged,
            rounds_log,
            stages,
            proc_timeline,
            gen_timeline,
            memory,
            edge_cache_hits: cache_hits,
            edge_cache_misses: cache_misses,
            energy,
        };
        ParallelSeededOutcome {
            values,
            report,
            stats: registry.snapshot(),
            epochs,
            shards,
            shard_ticks,
        }
    }
}
