//! Generation units and streams (§V, Fig. 9).
//!
//! After an event is processed, update events must be generated for the
//! vertex's whole out-edge set — the expensive step that used to stall the
//! processors. The paper decouples it: each processor feeds a *generation
//! unit* holding several *streams* that share an edge cache; each stream
//! walks one vertex's edge list at one edge per cycle, with a degree-hinted
//! N-block prefetcher keeping the cache warm.

use std::collections::VecDeque;

use gp_graph::VertexId;
use gp_mem::{Cache, CacheConfig};
use gp_sim::stats::StateTimeline;
use gp_sim::Cycle;

use crate::metrics::GEN_STATES;
use crate::network::Flit;

/// Index of the generation states in the Fig. 14 timeline.
pub(crate) const GT_EDGE_READ: usize = 0;
pub(crate) const GT_GENERATE: usize = 1;
pub(crate) const GT_STALL: usize = 2;
pub(crate) const GT_IDLE: usize = 3;

/// A processed vertex waiting for event generation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GenTask<D> {
    pub vertex: VertexId,
    /// The propagation basis Δu produced by the reduce step.
    pub basis: D,
    pub degree: u32,
    /// Virtual-iteration depth of the events this task will emit.
    pub depth: u32,
    /// Cycle the task entered the generation buffer.
    pub queued_at: Cycle,
}

/// A stream actively walking one vertex's edge list.
#[derive(Debug)]
pub(crate) struct ActiveGen<D> {
    pub task: GenTask<D>,
    pub next_edge: u32,
    /// Cycles stalled waiting for edge lines (Fig. 13 "Edge Mem").
    pub edge_wait: u64,
    /// Cycles spent emitting/routing events (Fig. 13 "Generate").
    pub gen_cycles: u64,
}

/// One generation stream.
#[derive(Debug)]
pub(crate) struct Stream<D> {
    pub active: Option<ActiveGen<D>>,
    /// An emitted event that found its crossbar port full.
    pub pending: Option<Flit<D>>,
    /// The crossbar port this stream is multiplexed onto.
    pub port: usize,
    pub timeline: StateTimeline,
}

impl<D> Stream<D> {
    fn new(port: usize) -> Self {
        Stream {
            active: None,
            pending: None,
            port,
            timeline: StateTimeline::new(&GEN_STATES),
        }
    }

    /// Whether the stream holds no work.
    pub(crate) fn is_idle(&self) -> bool {
        self.active.is_none() && self.pending.is_none()
    }
}

/// A generation unit: the streams attached to one processor plus their
/// shared edge cache.
#[derive(Debug)]
pub(crate) struct GenUnit<D> {
    pub buffer: VecDeque<GenTask<D>>,
    buffer_cap: usize,
    pub cache: Cache,
    /// Edge lines requested from memory but not yet arrived.
    pub pending_lines: Vec<u64>,
    pub streams: Vec<Stream<D>>,
}

impl<D> GenUnit<D> {
    pub(crate) fn new(
        streams: usize,
        buffer_cap: usize,
        cache: CacheConfig,
        first_port: usize,
        ports: usize,
    ) -> Self {
        GenUnit {
            buffer: VecDeque::with_capacity(buffer_cap),
            buffer_cap,
            cache: Cache::new(cache),
            pending_lines: Vec::new(),
            streams: (0..streams)
                .map(|s| Stream::new((first_port + s) % ports))
                .collect(),
        }
    }

    /// Whether the generation buffer can take another task.
    pub(crate) fn has_space(&self) -> bool {
        self.buffer.len() < self.buffer_cap
    }

    /// Queues a task.
    ///
    /// # Panics
    ///
    /// Panics on overflow; gate with [`GenUnit::has_space`].
    pub(crate) fn push_task(&mut self, task: GenTask<D>) {
        assert!(self.has_space(), "generation buffer overflow");
        self.buffer.push_back(task);
    }

    /// An edge line arrived from memory.
    pub(crate) fn line_arrived(&mut self, line: u64) {
        self.pending_lines.retain(|&l| l != line);
        self.cache.fill(line);
    }

    /// Whether buffer and all streams are drained.
    pub(crate) fn is_quiescent(&self) -> bool {
        self.buffer.is_empty()
            && self.pending_lines.is_empty()
            && self.streams.iter().all(Stream::is_idle)
    }

    /// Resets transient state for a slice swap.
    pub(crate) fn reset_for_swap(&mut self) {
        debug_assert!(self.is_quiescent(), "swap while busy");
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> GenUnit<f64> {
        GenUnit::new(4, 2, CacheConfig { sets: 2, ways: 2 }, 3, 16)
    }

    #[test]
    fn ports_assigned_round_robin_from_first() {
        let u = unit();
        let ports: Vec<usize> = u.streams.iter().map(|s| s.port).collect();
        assert_eq!(ports, vec![3, 4, 5, 6]);
    }

    #[test]
    fn buffer_capacity_enforced() {
        let mut u = unit();
        let task = GenTask {
            vertex: VertexId::new(0),
            basis: 1.0,
            degree: 2,
            depth: 0,
            queued_at: Cycle::ZERO,
        };
        assert!(u.has_space());
        u.push_task(task);
        u.push_task(task);
        assert!(!u.has_space());
    }

    #[test]
    fn line_arrival_fills_cache_and_clears_pending() {
        let mut u = unit();
        u.pending_lines.push(64);
        assert!(!u.is_quiescent());
        u.line_arrived(64);
        assert!(u.cache.contains(64));
        assert!(u.is_quiescent());
    }

    #[test]
    fn quiescence_requires_idle_streams() {
        let mut u = unit();
        assert!(u.is_quiescent());
        u.streams[0].active = Some(ActiveGen {
            task: GenTask {
                vertex: VertexId::new(1),
                basis: 0.5,
                degree: 1,
                depth: 2,
                queued_at: Cycle::ZERO,
            },
            next_edge: 0,
            edge_wait: 0,
            gen_cycles: 0,
        });
        assert!(!u.is_quiescent());
    }
}
