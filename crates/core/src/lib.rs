//! # graphpulse-core — the GraphPulse accelerator
//!
//! A cycle-level model of the event-driven asynchronous graph-processing
//! accelerator of *GraphPulse: An Event-Driven Hardware Accelerator for
//! Asynchronous Graph Processing* (MICRO 2020).
//!
//! The machine executes any [`DeltaAlgorithm`](gp_algorithms::DeltaAlgorithm)
//! and comprises, per the paper's Figs. 3 and 9:
//!
//! * an **in-place coalescing event queue** — direct-mapped bins with a
//!   pipelined coalescer (§IV-D),
//! * an **event scheduler** draining bins round-robin in *rounds*, with the
//!   quiescence barrier that guarantees at most one in-flight event per
//!   vertex (implicit atomicity, §IV-C),
//! * **event processors** with input buffers and a vertex-property
//!   scratchpad prefetcher (§V),
//! * decoupled **generation units** with multiple streams per processor,
//!   an edge cache, and a degree-hinted N-block edge prefetcher (§V),
//! * a **crossbar** routing produced events back to queue bins,
//! * the **DDR3 memory system** of `gp-mem` (4 × 17 GB/s, Table III),
//! * **slicing** for graphs whose vertex count exceeds the queue capacity,
//!   with off-chip event spill/fill (§IV-F),
//! * an **energy/area model** calibrated against Table V.
//!
//! # Quickstart
//!
//! ```
//! use gp_algorithms::PageRankDelta;
//! use gp_graph::generators::{erdos_renyi, WeightMode};
//! use graphpulse_core::{AcceleratorConfig, GraphPulse};
//!
//! let graph = erdos_renyi(256, 1024, WeightMode::Unweighted, 1);
//! let algo = PageRankDelta::new(0.85, 1e-7);
//! let accel = GraphPulse::new(AcceleratorConfig::small_test());
//! let outcome = accel.run(&graph, &algo).unwrap();
//! assert_eq!(outcome.values.len(), 256);
//! println!("finished in {} cycles", outcome.report.cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod energy;
mod event;
mod generation;
mod machine;
mod metrics;
mod network;
pub mod parallel;
mod processor;
mod queue;

pub use config::{AcceleratorConfig, ParallelConfig, QueueConfig, SchedulingPolicy};
pub use energy::{EnergyModel, EnergyReport};
pub use event::{Event, EventMeta};
pub use machine::{GraphPulse, Outcome, RunError, SeededOutcome};
pub use metrics::{ExecutionReport, LookaheadBuckets, RoundMetrics, StageAverages};
pub use parallel::{ParallelChaos, ParallelOutcome, ParallelSeededOutcome};
