//! # gp-sim — cycle-level simulation kernel
//!
//! Substrate crate of the GraphPulse reproduction. The original paper built
//! its evaluation on the Structural Simulation Toolkit (SST) with a DRAMSim2
//! memory backend; this crate provides the equivalent *kernel* primitives
//! that the rest of the workspace composes into a cycle-accurate model:
//!
//! * [`Cycle`] — a strongly-typed simulation timestamp,
//! * [`Fifo`] — a bounded queue whose entries become visible only after a
//!   configurable latency (models wires, buffers and channels),
//! * [`Pipeline`] — a fixed-latency, initiation-interval-1 pipeline model
//!   (used e.g. for the 4-stage floating-point coalescer of the paper),
//! * [`EventWheel`] — a timestamp-ordered scheduler for deferred actions
//!   (used by the DRAM model for request completions),
//! * [`HierarchicalWheel`] — a hierarchical timing wheel with batch drains
//!   and an explicit overflow handoff (used by the `gp-turbo` throughput
//!   backend as a bucketed priority queue),
//! * [`stats`] — counters and histograms that back every figure of the
//!   paper's evaluation section.
//!
//! The kernel is deliberately *synchronous*: components own their state and
//! are ticked once per cycle by their parent, which keeps the model fast,
//! deterministic and free of `Rc<RefCell<..>>` webs.
//!
//! # Examples
//!
//! ```
//! use gp_sim::{Cycle, Fifo};
//!
//! let mut wire: Fifo<u32> = Fifo::new(4, 2); // capacity 4, latency 2 cycles
//! let t0 = Cycle::ZERO;
//! wire.push(t0, 7).unwrap();
//! assert_eq!(wire.pop(t0), None);            // not visible yet
//! assert_eq!(wire.pop(t0 + 2), Some(7));     // visible after the latency
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cycle;
mod fifo;
mod pipeline;
pub mod rng;
pub mod stats;
mod wheel;

pub use cycle::Cycle;
pub use fifo::{Fifo, FifoFullError};
pub use pipeline::Pipeline;
pub use wheel::{EventWheel, HierarchicalWheel, WheelOverflow};

/// A component that advances one clock cycle at a time.
///
/// Implementors own all of their state; the parent model calls
/// [`Ticker::tick`] exactly once per cycle in a deterministic order.
pub trait Ticker {
    /// Advance the component's internal state to the end of cycle `now`.
    fn tick(&mut self, now: Cycle);
}
