//! Timestamp-ordered deferred-action scheduler.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A min-heap of `(due-cycle, payload)` pairs: the simulation analog of a
/// hardware timer wheel or an SST event queue.
///
/// Payloads scheduled for the same cycle pop in insertion order (a stable
/// sequence number breaks ties), which keeps whole-system simulations
/// deterministic.
///
/// # Examples
///
/// ```
/// use gp_sim::{Cycle, EventWheel};
///
/// let mut w = EventWheel::new();
/// w.schedule(Cycle::new(5), "later");
/// w.schedule(Cycle::new(2), "sooner");
/// assert_eq!(w.pop_due(Cycle::new(2)), Some("sooner"));
/// assert_eq!(w.pop_due(Cycle::new(2)), None);
/// assert_eq!(w.pop_due(Cycle::new(9)), Some("later"));
/// ```
#[derive(Debug, Clone)]
pub struct EventWheel<T> {
    heap: BinaryHeap<Reverse<(Cycle, u64, OrdShim<T>)>>,
    seq: u64,
}

/// Wrapper giving every payload a vacuous total order so it can live in the
/// heap; ordering is fully decided by `(Cycle, seq)` before the shim is ever
/// compared.
#[derive(Debug, Clone)]
struct OrdShim<T>(T);

impl<T> PartialEq for OrdShim<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for OrdShim<T> {}
impl<T> PartialOrd for OrdShim<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for OrdShim<T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<T> EventWheel<T> {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        EventWheel {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` to become due at cycle `when`.
    pub fn schedule(&mut self, when: Cycle, payload: T) {
        self.heap.push(Reverse((when, self.seq, OrdShim(payload))));
        self.seq += 1;
    }

    /// Pops the earliest payload that is due at or before `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<T> {
        match self.heap.peek() {
            Some(Reverse((due, _, _))) if *due <= now => {
                self.heap.pop().map(|Reverse((_, _, OrdShim(v)))| v)
            }
            _ => None,
        }
    }

    /// The cycle at which the next payload becomes due, or [`Cycle::NEVER`].
    ///
    /// Lets a simulation loop fast-forward over idle gaps.
    pub fn next_due(&self) -> Cycle {
        self.heap
            .peek()
            .map(|Reverse((due, _, _))| *due)
            .unwrap_or(Cycle::NEVER)
    }

    /// Number of scheduled payloads.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no payloads are scheduled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut w = EventWheel::new();
        w.schedule(Cycle::new(30), 3);
        w.schedule(Cycle::new(10), 1);
        w.schedule(Cycle::new(20), 2);
        assert_eq!(w.next_due(), Cycle::new(10));
        assert_eq!(w.pop_due(Cycle::new(100)), Some(1));
        assert_eq!(w.pop_due(Cycle::new(100)), Some(2));
        assert_eq!(w.pop_due(Cycle::new(100)), Some(3));
        assert_eq!(w.next_due(), Cycle::NEVER);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut w = EventWheel::new();
        for i in 0..10 {
            w.schedule(Cycle::new(5), i);
        }
        for i in 0..10 {
            assert_eq!(w.pop_due(Cycle::new(5)), Some(i));
        }
    }

    #[test]
    fn not_due_stays_scheduled() {
        let mut w = EventWheel::new();
        w.schedule(Cycle::new(7), ());
        assert_eq!(w.pop_due(Cycle::new(6)), None);
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }
}
